// Package-level benchmarks: one per table and figure in the paper's
// evaluation (see DESIGN.md §4 for the index). Each benchmark regenerates
// the corresponding experiment on the simulated cluster and reports the
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Shape assertions (who wins, directions
// of correlations) live in shape_test.go; benchmarks only measure.
package main

import (
	"testing"

	"graphpart/internal/bench"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and reports how many of its structured checks reproduced.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.DefaultConfig()
	var good, bad int
	for i := 0; i < b.N; i++ {
		r, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		good, bad = 0, 0
		for _, c := range r.Checks {
			if c.Pass {
				good++
			} else {
				bad++
			}
		}
	}
	b.ReportMetric(float64(good), "shapes-ok")
	b.ReportMetric(float64(bad), "shapes-missed")
}

func BenchmarkFig5_3NetIOvsRF(b *testing.B)            { runExperiment(b, "fig5.3") }
func BenchmarkFig5_4ComputeVsRF(b *testing.B)          { runExperiment(b, "fig5.4") }
func BenchmarkFig5_5MemoryVsRF(b *testing.B)           { runExperiment(b, "fig5.5") }
func BenchmarkFig5_6ReplicationFactors(b *testing.B)   { runExperiment(b, "fig5.6") }
func BenchmarkFig5_7IngressTimes(b *testing.B)         { runExperiment(b, "fig5.7") }
func BenchmarkFig5_8DegreeDistributions(b *testing.B)  { runExperiment(b, "fig5.8") }
func BenchmarkTable5_1GridVsHDRF(b *testing.B)         { runExperiment(b, "tab5.1") }
func BenchmarkFig6_1LyraNetIOvsRF(b *testing.B)        { runExperiment(b, "fig6.1") }
func BenchmarkFig6_2LyraMemoryVsRF(b *testing.B)       { runExperiment(b, "fig6.2") }
func BenchmarkFig6_3MemoryTimeline(b *testing.B)       { runExperiment(b, "fig6.3") }
func BenchmarkFig6_4LyraIngress(b *testing.B)          { runExperiment(b, "fig6.4") }
func BenchmarkFig6_5LyraRF(b *testing.B)               { runExperiment(b, "fig6.5") }
func BenchmarkFig6_6HybridSynergy(b *testing.B)        { runExperiment(b, "fig6.6") }
func BenchmarkFig7_1GraphXPageRank(b *testing.B)       { runExperiment(b, "fig7.1") }
func BenchmarkTable7_1GraphXRankings(b *testing.B)     { runExperiment(b, "tab7.1") }
func BenchmarkFig8_1AllStrategiesRF(b *testing.B)      { runExperiment(b, "fig8.1") }
func BenchmarkFig8_2AllStrategiesIngress(b *testing.B) { runExperiment(b, "fig8.2") }
func BenchmarkFig8_3OneDTarget(b *testing.B)           { runExperiment(b, "fig8.3") }
func BenchmarkFig8_4CPUUtilization(b *testing.B)       { runExperiment(b, "fig8.4") }
func BenchmarkFig9_1GraphXIterationsRoad(b *testing.B) { runExperiment(b, "fig9.1") }
func BenchmarkFig9_2GraphXIterationsLJ(b *testing.B)   { runExperiment(b, "fig9.2") }
func BenchmarkFig9_4ExecutorMemory(b *testing.B)       { runExperiment(b, "fig9.4") }
func BenchmarkTable1_1Inventory(b *testing.B)          { runExperiment(b, "tab1.1") }

// Ablation benchmarks (design-choice experiments; DESIGN.md §4).
func BenchmarkAblationHDRFLambda(b *testing.B)      { runExperiment(b, "abl.lambda") }
func BenchmarkAblationHybridThreshold(b *testing.B) { runExperiment(b, "abl.threshold") }
func BenchmarkAblationLoaders(b *testing.B)         { runExperiment(b, "abl.loaders") }
func BenchmarkAblationLocality(b *testing.B)        { runExperiment(b, "abl.locality") }
func BenchmarkAblationEngine(b *testing.B)          { runExperiment(b, "abl.engine") }

// Decision-tree validation benchmarks (Figs 5.9 and 9.3 as measured checks).
func BenchmarkFig5_9DecisionTree(b *testing.B) { runExperiment(b, "fig5.9") }
func BenchmarkFig9_3DecisionTree(b *testing.B) { runExperiment(b, "fig9.3") }
