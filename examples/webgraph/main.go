// Web-graph scenario: the paper's Table 5.1 situation. On a power-law web
// graph the partitioning quality (HDRF) and partitioning speed (Grid) pull
// in opposite directions, so the right choice depends on the job's
// compute/ingress ratio — short jobs take Grid, long jobs take HDRF.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)

	g := datasets.MustLoad("uk-web", 1)
	cls := graph.Classify(g)
	fmt.Printf("dataset %v — class %s (low-degree-ratio %.2f)\n\n", g, cls.Class, cls.Fit.LowDegreeRatio)

	cc := cluster.EC2x25
	model := cluster.DefaultModel()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tjob\tingress s\tcompute s\ttotal s")
	totals := map[string]float64{}
	for _, name := range []string{"Grid", "HDRF"} {
		s, err := partition.New(name, partition.Options{})
		if err != nil {
			log.Fatal(err)
		}
		a, err := partition.Partition(g, s, cc.NumParts(), 1)
		if err != nil {
			log.Fatal(err)
		}
		ing := cluster.Ingress(a, s, cc, model)

		pr, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{Tolerance: 1e-2}, a, cc, model,
			engine.Options{MaxSupersteps: 4000})
		if err != nil {
			log.Fatal(err)
		}
		_, kc, err := app.KCoreDecomposition(engine.ModePowerGraph, 3, 16, a, cc, model,
			engine.Options{MaxSupersteps: 4000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\tPageRank(C) [short]\t%.3f\t%.3f\t%.3f\n",
			name, ing.Seconds, pr.Stats.ComputeSeconds, ing.Seconds+pr.Stats.ComputeSeconds)
		fmt.Fprintf(w, "%s\tK-core [long]\t%.3f\t%.3f\t%.3f\n",
			name, ing.Seconds, kc.ComputeSeconds, ing.Seconds+kc.ComputeSeconds)
		totals[name+"/short"] = ing.Seconds + pr.Stats.ComputeSeconds
		totals[name+"/long"] = ing.Seconds + kc.ComputeSeconds
	}
	w.Flush()

	short, long := "Grid", "Grid"
	if totals["HDRF/short"] < totals["Grid/short"] {
		short = "HDRF"
	}
	if totals["HDRF/long"] < totals["Grid/long"] {
		long = "HDRF"
	}
	fmt.Printf("\nmeasured winner — short job: %s, long job: %s\n", short, long)
	fmt.Printf("decision tree (Fig 5.9) — short job: %s, long job: %s\n",
		decision.PowerGraph(decision.Workload{Class: cls.Class, Machines: cc.Machines, ComputeIngressRatio: 0.5}),
		decision.PowerGraph(decision.Workload{Class: cls.Class, Machines: cc.Machines, ComputeIngressRatio: 5}))
}
