// Road-network scenario: low-degree, high-diameter input. Runs SSSP and WCC
// with the decision-tree-recommended strategy versus Random, demonstrating
// why the paper sends low-degree graphs to the greedy heuristics
// (HDRF/Oblivious) on PowerGraph-family systems.
package main

import (
	"fmt"
	"log"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)

	g := datasets.MustLoad("road-usa", 1)
	cls := graph.Classify(g)
	fmt.Printf("dataset %v — class %s\n", g, cls.Class)

	cc := cluster.EC2x16
	model := cluster.DefaultModel()

	rec, err := decision.Recommend(partition.PowerGraph, decision.Workload{
		Class:               cls.Class,
		Machines:            cc.Machines,
		ComputeIngressRatio: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision tree (Fig 5.9) recommends: %s\n\n", rec)

	for _, name := range []string{rec, "Random"} {
		s, err := partition.New(name, partition.Options{})
		if err != nil {
			log.Fatal(err)
		}
		a, err := partition.Partition(g, s, cc.NumParts(), 1)
		if err != nil {
			log.Fatal(err)
		}
		ing := cluster.Ingress(a, s, cc, model)

		// SSSP from the highest-degree junction.
		src := graph.VertexID(0)
		best := -1
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.Degree(graph.VertexID(v)); d > best {
				best, src = d, graph.VertexID(v)
			}
		}
		sssp, err := engine.Run[float64, float64](engine.ModePowerGraph, app.SSSP{Source: src}, a, cc, model,
			engine.Options{MaxSupersteps: 4000})
		if err != nil {
			log.Fatal(err)
		}
		wcc, err := engine.Run[uint32, uint32](engine.ModePowerGraph, app.WCC{}, a, cc, model,
			engine.Options{MaxSupersteps: 4000})
		if err != nil {
			log.Fatal(err)
		}
		components := map[uint32]bool{}
		for v, label := range wcc.Values {
			if g.Degree(graph.VertexID(v)) > 0 {
				components[label] = true
			}
		}
		fmt.Printf("%-10s RF=%.3f ingress=%.3fs  SSSP: %d supersteps %.3fs  WCC: %d components %.3fs  total=%.3fs\n",
			name, a.ReplicationFactor(), ing.Seconds,
			sssp.Stats.Supersteps, sssp.Stats.ComputeSeconds,
			len(components), wcc.Stats.ComputeSeconds,
			ing.Seconds+sssp.Stats.ComputeSeconds+wcc.Stats.ComputeSeconds)
	}
	fmt.Println("\nthe greedy heuristic keeps nearly every replica count at 1 on road networks,")
	fmt.Println("cutting both synchronization traffic and total job time (paper §5.4.2).")
}
