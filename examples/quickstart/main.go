// Quickstart: load a registered dataset, inspect its manifest, partition it
// with every strategy a system ships, compare replication factors and
// balance, and ask the paper's decision tree what it would have picked.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)

	// 1. A heavy-tailed social graph from the dataset registry (the paper's
	//    LiveJournal stand-in), with its measured manifest. Loads go through
	//    the in-process cache and, when GRAPHPART_CACHE is set, the on-disk
	//    .csrg cache.
	g := datasets.MustLoad("livejournal", 1)
	m, err := datasets.BuildManifest("livejournal", 1)
	if err != nil {
		log.Fatal(err)
	}
	cls := graph.Classify(g)
	fmt.Printf("dataset %s (%s, stands in for %s vertices / %s edges)\n",
		m.Name, m.Kind, m.PaperVerts, m.PaperEdges)
	fmt.Printf("graph %v — class %s (max degree %d, avg %.1f, degree Gini %.2f)\n\n",
		g, cls.Class, m.Stats.MaxDegree, m.Stats.AvgDegree, m.Stats.Gini)

	// 2. Partition it on a simulated 9-machine cluster with every
	//    PowerLyra strategy and compare quality.
	cc := cluster.Local9
	model := cluster.DefaultModel()
	names, err := partition.SystemStrategies(partition.PowerLyra)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\treplication\tedge balance\tingress (sim s)")
	for _, name := range names {
		s, err := partition.New(name, partition.Options{HybridThreshold: 30})
		if err != nil {
			log.Fatal(err)
		}
		a, err := partition.Partition(g, s, cc.NumParts(), 1)
		if err != nil {
			// PDS needs p²+p+1 machines; skip it on 9, as the paper does.
			fmt.Fprintf(w, "%s\t(skipped: %v)\t\t\n", name, err)
			continue
		}
		ing := cluster.Ingress(a, s, cc, model)
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\n",
			name, a.ReplicationFactor(), a.EdgeBalance(), ing.Seconds)
	}
	w.Flush()

	// 3. What does the paper's decision tree recommend?
	rec, err := decision.Recommend(partition.PowerLyra, decision.Workload{
		Class:               cls.Class,
		Machines:            cc.Machines,
		ComputeIngressRatio: 2, // long-running job
		NaturalApp:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecision tree (Fig 6.6) recommends: %s\n", rec)
	for name, why := range decision.Avoid(partition.PowerLyra) {
		fmt.Printf("avoid %-12s %s\n", name+":", why)
	}
}
