// Social-network scenario: run PageRank on a Twitter-like heavy-tailed graph
// under both the PowerGraph engine and PowerLyra's hybrid engine, across
// partitioning strategies, and show (a) the replication-factor ↔ network
// correlation of Fig 5.3 and (b) the hybrid engine's natural-application
// savings of Fig 6.1.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/engine"
	"graphpart/internal/metrics"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)

	g := datasets.MustLoad("twitter", 1)
	fmt.Printf("dataset %v (stand-in for the paper's 1.46B-edge Twitter graph)\n\n", g)

	cc := cluster.Local9
	model := cluster.DefaultModel()
	strategies := []string{"Random", "Grid", "Oblivious", "HDRF", "Hybrid"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tRF\tPG net GB\tPG compute s\tLyra net GB\tLyra compute s")

	var rfs, nets []float64
	for _, name := range strategies {
		s, err := partition.New(name, partition.Options{HybridThreshold: 30})
		if err != nil {
			log.Fatal(err)
		}
		a, err := partition.Partition(g, s, cc.NumParts(), 1)
		if err != nil {
			log.Fatal(err)
		}
		pg, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{}, a, cc, model,
			engine.Options{FixedIterations: 10})
		if err != nil {
			log.Fatal(err)
		}
		lyra, err := engine.Run[float64, float64](engine.ModePowerLyra, app.PageRank{}, a, cc, model,
			engine.Options{FixedIterations: 10, HighDegreeThreshold: 30})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			name, a.ReplicationFactor(),
			pg.Stats.AvgNetInGB, pg.Stats.ComputeSeconds,
			lyra.Stats.AvgNetInGB, lyra.Stats.ComputeSeconds)
		rfs = append(rfs, a.ReplicationFactor())
		nets = append(nets, pg.Stats.AvgNetInGB)
	}
	w.Flush()

	fit, err := metrics.Fit(rfs, nets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPowerGraph network ~ replication factor: slope=%.4g GB/replica, R²=%.3f\n", fit.Slope, fit.R2)
	fmt.Println("(the paper's Fig 5.3: network IO is a linear function of replication factor)")
	fmt.Println("PowerLyra columns show the hybrid engine cutting traffic for the natural PageRank.")
}
