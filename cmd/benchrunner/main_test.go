package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphpart/internal/bench"
	"graphpart/internal/report"
)

func goodExperiment() bench.Experiment {
	return bench.Experiment{
		ID: "good", Title: "healthy", Paper: "n/a",
		Run: func(bench.Config) (*bench.Result, error) {
			r := bench.NewResult("good", "healthy", "a")
			r.Row(report.Dims{Dataset: "road-ca", Strategy: "HDRF", Parts: 9}).
				Metric("rf", 1.5, "ratio", 2)
			r.Checkf(true, "healthy claim", "all good %s", bench.Mark(true))
			return r, nil
		},
	}
}

func figureExperiment() bench.Experiment {
	return bench.Experiment{
		ID: "fig", Title: "with figure", Paper: "n/a",
		Run: func(bench.Config) (*bench.Result, error) {
			r := bench.NewResult("fig", "with figure", "a")
			r.Row(report.Dims{}).Col("1")
			r.Figure = "ASCII-FIGURE-CONTENT\n"
			return r, nil
		},
	}
}

func badExperiment() bench.Experiment {
	return bench.Experiment{
		ID: "bad", Title: "broken", Paper: "n/a",
		Run: func(bench.Config) (*bench.Result, error) {
			return nil, errors.New("synthetic failure")
		},
	}
}

// failWriter rejects every write, standing in for a closed output pipe.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// TestRunExitCode is the smoke test for the exit path: any failed
// experiment — and any failed render, including in markdown mode, which
// used to swallow render errors — must produce a non-zero exit code.
func TestRunExitCode(t *testing.T) {
	cfg := bench.DefaultConfig()
	for _, markdown := range []bool{false, true} {
		opts := options{markdown: markdown}
		if code := run([]bench.Experiment{goodExperiment()}, cfg, opts, io.Discard, io.Discard); code != 0 {
			t.Errorf("markdown=%v: healthy run exited %d, want 0", markdown, code)
		}
		var stderr strings.Builder
		if code := run([]bench.Experiment{goodExperiment(), badExperiment()}, cfg, opts, io.Discard, &stderr); code != 1 {
			t.Errorf("markdown=%v: failing experiment exited %d, want 1", markdown, code)
		}
		if !strings.Contains(stderr.String(), "synthetic failure") {
			t.Errorf("markdown=%v: stderr does not report the failure: %q", markdown, stderr.String())
		}
		if code := run([]bench.Experiment{goodExperiment()}, cfg, opts, failWriter{}, io.Discard); code != 1 {
			t.Errorf("markdown=%v: render failure exited %d, want 1", markdown, code)
		}
	}
}

// TestRenderMarkdownOutput pins the markdown shape benchrunner emits.
func TestRenderMarkdownOutput(t *testing.T) {
	e := goodExperiment()
	res, err := e.Run(bench.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := renderMarkdown(&sb, e, res.Table()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## good — healthy", "| a |", "| --- |", "| 1.50 |", "- all good ✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

// TestMarkdownCarriesFigure: plain mode always printed Table.Figure;
// markdown mode used to drop it. Both renderings must now cover the
// figure content (markdown inside a fenced code block).
func TestMarkdownCarriesFigure(t *testing.T) {
	e := figureExperiment()
	res, err := e.Run(bench.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var plain, md strings.Builder
	if err := res.Render(&plain); err != nil {
		t.Fatal(err)
	}
	if err := renderMarkdown(&md, e, res.Table()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), "ASCII-FIGURE-CONTENT") {
		t.Fatalf("plain render lost the figure:\n%s", plain.String())
	}
	if !strings.Contains(md.String(), "ASCII-FIGURE-CONTENT") {
		t.Fatalf("markdown render dropped the figure:\n%s", md.String())
	}
	if !strings.Contains(md.String(), "```\nASCII-FIGURE-CONTENT\n```") {
		t.Errorf("figure not fenced in markdown:\n%s", md.String())
	}
	// A figure-less table must not emit an empty fence.
	var md2 strings.Builder
	g := goodExperiment()
	res2, _ := g.Run(bench.DefaultConfig())
	if err := renderMarkdown(&md2, g, res2.Table()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(md2.String(), "```") {
		t.Errorf("figure-less markdown gained a code fence:\n%s", md2.String())
	}
}

// TestJSONReportAndCompare drives the full CLI path: write a JSON report,
// compare a fresh run against it (pass), then against tampered baselines
// (value regression, missing cell) and expect non-zero exits.
func TestJSONReportAndCompare(t *testing.T) {
	cfg := bench.DefaultConfig()
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")

	exps := []bench.Experiment{goodExperiment()}
	if code := run(exps, cfg, options{jsonOut: baseline}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("baseline run exited %d", code)
	}
	f, err := os.Open(baseline)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.Decode(f)
	f.Close()
	if err != nil {
		t.Fatalf("baseline does not decode: %v", err)
	}
	if len(rep.Experiments) != 1 || len(rep.Experiments[0].Cells) != 1 {
		t.Fatalf("unexpected baseline shape: %+v", rep.Experiments)
	}

	// Identical run → no regressions.
	var stderr strings.Builder
	if code := run(exps, cfg, options{compare: baseline}, io.Discard, &stderr); code != 0 {
		t.Fatalf("self-compare exited %d:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no regressions") {
		t.Errorf("stderr missing pass confirmation: %q", stderr.String())
	}

	// Value drift → regression.
	tampered := *rep
	tampered.Experiments = append([]report.Experiment(nil), rep.Experiments...)
	cells := append([]report.Cell(nil), rep.Experiments[0].Cells...)
	cells[0].Value *= 1.5
	tampered.Experiments[0].Cells = cells
	drifted := filepath.Join(dir, "drifted.json")
	writeReport(t, drifted, &tampered)
	stderr.Reset()
	if code := run(exps, cfg, options{compare: drifted}, io.Discard, &stderr); code != 1 {
		t.Fatalf("drifted compare exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression") {
		t.Errorf("stderr missing regression report: %q", stderr.String())
	}

	// Baseline cell absent from the current run → regression.
	extra := *rep
	extra.Experiments = append([]report.Experiment(nil), rep.Experiments...)
	extraCells := append([]report.Cell(nil), rep.Experiments[0].Cells...)
	extraCells = append(extraCells, report.Cell{
		Dims: report.Dims{Dataset: "gone"}, Metric: "vanished", Value: 1})
	extra.Experiments[0].Cells = extraCells
	missing := filepath.Join(dir, "missing.json")
	writeReport(t, missing, &extra)
	stderr.Reset()
	if code := run(exps, cfg, options{compare: missing}, io.Discard, &stderr); code != 1 {
		t.Fatalf("missing-cell compare exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "missing-cell") {
		t.Errorf("stderr missing missing-cell diff: %q", stderr.String())
	}

	// An unreadable baseline is an error, not a silent pass.
	if code := run(exps, cfg, options{compare: filepath.Join(dir, "nope.json")}, io.Discard, io.Discard); code != 1 {
		t.Error("absent baseline did not fail the run")
	}
}

// TestCompareScopesSubsetRuns: a -run subset (or -filter) compared against
// a full baseline must only gate what it ran — unselected experiments and
// filter-pruned cells are not regressions; a genuinely drifted cell in the
// selected subset still is.
func TestCompareScopesSubsetRuns(t *testing.T) {
	cfg := bench.DefaultConfig()
	dir := t.TempDir()
	baseline := filepath.Join(dir, "full.json")

	full := []bench.Experiment{goodExperiment(), figureExperiment()}
	if code := run(full, cfg, options{jsonOut: baseline}, io.Discard, io.Discard); code != 0 {
		t.Fatal("full baseline run failed")
	}

	// Subset run: only "good"; the baseline's "fig" experiment must not flag.
	var stderr strings.Builder
	subsetOpts := options{compare: baseline, subset: []string{"good"}}
	if code := run([]bench.Experiment{goodExperiment()}, cfg, subsetOpts, io.Discard, &stderr); code != 0 {
		t.Fatalf("subset compare exited %d:\n%s", code, stderr.String())
	}

	// Filtered run: cells pruned from the current report must not flag.
	f, err := report.ParseFilter("dataset=no-such-dataset")
	if err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	filteredOpts := options{compare: baseline, filter: f}
	if code := run(full, cfg, filteredOpts, io.Discard, &stderr); code != 0 {
		t.Fatalf("filtered compare exited %d:\n%s", code, stderr.String())
	}

	// A real regression inside the subset still fails.
	drift := bench.Experiment{
		ID: "good", Title: "healthy", Paper: "n/a",
		Run: func(bench.Config) (*bench.Result, error) {
			r := bench.NewResult("good", "healthy", "a")
			r.Row(report.Dims{Dataset: "road-ca", Strategy: "HDRF", Parts: 9}).
				Metric("rf", 99.0, "ratio", 2)
			r.Checkf(true, "healthy claim", "all good %s", bench.Mark(true))
			return r, nil
		},
	}
	stderr.Reset()
	if code := run([]bench.Experiment{drift}, cfg, subsetOpts, io.Discard, &stderr); code != 1 {
		t.Fatalf("drifted subset compare exited %d, want 1:\n%s", code, stderr.String())
	}
}

// TestCSVOutput covers the -csv reporter end to end.
func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cells.csv")
	if code := run([]bench.Experiment{goodExperiment()}, bench.DefaultConfig(),
		options{csvOut: out}, io.Discard, io.Discard); code != 0 {
		t.Fatal("csv run failed")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 cell:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "experiment,dataset,strategy") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "good,road-ca,HDRF") {
		t.Errorf("csv row = %q", lines[1])
	}

	// -filter applies to CSV exactly as to JSON: a non-matching filter
	// leaves only the header.
	f, err := report.ParseFilter("dataset=twitter")
	if err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "filtered.csv")
	if code := run([]bench.Experiment{goodExperiment()}, bench.DefaultConfig(),
		options{csvOut: out2, filter: f}, io.Discard, io.Discard); code != 0 {
		t.Fatal("filtered csv run failed")
	}
	data2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Split(strings.TrimSpace(string(data2)), "\n"); len(got) != 1 {
		t.Errorf("filtered csv has %d lines, want header only:\n%s", len(got), data2)
	}
}

func writeReport(t *testing.T, path string, rep *report.Report) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.Encode(f); err != nil {
		t.Fatal(err)
	}
}
