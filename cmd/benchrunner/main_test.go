package main

import (
	"errors"
	"io"
	"strings"
	"testing"

	"graphpart/internal/bench"
)

func goodExperiment() bench.Experiment {
	return bench.Experiment{
		ID: "good", Title: "healthy", Paper: "n/a",
		Run: func(bench.Config) (*bench.Table, error) {
			tab := &bench.Table{ID: "good", Title: "healthy", Columns: []string{"a"}}
			tab.AddRow("1")
			return tab, nil
		},
	}
}

func badExperiment() bench.Experiment {
	return bench.Experiment{
		ID: "bad", Title: "broken", Paper: "n/a",
		Run: func(bench.Config) (*bench.Table, error) {
			return nil, errors.New("synthetic failure")
		},
	}
}

// failWriter rejects every write, standing in for a closed output pipe.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// TestRunExitCode is the smoke test for the exit path: any failed
// experiment — and any failed render, including in markdown mode, which
// used to swallow render errors — must produce a non-zero exit code.
func TestRunExitCode(t *testing.T) {
	cfg := bench.DefaultConfig()
	for _, markdown := range []bool{false, true} {
		if code := run([]bench.Experiment{goodExperiment()}, cfg, markdown, io.Discard, io.Discard); code != 0 {
			t.Errorf("markdown=%v: healthy run exited %d, want 0", markdown, code)
		}
		var stderr strings.Builder
		if code := run([]bench.Experiment{goodExperiment(), badExperiment()}, cfg, markdown, io.Discard, &stderr); code != 1 {
			t.Errorf("markdown=%v: failing experiment exited %d, want 1", markdown, code)
		}
		if !strings.Contains(stderr.String(), "synthetic failure") {
			t.Errorf("markdown=%v: stderr does not report the failure: %q", markdown, stderr.String())
		}
		if code := run([]bench.Experiment{goodExperiment()}, cfg, markdown, failWriter{}, io.Discard); code != 1 {
			t.Errorf("markdown=%v: render failure exited %d, want 1", markdown, code)
		}
	}
}

// TestRenderMarkdownOutput pins the markdown shape benchrunner emits.
func TestRenderMarkdownOutput(t *testing.T) {
	e := goodExperiment()
	tab, err := e.Run(bench.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab.Notef("a note")
	var sb strings.Builder
	if err := renderMarkdown(&sb, e, tab); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## good — healthy", "| a |", "| --- |", "| 1 |", "- a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}
