// Command benchrunner regenerates the paper's tables and figures on the
// simulated cluster and emits them as plain text, markdown, CSV, or a
// machine-readable JSON report with cross-run regression diffing.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -run fig5.3,tab5.1
//	benchrunner -all [-scale 2] [-seed 7] [-workers 4] [-cache ~/.graphpart]
//	benchrunner -all -markdown > EXPERIMENTS-run.md
//	benchrunner -all -json bench.json [-filter dataset=road,strategy=HDRF]
//	benchrunner -all -json bench.json -compare BENCH_seed1.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"graphpart/internal/bench"
	"graphpart/internal/datasets"
	"graphpart/internal/report"
)

// options collects the output/compare switches of one invocation.
type options struct {
	markdown  bool
	jsonOut   string
	csvOut    string
	compare   string
	tolerance float64
	filter    report.Filter
	// subset holds the -run experiment IDs; nil means -all. -compare
	// scopes the baseline to it so a partial run only gates what it ran.
	subset []string
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		runIDs   = flag.String("run", "", "comma-separated experiment ids to run")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "partitioner seed")
		workers  = flag.Int("workers", 0, "worker goroutines per layer: concurrent experiments, and each experiment's ingress/engine supersteps (0 = all cores; OS parallelism stays capped by GOMAXPROCS)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain tables")
		jsonOut  = flag.String("json", "", "write the machine-readable report to this file ('-' for stdout)")
		csvOut   = flag.String("csv", "", "write the typed cells as CSV to this file ('-' for stdout)")
		compare  = flag.String("compare", "", "baseline report to diff this run against; regressions exit non-zero")
		tol      = flag.Float64("tolerance", report.DefaultRelTol, "relative tolerance for -compare cell diffs; throughput cells (units ending in /s) are wall-clock and always get at least report.ThroughputRelTol")
		filterS  = flag.String("filter", "", "dimension filter for report cells, e.g. dataset=road,strategy=HDRF")
		cacheDir = flag.String("cache", "", "dataset disk-cache directory: built graphs persist as .csrg files and later runs load them binary instead of regenerating (default $"+datasets.CacheEnv+")")
	)
	flag.Parse()

	if *cacheDir != "" {
		datasets.SetCacheDir(*cacheDir)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	var subset []string
	switch {
	case *all:
		selected = bench.All()
	case *runIDs != "":
		seen := map[string]bool{}
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if seen[id] {
				continue // a repeated ID would produce a report Decode rejects
			}
			seen[id] = true
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
			subset = append(subset, id)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut == "-" && *csvOut == "-" {
		fmt.Fprintln(os.Stderr, "benchrunner: -json - and -csv - cannot both stream to stdout")
		os.Exit(2)
	}
	if *markdown && (*jsonOut == "-" || *csvOut == "-") {
		fmt.Fprintln(os.Stderr, "benchrunner: -markdown cannot render while a report streams to stdout; write the report to a file instead")
		os.Exit(2)
	}

	filter, err := report.ParseFilter(*filterS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Workers = *workers

	opts := options{
		markdown:  *markdown,
		jsonOut:   *jsonOut,
		csvOut:    *csvOut,
		compare:   *compare,
		tolerance: *tol,
		filter:    filter,
		subset:    subset,
	}
	os.Exit(run(selected, cfg, opts, os.Stdout, os.Stderr))
}

// run executes the selected experiments (concurrently, on cfg.Workers
// goroutines), renders them in input order, emits the requested reports,
// and returns the process exit code: 0 when everything ran, rendered, and
// (with -compare) matched the baseline; 1 otherwise.
func run(selected []bench.Experiment, cfg bench.Config, opts options, stdout, stderr io.Writer) int {
	runner := bench.Runner{Config: cfg, Filter: opts.filter,
		// Liveness for long concurrent runs: the timing line lands on
		// stderr the moment an experiment finishes, in completion order;
		// tables still render in input order below.
		Progress: func(rr bench.RunResult) {
			fmt.Fprintf(stderr, "[%s done in %v]\n", rr.Experiment.ID,
				time.Duration(rr.Seconds*float64(time.Second)).Round(time.Millisecond))
		},
	}
	results := runner.Run(selected)

	// When a report streams to stdout ("-"), the rendered tables would
	// corrupt it; keep stdout report-only in that case.
	renderTables := opts.jsonOut != "-" && opts.csvOut != "-"

	failed := 0
	for _, rr := range results {
		if rr.Err != nil {
			fmt.Fprintf(stderr, "benchrunner: %s: %v\n", rr.Experiment.ID, rr.Err)
			failed++
			continue
		}
		if renderTables {
			if opts.markdown {
				if err := renderMarkdown(stdout, rr.Experiment, rr.Result.Table()); err != nil {
					fmt.Fprintf(stderr, "benchrunner: %s: render: %v\n", rr.Experiment.ID, err)
					failed++
				}
			} else {
				fmt.Fprintf(stdout, "paper: %s\n", rr.Experiment.Paper)
				if err := rr.Result.Render(stdout); err != nil {
					fmt.Fprintf(stderr, "benchrunner: %s: render: %v\n", rr.Experiment.ID, err)
					failed++
				}
			}
		}
	}

	rep := runner.Report(results)
	if opts.jsonOut != "" {
		if err := report.WriteFile(opts.jsonOut, stdout, rep.Encode); err != nil {
			fmt.Fprintf(stderr, "benchrunner: -json: %v\n", err)
			failed++
		}
	}
	if opts.csvOut != "" {
		if err := report.WriteFile(opts.csvOut, stdout, func(w io.Writer) error {
			return writeCSV(w, rep)
		}); err != nil {
			fmt.Fprintf(stderr, "benchrunner: -csv: %v\n", err)
			failed++
		}
	}
	if opts.compare != "" {
		n, err := compareBaseline(opts.compare, rep, opts, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "benchrunner: -compare: %v\n", err)
			failed++
		} else if n > 0 {
			failed++
		}
	}

	if failed > 0 {
		return 1
	}
	return 0
}

// writeCSV flattens the report's cells — already filtered by the Runner,
// so -filter applies to CSV exactly as it does to JSON — under one header.
func writeCSV(w io.Writer, rep *report.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(bench.CSVHeader); err != nil {
		return err
	}
	for _, e := range rep.Experiments {
		if err := bench.CellsCSV(cw, e.ID, e.Cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// compareBaseline diffs the fresh report against the baseline file and
// reports every regression; it returns how many were found. A -run subset
// or -filter scopes the baseline first, so partial runs only gate the
// experiments and cells they actually produced; a full unfiltered run
// compares against the whole baseline so vanished experiments still flag.
func compareBaseline(path string, cur *report.Report, opts options, stderr io.Writer) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	base, err := report.Decode(f)
	if err != nil {
		return 0, err
	}
	if opts.subset != nil || opts.filter != nil {
		base = base.Scoped(opts.subset, opts.filter)
	}
	diffs := report.Compare(base, cur, opts.tolerance)
	for _, d := range diffs {
		fmt.Fprintf(stderr, "benchrunner: regression: %s\n", d)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(stderr, "benchrunner: %d regression(s) vs %s\n", len(diffs), path)
	} else {
		fmt.Fprintf(stderr, "benchrunner: no regressions vs %s (%d baseline experiments)\n", path, len(base.Experiments))
	}
	return len(diffs), nil
}

func renderMarkdown(w io.Writer, e bench.Experiment, t *bench.Table) error {
	ew := &errWriter{w: w}
	ew.printf("## %s — %s\n\n", t.ID, t.Title)
	ew.printf("**Paper:** %s\n\n", e.Paper)
	ew.printf("| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	ew.printf("| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		ew.printf("| %s |\n", strings.Join(row, " | "))
	}
	// The ASCII figure used to be silently dropped in markdown mode while
	// plain mode printed it; emit it as a fenced code block so both views
	// carry the same content.
	if t.Figure != "" {
		ew.printf("\n```\n%s```\n", t.Figure)
	}
	ew.printf("\n")
	for _, n := range t.Notes {
		ew.printf("- %s\n", n)
	}
	ew.printf("\n")
	return ew.err
}

// errWriter sticks at the first write error so renderMarkdown can report it
// instead of silently dropping output.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}
