// Command benchrunner regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -run fig5.3,tab5.1
//	benchrunner -all [-scale 2] [-seed 7] [-workers 4]
//	benchrunner -all -markdown > EXPERIMENTS-run.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"graphpart/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		runIDs   = flag.String("run", "", "comma-separated experiment ids to run")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "partitioner seed")
		workers  = flag.Int("workers", 0, "worker goroutines for partitioning ingress and engine supersteps (0 = all cores)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	switch {
	case *all:
		selected = bench.All()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Workers = *workers

	os.Exit(run(selected, cfg, *markdown, os.Stdout, os.Stderr))
}

// run executes the selected experiments and returns the process exit code:
// 0 when every experiment ran and rendered, 1 when any errored — in both
// plain and markdown modes.
func run(selected []bench.Experiment, cfg bench.Config, markdown bool, stdout, stderr io.Writer) int {
	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "benchrunner: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if markdown {
			if err := renderMarkdown(stdout, e, table); err != nil {
				fmt.Fprintf(stderr, "benchrunner: %s: render: %v\n", e.ID, err)
				failed++
			}
		} else {
			fmt.Fprintf(stdout, "paper: %s\n", e.Paper)
			if err := table.Render(stdout); err != nil {
				fmt.Fprintf(stderr, "benchrunner: %s: render: %v\n", e.ID, err)
				failed++
			}
		}
		fmt.Fprintf(stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func renderMarkdown(w io.Writer, e bench.Experiment, t *bench.Table) error {
	ew := &errWriter{w: w}
	ew.printf("## %s — %s\n\n", t.ID, t.Title)
	ew.printf("**Paper:** %s\n\n", e.Paper)
	ew.printf("| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	ew.printf("| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		ew.printf("| %s |\n", strings.Join(row, " | "))
	}
	ew.printf("\n")
	for _, n := range t.Notes {
		ew.printf("- %s\n", n)
	}
	ew.printf("\n")
	return ew.err
}

// errWriter sticks at the first write error so renderMarkdown can report it
// instead of silently dropping output.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}
