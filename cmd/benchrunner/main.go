// Command benchrunner regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -run fig5.3,tab5.1
//	benchrunner -all [-scale 2] [-seed 7]
//	benchrunner -all -markdown > EXPERIMENTS-run.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphpart/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		runIDs   = flag.String("run", "", "comma-separated experiment ids to run")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "partitioner seed")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	switch {
	case *all:
		selected = bench.All()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *markdown {
			renderMarkdown(e, table)
		} else {
			fmt.Printf("paper: %s\n", e.Paper)
			if err := table.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %s: render: %v\n", e.ID, err)
				failed++
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func renderMarkdown(e bench.Experiment, t *bench.Table) {
	fmt.Printf("## %s — %s\n\n", t.ID, t.Title)
	fmt.Printf("**Paper:** %s\n\n", e.Paper)
	fmt.Printf("| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Printf("| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Printf("| %s |\n", strings.Join(row, " | "))
	}
	fmt.Println()
	for _, n := range t.Notes {
		fmt.Printf("- %s\n", n)
	}
	fmt.Println()
}
