package main

import (
	"strings"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/partition"
)

func TestRunChurnRendersWindowsAndSummary(t *testing.T) {
	g := gen.PrefAttach("pa", 1500, 4, 3)
	var sb strings.Builder
	err := runChurn(&sb, g, partition.MustNew("HDRF", partition.Options{Loaders: 1}), churnOptions{
		Parts: 8, Seed: 1, Windows: 4, DelFrac: 0.2, Rebalance: 1.3, Hot: 8, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"window 0:", "window 3:", "replication factor:", "edge balance:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "window 4:") {
		t.Errorf("more windows than requested:\n%s", out)
	}
}

func TestRunChurnDeterministic(t *testing.T) {
	g := gen.RoadNet("road", 20, 20, 2)
	render := func() string {
		var sb strings.Builder
		if err := runChurn(&sb, g, partition.MustNew("2D", partition.Options{}), churnOptions{
			Parts: 9, Seed: 5, Windows: 3, DelFrac: 0.3, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("churn replay not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestRunChurnMultiPassRepartitions(t *testing.T) {
	g := gen.PrefAttach("pa", 800, 3, 1)
	var sb strings.Builder
	err := runChurn(&sb, g, partition.MustNew("Hybrid", partition.Options{HybridThreshold: 30}), churnOptions{
		Parts: 8, Seed: 1, Windows: 2, DelFrac: 0.1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(repartitioned)") {
		t.Errorf("multi-pass churn should note per-window repartitioning:\n%s", sb.String())
	}
}
