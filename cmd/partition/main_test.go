package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/partition"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListStrategiesGolden pins the -strategies listing byte-for-byte: all
// 16 registered strategies must appear with the capability class derived
// from their declared ingress capability. A new strategy, a renamed one, or
// a capability change all surface here as a golden diff (refresh with
// `go test ./cmd/partition -run ListStrategies -update`).
func TestListStrategiesGolden(t *testing.T) {
	var sb strings.Builder
	listStrategies(&sb, 9, 30) // the CLI's default -parts and -hybrid-threshold
	got := sb.String()

	for _, name := range partition.AllNames() {
		if !strings.Contains(got, name+"  ") {
			t.Errorf("listing missing strategy %q", name)
		}
	}
	if n := strings.Count(got, "\n"); n != len(partition.AllNames())+1 {
		t.Errorf("listing has %d lines, want header + %d strategies", n, len(partition.AllNames()))
	}

	golden := filepath.Join("testdata", "strategies.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-strategies output drifted from golden (run with -update to refresh):\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunChurnRendersWindowsAndSummary(t *testing.T) {
	g := gen.PrefAttach("pa", 1500, 4, 3)
	var sb strings.Builder
	err := runChurn(&sb, g, partition.MustNew("HDRF", partition.Options{Loaders: 1}), churnOptions{
		Parts: 8, Seed: 1, Windows: 4, DelFrac: 0.2, Rebalance: 1.3, Hot: 8, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"window 0:", "window 3:", "replication factor:", "edge balance:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "window 4:") {
		t.Errorf("more windows than requested:\n%s", out)
	}
}

func TestRunChurnDeterministic(t *testing.T) {
	g := gen.RoadNet("road", 20, 20, 2)
	render := func() string {
		var sb strings.Builder
		if err := runChurn(&sb, g, partition.MustNew("2D", partition.Options{}), churnOptions{
			Parts: 9, Seed: 5, Windows: 3, DelFrac: 0.3, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("churn replay not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestRunChurnMultiPassRepartitions(t *testing.T) {
	g := gen.PrefAttach("pa", 800, 3, 1)
	var sb strings.Builder
	err := runChurn(&sb, g, partition.MustNew("Hybrid", partition.Options{HybridThreshold: 30}), churnOptions{
		Parts: 8, Seed: 1, Windows: 2, DelFrac: 0.1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(repartitioned)") {
		t.Errorf("multi-pass churn should note per-window repartitioning:\n%s", sb.String())
	}
}
