// Command partition applies a partitioning strategy to an edge-list file (or
// a named built-in dataset) and reports the paper's quality metrics:
// replication factor, edge balance, per-partition loads, and simulated
// ingress time.
//
// Usage:
//
//	partition -input graph.txt -strategy HDRF -parts 16
//	partition -dataset uk-web -strategy Grid -parts 25 -verbose
//	partition -strategies            # list strategy names
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)
	var (
		input     = flag.String("input", "", "edge-list file (one 'src dst' pair per line)")
		dataset   = flag.String("dataset", "", "built-in dataset name instead of -input")
		scale     = flag.Int("scale", 1, "dataset scale factor (with -dataset)")
		strategy  = flag.String("strategy", "HDRF", "partitioning strategy")
		parts     = flag.Int("parts", 9, "number of partitions")
		machines  = flag.Int("machines", 0, "cluster machines for the ingress model (default: parts)")
		seed      = flag.Uint64("seed", 1, "hash seed")
		threshold = flag.Int("hybrid-threshold", 30, "Hybrid/H-Ginger high-degree cutoff")
		verbose   = flag.Bool("verbose", false, "print per-partition loads")
		list      = flag.Bool("strategies", false, "list available strategies and exit")
		recommend = flag.Bool("recommend", false, "also print the decision-tree recommendation for this graph")
	)
	flag.Parse()

	if *list {
		for _, n := range partition.AllNames() {
			fmt.Println(n)
		}
		return
	}

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *scale)
	case *input != "":
		g, err = graph.LoadEdgeList(*input)
	default:
		log.Fatal("partition: need -input FILE or -dataset NAME (see -h)")
	}
	if err != nil {
		log.Fatal(err)
	}

	s, err := partition.New(*strategy, partition.Options{HybridThreshold: *threshold})
	if err != nil {
		log.Fatal(err)
	}
	a, err := partition.Partition(g, s, *parts, *seed)
	if err != nil {
		log.Fatal(err)
	}

	m := *machines
	if m <= 0 {
		m = *parts
	}
	cc := cluster.Config{Machines: m, PartsPerMachine: (*parts + m - 1) / m}
	ing := cluster.Ingress(a, s, cc, cluster.DefaultModel())

	cls := graph.Classify(g)
	fmt.Printf("graph:               %v (%s)\n", g, cls.Class)
	fmt.Printf("strategy:            %s (%d pass(es))\n", s.Name(), s.Passes())
	fmt.Printf("partitions:          %d\n", a.NumParts)
	fmt.Printf("replication factor:  %.4f\n", a.ReplicationFactor())
	fmt.Printf("total replicas:      %d\n", a.TotalReplicas())
	fmt.Printf("edge balance:        %.4f (max/mean)\n", a.EdgeBalance())
	fmt.Printf("ingress (simulated): %.4fs on %d machines\n", ing.Seconds, m)

	if *verbose {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\npartition\tedges\treplicas")
		for p := 0; p < a.NumParts; p++ {
			fmt.Fprintf(w, "%d\t%d\t%d\n", p, a.EdgeCount[p], a.ReplicasOnPart(p))
		}
		w.Flush()
	}

	if *recommend {
		for _, sys := range []partition.System{partition.PowerGraph, partition.PowerLyra, partition.GraphXAll} {
			rec, err := decision.Recommend(sys, decision.Workload{
				Class: cls.Class, Machines: m, ComputeIngressRatio: 2, NaturalApp: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("recommended for %-14s %s\n", sys+":", rec)
		}
	}
}
