// Command partition applies a partitioning strategy to a graph file (text
// edge list or binary .csrg, sniffed automatically) or a named registered
// dataset, and reports the paper's quality metrics: replication factor, edge
// balance, per-partition loads, and simulated ingress time.
//
// With -stream and a stateless (hash-family) strategy, the input file is
// consumed in batches and never materialized: memory stays O(|V|·P/8) bits
// plus one batch, no matter how large the edge list is. Streaming accepts
// both formats; the binary one skips text parsing entirely.
//
// With -churn N, the edge list is replayed as N deterministic timestamped
// add/delete windows through a long-lived mutable partition state instead
// of one-shot ingress; -rebalance sets the edge-balance threshold above
// which edges migrate off overloaded partitions, and -hot K replicates the
// K highest-degree vertices everywhere.
//
// Usage:
//
//	partition -input graph.txt -strategy HDRF -parts 16
//	partition -input graph.csrg -strategy HDRF -parts 16
//	partition -input huge.csrg -strategy Grid -parts 25 -stream
//	partition -dataset uk-web -strategy Grid -parts 25 -verbose
//	partition -dataset uk-web -strategy HDRF -parts 16 -churn 6 -rebalance 1.2 -hot 64
//	partition -strategies            # list strategies + capability class
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func main() {
	log.SetFlags(0)
	var (
		input     = flag.String("input", "", "graph file: text edge list or binary .csrg (format sniffed)")
		dataset   = flag.String("dataset", "", "built-in dataset name instead of -input")
		scale     = flag.Int("scale", 1, "dataset scale factor (with -dataset)")
		strategy  = flag.String("strategy", "HDRF", "partitioning strategy")
		parts     = flag.Int("parts", 9, "number of partitions")
		machines  = flag.Int("machines", 0, "cluster machines for the ingress model (default: parts)")
		seed      = flag.Uint64("seed", 1, "hash seed")
		threshold = flag.Int("hybrid-threshold", 30, "Hybrid/H-Ginger high-degree cutoff")
		memBudget = flag.Float64("mem-budget", 0, "HEP in-memory edge budget as a fraction of |E| (0 = strategy default)")
		workers   = flag.Int("workers", 0, "parallel ingress workers for the materialized path (0 = GOMAXPROCS; -stream is single-pass sequential)")
		stream    = flag.Bool("stream", false, "stream -input in batches without materializing the edge list (stateless strategies only)")
		batch     = flag.Int("batch", 0, "edges per stream batch (0 = default)")
		churn     = flag.Int("churn", 0, "replay the graph as N timestamped add/delete windows through a mutable partition state instead of one-shot ingress")
		churnDel  = flag.Float64("churn-del", 0.2, "per-window deletion fraction of that window's additions (with -churn)")
		rebalance = flag.Float64("rebalance", 0, "edge-balance threshold: migrate edges whenever max/mean drifts above it (with -churn; 0 = off)")
		hot       = flag.Int("hot", 0, "replicate the top-K live-degree vertices on every partition (with -churn; 0 = off)")
		verbose   = flag.Bool("verbose", false, "print per-partition loads")
		list      = flag.Bool("strategies", false, "list available strategies with their ingress capability class and exit")
		recommend = flag.Bool("recommend", false, "also print the decision-tree recommendation for this graph")
		jsonOut   = flag.String("json", "", "also write the quality metrics as typed JSON cells (benchrunner's Cell schema) to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		listStrategies(os.Stdout, *parts, *threshold)
		return
	}

	s, err := partition.New(*strategy, partition.Options{HybridThreshold: *threshold, MemBudget: *memBudget})
	if err != nil {
		log.Fatal(err)
	}

	if *stream {
		streamPartition(s, *input, *parts, *seed, *batch, *verbose, *jsonOut)
		return
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *scale)
	case *input != "":
		g, err = graph.LoadFile(*input)
	default:
		log.Fatal("partition: need -input FILE or -dataset NAME (see -h)")
	}
	if err != nil {
		log.Fatal(err)
	}

	if *churn > 0 {
		if err := runChurn(os.Stdout, g, s, churnOptions{
			Parts:     *parts,
			Seed:      *seed,
			Windows:   *churn,
			DelFrac:   *churnDel,
			Rebalance: *rebalance,
			Hot:       *hot,
			Workers:   *workers,
			Verbose:   *verbose,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	a, err := partition.ParallelPartition(g, s, *parts, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}

	m := *machines
	if m <= 0 {
		m = *parts
	}
	cc := cluster.Config{Machines: m, PartsPerMachine: (*parts + m - 1) / m}
	ing := cluster.Ingress(a, s, cc, cluster.DefaultModel())

	cls := graph.Classify(g)
	// With -json -, stdout carries the JSON document alone; the
	// human-readable block moves to stderr rather than disappearing.
	hw := humanWriter(*jsonOut)
	fmt.Fprintf(hw, "graph:               %v (%s)\n", g, cls.Class)
	printMetrics(hw, s, *parts, a, a.EdgeCount, *verbose,
		fmt.Sprintf("ingress (simulated): %.4fs on %d machines", ing.Seconds, m))

	if *jsonOut != "" {
		name := *dataset
		if name == "" {
			name = *input
		}
		cells := qualityCells(name, s.Name(), *parts, a)
		cells = append(cells, report.Cell{Dims: cellDims(name, s.Name(), *parts),
			Metric: "ingress-seconds", Value: ing.Seconds, Unit: "s"})
		if err := writeCells(*jsonOut, cells); err != nil {
			log.Fatal(err)
		}
	}

	if *recommend {
		for _, sys := range []partition.System{partition.PowerGraph, partition.PowerLyra, partition.GraphXAll} {
			rec, err := decision.Recommend(sys, decision.Workload{
				Class: cls.Class, Machines: m, ComputeIngressRatio: 2, NaturalApp: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(hw, "recommended for %-14s %s\n", sys+":", rec)
		}
	}
}

// streamPartition runs the memory-bounded batch ingress for a stateless
// strategy: the edge list is read once and never held in memory.
func streamPartition(s partition.Strategy, input string, parts int, seed uint64, batch int, verbose bool, jsonOut string) {
	if input == "" {
		log.Fatal("partition: -stream needs -input FILE")
	}
	ss, ok := s.(partition.StatelessStrategy)
	if !ok {
		shape := partition.ShapeOf(s, parts)
		why := shape.MultiPassReason
		if why == "" {
			why = "its loaders keep per-vertex placement state over the whole stream"
		}
		log.Fatalf("partition: %s cannot stream a file in bounded memory: %s", s.Name(), why)
	}
	b, err := partition.NewStreamBuilder(ss, parts, seed)
	if err != nil {
		log.Fatal(err)
	}
	_, _, err = graph.StreamFile(input, batch, func(offset int64, edges []graph.Edge) error {
		return b.Feed(partition.EdgeBatch{Offset: offset, Edges: edges})
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := b.Finish()
	hw := humanWriter(jsonOut)
	fmt.Fprintf(hw, "graph:               %s{|V|=%d |E|=%d} (streamed)\n", input, sum.NumVertices, sum.NumEdges)
	printMetrics(hw, s, parts, sum, sum.EdgeCount, verbose, "")
	if jsonOut != "" {
		if err := writeCells(jsonOut, qualityCells(input, s.Name(), parts, sum)); err != nil {
			log.Fatal(err)
		}
	}
}

// churnOptions configures a -churn replay.
type churnOptions struct {
	Parts     int
	Seed      uint64
	Windows   int
	DelFrac   float64
	Rebalance float64 // edge-balance threshold, 0 = off
	Hot       int     // top-K hot-vertex replication, 0 = off
	Workers   int
	Verbose   bool
}

// runChurn replays the graph's edge list as a deterministic timestamped
// add/delete trace through a long-lived PartitionState, printing per-window
// quality and the final summary — the incremental counterpart of the
// one-shot path below.
func runChurn(out io.Writer, g *graph.Graph, s partition.Strategy, opt churnOptions) error {
	st, err := partition.NewPartitionState(s, opt.Parts, opt.Seed, opt.Workers)
	if err != nil {
		return err
	}
	if opt.Hot > 0 {
		st.SetHotReplication(opt.Hot)
	}
	rcfg := partition.RebalanceConfig{MaxBalance: opt.Rebalance}
	fmt.Fprintf(out, "graph:               %v (churn: %d windows, del-frac %.2f)\n", g, opt.Windows, opt.DelFrac)
	moved := 0
	_, err = gen.ChurnTrace(g.Edges, gen.ChurnConfig{Windows: opt.Windows, DelFrac: opt.DelFrac, Seed: opt.Seed},
		func(w gen.ChurnWindow) error {
			stats, err := st.ApplyBatch(gen.Edges(w.Adds), gen.Edges(w.Dels))
			if err != nil {
				return err
			}
			line := fmt.Sprintf("window %d:            +%d -%d | edges=%d rf=%.4f balance=%.4f",
				w.Index, stats.Added, stats.Deleted, st.NumEdges(), st.ReplicationFactor(), st.EdgeBalance())
			if stats.Rebuilt {
				line += " (repartitioned)"
			}
			if opt.Rebalance > 1 && st.NeedsRebalance(rcfg) {
				rs := st.Rebalance(rcfg)
				moved += rs.Moved
				line += fmt.Sprintf(" rebalanced(moved=%d balance=%.4f)", rs.Moved, rs.BalanceAfter)
			}
			fmt.Fprintln(out, line)
			return nil
		})
	if err != nil {
		return err
	}
	if moved > 0 {
		fmt.Fprintf(out, "migrated:            %d edges\n", moved)
	}
	printMetrics(out, s, opt.Parts, st, st.EdgeCount(), opt.Verbose, "")
	return nil
}

// cellDims are the dimensions every cmd/partition cell carries.
func cellDims(dataset, strategy string, parts int) report.Dims {
	return report.Dims{Dataset: dataset, Strategy: strategy, Parts: parts}
}

// qualityCells emits the paper's partition-quality metrics in the same
// typed Cell schema benchrunner reports use, so single-run outputs diff
// and aggregate alongside full experiment sweeps.
func qualityCells(dataset, strategy string, parts int, sum partitionSummary) []report.Cell {
	d := cellDims(dataset, strategy, parts)
	return []report.Cell{
		{Dims: d, Metric: "replication-factor", Value: sum.ReplicationFactor(), Unit: "ratio"},
		{Dims: d, Metric: "total-replicas", Value: float64(sum.TotalReplicas()), Unit: "replicas"},
		{Dims: d, Metric: "edge-balance", Value: sum.EdgeBalance(), Unit: "max/mean"},
	}
}

// writeCells writes the cells as indented JSON to path ('-' = stdout).
func writeCells(path string, cells []report.Cell) error {
	return report.WriteFile(path, os.Stdout, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	})
}

// partitionSummary is the metric surface shared by the materialized
// Assignment and the streamed StreamSummary.
type partitionSummary interface {
	ReplicationFactor() float64
	TotalReplicas() int64
	EdgeBalance() float64
	ReplicasOnPart(p int) int64
}

// humanWriter picks the stream for the human-readable block: stderr when
// the JSON document owns stdout ("-"), stdout otherwise.
func humanWriter(jsonOut string) io.Writer {
	if jsonOut == "-" {
		return os.Stderr
	}
	return os.Stdout
}

// printMetrics renders the common quality-metric block (plus the optional
// extra line and the -verbose per-partition table) for either ingress path.
func printMetrics(out io.Writer, s partition.Strategy, parts int, sum partitionSummary, edgeCount []int64, verbose bool, extra string) {
	fmt.Fprintf(out, "strategy:            %s (%s)\n", s.Name(), shapeString(s, parts))
	fmt.Fprintf(out, "partitions:          %d\n", parts)
	fmt.Fprintf(out, "replication factor:  %.4f\n", sum.ReplicationFactor())
	fmt.Fprintf(out, "total replicas:      %d\n", sum.TotalReplicas())
	fmt.Fprintf(out, "edge balance:        %.4f (max/mean)\n", sum.EdgeBalance())
	if extra != "" {
		fmt.Fprintln(out, extra)
	}
	if verbose {
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "\npartition\tedges\treplicas")
		for p := 0; p < parts; p++ {
			fmt.Fprintf(w, "%d\t%d\t%d\n", p, edgeCount[p], sum.ReplicasOnPart(p))
		}
		w.Flush()
	}
}

// shapeString renders a strategy's capability-derived ingress shape.
func shapeString(s partition.Strategy, parts int) string {
	shape := partition.ShapeOf(s, parts)
	switch {
	case shape.MultiPassReason != "":
		return fmt.Sprintf("%d passes: %s", shape.Passes, shape.MultiPassReason)
	case shape.Loaders > 0:
		return fmt.Sprintf("1 streaming pass, %d independent loaders", shape.Loaders)
	default:
		return "1 streaming pass, stateless"
	}
}

// capabilityClass folds a strategy's IngressShape into the three-way class
// the ingress pipeline dispatches on.
func capabilityClass(s partition.Strategy, parts int) string {
	shape := partition.ShapeOf(s, parts)
	switch {
	case shape.MultiPassReason != "":
		return fmt.Sprintf("multi-pass (%d passes)", shape.Passes)
	case shape.Loaders > 0:
		return "streaming"
	default:
		return "stateless"
	}
}

// listStrategies prints every registered strategy with its capability class,
// derived from partition.ShapeOf — never from the name.
func listStrategies(out io.Writer, parts, threshold int) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tclass\tingress shape")
	for _, n := range partition.AllNames() {
		s := partition.MustNew(n, partition.Options{HybridThreshold: threshold})
		fmt.Fprintf(w, "%s\t%s\t%s\n", n, capabilityClass(s, parts), shapeString(s, parts))
	}
	w.Flush()
}
