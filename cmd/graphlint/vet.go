package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"graphpart/internal/analysis"
)

// vetConfig is the unit-of-work description `go vet -vettool` hands the
// tool: one package's files plus export data for everything it imports.
// The fields mirror golang.org/x/tools/go/analysis/unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet unit: parse the cfg, type-check the package
// against the export data vet supplies, run the suite, report findings on
// stderr in the file:line format vet relays, and write the (empty) facts
// file vet requires to exist.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "graphlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		// graphlint exports no facts, but vet demands the file.
		if err := os.WriteFile(cfg.VetxOutput, []byte("graphlint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "graphlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Vet resolves import paths through ImportMap before looking up export
	// data; chase the indirection once here.
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for from, to := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[to]; ok {
			exports[from] = file
		}
	}
	// Test variants arrive as "path [path.test]"; analyzers only care
	// about the package name, but keep the path tidy.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i > 0 {
		importPath = importPath[:i]
	}
	pkg, err := analysis.CheckVetUnit(importPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
