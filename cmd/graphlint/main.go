// Graphlint is the repo's multichecker: it runs the internal/analysis suite
// (detrange, nondet, registry, unsafeguard) over Go packages and exits
// non-zero on any finding. The suite proves the determinism, capability and
// hot-path invariants the regression gates depend on; docs/ANALYSIS.md
// documents what each analyzer checks and how to waive a finding.
//
// Usage:
//
//	go run ./cmd/graphlint ./...          # whole tree
//	go run ./cmd/graphlint -run detrange ./internal/advisor
//	go vet -vettool=$(which graphlint) ./...
//
// The second form runs a subset of analyzers; the third speaks the go vet
// unit-checker protocol, so graphlint composes with vet's package graph and
// caching.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphpart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet protocol probes: -V=full identifies the tool for the build
	// cache; -flags declares no extra analyzer flags; a single *.cfg
	// argument is a vet unit of work.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Println("graphlint version 1 (graphpart analyzer suite)")
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0])
	}

	fs := flag.NewFlagSet("graphlint", flag.ExitOnError)
	var (
		runFilter = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		list      = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: graphlint [-run names] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runFilter != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "graphlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "graphlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
