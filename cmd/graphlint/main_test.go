package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles graphlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "graphlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolProtocol drives graphlint through go vet's -vettool protocol:
// the -V=full identity probe, then a real vet run over two clean packages
// (including their test variants, which vet type-checks as separate units).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	if len(f) < 3 || f[1] != "version" {
		t.Fatalf("-V=full printed %q; vet's probe requires 'name version ...'", strings.TrimSpace(string(out)))
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/report/", "./internal/metrics/")
	vet.Dir = "../.."
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool over clean packages: %v\n%s", err, stderr.String())
	}
}

// TestVetToolFlagsViolation proves findings propagate through the vet
// protocol: a throwaway module containing a determinism-critical package
// with a raw map range must fail `go vet -vettool` with a detrange finding.
func TestVetToolFlagsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmplint\n\ngo 1.22\n")
	write("metrics.go", `package metrics

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`)
	vet := exec.Command("go", "vet", "-vettool="+bin, ".")
	vet.Dir = dir
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err == nil {
		t.Fatalf("go vet -vettool accepted a raw map range in a determinism-critical package")
	}
	if !strings.Contains(stderr.String(), "detrange") {
		t.Fatalf("vet failed but without a detrange finding:\n%s", stderr.String())
	}
}

// TestListAnalyzers pins the standalone -list mode.
func TestListAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"detrange", "nondet", "registry", "unsafeguard"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
