// Command gengraph produces graph files: a named registered dataset (Table
// 4.2's stand-ins plus anything registered at runtime) or a raw generator
// with custom parameters, written as a plain-text edge list or — when the
// output path ends in .csrg — the compact binary CSR format that loads
// I/O-bound instead of parse-bound. It also converts between the formats
// without materializing the graph, and prints dataset manifests.
//
// Usage:
//
//	gengraph -dataset uk-web -scale 2 -o ukweb.csrg
//	gengraph -dataset twitter -manifest            # dataset manifest as JSON
//	gengraph -kind road -n 10000 -o road.txt
//	gengraph -kind road -n 100000000 -stream -o road.csrg   # O(batch) memory
//	gengraph -kind prefattach -n 50000 -m 10 -o social.txt
//	gengraph -kind powerlaw -n 50000 -alpha 2.0 -o pl.txt
//	gengraph -kind web -n 50000 -alpha 1.8 -o web.txt
//	gengraph -convert road.txt -o road.csrg        # streaming, either way
//	gengraph -convert g.csrg -format v1 -o g1.csrg # re-encode v2 → v1
//
// Binary outputs default to .csrg format v2 (delta+varint compressed edge
// blocks); -format v1 selects the fixed-width layout, whose loads can be
// memory-mapped without copying. Both convert to each other and to text
// losslessly — edge order is preserved exactly.
//
// With -stream, generators that can emit edges incrementally (road) write
// batches straight to the output without ever materializing the edge list;
// -convert streams any input format to any output format the same way.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"graphpart/internal/datasets"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

func main() {
	log.SetFlags(0)
	var (
		dataset  = flag.String("dataset", "", "registered dataset name ("+fmt.Sprint(datasets.Names())+")")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		kind     = flag.String("kind", "", "generator: road | prefattach | powerlaw | web")
		n        = flag.Int("n", 10000, "number of vertices")
		m        = flag.Int("m", 8, "edges per vertex (prefattach)")
		alpha    = flag.Float64("alpha", 2.0, "power-law exponent (powerlaw/web)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file; a .csrg suffix selects the binary format (default stdout, text)")
		stream   = flag.Bool("stream", false, "stream edge batches to the output without materializing the graph (road only)")
		batch    = flag.Int("batch", 0, "edges per stream batch (0 = default)")
		convert  = flag.String("convert", "", "convert this graph file (text or .csrg, sniffed) to -o's format, streaming")
		format   = flag.String("format", "v2", "binary .csrg version for outputs: v1 (fixed-width, mmap-able) or v2 (compressed blocks)")
		manifest = flag.Bool("manifest", false, "print the dataset's manifest (sizes, degree-skew stats, provenance) as JSON and exit")
	)
	flag.Parse()
	version := formatVersion(*format)

	switch {
	case *manifest:
		if *dataset == "" {
			log.Fatal("gengraph: -manifest needs -dataset NAME")
		}
		mf, err := datasets.BuildManifest(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := mf.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *convert != "":
		if *out == "" {
			log.Fatal("gengraph: -convert needs -o FILE")
		}
		if err := convertFile(*convert, *out, *batch, version); err != nil {
			log.Fatal(err)
		}
	case *stream:
		if *dataset != "" {
			log.Fatal("gengraph: -stream does not support -dataset (datasets materialize); use -kind road")
		}
		if *kind != "road" {
			log.Fatalf("gengraph: -stream supports -kind road (got %q); the degree-sequence generators need the whole stub multiset", *kind)
		}
		if err := streamRoad(*n, *seed, *batch, *out, version); err != nil {
			log.Fatal(err)
		}
	default:
		materialize(*dataset, *scale, *kind, *n, *m, *alpha, *seed, *out, version)
	}
}

// formatVersion maps the -format flag to a .csrg writer version.
func formatVersion(s string) int {
	switch s {
	case "v1":
		return graph.CSRVersion1
	case "v2":
		return graph.CSRVersion2
	default:
		log.Fatalf("gengraph: unknown -format %q (want v1 or v2)", s)
		return 0
	}
}

// materialize builds the requested graph in memory and writes it in the
// format the output path selects.
func materialize(dataset string, scale int, kind string, n, m int, alpha float64, seed uint64, out string, version int) {
	var g *graph.Graph
	var err error
	switch {
	case dataset != "":
		g, err = datasets.Load(dataset, scale)
		if err != nil {
			log.Fatal(err)
		}
	case kind != "":
		switch kind {
		case "road":
			side := latticeSide(n)
			g = gen.RoadNet("road", side, side, seed)
		case "prefattach":
			g = gen.PrefAttach("prefattach", n, m, seed)
		case "powerlaw":
			g = gen.PowerLaw("powerlaw", gen.PowerLawConfig{
				N: n, Alpha: alpha, MinD: 1, MaxD: n / 10, Seed: seed,
			})
		case "web":
			g = gen.WebGraph("web", gen.WebGraphConfig{
				N: n, Alpha: alpha, MaxOutD: n / 10, Seed: seed,
			})
		default:
			log.Fatalf("gengraph: unknown -kind %q", kind)
		}
	default:
		log.Fatal("gengraph: need -dataset NAME, -kind KIND, or -convert FILE (see -h)")
	}

	if graph.IsCSRPath(out) {
		if err := graph.SaveCSRVersion(g, out, version); err != nil {
			log.Fatal(err)
		}
	} else {
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(g, w); err != nil {
			log.Fatal(err)
		}
	}
	cls := graph.Classify(g)
	fmt.Fprintf(os.Stderr, "wrote %v (%s, max degree %d)\n", g, cls.Class, cls.MaxDegree)
}

// streamRoad emits a road lattice in O(batch) memory, to a text edge list or
// (with a .csrg output path) the binary format via the streaming CSR writer.
func streamRoad(n int, seed uint64, batch int, out string, version int) error {
	side := latticeSide(n)
	var edges int64
	if graph.IsCSRPath(out) {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		cw, err := graph.NewCSRWriterVersion(f, fmt.Sprintf("road-%dx%d", side, side), version)
		if err != nil {
			return err
		}
		if err := gen.StreamRoadNet(side, side, seed, batch, func(b []graph.Edge) error {
			edges += int64(len(b))
			return cw.Append(b)
		}); err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		w := bufio.NewWriter(os.Stdout)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		// Counts are unknown up front when streaming; the header carries
		// only the name (comment lines are ignored by the readers).
		if _, err := fmt.Fprintf(w, "# road (streamed %dx%d lattice)\n", side, side); err != nil {
			return err
		}
		if err := gen.StreamRoadNet(side, side, seed, batch, func(b []graph.Edge) error {
			edges += int64(len(b))
			return graph.WriteEdgeBatch(w, b)
		}); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "streamed road{%dx%d} |E|=%d\n", side, side, edges)
	return nil
}

// convertFile streams src (either format, sniffed) into dst (format chosen
// by extension) without materializing the edge list. The output goes to a
// temp file renamed into place on success, so a failed conversion never
// leaves a partial dst behind — and converting a file onto itself works.
func convertFile(src, dst string, batch, version int) error {
	f, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	defer f.Close()

	var total int64
	if graph.IsCSRPath(dst) {
		cw, err := graph.NewCSRWriterVersion(f, src, version)
		if err != nil {
			return err
		}
		total, _, err = graph.StreamFile(src, batch, func(_ int64, edges []graph.Edge) error {
			return cw.Append(edges)
		})
		if err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
	} else {
		bw := bufio.NewWriter(f)
		if _, err := fmt.Fprintf(bw, "# converted from %s\n", src); err != nil {
			return err
		}
		total, _, err = graph.StreamFile(src, batch, func(_ int64, edges []graph.Edge) error {
			return graph.WriteEdgeBatch(bw, edges)
		})
		if err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	// CreateTemp makes 0600 files; match the permissions os.Create would
	// have used so converted outputs read like any other gengraph output.
	if err := os.Chmod(f.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %s → %s (%d edges)\n", src, dst, total)
	return nil
}

// latticeSide returns the smallest lattice side whose square holds n
// vertices; streamed and materialized road generation must agree on it.
func latticeSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}
