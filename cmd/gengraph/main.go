// Command gengraph writes synthetic graphs as plain-text edge lists: either
// a named stand-in dataset (Table 4.2) or a raw generator with custom
// parameters.
//
// Usage:
//
//	gengraph -dataset uk-web -scale 2 -o ukweb.txt
//	gengraph -kind road -n 10000 -o road.txt
//	gengraph -kind prefattach -n 50000 -m 10 -o social.txt
//	gengraph -kind powerlaw -n 50000 -alpha 2.0 -o pl.txt
//	gengraph -kind web -n 50000 -alpha 1.8 -o web.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphpart/internal/datasets"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

func main() {
	log.SetFlags(0)
	var (
		dataset = flag.String("dataset", "", "built-in dataset name ("+fmt.Sprint(datasets.Names())+")")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		kind    = flag.String("kind", "", "generator: road | prefattach | powerlaw | web")
		n       = flag.Int("n", 10000, "number of vertices")
		m       = flag.Int("m", 8, "edges per vertex (prefattach)")
		alpha   = flag.Float64("alpha", 2.0, "power-law exponent (powerlaw/web)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
	case *kind != "":
		switch *kind {
		case "road":
			side := 1
			for side*side < *n {
				side++
			}
			g = gen.RoadNet("road", side, side, *seed)
		case "prefattach":
			g = gen.PrefAttach("prefattach", *n, *m, *seed)
		case "powerlaw":
			g = gen.PowerLaw("powerlaw", gen.PowerLawConfig{
				N: *n, Alpha: *alpha, MinD: 1, MaxD: *n / 10, Seed: *seed,
			})
		case "web":
			g = gen.WebGraph("web", gen.WebGraphConfig{
				N: *n, Alpha: *alpha, MaxOutD: *n / 10, Seed: *seed,
			})
		default:
			log.Fatalf("gengraph: unknown -kind %q", *kind)
		}
	default:
		log.Fatal("gengraph: need -dataset NAME or -kind KIND (see -h)")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(g, w); err != nil {
		log.Fatal(err)
	}
	cls := graph.Classify(g)
	fmt.Fprintf(os.Stderr, "wrote %v (%s, max degree %d)\n", g, cls.Class, cls.MaxDegree)
}
