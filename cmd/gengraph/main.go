// Command gengraph writes synthetic graphs as plain-text edge lists: either
// a named stand-in dataset (Table 4.2) or a raw generator with custom
// parameters.
//
// Usage:
//
//	gengraph -dataset uk-web -scale 2 -o ukweb.txt
//	gengraph -kind road -n 10000 -o road.txt
//	gengraph -kind road -n 100000000 -stream -o road.txt   # O(batch) memory
//	gengraph -kind prefattach -n 50000 -m 10 -o social.txt
//	gengraph -kind powerlaw -n 50000 -alpha 2.0 -o pl.txt
//	gengraph -kind web -n 50000 -alpha 1.8 -o web.txt
//
// With -stream, generators that can emit edges incrementally (road) write
// batches straight to the output without ever materializing the edge list.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"graphpart/internal/datasets"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

func main() {
	log.SetFlags(0)
	var (
		dataset = flag.String("dataset", "", "built-in dataset name ("+fmt.Sprint(datasets.Names())+")")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		kind    = flag.String("kind", "", "generator: road | prefattach | powerlaw | web")
		n       = flag.Int("n", 10000, "number of vertices")
		m       = flag.Int("m", 8, "edges per vertex (prefattach)")
		alpha   = flag.Float64("alpha", 2.0, "power-law exponent (powerlaw/web)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		stream  = flag.Bool("stream", false, "stream edge batches to the output without materializing the graph (road only)")
		batch   = flag.Int("batch", 0, "edges per stream batch (0 = default)")
	)
	flag.Parse()

	if *stream {
		if *dataset != "" {
			log.Fatal("gengraph: -stream does not support -dataset (datasets materialize); use -kind road")
		}
		if *kind != "road" {
			log.Fatalf("gengraph: -stream supports -kind road (got %q); the degree-sequence generators need the whole stub multiset", *kind)
		}
		side := latticeSide(*n)
		w := bufio.NewWriter(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		// Counts are unknown up front when streaming; the header carries
		// only the name (comment lines are ignored by the readers).
		if _, err := fmt.Fprintf(w, "# road (streamed %dx%d lattice)\n", side, side); err != nil {
			log.Fatal(err)
		}
		var edges int64
		err := gen.StreamRoadNet(side, side, *seed, *batch, func(b []graph.Edge) error {
			edges += int64(len(b))
			return graph.WriteEdgeBatch(w, b)
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "streamed road{%dx%d} |E|=%d\n", side, side, edges)
		return
	}

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
	case *kind != "":
		switch *kind {
		case "road":
			side := latticeSide(*n)
			g = gen.RoadNet("road", side, side, *seed)
		case "prefattach":
			g = gen.PrefAttach("prefattach", *n, *m, *seed)
		case "powerlaw":
			g = gen.PowerLaw("powerlaw", gen.PowerLawConfig{
				N: *n, Alpha: *alpha, MinD: 1, MaxD: *n / 10, Seed: *seed,
			})
		case "web":
			g = gen.WebGraph("web", gen.WebGraphConfig{
				N: *n, Alpha: *alpha, MaxOutD: *n / 10, Seed: *seed,
			})
		default:
			log.Fatalf("gengraph: unknown -kind %q", *kind)
		}
	default:
		log.Fatal("gengraph: need -dataset NAME or -kind KIND (see -h)")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(g, w); err != nil {
		log.Fatal(err)
	}
	cls := graph.Classify(g)
	fmt.Fprintf(os.Stderr, "wrote %v (%s, max degree %d)\n", g, cls.Class, cls.MaxDegree)
}

// latticeSide returns the smallest lattice side whose square holds n
// vertices; streamed and materialized road generation must agree on it.
func latticeSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}
