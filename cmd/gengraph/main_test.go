package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"graphpart/internal/datasets"
	"graphpart/internal/graph"
)

// TestConvertRoundTripsAllDatasets drives convertFile through every edge of
// the format triangle — text ↔ v1 ↔ v2 — for every registered dataset, and
// requires each hop to reproduce the original edge list exactly (order
// included: partitioners assign by edge index, so order is identity).
func TestConvertRoundTripsAllDatasets(t *testing.T) {
	names := datasets.Names()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		g := datasets.MustLoad(name, 1)
		dir := t.TempDir()
		text := filepath.Join(dir, "g.txt")
		if err := graph.SaveEdgeList(g, text); err != nil {
			t.Fatal(err)
		}

		paths := map[string]string{"text": text}
		hops := []struct {
			label   string
			src     string
			dst     string
			version int
		}{
			{"v1", "text", "from-text.v1.csrg", graph.CSRVersion1},
			{"v2", "text", "from-text.v2.csrg", graph.CSRVersion2},
			{"v2→v1", "v2", "transcoded.v1.csrg", graph.CSRVersion1},
			{"v1→v2", "v1", "transcoded.v2.csrg", graph.CSRVersion2},
			{"v2→text", "v2", "back.txt", 0},
			{"v1→text", "v1", "back2.txt", 0},
		}
		for _, hop := range hops {
			dst := filepath.Join(dir, hop.dst)
			version := hop.version
			if version == 0 {
				version = graph.CSRVersion2 // unused for text outputs
			}
			if err := convertFile(paths[hop.src], dst, 1000, version); err != nil {
				t.Fatalf("%s/%s: %v", name, hop.label, err)
			}
			paths[hop.label] = dst

			got, err := graph.LoadFile(dst)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, hop.label, err)
			}
			if got.NumVertices() != g.NumVertices() {
				t.Fatalf("%s/%s: %d vertices, want %d", name, hop.label, got.NumVertices(), g.NumVertices())
			}
			if !reflect.DeepEqual(got.Edges, g.Edges) {
				t.Fatalf("%s/%s: edge list differs after conversion", name, hop.label)
			}
			if graph.IsCSRPath(dst) {
				v, ok, err := graph.CSRFileVersion(dst)
				if err != nil || !ok || v != version {
					t.Fatalf("%s/%s: wrote version (%d, %v, %v), want %d", name, hop.label, v, ok, err, version)
				}
			}
		}
	}
}

// TestFormatVersionFlag pins the flag mapping.
func TestFormatVersionFlag(t *testing.T) {
	if formatVersion("v1") != graph.CSRVersion1 || formatVersion("v2") != graph.CSRVersion2 {
		t.Error("formatVersion maps v1/v2 incorrectly")
	}
}
