// Command partitiond is the resident partition-as-a-service daemon: it
// keeps registered datasets loaded through the on-disk .csrg cache and
// serves assignment lookups, async partition jobs, churn batches, advisor
// recommendations, and request metrics over HTTP/JSON.
//
// Usage:
//
//	partitiond -addr :8080
//	partitiond -addr :8080 -scale 2 -parts 32 -preload road-ca,livejournal
//	partitiond -addr :8080 -report BENCH_seed1.json   # warm advisor model
//
// The API is documented in docs/SERVICE.md. SIGINT/SIGTERM starts a
// graceful drain: inflight partition jobs complete (bounded by -drain),
// queued jobs are rejected, and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphpart/internal/advisor"
	"graphpart/internal/datasets"
	"graphpart/internal/report"
	"graphpart/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "partitiond:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. The bound address is sent on ready (if
// non-nil) once the listener accepts connections; closing quit triggers
// the same graceful drain a SIGTERM does.
func run(args []string, stdout io.Writer, ready chan<- string, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("partitiond", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr       = fs.String("addr", "127.0.0.1:7474", "listen address")
		scale      = fs.Int("scale", 1, "dataset scale factor")
		seed       = fs.Uint64("seed", 1, "partitioner hash seed")
		hybridThr  = fs.Int("hybrid-threshold", 0, "Hybrid/H-Ginger high-degree cutoff (0 = strategy default)")
		workers    = fs.Int("workers", 0, "partitioning/ingress goroutines (0 = all cores)")
		parts      = fs.Int("parts", 16, "default partition count when a request names none")
		queue      = fs.Int("queue", 16, "max queued partition jobs before 429")
		jobWorkers = fs.Int("job-workers", 2, "concurrent partition job executors")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request handler timeout")
		maxBody    = fs.Int64("max-body", 8<<20, "max request body bytes before 413")
		drain      = fs.Duration("drain", 30*time.Second, "max time to wait for inflight jobs at shutdown")
		cacheDir   = fs.String("cache", "", "dataset disk-cache directory (default $"+datasets.CacheEnv+")")
		reportPath = fs.String("report", "", "benchrunner report JSON to pre-fit the advisor model from")
		preload    = fs.String("preload", "", "comma-separated dataset names to load before serving")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir != "" {
		datasets.SetCacheDir(*cacheDir)
	}

	srv := service.New(service.Config{
		Scale:           *scale,
		Seed:            *seed,
		HybridThreshold: *hybridThr,
		Workers:         *workers,
		DefaultParts:    *parts,
		JobQueue:        *queue,
		JobWorkers:      *jobWorkers,
		RequestTimeout:  *timeout,
		MaxBody:         *maxBody,
	})

	if *reportPath != "" {
		if err := warmAdvisor(srv, *reportPath, *scale); err != nil {
			return fmt.Errorf("warm advisor from %s: %w", *reportPath, err)
		}
		fmt.Fprintf(stdout, "advisor model fitted from %s\n", *reportPath)
	}
	for _, name := range splitList(*preload) {
		if _, err := datasets.Load(name, *scale); err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		fmt.Fprintf(stdout, "preloaded %s (scale %d)\n", name, *scale)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "partitiond listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	case <-quitCh(quit):
	}

	fmt.Fprintln(stdout, "partitiond draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && drainErr == nil {
		drainErr = serveErr
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(stdout, "partitiond stopped")
	return nil
}

// quitCh makes a nil quit channel block forever instead of firing.
func quitCh(quit <-chan struct{}) <-chan struct{} {
	if quit == nil {
		return make(chan struct{})
	}
	return quit
}

// warmAdvisor fits the server's advisor model from a benchrunner report
// on disk, so /v1/advise answers from the first request.
func warmAdvisor(srv *service.Server, path string, scale int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := report.Decode(f)
	if err != nil {
		return err
	}
	var mans []datasets.Manifest
	for _, name := range datasets.Names() {
		m, err := datasets.BuildManifest(name, scale)
		if err != nil {
			return err
		}
		mans = append(mans, m)
	}
	model, err := advisor.Fit(rep, mans)
	if err != nil {
		return err
	}
	srv.SetModel(model)
	return nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
