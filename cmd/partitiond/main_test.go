package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, smoke-
// tests a request, then closes quit and requires a clean exit within the
// drain deadline — the listener-closes-on-shutdown contract.
func TestRunServesAndDrains(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	quit := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-drain", "10s"}, &out, ready, quit)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	close(quit)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within the deadline")
	}
	if _, err := http.Get("http://" + addr + "/v1/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	if !strings.Contains(out.String(), "partitiond stopped") {
		t.Fatalf("missing stop log in output: %q", out.String())
	}
}

// TestRunFlagErrors pins the error paths reachable before the listener
// opens: bad flags, unknown preload dataset, unreadable report.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-preload", "no-such-graph"},
		{"-report", "/does/not/exist.json"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out, nil, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestSplitList covers the preload flag parser.
func TestSplitList(t *testing.T) {
	got := splitList(" road-ca, ,livejournal ,")
	want := fmt.Sprint([]string{"road-ca", "livejournal"})
	if fmt.Sprint(got) != want {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	if splitList("") != nil {
		t.Fatal("splitList(\"\") should be nil")
	}
}
