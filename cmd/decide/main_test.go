package main

import (
	"bytes"
	"strings"
	"testing"

	"graphpart/internal/report"
)

// TestInputDatasetExclusive pins the flag contract: -input and -dataset
// together, or neither, are usage errors (exit code 2), not a silent
// preference for one of them.
func TestInputDatasetExclusive(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(options{input: "a.txt", dataset: "road-ca"}, &out); code != 2 || err == nil {
		t.Errorf("both -input and -dataset: code=%d err=%v, want usage error", code, err)
	}
	if code, err := run(options{}, &out); code != 2 || err == nil {
		t.Errorf("neither -input nor -dataset: code=%d err=%v, want usage error", code, err)
	}
}

func TestUnknownDatasetFails(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(options{dataset: "no-such-graph", scale: 1, machines: 9}, &out); code != 1 || err == nil {
		t.Errorf("unknown dataset: code=%d err=%v, want runtime error", code, err)
	}
}

// TestPaperTreeOutput runs the tree-only path and checks every system line
// appears with a strategy.
func TestPaperTreeOutput(t *testing.T) {
	var out bytes.Buffer
	code, err := run(options{dataset: "road-ca", scale: 1, machines: 16, ratio: 0.5, explain: true}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{"PowerGraph", "PowerLyra", "GraphX", "GraphX-All", "paper-tree", "low-degree"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "empirical") {
		t.Error("empirical rule ran without -report")
	}
}

// TestJSONReportDecodes: the -json output must round-trip through the
// shared report schema, with the recommended strategies in the dims.
func TestJSONReportDecodes(t *testing.T) {
	var out bytes.Buffer
	code, err := run(options{
		dataset: "road-ca", scale: 1, machines: 9, ratio: 1,
		reportPath: "../../BENCH_seed1.json", allSystems: true, jsonOut: "-",
	}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	rep, err := report.Decode(&out)
	if err != nil {
		t.Fatalf("output is not a valid report: %v", err)
	}
	if rep.Tool != "decide" || len(rep.Experiments) != 1 {
		t.Fatalf("unexpected report shape: tool=%q experiments=%d", rep.Tool, len(rep.Experiments))
	}
	sources := map[string]bool{}
	systems := map[string]bool{}
	for _, c := range rep.Experiments[0].Cells {
		if c.Metric != "confidence" {
			continue
		}
		if c.Dims.Strategy == "" {
			t.Errorf("confidence cell without a recommended strategy: %s", c.Key())
		}
		sources[c.Dims.Variant] = true
		systems[c.Dims.Engine] = true
	}
	for _, want := range []string{"paper-tree", "empirical"} {
		if !sources[want] {
			t.Errorf("no %s recommendations in the JSON report", want)
		}
	}
	// -all-systems covers all five systems.
	for _, want := range []string{"PowerGraph", "PowerLyra", "GraphX", "GraphX-All", "PowerLyra-All"} {
		if !systems[want] {
			t.Errorf("no recommendation for system %s", want)
		}
	}
}

// TestEmpiricalDeterministic: the same dataset + report always produces
// byte-identical JSON (the advisor determinism contract, end to end).
func TestEmpiricalDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		code, err := run(options{
			dataset: "livejournal", scale: 1, machines: 25, ratio: 2, app: "PageRank(C)",
			reportPath: "../../BENCH_seed1.json", jsonOut: "-",
		}, &out)
		if err != nil || code != 0 {
			t.Fatalf("code=%d err=%v", code, err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two identical invocations differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
