// Command decide recommends a partitioning strategy for a graph. It always
// runs the paper's decision trees (Figs 5.9, 6.6, 9.3); given a benchrunner
// JSON report it additionally fits the empirical advisor on the measured
// cells and prints both sources side by side, with confidences,
// explanation traces (-explain) and predicted metrics (-predict).
//
// Usage:
//
//	decide -dataset twitter -machines 25 -ratio 2 -app PageRank
//	decide -input graph.csrg -machines 16
//	decide -dataset uk-web -report BENCH_seed1.json -explain -predict
//	decide -dataset road-ca -report BENCH_seed1.json -json -
//
// Exactly one of -input and -dataset must be given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphpart/internal/advisor"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// options collects one invocation's switches.
type options struct {
	input      string
	dataset    string
	scale      int
	machines   int
	ratio      float64
	natural    bool
	app        string
	reportPath string
	explain    bool
	predict    bool
	allSystems bool
	jsonOut    string
}

func main() {
	var o options
	flag.StringVar(&o.input, "input", "", "graph file: text edge list or binary .csrg (format sniffed)")
	flag.StringVar(&o.dataset, "dataset", "", "built-in dataset name")
	flag.IntVar(&o.scale, "scale", 1, "dataset scale factor")
	flag.IntVar(&o.machines, "machines", 9, "cluster size")
	flag.Float64Var(&o.ratio, "ratio", 1, "expected compute/ingress time ratio (>1 = long job)")
	flag.BoolVar(&o.natural, "natural", false, "application gathers one direction and scatters the other (implied by a PageRank -app)")
	flag.StringVar(&o.app, "app", "", "benchmark application name (e.g. PageRank(C), WCC); sets -natural for the PageRank family")
	flag.StringVar(&o.reportPath, "report", "", "benchrunner -json report to fit the empirical advisor from")
	flag.BoolVar(&o.explain, "explain", false, "print each rule's decision trace")
	flag.BoolVar(&o.predict, "predict", false, "print the advisor's predicted metrics for its recommendation")
	flag.BoolVar(&o.allSystems, "all-systems", false, "include the PowerLyra-All configuration (GraphX-All is always shown)")
	flag.StringVar(&o.jsonOut, "json", "", "write recommendations as a report.Cell-schema JSON report to this file ('-' for stdout)")
	flag.Parse()

	code, err := run(o, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decide: %v\n", err)
		if code == 2 {
			flag.Usage()
		}
	}
	os.Exit(code)
}

// run executes one invocation and returns the process exit code: 2 for
// usage errors, 1 for runtime failures, 0 on success.
func run(o options, stdout io.Writer) (int, error) {
	// -input and -dataset are two sources for the same graph: both set is
	// ambiguous (which one wins?), neither is nothing to classify.
	if o.input != "" && o.dataset != "" {
		return 2, fmt.Errorf("-input and -dataset are mutually exclusive; give one")
	}
	if o.input == "" && o.dataset == "" {
		return 2, fmt.Errorf("need -input FILE or -dataset NAME")
	}

	w, man, err := workload(o)
	if err != nil {
		return 1, err
	}

	rules := []decision.Rule{decision.PaperTrees()}
	if o.reportPath != "" {
		mdl, err := fitAdvisor(o.reportPath)
		if err != nil {
			return 1, err
		}
		rules = append(rules, mdl)
	}

	// Recommend once per (system, rule); both renderings derive from the
	// same answers.
	var recs []decision.Recommendation
	for _, sys := range decision.Systems(o.allSystems) {
		for _, rule := range rules {
			rec, err := rule.Recommend(sys, w)
			if err != nil {
				return 1, err
			}
			recs = append(recs, rec)
		}
	}

	if o.jsonOut != "" {
		rep, err := recommendationReport(o, recs, w)
		if err != nil {
			return 1, err
		}
		if err := report.WriteFile(o.jsonOut, stdout, rep.Encode); err != nil {
			return 1, err
		}
		if o.jsonOut == "-" {
			return 0, nil // keep stdout report-only
		}
	}

	printHeader(stdout, o, w, man)
	for _, rec := range recs {
		fmt.Fprintf(stdout, "%-14s %-11s → %-15s (confidence %.2f)\n",
			rec.System, rec.Source, rec.Strategy, rec.Confidence)
		if o.explain {
			for _, line := range rec.Explanation {
				fmt.Fprintf(stdout, "    %s\n", line)
			}
		}
		if o.predict {
			for _, c := range rec.Predicted {
				fmt.Fprintf(stdout, "    predict %-26s %.4g %s  [%s]\n", c.Metric, c.Value, c.Unit, c.Dims.Key())
			}
		}
	}
	fmt.Fprintln(stdout)
	for _, sys := range []partition.System{partition.PowerGraph, partition.PowerLyra} {
		for name, why := range decision.Avoid(sys) {
			fmt.Fprintf(stdout, "avoid on %-11s %-12s %s\n", string(sys)+":", name, why)
		}
	}
	return 0, nil
}

// workload builds the feature vector for the requested graph: from its
// manifest for registered datasets, from a fresh classification for files.
func workload(o options) (decision.Workload, datasets.Manifest, error) {
	var man datasets.Manifest
	if o.dataset != "" {
		m, err := datasets.BuildManifest(o.dataset, o.scale)
		if err != nil {
			return decision.Workload{}, man, err
		}
		man = m
	} else {
		g, err := graph.LoadFile(o.input)
		if err != nil {
			return decision.Workload{}, man, err
		}
		man = datasets.MeasureManifest(g)
	}
	w, err := advisor.WorkloadFor(man, o.machines, o.ratio, o.app)
	if err != nil {
		return decision.Workload{}, man, err
	}
	// -natural widens the app-derived default (a non-PageRank natural app
	// exists only by assertion); it never narrows it.
	if o.natural {
		w.NaturalApp = true
	}
	return w, man, nil
}

// fitAdvisor loads a benchrunner report and fits the empirical model on
// it, with manifests built (at the report's own scale) for every
// registered dataset.
func fitAdvisor(path string) (*advisor.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := report.Decode(f)
	if err != nil {
		return nil, err
	}
	scale := rep.Manifest.Config.Scale
	if scale < 1 {
		scale = 1
	}
	var mans []datasets.Manifest
	for _, name := range datasets.Names() {
		m, err := datasets.BuildManifest(name, scale)
		if err != nil {
			return nil, err
		}
		mans = append(mans, m)
	}
	return advisor.Fit(rep, mans)
}

func printHeader(w io.Writer, o options, wl decision.Workload, man datasets.Manifest) {
	fmt.Fprintf(w, "graph:      %s (%d vertices, %d edges)\n", man.Name, man.Vertices, man.Edges)
	fmt.Fprintf(w, "class:      %s (max degree %d, avg %.1f", man.Class, man.Stats.MaxDegree, man.Stats.AvgDegree)
	if wl.Class != graph.LowDegree {
		fmt.Fprintf(w, ", gini %.2f, power-law fit α=%.2f R²=%.2f low-degree-ratio=%.2f",
			man.Stats.Gini, man.Stats.Alpha, man.Stats.R2, man.Stats.LowDegreeRatio)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "workload:   %d machines, compute/ingress ratio %.1f, natural=%v", o.machines, o.ratio, wl.NaturalApp)
	if o.app != "" {
		fmt.Fprintf(w, ", app=%s", o.app)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// recommendationReport renders the recommendations in the shared
// report.Cell schema: a confidence cell per recommendation (the chosen
// strategy rides in the dims) plus the advisor's predicted metric cells,
// all tagged with the source rule as the variant.
func recommendationReport(o options, recs []decision.Recommendation, w decision.Workload) (*report.Report, error) {
	var cells []report.Cell
	var checks []report.Check
	for _, rec := range recs {
		cells = append(cells, report.Cell{
			Dims: report.Dims{
				Dataset: w.Dataset, App: w.App,
				Engine: string(rec.System), Strategy: rec.Strategy, Variant: rec.Source,
			},
			Metric: "confidence", Value: rec.Confidence, Unit: "ratio",
		})
		for _, c := range rec.Predicted {
			c.Dims.Variant = rec.Source
			c.Dims.Engine = string(rec.System)
			cells = append(cells, c)
		}
		checks = append(checks, report.Check{
			Claim:    fmt.Sprintf("%s/%s recommends a strategy", rec.System, rec.Source),
			Observed: rec.Strategy,
			Pass:     true,
		})
	}
	rep := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Tool:          "decide",
		Experiments: []report.Experiment{{
			ID:     "decide",
			Title:  fmt.Sprintf("strategy recommendations for %s", w.Dataset),
			Cells:  cells,
			Checks: checks,
		}},
	}
	rep.Manifest.Config = report.ConfigInfo{Scale: o.scale}
	rep.Manifest.Experiments = []report.ManifestEntry{{
		ID: "decide", Cells: len(cells), Checks: len(checks), Passed: len(checks),
	}}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}
