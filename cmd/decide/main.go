// Command decide runs the paper's decision trees (Figs 5.9, 6.6, 9.3)
// against a graph: it classifies the input's degree distribution and prints
// the recommended partitioning strategy for each system, plus the
// strategies the paper says to avoid.
//
// Usage:
//
//	decide -dataset twitter -machines 25 -ratio 2 -natural
//	decide -input graph.txt -machines 16
package main

import (
	"flag"
	"fmt"
	"log"

	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func main() {
	log.SetFlags(0)
	var (
		input    = flag.String("input", "", "graph file: text edge list or binary .csrg (format sniffed)")
		dataset  = flag.String("dataset", "", "built-in dataset name")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		machines = flag.Int("machines", 9, "cluster size")
		ratio    = flag.Float64("ratio", 1, "expected compute/ingress time ratio (>1 = long job)")
		natural  = flag.Bool("natural", false, "application gathers one direction and scatters the other (e.g. PageRank)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *scale)
	case *input != "":
		g, err = graph.LoadFile(*input)
	default:
		log.Fatal("decide: need -input FILE or -dataset NAME (see -h)")
	}
	if err != nil {
		log.Fatal(err)
	}

	cls := graph.Classify(g)
	fmt.Printf("graph:      %v\n", g)
	fmt.Printf("class:      %s (max degree %d, avg %.1f", cls.Class, cls.MaxDegree, cls.AvgDegree)
	if cls.Class != graph.LowDegree {
		fmt.Printf(", power-law fit α=%.2f R²=%.2f low-degree-ratio=%.2f", cls.Fit.Alpha, cls.Fit.R2, cls.Fit.LowDegreeRatio)
	}
	fmt.Println(")")
	fmt.Printf("workload:   %d machines, compute/ingress ratio %.1f, natural=%v\n\n", *machines, *ratio, *natural)

	w := decision.Workload{
		Class:               cls.Class,
		Machines:            *machines,
		ComputeIngressRatio: *ratio,
		NaturalApp:          *natural,
	}
	for _, sys := range []partition.System{
		partition.PowerGraph, partition.PowerLyra, partition.GraphX, partition.GraphXAll,
	} {
		rec, err := decision.Recommend(sys, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s → %s\n", sys, rec)
	}
	fmt.Println()
	for _, sys := range []partition.System{partition.PowerGraph, partition.PowerLyra} {
		for name, why := range decision.Avoid(sys) {
			fmt.Printf("avoid on %-11s %-12s %s\n", string(sys)+":", name, why)
		}
	}
}
