module graphpart

go 1.22
