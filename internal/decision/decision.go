// Package decision picks partitioning strategies. It defines the Rule
// interface every recommendation source implements, the Workload the
// sources branch on, and the paper's three decision trees — Fig 5.9
// (PowerGraph), Fig 6.6 (PowerLyra) and Fig 9.3 (GraphX with all
// strategies) — as the PaperTrees Rule, plus the per-system rules of thumb
// from chapters 7 and 10. The empirical counterpart, a model learned from
// measured bench reports, lives in internal/advisor and implements the
// same Rule interface.
package decision

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// Workload describes the inputs recommendation rules branch on. The first
// four fields are the nodes of the paper's trees; the rest are the
// measured degree-skew features (datasets.Manifest.Stats) and workload
// identity that empirical rules use. Zero values mean "unknown" — the
// paper trees never look at them.
type Workload struct {
	// Class is the input graph's degree-distribution class; derive it with
	// graph.Classify if unknown.
	Class graph.DegreeClass
	// Machines is the cluster size (the "N² machines?" node asks whether
	// it is a perfect square).
	Machines int
	// ComputeIngressRatio is expected compute time / ingress time. >1
	// means a long-running job. Jobs whose partitions are saved and
	// reused count as high-ratio (§5.4.3).
	ComputeIngressRatio float64
	// NaturalApp reports whether the application gathers in one direction
	// and scatters in the other (PowerLyra's tree only, §6.1).
	NaturalApp bool

	// Dataset and App optionally name a registered dataset and a benchmark
	// application; empirical rules use them to look up measured cells.
	Dataset string
	App     string
	// Gini, Alpha, R2, LowDegreeRatio, MaxDegree and AvgDegree mirror the
	// measured skew statistics of datasets.DegreeStats: the Gini
	// coefficient of the total-degree distribution and the log-log
	// power-law fit behind Fig 5.8.
	Gini           float64
	Alpha          float64
	R2             float64
	LowDegreeRatio float64
	MaxDegree      int
	AvgDegree      float64
}

// perfectSquare reports whether n = k².
func perfectSquare(n int) bool {
	for k := 0; k*k <= n; k++ {
		if k*k == n {
			return true
		}
	}
	return false
}

// PowerGraph is the decision tree of Fig 5.9.
//
//	Low-degree graph?            → HDRF/Oblivious
//	Heavy-tailed? N² machines?   → Grid (else HDRF/Oblivious)
//	Power-law/other:
//	  Compute/Ingress > 1        → HDRF/Oblivious
//	  Compute/Ingress ≤ 1        → Grid
func PowerGraph(w Workload) string {
	s, _ := powerGraphTrace(w)
	return s
}

// powerGraphTrace walks Fig 5.9 and records the branch taken at each node.
func powerGraphTrace(w Workload) (string, []string) {
	switch w.Class {
	case graph.LowDegree:
		return "HDRF", []string{"low-degree graph → HDRF/Oblivious (Fig 5.9)"}
	case graph.HeavyTailed:
		if perfectSquare(w.Machines) {
			return "Grid", []string{
				"heavy-tailed graph",
				fmt.Sprintf("%d machines form a perfect square → Grid", w.Machines),
			}
		}
		return "HDRF", []string{
			"heavy-tailed graph",
			fmt.Sprintf("%d machines are not a perfect square → HDRF/Oblivious", w.Machines),
		}
	default: // power-law / other
		if w.ComputeIngressRatio > 1 {
			return "HDRF", []string{
				"power-law graph",
				fmt.Sprintf("compute/ingress ratio %.2f > 1 (long job) → HDRF/Oblivious", w.ComputeIngressRatio),
			}
		}
		return "Grid", []string{
			"power-law graph",
			fmt.Sprintf("compute/ingress ratio %.2f ≤ 1 (short job) → Grid", w.ComputeIngressRatio),
		}
	}
}

// PowerLyra is the decision tree of Fig 6.6: like PowerGraph's, but a
// natural application on a non-low-degree graph prefers Hybrid, and the
// non-square fallback for heavy-tailed graphs is Hybrid too (§6.4.4).
func PowerLyra(w Workload) string {
	s, _ := powerLyraTrace(w)
	return s
}

// powerLyraTrace walks Fig 6.6 and records the branch taken at each node.
func powerLyraTrace(w Workload) (string, []string) {
	if w.Class == graph.LowDegree {
		return "Oblivious", []string{"low-degree graph → Oblivious (Fig 6.6; even for natural apps, §6.4.4)"}
	}
	if w.NaturalApp {
		return "Hybrid", []string{
			fmt.Sprintf("%s graph", w.Class),
			"natural application (gathers one direction, scatters the other) → Hybrid",
		}
	}
	switch w.Class {
	case graph.HeavyTailed:
		if perfectSquare(w.Machines) {
			return "Grid", []string{
				"heavy-tailed graph, non-natural application",
				fmt.Sprintf("%d machines form a perfect square → Grid", w.Machines),
			}
		}
		return "Hybrid", []string{
			"heavy-tailed graph, non-natural application",
			fmt.Sprintf("%d machines are not a perfect square → Hybrid", w.Machines),
		}
	default:
		if w.ComputeIngressRatio > 1 {
			return "Oblivious", []string{
				"power-law graph, non-natural application",
				fmt.Sprintf("compute/ingress ratio %.2f > 1 (long job) → Oblivious", w.ComputeIngressRatio),
			}
		}
		return "Grid", []string{
			"power-law graph, non-natural application",
			fmt.Sprintf("compute/ingress ratio %.2f ≤ 1 (short job) → Grid", w.ComputeIngressRatio),
		}
	}
}

// GraphX is the native-strategies rule of thumb (§7.4): Canonical Random
// for low-degree/high-diameter graphs, 2D for power-law-like graphs.
func GraphX(w Workload) string {
	s, _ := graphXTrace(w)
	return s
}

func graphXTrace(w Workload) (string, []string) {
	if w.Class == graph.LowDegree {
		return "CanonicalRandom", []string{"low-degree graph → Canonical Random (§7.4)"}
	}
	return "2D", []string{fmt.Sprintf("%s graph → 2D (§7.4)", w.Class)}
}

// GraphXAll is the decision tree of Fig 9.3 (all strategies ported into
// GraphX):
//
//	Low-degree graph?
//	  Compute/Ingress low  → Canonical Random
//	  Compute/Ingress high → HDRF/Oblivious
//	Power-law/other        → 2D
func GraphXAll(w Workload) string {
	s, _ := graphXAllTrace(w)
	return s
}

// graphXAllTrace walks Fig 9.3 and records the branch taken at each node.
func graphXAllTrace(w Workload) (string, []string) {
	if w.Class == graph.LowDegree {
		if w.ComputeIngressRatio > 1 {
			return "HDRF", []string{
				"low-degree graph",
				fmt.Sprintf("compute/ingress ratio %.2f > 1 (long job) → HDRF/Oblivious", w.ComputeIngressRatio),
			}
		}
		return "CanonicalRandom", []string{
			"low-degree graph",
			fmt.Sprintf("compute/ingress ratio %.2f ≤ 1 (short job) → Canonical Random", w.ComputeIngressRatio),
		}
	}
	return "2D", []string{fmt.Sprintf("%s graph → 2D (Fig 9.3)", w.Class)}
}

// Recommend is the strategy-only form of PaperTrees().Recommend, kept for
// callers that need no trace.
func Recommend(sys partition.System, w Workload) (string, error) {
	rec, err := PaperTrees().Recommend(sys, w)
	if err != nil {
		return "", err
	}
	return rec.Strategy, nil
}

// Avoid lists strategies the paper recommends against for a system, with
// reasons (§5.4.4, §6.4.4, §8.2.2).
func Avoid(sys partition.System) map[string]string {
	switch sys {
	case partition.PowerGraph:
		return map[string]string{
			"Random": "consistently high replication factor; Grid has similar ingress speed with better partitions (§5.4.4)",
		}
	case partition.PowerLyra, partition.PowerLyraAll:
		return map[string]string{
			"Random":     "consistently high replication factor (§6.4.4)",
			"H-Ginger":   "much slower ingress and higher memory for marginal replication-factor gains over Hybrid (§6.4.4)",
			"AsymRandom": "even worse replication factor than Random (§8.2.2)",
		}
	case partition.GraphX, partition.GraphXAll:
		return map[string]string{
			"AsymRandom": "direction-sensitive hashing splits symmetric edge pairs, inflating replication (§8.2.2)",
		}
	}
	return nil
}
