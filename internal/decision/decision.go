// Package decision implements the paper's three decision trees for picking
// a partitioning strategy: Fig 5.9 (PowerGraph), Fig 6.6 (PowerLyra) and
// Fig 9.3 (GraphX with all strategies), plus the per-system rules of thumb
// from chapters 7 and 10.
package decision

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// Workload describes the inputs the trees branch on.
type Workload struct {
	// Class is the input graph's degree-distribution class; derive it with
	// graph.Classify if unknown.
	Class graph.DegreeClass
	// Machines is the cluster size (the "N² machines?" node asks whether
	// it is a perfect square).
	Machines int
	// ComputeIngressRatio is expected compute time / ingress time. >1
	// means a long-running job. Jobs whose partitions are saved and
	// reused count as high-ratio (§5.4.3).
	ComputeIngressRatio float64
	// NaturalApp reports whether the application gathers in one direction
	// and scatters in the other (PowerLyra's tree only, §6.1).
	NaturalApp bool
}

// perfectSquare reports whether n = k².
func perfectSquare(n int) bool {
	for k := 0; k*k <= n; k++ {
		if k*k == n {
			return true
		}
	}
	return false
}

// PowerGraph is the decision tree of Fig 5.9.
//
//	Low-degree graph?            → HDRF/Oblivious
//	Heavy-tailed? N² machines?   → Grid (else HDRF/Oblivious)
//	Power-law/other:
//	  Compute/Ingress > 1        → HDRF/Oblivious
//	  Compute/Ingress ≤ 1        → Grid
func PowerGraph(w Workload) string {
	switch w.Class {
	case graph.LowDegree:
		return "HDRF"
	case graph.HeavyTailed:
		if perfectSquare(w.Machines) {
			return "Grid"
		}
		return "HDRF"
	default: // power-law / other
		if w.ComputeIngressRatio > 1 {
			return "HDRF"
		}
		return "Grid"
	}
}

// PowerLyra is the decision tree of Fig 6.6: like PowerGraph's, but a
// natural application on a non-low-degree graph prefers Hybrid, and the
// non-square fallback for heavy-tailed graphs is Hybrid too (§6.4.4).
func PowerLyra(w Workload) string {
	if w.Class == graph.LowDegree {
		return "Oblivious"
	}
	if w.NaturalApp {
		return "Hybrid"
	}
	switch w.Class {
	case graph.HeavyTailed:
		if perfectSquare(w.Machines) {
			return "Grid"
		}
		return "Hybrid"
	default:
		if w.ComputeIngressRatio > 1 {
			return "Oblivious"
		}
		return "Grid"
	}
}

// GraphX is the native-strategies rule of thumb (§7.4): Canonical Random
// for low-degree/high-diameter graphs, 2D for power-law-like graphs.
func GraphX(w Workload) string {
	if w.Class == graph.LowDegree {
		return "CanonicalRandom"
	}
	return "2D"
}

// GraphXAll is the decision tree of Fig 9.3 (all strategies ported into
// GraphX):
//
//	Low-degree graph?
//	  Compute/Ingress low  → Canonical Random
//	  Compute/Ingress high → HDRF/Oblivious
//	Power-law/other        → 2D
func GraphXAll(w Workload) string {
	if w.Class == graph.LowDegree {
		if w.ComputeIngressRatio > 1 {
			return "HDRF"
		}
		return "CanonicalRandom"
	}
	return "2D"
}

// Recommend dispatches to the tree for the given system. The
// PowerLyra-All tree equals PowerLyra's with "HDRF/Oblivious" merged
// (§8.2.1), so it shares the PowerLyra tree here.
func Recommend(sys partition.System, w Workload) (string, error) {
	switch sys {
	case partition.PowerGraph:
		return PowerGraph(w), nil
	case partition.PowerLyra, partition.PowerLyraAll:
		return PowerLyra(w), nil
	case partition.GraphX:
		return GraphX(w), nil
	case partition.GraphXAll:
		return GraphXAll(w), nil
	}
	return "", fmt.Errorf("decision: unknown system %q", sys)
}

// Avoid lists strategies the paper recommends against for a system, with
// reasons (§5.4.4, §6.4.4, §8.2.2).
func Avoid(sys partition.System) map[string]string {
	switch sys {
	case partition.PowerGraph:
		return map[string]string{
			"Random": "consistently high replication factor; Grid has similar ingress speed with better partitions (§5.4.4)",
		}
	case partition.PowerLyra, partition.PowerLyraAll:
		return map[string]string{
			"Random":     "consistently high replication factor (§6.4.4)",
			"H-Ginger":   "much slower ingress and higher memory for marginal replication-factor gains over Hybrid (§6.4.4)",
			"AsymRandom": "even worse replication factor than Random (§8.2.2)",
		}
	case partition.GraphX, partition.GraphXAll:
		return map[string]string{
			"AsymRandom": "direction-sensitive hashing splits symmetric edge pairs, inflating replication (§8.2.2)",
		}
	}
	return nil
}
