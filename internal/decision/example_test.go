package decision_test

import (
	"fmt"

	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// ExamplePowerGraph walks the Fig 5.9 tree for a long job on a power-law
// web graph, then replays the same workload through the Rule form to show
// the explanation trace every recommendation source carries.
func ExamplePowerGraph() {
	w := decision.Workload{
		Class:               graph.PowerLaw,
		Machines:            25,
		ComputeIngressRatio: 4,
	}
	fmt.Println(decision.PowerGraph(w))

	rec, err := decision.PaperTrees().Recommend(partition.PowerGraph, w)
	if err != nil {
		panic(err)
	}
	for _, line := range rec.Explanation {
		fmt.Println(line)
	}
	// Output:
	// HDRF
	// power-law graph
	// compute/ingress ratio 4.00 > 1 (long job) → HDRF/Oblivious
}
