package decision

import (
	"testing"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func TestPowerGraphTree(t *testing.T) {
	// Every path of Fig 5.9.
	cases := []struct {
		w    Workload
		want string
	}{
		{Workload{Class: graph.LowDegree, Machines: 25}, "HDRF"},
		{Workload{Class: graph.HeavyTailed, Machines: 25}, "Grid"},
		{Workload{Class: graph.HeavyTailed, Machines: 24}, "HDRF"},
		{Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 10}, "HDRF"},
		{Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 0.5}, "Grid"},
	}
	for _, tc := range cases {
		if got := PowerGraph(tc.w); got != tc.want {
			t.Errorf("PowerGraph(%+v) = %s, want %s", tc.w, got, tc.want)
		}
	}
}

func TestPowerLyraTree(t *testing.T) {
	// Every path of Fig 6.6. Note the "Natural Application?" node comes
	// after "Low degree graph?": low-degree graphs pick Oblivious even for
	// natural applications (§6.4.4).
	cases := []struct {
		w    Workload
		want string
	}{
		{Workload{Class: graph.LowDegree, NaturalApp: true}, "Oblivious"},
		{Workload{Class: graph.LowDegree}, "Oblivious"},
		{Workload{Class: graph.HeavyTailed, NaturalApp: true, Machines: 16}, "Hybrid"},
		{Workload{Class: graph.HeavyTailed, Machines: 16}, "Grid"},
		{Workload{Class: graph.HeavyTailed, Machines: 10}, "Hybrid"},
		{Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 5}, "Oblivious"},
		{Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 0.2}, "Grid"},
		{Workload{Class: graph.PowerLaw, NaturalApp: true, Machines: 16}, "Hybrid"},
	}
	for _, tc := range cases {
		if got := PowerLyra(tc.w); got != tc.want {
			t.Errorf("PowerLyra(%+v) = %s, want %s", tc.w, got, tc.want)
		}
	}
}

func TestGraphXTrees(t *testing.T) {
	if got := GraphX(Workload{Class: graph.LowDegree}); got != "CanonicalRandom" {
		t.Errorf("GraphX low-degree = %s", got)
	}
	if got := GraphX(Workload{Class: graph.PowerLaw}); got != "2D" {
		t.Errorf("GraphX power-law = %s", got)
	}
	if got := GraphX(Workload{Class: graph.HeavyTailed}); got != "2D" {
		t.Errorf("GraphX heavy-tailed = %s", got)
	}
	// Fig 9.3 adds the job-length branch for low-degree graphs.
	if got := GraphXAll(Workload{Class: graph.LowDegree, ComputeIngressRatio: 0.5}); got != "CanonicalRandom" {
		t.Errorf("GraphXAll short low-degree = %s", got)
	}
	if got := GraphXAll(Workload{Class: graph.LowDegree, ComputeIngressRatio: 8}); got != "HDRF" {
		t.Errorf("GraphXAll long low-degree = %s", got)
	}
	if got := GraphXAll(Workload{Class: graph.PowerLaw}); got != "2D" {
		t.Errorf("GraphXAll power-law = %s", got)
	}
}

func TestRecommendDispatch(t *testing.T) {
	w := Workload{Class: graph.HeavyTailed, Machines: 25}
	for _, sys := range []partition.System{
		partition.PowerGraph, partition.PowerLyra, partition.GraphX,
		partition.PowerLyraAll, partition.GraphXAll,
	} {
		name, err := Recommend(sys, w)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if _, err := partition.New(name, partition.Options{}); err != nil {
			t.Errorf("%s recommends unconstructible strategy %q", sys, name)
		}
	}
	if _, err := Recommend(partition.System("bogus"), w); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRecommendationsAreRunnable(t *testing.T) {
	// Recommended strategies must actually be valid for the cluster size
	// given (Grid only recommended for perfect squares).
	for machines := 4; machines <= 36; machines++ {
		w := Workload{Class: graph.HeavyTailed, Machines: machines}
		name := PowerGraph(w)
		if name == "Grid" && !perfectSquare(machines) {
			t.Errorf("machines=%d: Grid recommended for non-square cluster", machines)
		}
	}
}

// TestPaperTreesReproduceEveryLeaf drives the Rule-source form of the
// trees through every leaf of Figs 5.9, 6.6 and 9.3 and pins both the
// strategy and the presence of an explanation trace. This is the contract
// the refactor must hold: expressing the trees as a pluggable Rule beside
// the empirical advisor changes nothing about what they answer.
func TestPaperTreesReproduceEveryLeaf(t *testing.T) {
	rule := PaperTrees()
	if rule.Name() != "paper-tree" {
		t.Fatalf("rule name %q", rule.Name())
	}
	cases := []struct {
		sys  partition.System
		w    Workload
		want string
	}{
		// Fig 5.9, all five leaves.
		{partition.PowerGraph, Workload{Class: graph.LowDegree, Machines: 25}, "HDRF"},
		{partition.PowerGraph, Workload{Class: graph.HeavyTailed, Machines: 25}, "Grid"},
		{partition.PowerGraph, Workload{Class: graph.HeavyTailed, Machines: 24}, "HDRF"},
		{partition.PowerGraph, Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 10}, "HDRF"},
		{partition.PowerGraph, Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 0.5}, "Grid"},
		// Fig 6.6, all six leaves (low-degree wins over natural, §6.4.4).
		{partition.PowerLyra, Workload{Class: graph.LowDegree, NaturalApp: true}, "Oblivious"},
		{partition.PowerLyra, Workload{Class: graph.HeavyTailed, NaturalApp: true, Machines: 16}, "Hybrid"},
		{partition.PowerLyra, Workload{Class: graph.HeavyTailed, Machines: 16}, "Grid"},
		{partition.PowerLyra, Workload{Class: graph.HeavyTailed, Machines: 10}, "Hybrid"},
		{partition.PowerLyra, Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 5}, "Oblivious"},
		{partition.PowerLyra, Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 0.2}, "Grid"},
		// PowerLyra-All shares the Fig 6.6 walk (§8.2.1).
		{partition.PowerLyraAll, Workload{Class: graph.PowerLaw, NaturalApp: true, Machines: 16}, "Hybrid"},
		{partition.PowerLyraAll, Workload{Class: graph.LowDegree}, "Oblivious"},
		// §7.4 rule of thumb, both leaves.
		{partition.GraphX, Workload{Class: graph.LowDegree}, "CanonicalRandom"},
		{partition.GraphX, Workload{Class: graph.HeavyTailed}, "2D"},
		{partition.GraphX, Workload{Class: graph.PowerLaw}, "2D"},
		// Fig 9.3, all three leaves.
		{partition.GraphXAll, Workload{Class: graph.LowDegree, ComputeIngressRatio: 0.5}, "CanonicalRandom"},
		{partition.GraphXAll, Workload{Class: graph.LowDegree, ComputeIngressRatio: 8}, "HDRF"},
		{partition.GraphXAll, Workload{Class: graph.PowerLaw}, "2D"},
	}
	for _, tc := range cases {
		rec, err := rule.Recommend(tc.sys, tc.w)
		if err != nil {
			t.Fatalf("%s %+v: %v", tc.sys, tc.w, err)
		}
		if rec.Strategy != tc.want {
			t.Errorf("%s %+v = %s, want %s", tc.sys, tc.w, rec.Strategy, tc.want)
		}
		if rec.Strategy != Recommend2(t, tc.sys, tc.w) {
			t.Errorf("%s: Rule and legacy Recommend disagree", tc.sys)
		}
		if len(rec.Explanation) == 0 {
			t.Errorf("%s %+v: empty explanation trace", tc.sys, tc.w)
		}
		if rec.Source != "paper-tree" || rec.Confidence != 1 {
			t.Errorf("%s: source %q confidence %g", tc.sys, rec.Source, rec.Confidence)
		}
	}
	if _, err := rule.Recommend(partition.System("bogus"), Workload{}); err == nil {
		t.Error("unknown system accepted by PaperTrees")
	}
}

// Recommend2 is the legacy dispatch, asserted equal to the Rule form.
func Recommend2(t *testing.T, sys partition.System, w Workload) string {
	t.Helper()
	s, err := Recommend(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystems(t *testing.T) {
	if got := Systems(false); len(got) != 4 {
		t.Errorf("Systems(false) = %v", got)
	}
	all := Systems(true)
	if len(all) != 5 || all[4] != partition.PowerLyraAll {
		t.Errorf("Systems(true) = %v", all)
	}
}

func TestAvoidLists(t *testing.T) {
	if m := Avoid(partition.PowerLyra); m["H-Ginger"] == "" || m["Random"] == "" {
		t.Error("PowerLyra avoid list missing H-Ginger/Random")
	}
	if m := Avoid(partition.PowerGraph); m["Random"] == "" {
		t.Error("PowerGraph avoid list missing Random")
	}
	if Avoid(partition.System("bogus")) != nil {
		t.Error("unknown system should have nil avoid list")
	}
}
