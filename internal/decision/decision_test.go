package decision

import (
	"testing"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func TestPowerGraphTree(t *testing.T) {
	// Every path of Fig 5.9.
	cases := []struct {
		w    Workload
		want string
	}{
		{Workload{Class: graph.LowDegree, Machines: 25}, "HDRF"},
		{Workload{Class: graph.HeavyTailed, Machines: 25}, "Grid"},
		{Workload{Class: graph.HeavyTailed, Machines: 24}, "HDRF"},
		{Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 10}, "HDRF"},
		{Workload{Class: graph.PowerLaw, Machines: 25, ComputeIngressRatio: 0.5}, "Grid"},
	}
	for _, tc := range cases {
		if got := PowerGraph(tc.w); got != tc.want {
			t.Errorf("PowerGraph(%+v) = %s, want %s", tc.w, got, tc.want)
		}
	}
}

func TestPowerLyraTree(t *testing.T) {
	// Every path of Fig 6.6. Note the "Natural Application?" node comes
	// after "Low degree graph?": low-degree graphs pick Oblivious even for
	// natural applications (§6.4.4).
	cases := []struct {
		w    Workload
		want string
	}{
		{Workload{Class: graph.LowDegree, NaturalApp: true}, "Oblivious"},
		{Workload{Class: graph.LowDegree}, "Oblivious"},
		{Workload{Class: graph.HeavyTailed, NaturalApp: true, Machines: 16}, "Hybrid"},
		{Workload{Class: graph.HeavyTailed, Machines: 16}, "Grid"},
		{Workload{Class: graph.HeavyTailed, Machines: 10}, "Hybrid"},
		{Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 5}, "Oblivious"},
		{Workload{Class: graph.PowerLaw, Machines: 16, ComputeIngressRatio: 0.2}, "Grid"},
		{Workload{Class: graph.PowerLaw, NaturalApp: true, Machines: 16}, "Hybrid"},
	}
	for _, tc := range cases {
		if got := PowerLyra(tc.w); got != tc.want {
			t.Errorf("PowerLyra(%+v) = %s, want %s", tc.w, got, tc.want)
		}
	}
}

func TestGraphXTrees(t *testing.T) {
	if got := GraphX(Workload{Class: graph.LowDegree}); got != "CanonicalRandom" {
		t.Errorf("GraphX low-degree = %s", got)
	}
	if got := GraphX(Workload{Class: graph.PowerLaw}); got != "2D" {
		t.Errorf("GraphX power-law = %s", got)
	}
	if got := GraphX(Workload{Class: graph.HeavyTailed}); got != "2D" {
		t.Errorf("GraphX heavy-tailed = %s", got)
	}
	// Fig 9.3 adds the job-length branch for low-degree graphs.
	if got := GraphXAll(Workload{Class: graph.LowDegree, ComputeIngressRatio: 0.5}); got != "CanonicalRandom" {
		t.Errorf("GraphXAll short low-degree = %s", got)
	}
	if got := GraphXAll(Workload{Class: graph.LowDegree, ComputeIngressRatio: 8}); got != "HDRF" {
		t.Errorf("GraphXAll long low-degree = %s", got)
	}
	if got := GraphXAll(Workload{Class: graph.PowerLaw}); got != "2D" {
		t.Errorf("GraphXAll power-law = %s", got)
	}
}

func TestRecommendDispatch(t *testing.T) {
	w := Workload{Class: graph.HeavyTailed, Machines: 25}
	for _, sys := range []partition.System{
		partition.PowerGraph, partition.PowerLyra, partition.GraphX,
		partition.PowerLyraAll, partition.GraphXAll,
	} {
		name, err := Recommend(sys, w)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if _, err := partition.New(name, partition.Options{}); err != nil {
			t.Errorf("%s recommends unconstructible strategy %q", sys, name)
		}
	}
	if _, err := Recommend(partition.System("bogus"), w); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRecommendationsAreRunnable(t *testing.T) {
	// Recommended strategies must actually be valid for the cluster size
	// given (Grid only recommended for perfect squares).
	for machines := 4; machines <= 36; machines++ {
		w := Workload{Class: graph.HeavyTailed, Machines: machines}
		name := PowerGraph(w)
		if name == "Grid" && !perfectSquare(machines) {
			t.Errorf("machines=%d: Grid recommended for non-square cluster", machines)
		}
	}
}

func TestAvoidLists(t *testing.T) {
	if m := Avoid(partition.PowerLyra); m["H-Ginger"] == "" || m["Random"] == "" {
		t.Error("PowerLyra avoid list missing H-Ginger/Random")
	}
	if m := Avoid(partition.PowerGraph); m["Random"] == "" {
		t.Error("PowerGraph avoid list missing Random")
	}
	if Avoid(partition.System("bogus")) != nil {
		t.Error("unknown system should have nil avoid list")
	}
}
