package decision

import (
	"fmt"

	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// Recommendation is one rule's answer for one system: the strategy to use
// plus the evidence behind it. Predicted carries the rule's expected
// metrics for the recommended strategy in the shared report.Cell schema
// (empirical rules fill it; the paper trees make no quantitative claim).
type Recommendation struct {
	System   partition.System `json:"system"`
	Strategy string           `json:"strategy"`
	// Source names the rule that produced the recommendation
	// ("paper-tree", "empirical").
	Source string `json:"source"`
	// Confidence is the rule's own estimate in [0,1]. The paper trees
	// always claim 1; empirical rules report the fraction of measured
	// workloads at the chosen model leaf for which the recommended
	// strategy was (near-)best.
	Confidence float64 `json:"confidence"`
	// Explanation is the decision trace: one line per branch taken.
	Explanation []string `json:"explanation,omitempty"`
	// Predicted are the expected metrics for the recommended strategy.
	Predicted []report.Cell `json:"predicted,omitempty"`
}

// Rule is a pluggable recommendation source. PaperTrees implements it with
// the paper's Figs 5.9/6.6/9.3; internal/advisor implements it with a
// model learned from measured bench reports. cmd/decide runs every
// configured Rule side by side.
type Rule interface {
	// Name identifies the source in output and Recommendation.Source.
	Name() string
	// Recommend picks a strategy for the system under the workload.
	Recommend(sys partition.System, w Workload) (Recommendation, error)
}

// Systems returns the systems rules recommend for, in the paper's order.
// The first four are the default cmd/decide set; all six include the
// thesis's "all strategies in one system" configurations.
func Systems(all bool) []partition.System {
	base := []partition.System{
		partition.PowerGraph, partition.PowerLyra,
		partition.GraphX, partition.GraphXAll,
	}
	if !all {
		return base
	}
	return append(base, partition.PowerLyraAll)
}

// PaperTrees returns the Rule wrapping the paper's decision trees. The
// PowerLyra-All tree equals PowerLyra's with "HDRF/Oblivious" merged
// (§8.2.1), so both systems share the Fig 6.6 walk.
func PaperTrees() Rule { return paperTrees{} }

type paperTrees struct{}

func (paperTrees) Name() string { return "paper-tree" }

func (paperTrees) Recommend(sys partition.System, w Workload) (Recommendation, error) {
	var strategy string
	var trace []string
	switch sys {
	case partition.PowerGraph:
		strategy, trace = powerGraphTrace(w)
	case partition.PowerLyra, partition.PowerLyraAll:
		strategy, trace = powerLyraTrace(w)
	case partition.GraphX:
		strategy, trace = graphXTrace(w)
	case partition.GraphXAll:
		strategy, trace = graphXAllTrace(w)
	default:
		return Recommendation{}, fmt.Errorf("decision: unknown system %q", sys)
	}
	return Recommendation{
		System: sys, Strategy: strategy, Source: "paper-tree",
		Confidence: 1, Explanation: trace,
	}, nil
}
