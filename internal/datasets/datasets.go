// Package datasets is the registry of named benchmark graphs: the scaled
// synthetic stand-ins for the six graphs in the paper's Table 4.2, plus any
// externally registered edge-list or .csrg files. Every dataset has a
// Manifest — kind, size, degree-skew statistics, provenance — and loads are
// cached twice: once per process (in memory) and, when a cache directory is
// configured, on disk in the binary .csrg format so later runs skip
// generation and text parsing entirely.
//
// Scale 1 keeps every graph small enough that the full experiment suite runs
// in seconds; benchmarks can request larger scales. Relative sizes mirror
// the paper (road-usa > road-ca; twitter and uk-web are the largest).
package datasets

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// Kind says where a dataset's edges come from.
type Kind string

const (
	// SyntheticRoad marks lattice road-network stand-ins.
	SyntheticRoad Kind = "synthetic-road"
	// SyntheticSocial marks preferential-attachment social-network stand-ins.
	SyntheticSocial Kind = "synthetic-social"
	// SyntheticWeb marks locality-clustered web-crawl stand-ins.
	SyntheticWeb Kind = "synthetic-web"
	// External marks datasets registered from files on disk (e.g. real SNAP
	// edge lists); their Build ignores the scale factor.
	External Kind = "external"
)

// Info describes one registered dataset: identity, the paper's original
// statistics when the dataset stands in for one of Table 4.2's graphs, and
// provenance.
type Info struct {
	Name string
	Kind Kind
	// Class is the degree class the paper assigns (Table 4.2) — or, for
	// external datasets, the class claimed at registration.
	Class graph.DegreeClass
	// PaperEdges/PaperVerts are the sizes reported in Table 4.2 ("" for
	// datasets that stand in for nothing).
	PaperEdges string
	PaperVerts string
	// Provenance says how the edges are produced: generator and parameters
	// for synthetic datasets, the source path for external ones.
	Provenance string
}

// Builder produces the dataset's graph at a scale factor (external datasets
// ignore scale). Builders must be deterministic.
type Builder func(scale int) (*graph.Graph, error)

type entry struct {
	info  Info
	build Builder
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
	// builtinOrder is the paper's figure column order: road networks first,
	// then heavy-tailed, then power-law. Externally registered names follow,
	// sorted, in Names().
	builtinOrder = []string{"road-ca", "road-usa", "livejournal", "enwiki", "twitter", "uk-web"}
	extraOrder   []string
)

// Register adds a dataset to the registry. It returns an error on an empty
// or duplicate name or a nil builder; the six builtins are pre-registered.
func Register(info Info, build Builder) error {
	if info.Name == "" {
		return fmt.Errorf("datasets: Register with empty name")
	}
	if build == nil {
		return fmt.Errorf("datasets: Register(%q) with nil builder", info.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		return fmt.Errorf("datasets: dataset %q already registered", info.Name)
	}
	registry[info.Name] = entry{info: info, build: build}
	extraOrder = append(extraOrder, info.Name)
	sort.Strings(extraOrder)
	return nil
}

// RegisterFile registers an external edge-list or .csrg file under name. The
// file is loaded (format-sniffed) on first Load; class is the degree class
// the caller expects the graph to have. Scale factors are ignored — external
// graphs are whatever size they are.
func RegisterFile(name, path string, class graph.DegreeClass) error {
	info := Info{
		Name: name, Kind: External, Class: class,
		Provenance: fmt.Sprintf("file %s", path),
	}
	return Register(info, func(int) (*graph.Graph, error) {
		g, err := graph.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("datasets: %s: %w", name, err)
		}
		g.Name = name
		return g, nil
	})
}

// unregister removes a dataset; test cleanup only.
func unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
	for i, n := range extraOrder {
		if n == name {
			extraOrder = append(extraOrder[:i], extraOrder[i+1:]...)
			break
		}
	}
}

func init() {
	builtin := func(info Info, build func(scale int) *graph.Graph) {
		if err := Register(info, func(s int) (*graph.Graph, error) { return build(s), nil }); err != nil {
			panic(err)
		}
	}
	builtin(Info{
		Name: "road-ca", Kind: SyntheticRoad, Class: graph.LowDegree,
		PaperEdges: "5.5M", PaperVerts: "1.9M",
		Provenance: "gen.RoadNet lattice, side²≈12000·scale, seed 0xca0",
	}, func(s int) *graph.Graph {
		side := isqrt(12000 * s)
		return gen.RoadNet("road-ca", side, side, 0xca0)
	})
	builtin(Info{
		Name: "road-usa", Kind: SyntheticRoad, Class: graph.LowDegree,
		PaperEdges: "57.5M", PaperVerts: "23.6M",
		Provenance: "gen.RoadNet lattice, side²≈40000·scale, seed 0x05a",
	}, func(s int) *graph.Graph {
		side := isqrt(40000 * s)
		return gen.RoadNet("road-usa", side, side, 0x05a)
	})
	builtin(Info{
		Name: "livejournal", Kind: SyntheticSocial, Class: graph.HeavyTailed,
		PaperEdges: "68.5M", PaperVerts: "4.8M",
		Provenance: "gen.PrefAttach n=9000·scale m=8, seed 0x17e",
	}, func(s int) *graph.Graph {
		return gen.PrefAttach("livejournal", 9000*s, 8, 0x17e)
	})
	builtin(Info{
		Name: "enwiki", Kind: SyntheticSocial, Class: graph.HeavyTailed,
		PaperEdges: "101M", PaperVerts: "4.2M",
		Provenance: "gen.PrefAttach n=6000·scale m=12, seed 0xe4171",
	}, func(s int) *graph.Graph {
		return gen.PrefAttach("enwiki", 6000*s, 12, 0xe4171)
	})
	builtin(Info{
		Name: "twitter", Kind: SyntheticSocial, Class: graph.HeavyTailed,
		PaperEdges: "1.46B", PaperVerts: "41.6M",
		Provenance: "gen.PrefAttach n=16000·scale m=10, seed 0x7417713",
	}, func(s int) *graph.Graph {
		return gen.PrefAttach("twitter", 16000*s, 10, 0x7417713)
	})
	builtin(Info{
		Name: "uk-web", Kind: SyntheticWeb, Class: graph.PowerLaw,
		PaperEdges: "3.71B", PaperVerts: "105.1M",
		Provenance: "gen.WebGraph n=30000·scale α=1.62 locality=0.86, seed 0x0b3b",
	}, func(s int) *graph.Graph {
		return gen.WebGraph("uk-web", gen.WebGraphConfig{
			N: 30000 * s, Alpha: 1.62, MaxOutD: 3000 * s,
			Locality: 0.86, Window: 64, Seed: 0x0b3b,
		})
	})
	// Builtins are ordered by builtinOrder, not registration order.
	regMu.Lock()
	extraOrder = nil
	regMu.Unlock()
}

// Names returns all registered dataset names: the paper's six in figure
// column order, then externally registered datasets sorted by name.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(builtinOrder)+len(extraOrder))
	out = append(out, builtinOrder...)
	out = append(out, extraOrder...)
	return out
}

// Describe returns the static dataset metadata for name. Manifest adds the
// measured statistics (which require building the graph).
func Describe(name string) (Info, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
	return e.info, nil
}

type cacheKey struct {
	name  string
	scale int
}

// cacheEntry builds each graph once per key: concurrent loaders of the
// same dataset share one build, and a cached road-ca never waits behind
// an in-progress uk-web build (the lock only guards the map, not the
// multi-second generator + CSR construction).
type cacheEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}
)

// --- on-disk .csrg cache ----------------------------------------------

// CacheEnv is the environment variable every binary honors: when set to a
// directory, built datasets are persisted there as .csrg files and later
// loads are binary reads instead of generator runs.
const CacheEnv = "GRAPHPART_CACHE"

var (
	cacheDirMu  sync.Mutex
	cacheDirVal string
	cacheDirSet bool
)

// SetCacheDir configures the on-disk dataset cache directory ("" disables
// it). It overrides the GRAPHPART_CACHE environment variable.
func SetCacheDir(dir string) {
	cacheDirMu.Lock()
	defer cacheDirMu.Unlock()
	cacheDirVal, cacheDirSet = dir, true
}

// CacheDir returns the active cache directory: the SetCacheDir value when
// set, otherwise GRAPHPART_CACHE, otherwise "" (disk cache disabled).
func CacheDir() string {
	cacheDirMu.Lock()
	defer cacheDirMu.Unlock()
	if cacheDirSet {
		return cacheDirVal
	}
	return os.Getenv(CacheEnv)
}

// CachePath returns the .csrg path a (name, scale) pair caches to under dir.
func CachePath(dir, name string, scale int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.s%d%s", sanitize(name), scale, graph.CSRExt))
}

// sanitize keeps cache filenames flat and portable for arbitrary registered
// dataset names.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

// loadOrBuild resolves one (name, scale): disk cache hit, else build and
// best-effort populate the disk cache.
func loadOrBuild(e entry, name string, scale int) (*graph.Graph, error) {
	dir := CacheDir()
	// External datasets never touch the disk cache: their source is already
	// a file the user may edit, and a cached copy would shadow those edits
	// forever. Generator-backed builders are deterministic, so their cache
	// entries can never go stale.
	if e.info.Kind == External {
		dir = ""
	}
	if dir != "" {
		// A hit must also carry the right identity: sanitize() can map two
		// registered names to one filename, and the stored graph name is
		// what distinguishes them — a mismatch is a miss, never a wrong
		// graph served silently.
		if g, err := graph.LoadCSR(CachePath(dir, name, scale)); err == nil && g.Name == name {
			g.EnsureCSR()
			return g, nil
		}
		// Miss, corrupt file, or identity mismatch: fall through and
		// rebuild. The atomic rename below overwrites the stale entry.
	}
	g, err := e.build(scale)
	if err != nil {
		return nil, err
	}
	g.EnsureCSR()
	// Only graphs named after their dataset are cacheable — the stored name
	// is the identity the hit path checks. Every builtin and RegisterFile
	// builder satisfies this.
	if dir != "" && g.Name == name {
		writeCache(dir, name, scale, g)
	}
	return g, nil
}

// writeCache persists g as .csrg via temp-file + rename, so concurrent
// processes never observe a torn cache entry. Failures are non-fatal: the
// cache is an optimization, not a dependency.
//
// Writers additionally serialize on an advisory flock beside the target:
// rename is atomic per write, but two processes building the same dataset
// would otherwise both write multi-MB temp files and rename over each
// other — wasted IO, and on filesystems without atomic rename-over, a
// reader-visible race. With the lock held the entry is revalidated first,
// so the losing writer skips its redundant write entirely.
func writeCache(dir, name string, scale int, g *graph.Graph) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	target := CachePath(dir, name, scale)
	if unlock, err := lockFile(target + ".lock"); err == nil {
		defer unlock()
		if cached, err := graph.LoadCSR(target); err == nil && cached.Name == name {
			return // a concurrent writer already landed this entry
		}
	}
	tmp, err := os.CreateTemp(dir, sanitize(name)+".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	// Cache entries use format v2: the compressed blocks keep the cache
	// several times smaller and decode on all cores; the adjacency sections
	// v1 could embed are rebuilt lazily on load instead.
	if err := graph.WriteCSRVersion(g, tmp, graph.CSRVersion2); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	// CreateTemp makes 0600 files; widen so shared cache dirs stay usable.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return
	}
	os.Rename(tmp.Name(), CachePath(dir, name, scale))
}

// Load builds (or returns the cached) graph for name at the given scale.
// Scale 1 is the test-sized default; builders are deterministic, so the same
// (name, scale) always yields the same graph — whether it came from the
// generator, the in-process cache, or a .csrg disk cache hit.
func Load(name string, scale int) (*graph.Graph, error) {
	if scale < 1 {
		scale = 1
	}
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
	key := cacheKey{name, scale}
	cacheMu.Lock()
	ce, hit := cache[key]
	if !hit {
		ce = &cacheEntry{}
		cache[key] = ce
	}
	cacheMu.Unlock()
	ce.once.Do(func() {
		ce.g, ce.err = loadOrBuild(e, name, scale)
	})
	if ce.err != nil {
		// Builder errors are not cached: generators never fail, but an
		// external file dataset can fail transiently (file not there yet),
		// and a once-pinned error would outlive the cause. Dropping the
		// entry lets the next Load retry; concurrent waiters deleting the
		// same entry is harmless.
		cacheMu.Lock()
		if cache[key] == ce {
			delete(cache, key)
		}
		cacheMu.Unlock()
	}
	return ce.g, ce.err
}

// MustLoad is Load that panics on errors; for tests and examples.
func MustLoad(name string, scale int) *graph.Graph {
	g, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
