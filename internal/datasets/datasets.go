// Package datasets names the scaled synthetic stand-ins for the six graphs
// in the paper's Table 4.2 and caches them per process.
//
// Scale 1 keeps every graph small enough that the full experiment suite runs
// in seconds; benchmarks can request larger scales. Relative sizes mirror
// the paper (road-usa > road-ca; twitter and uk-web are the largest).
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// Info describes one dataset: the paper's original statistics and the
// generator used for the stand-in.
type Info struct {
	Name       string
	Class      graph.DegreeClass // the class the paper assigns (Table 4.2)
	PaperEdges string            // as reported in Table 4.2
	PaperVerts string
	build      func(scale int) *graph.Graph
}

// registry holds the six datasets, keyed by name.
var registry = map[string]Info{
	"road-ca": {
		Name: "road-ca", Class: graph.LowDegree,
		PaperEdges: "5.5M", PaperVerts: "1.9M",
		build: func(s int) *graph.Graph {
			side := isqrt(12000 * s)
			return gen.RoadNet("road-ca", side, side, 0xca0)
		},
	},
	"road-usa": {
		Name: "road-usa", Class: graph.LowDegree,
		PaperEdges: "57.5M", PaperVerts: "23.6M",
		build: func(s int) *graph.Graph {
			side := isqrt(40000 * s)
			return gen.RoadNet("road-usa", side, side, 0x05a)
		},
	},
	"livejournal": {
		Name: "livejournal", Class: graph.HeavyTailed,
		PaperEdges: "68.5M", PaperVerts: "4.8M",
		build: func(s int) *graph.Graph {
			return gen.PrefAttach("livejournal", 9000*s, 8, 0x17e)
		},
	},
	"enwiki": {
		Name: "enwiki", Class: graph.HeavyTailed,
		PaperEdges: "101M", PaperVerts: "4.2M",
		build: func(s int) *graph.Graph {
			return gen.PrefAttach("enwiki", 6000*s, 12, 0xe4171)
		},
	},
	"twitter": {
		Name: "twitter", Class: graph.HeavyTailed,
		PaperEdges: "1.46B", PaperVerts: "41.6M",
		build: func(s int) *graph.Graph {
			return gen.PrefAttach("twitter", 16000*s, 10, 0x7417713)
		},
	},
	"uk-web": {
		Name: "uk-web", Class: graph.PowerLaw,
		PaperEdges: "3.71B", PaperVerts: "105.1M",
		build: func(s int) *graph.Graph {
			return gen.WebGraph("uk-web", gen.WebGraphConfig{
				N: 30000 * s, Alpha: 1.62, MaxOutD: 3000 * s,
				Locality: 0.86, Window: 64, Seed: 0x0b3b,
			})
		},
	},
}

// Names returns all dataset names in a stable order: road networks first,
// then heavy-tailed, then power-law — the column order of the paper's
// figures.
func Names() []string {
	return []string{"road-ca", "road-usa", "livejournal", "enwiki", "twitter", "uk-web"}
}

// Describe returns the dataset metadata for name.
func Describe(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, sortedKeys())
	}
	return info, nil
}

type cacheKey struct {
	name  string
	scale int
}

// cacheEntry builds each graph once per key: concurrent loaders of the
// same dataset share one build, and a cached road-ca never waits behind
// an in-progress uk-web build (the lock only guards the map, not the
// multi-second generator + CSR construction).
type cacheEntry struct {
	once sync.Once
	g    *graph.Graph
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}
)

// Load builds (or returns the cached) stand-in graph for name at the given
// scale. Scale 1 is the test-sized default; the generators are deterministic
// so the same (name, scale) always yields the same graph.
func Load(name string, scale int) (*graph.Graph, error) {
	if scale < 1 {
		scale = 1
	}
	info, err := Describe(name)
	if err != nil {
		return nil, err
	}
	key := cacheKey{name, scale}
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		g := info.build(scale)
		g.EnsureCSR()
		e.g = g
	})
	return e.g, nil
}

// MustLoad is Load that panics on unknown names; for tests and examples.
func MustLoad(name string, scale int) *graph.Graph {
	g, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

func sortedKeys() []string {
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
