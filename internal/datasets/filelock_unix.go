//go:build unix

package datasets

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path (creating it when
// missing) and returns the unlock. The lock file itself is never removed:
// unlinking a path other processes may be about to lock reintroduces the
// race the lock exists to close (two processes can then hold "the" lock
// on different inodes). A stray zero-byte .lock beside a cache entry is
// the cost of correctness here.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Close releases the flock; the explicit unlock keeps the window
		// tight when the caller holds the returned func past other work.
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck
		f.Close()
	}, nil
}
