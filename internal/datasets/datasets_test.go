package datasets

import (
	"testing"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("want the paper's 6 datasets, got %d", len(names))
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Name != n {
			t.Errorf("Describe(%q).Name = %q", n, info.Name)
		}
	}
	if _, err := Describe("facebook"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadCachesAndIsDeterministic(t *testing.T) {
	a := MustLoad("road-ca", 1)
	b := MustLoad("road-ca", 1)
	if a != b {
		t.Error("Load did not cache")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDatasetsLandInPaperDegreeClasses(t *testing.T) {
	// Table 4.2's classes are the entire basis of the decision trees; the
	// stand-ins must land in the same classes.
	for _, name := range Names() {
		info, _ := Describe(name)
		g := MustLoad(name, 1)
		cls := graph.Classify(g)
		if cls.Class != info.Class {
			t.Errorf("%s: classified %v (maxdeg=%d ratio=%.3f), paper class %v",
				name, cls.Class, cls.MaxDegree, cls.Fit.LowDegreeRatio, info.Class)
		}
	}
}

func TestScaleGrowsGraphs(t *testing.T) {
	small := MustLoad("livejournal", 1)
	big := MustLoad("livejournal", 2)
	if big.NumEdges() <= small.NumEdges() {
		t.Errorf("scale 2 (%d edges) not larger than scale 1 (%d)", big.NumEdges(), small.NumEdges())
	}
}

func TestRelativeSizesMatchPaper(t *testing.T) {
	// road-usa > road-ca; twitter and uk-web are the largest (Table 4.2).
	ca := MustLoad("road-ca", 1).NumEdges()
	usa := MustLoad("road-usa", 1).NumEdges()
	tw := MustLoad("twitter", 1).NumEdges()
	lj := MustLoad("livejournal", 1).NumEdges()
	if usa <= ca {
		t.Errorf("road-usa (%d) not larger than road-ca (%d)", usa, ca)
	}
	if tw <= lj {
		t.Errorf("twitter (%d) not larger than livejournal (%d)", tw, lj)
	}
}

// TestFig5_6ReplicationShape pins the paper's headline replication-factor
// orderings (Fig 5.6, §5.4.2):
//   - road networks: HDRF/Oblivious ≪ Random and Grid
//   - heavy-tailed (LJ/Twitter): Grid lowest
//   - power-law (uk-web): HDRF/Oblivious lower than Grid; Grid lower than Random
func TestFig5_6ReplicationShape(t *testing.T) {
	rf := func(g *graph.Graph, strategy string, parts int) float64 {
		s := partition.MustNew(strategy, partition.Options{HybridThreshold: 30})
		a, err := partition.Partition(g, s, parts, 1)
		if err != nil {
			t.Fatal(err)
		}
		return a.ReplicationFactor()
	}
	for _, road := range []string{"road-ca", "road-usa"} {
		g := MustLoad(road, 1)
		hdrf, obl, rnd, grid := rf(g, "HDRF", 9), rf(g, "Oblivious", 9), rf(g, "Random", 9), rf(g, "Grid", 9)
		if hdrf >= rnd || obl >= rnd {
			t.Errorf("%s: greedy (%0.2f/%0.2f) should beat Random (%0.2f)", road, hdrf, obl, rnd)
		}
		if hdrf >= grid {
			t.Errorf("%s: HDRF (%0.2f) should beat Grid (%0.2f)", road, hdrf, grid)
		}
	}
	for _, ht := range []string{"livejournal", "twitter", "enwiki"} {
		g := MustLoad(ht, 1)
		grid, hdrf, obl, rnd := rf(g, "Grid", 9), rf(g, "HDRF", 9), rf(g, "Oblivious", 9), rf(g, "Random", 9)
		if grid >= hdrf || grid >= obl {
			t.Errorf("%s: Grid (%0.2f) should beat greedy (%0.2f/%0.2f)", ht, grid, hdrf, obl)
		}
		if grid >= rnd {
			t.Errorf("%s: Grid (%0.2f) should beat Random (%0.2f)", ht, grid, rnd)
		}
	}
	g := MustLoad("uk-web", 1)
	grid, hdrf, obl, rnd := rf(g, "Grid", 25), rf(g, "HDRF", 25), rf(g, "Oblivious", 25), rf(g, "Random", 25)
	if hdrf >= grid || obl >= grid {
		t.Errorf("uk-web: greedy (%0.2f/%0.2f) should beat Grid (%0.2f)", hdrf, obl, grid)
	}
	if grid >= rnd {
		t.Errorf("uk-web: Grid (%0.2f) should beat Random (%0.2f)", grid, rnd)
	}
}
