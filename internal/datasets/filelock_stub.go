//go:build !unix

package datasets

// lockFile is a no-op where flock is unavailable: writers fall back to
// plain tmp+rename, which keeps individual writes atomic (readers never
// see a torn file) but lets concurrent writers do redundant work.
func lockFile(path string) (func(), error) { return func() {}, nil }
