package datasets

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphpart/internal/graph"
)

func TestManifestRoundTrip(t *testing.T) {
	m, err := BuildManifest("road-ca", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != SyntheticRoad || m.Class != "low-degree" {
		t.Errorf("road-ca manifest kind=%s class=%s", m.Kind, m.Class)
	}
	if m.Vertices == 0 || m.Edges == 0 || m.Provenance == "" {
		t.Errorf("manifest missing measured fields: %+v", m)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("manifest did not round-trip:\n out  %+v\n back %+v", m, back)
	}
}

func TestManifestSkewSeparatesClasses(t *testing.T) {
	road, err := BuildManifest("road-ca", 1)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := BuildManifest("twitter", 1)
	if err != nil {
		t.Fatal(err)
	}
	if road.Stats.Gini >= tw.Stats.Gini {
		t.Errorf("road Gini %.3f not below twitter Gini %.3f — skew stat is not separating classes",
			road.Stats.Gini, tw.Stats.Gini)
	}
	if road.Stats.MaxDegree >= tw.Stats.MaxDegree {
		t.Errorf("road max degree %d not below twitter %d", road.Stats.MaxDegree, tw.Stats.MaxDegree)
	}
}

func TestManifestUnknownName(t *testing.T) {
	if _, err := BuildManifest("no-such-graph", 1); err == nil {
		t.Error("BuildManifest accepted an unknown dataset")
	}
}

func TestDecodeManifestRejectsEmpty(t *testing.T) {
	if _, err := DecodeManifest(bytes.NewReader([]byte("{}"))); err == nil {
		t.Error("manifest without a name accepted")
	}
	if _, err := DecodeManifest(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("malformed manifest accepted")
	}
}

func TestRegisterFileExternalDataset(t *testing.T) {
	dir := t.TempDir()
	g := graph.FromEdges("ext", []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	})
	path := filepath.Join(dir, "ext.csrg")
	if err := graph.SaveCSR(g, path); err != nil {
		t.Fatal(err)
	}
	if err := RegisterFile("ext-test", path, graph.LowDegree); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregister("ext-test") })

	if err := RegisterFile("ext-test", path, graph.LowDegree); err == nil {
		t.Error("duplicate registration accepted")
	}

	found := false
	for _, n := range Names() {
		if n == "ext-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered dataset missing from Names() = %v", Names())
	}

	loaded := MustLoad("ext-test", 1)
	if loaded.Name != "ext-test" || loaded.NumEdges() != g.NumEdges() {
		t.Errorf("external load = %v, want 4 edges named ext-test", loaded)
	}
	m, err := BuildManifest("ext-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != External || m.Edges != 4 {
		t.Errorf("external manifest %+v", m)
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Info{}, func(int) (*graph.Graph, error) { return nil, nil }); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Info{Name: "x"}, nil); err == nil {
		t.Error("nil builder accepted")
	}
	if err := Register(Info{Name: "road-ca"}, func(int) (*graph.Graph, error) { return nil, nil }); err == nil {
		t.Error("builtin name shadowed")
	}
}

// TestDiskCacheRoundTrip pins the disk-cache contract: a first load writes a
// .csrg file; a second process-equivalent load (fresh in-memory cache) reads
// it back and yields a byte-identical edge list.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	SetCacheDir(dir)
	t.Cleanup(func() { SetCacheDir("") })

	// A private registration keeps this test independent of the shared
	// in-memory cache entries other tests may have populated.
	builds := 0
	if err := Register(Info{Name: "cache-test", Kind: SyntheticRoad, Class: graph.LowDegree},
		func(scale int) (*graph.Graph, error) {
			builds++
			return graph.FromEdges("cache-test", []graph.Edge{
				{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
			}), nil
		}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregister("cache-test") })

	first := MustLoad("cache-test", 1)
	if builds != 1 {
		t.Fatalf("builds = %d after first load", builds)
	}
	cached := CachePath(dir, "cache-test", 1)
	if _, err := os.Stat(cached); err != nil {
		t.Fatalf("disk cache not written: %v", err)
	}

	// Simulate a fresh process by clearing the in-memory cache entry.
	cacheMu.Lock()
	delete(cache, cacheKey{"cache-test", 1})
	cacheMu.Unlock()

	second := MustLoad("cache-test", 1)
	if builds != 1 {
		t.Errorf("builds = %d; second load should hit the disk cache", builds)
	}
	if !reflect.DeepEqual(first.Edges, second.Edges) {
		t.Errorf("disk-cached edges differ:\n first  %v\n second %v", first.Edges, second.Edges)
	}
	if second.Name != "cache-test" {
		t.Errorf("cached graph name %q", second.Name)
	}

	// A corrupt cache entry must be rebuilt, not trusted.
	if err := os.WriteFile(cached, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheMu.Lock()
	delete(cache, cacheKey{"cache-test", 1})
	cacheMu.Unlock()
	third := MustLoad("cache-test", 1)
	if builds != 2 {
		t.Errorf("builds = %d; corrupt cache should force a rebuild", builds)
	}
	if !reflect.DeepEqual(first.Edges, third.Edges) {
		t.Error("rebuild after corrupt cache produced different edges")
	}
}

// TestLoadRetriesAfterTransientBuilderError pins that a failed build is not
// pinned by the in-memory cache: external file datasets can fail transiently
// (file not downloaded yet) and must succeed on a later Load.
func TestLoadRetriesAfterTransientBuilderError(t *testing.T) {
	calls := 0
	if err := Register(Info{Name: "flaky-test", Kind: External, Class: graph.LowDegree},
		func(int) (*graph.Graph, error) {
			calls++
			if calls == 1 {
				return nil, os.ErrNotExist
			}
			return graph.FromEdges("flaky-test", []graph.Edge{{Src: 0, Dst: 1}}), nil
		}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregister("flaky-test") })

	if _, err := Load("flaky-test", 1); err == nil {
		t.Fatal("first load should fail")
	}
	g, err := Load("flaky-test", 1)
	if err != nil {
		t.Fatalf("second load still failing: %v", err)
	}
	if g.NumEdges() != 1 || calls != 2 {
		t.Errorf("retry produced |E|=%d after %d builder calls", g.NumEdges(), calls)
	}
}

// TestDiskCacheRejectsForeignIdentity pins that a cache file holding a
// different dataset (name collisions after sanitize, or a copied file) is
// treated as a miss, never served as the requested dataset.
func TestDiskCacheRejectsForeignIdentity(t *testing.T) {
	dir := t.TempDir()
	SetCacheDir(dir)
	t.Cleanup(func() { SetCacheDir("") })

	if err := Register(Info{Name: "ident-test", Kind: SyntheticRoad, Class: graph.LowDegree},
		func(int) (*graph.Graph, error) {
			return graph.FromEdges("ident-test", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}), nil
		}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregister("ident-test") })

	// Plant a valid .csrg for a *different* graph at ident-test's cache path.
	foreign := graph.FromEdges("some-other-graph", []graph.Edge{{Src: 0, Dst: 1}})
	if err := graph.SaveCSR(foreign, CachePath(dir, "ident-test", 1)); err != nil {
		t.Fatal(err)
	}

	g := MustLoad("ident-test", 1)
	if g.Name != "ident-test" || g.NumEdges() != 2 {
		t.Errorf("foreign cache entry served: got %v", g)
	}
	// The rebuild must have replaced the foreign entry with the real one.
	cached, err := graph.LoadCSR(CachePath(dir, "ident-test", 1))
	if err != nil || cached.Name != "ident-test" {
		t.Errorf("cache not repaired: %v, %v", cached, err)
	}
}

func TestCachePathSanitizesNames(t *testing.T) {
	p := CachePath("/tmp/c", "weird/name with spaces", 2)
	if filepath.Dir(p) != "/tmp/c" {
		t.Errorf("sanitized path escaped the cache dir: %s", p)
	}
	if filepath.Base(p) != "weird_name_with_spaces.s2.csrg" {
		t.Errorf("unexpected cache filename %s", filepath.Base(p))
	}
}
