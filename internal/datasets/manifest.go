package datasets

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"graphpart/internal/graph"
)

// DegreeStats are the measured degree-skew statistics of one dataset build —
// the graph features that drive strategy choice in the paper's decision
// trees (max degree for the low-degree test, the power-law fit position for
// heavy-tailed vs power-law) and that ML-based strategy selection extracts.
type DegreeStats struct {
	MaxDegree   int     `json:"maxDegree"`
	MaxInDegree int     `json:"maxInDegree"`
	AvgDegree   float64 `json:"avgDegree"`
	// Gini is the Gini coefficient of the total-degree distribution: 0 for
	// perfectly uniform degrees (road lattices), approaching 1 as a few hubs
	// hold most of the edges.
	Gini float64 `json:"gini"`
	// Alpha/R2/LowDegreeRatio come from the log-log power-law fit of the
	// degree histogram (graph.FitPowerLaw): the regression the paper draws
	// through Figure 5.8 and uses to separate heavy-tailed from power-law.
	Alpha          float64 `json:"alpha"`
	R2             float64 `json:"r2"`
	LowDegreeRatio float64 `json:"lowDegreeRatio"`
}

// Manifest is the full description of one dataset at one scale: the static
// registry info plus the measured size and skew of the built graph. It
// round-trips through JSON, so manifests can sit next to cached .csrg files
// and feed downstream tooling.
type Manifest struct {
	Name       string `json:"name"`
	Kind       Kind   `json:"kind"`
	Class      string `json:"class"`
	Scale      int    `json:"scale"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Provenance string `json:"provenance,omitempty"`
	// PaperVerts/PaperEdges are Table 4.2's real-dataset sizes the stand-in
	// represents (empty for external datasets).
	PaperVerts string      `json:"paperVertices,omitempty"`
	PaperEdges string      `json:"paperEdges,omitempty"`
	Stats      DegreeStats `json:"stats"`
}

// BuildManifest loads the dataset (through both caches) and measures it.
func BuildManifest(name string, scale int) (Manifest, error) {
	if scale < 1 {
		scale = 1
	}
	info, err := Describe(name)
	if err != nil {
		return Manifest{}, err
	}
	g, err := Load(name, scale)
	if err != nil {
		return Manifest{}, err
	}
	cls := graph.Classify(g)
	return Manifest{
		Name:       info.Name,
		Kind:       info.Kind,
		Class:      cls.Class.String(),
		Scale:      scale,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Provenance: info.Provenance,
		PaperVerts: info.PaperVerts,
		PaperEdges: info.PaperEdges,
		Stats:      statsFor(g, cls),
	}, nil
}

// MeasureManifest describes an unregistered graph: an External-kind
// manifest with the measured class, sizes and skew statistics — the
// feature vector cmd/decide builds for -input files.
func MeasureManifest(g *graph.Graph) Manifest {
	cls := graph.Classify(g)
	return Manifest{
		Name:     g.Name,
		Kind:     External,
		Class:    cls.Class.String(),
		Scale:    1,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Stats:    statsFor(g, cls),
	}
}

// MeasureStats measures the degree-skew statistics of an arbitrary graph —
// the same numbers BuildManifest records for registered datasets.
func MeasureStats(g *graph.Graph) DegreeStats {
	return statsFor(g, graph.Classify(g))
}

// statsFor derives the manifest statistics from an already-computed
// classification, so callers that need both never classify twice.
func statsFor(g *graph.Graph, cls graph.Classification) DegreeStats {
	if cls.Class == graph.LowDegree {
		// Classify skips the power-law fit below the low-degree cutoff;
		// manifests always carry it (a lattice's fit position is still a
		// feature).
		cls.Fit = graph.FitPowerLaw(g.DegreeHistogram())
	}
	return DegreeStats{
		MaxDegree:      cls.MaxDegree,
		MaxInDegree:    g.MaxInDegree(),
		AvgDegree:      cls.AvgDegree,
		Gini:           giniDegree(g),
		Alpha:          cls.Fit.Alpha,
		R2:             cls.Fit.R2,
		LowDegreeRatio: cls.Fit.LowDegreeRatio,
	}
}

// Encode writes the manifest as indented JSON.
func (m Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeManifest reads a manifest back from JSON.
func DecodeManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("datasets: manifest decode: %w", err)
	}
	if m.Name == "" {
		return Manifest{}, fmt.Errorf("datasets: manifest without a name")
	}
	return m, nil
}

// giniDegree computes the Gini coefficient of the total-degree distribution
// from the degree histogram: G = Σ (2i−n−1)·d_i / (n·Σd) over degrees sorted
// ascending, with i the 1-based rank.
func giniDegree(g *graph.Graph) float64 {
	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	var (
		rank      float64 // vertices seen so far
		weightSum float64 // Σ (2i−n−1)·d_i accumulated per histogram bucket
		degSum    float64
	)
	n := float64(g.NumVertices())
	for _, d := range degrees {
		c := float64(hist[d])
		// The c vertices of degree d occupy ranks rank+1 … rank+c; the sum
		// of (2i−n−1) over that run has the closed form below.
		sumRanks := c*(2*rank+c+1) - c*(n+1)
		weightSum += sumRanks * float64(d)
		degSum += c * float64(d)
		rank += c
	}
	if n == 0 || degSum == 0 {
		return 0
	}
	return weightSum / (n * degSum)
}
