package datasets

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"graphpart/internal/graph"
)

func lockTestGraph(name string, edges []graph.Edge) *graph.Graph {
	g := graph.FromEdges(name, edges)
	g.EnsureCSR()
	return g
}

// TestLockFileMutualExclusion proves lockFile is an actual mutex: across
// independent opens of the same path, at most one holder is ever inside
// the critical section.
func TestLockFileMutualExclusion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	var inside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				unlock, err := lockFile(path)
				if err != nil {
					t.Error(err)
					return
				}
				if n := inside.Add(1); n != 1 {
					t.Errorf("lock held by %d goroutines at once", n)
				}
				inside.Add(-1)
				unlock()
			}
		}()
	}
	wg.Wait()
}

// TestWriteCacheParallelHammer races many writers of the same cache entry
// (flock conflicts between separate opens even within one process, so
// goroutines exercise the same serialization cross-process writers hit)
// and asserts the surviving entry is whole and correctly named.
func TestWriteCacheParallelHammer(t *testing.T) {
	dir := t.TempDir()
	g := lockTestGraph("hammer-test", []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 0, Dst: 3},
	})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				writeCache(dir, "hammer-test", 1, g)
			}
		}()
	}
	wg.Wait()
	got, err := graph.LoadCSR(CachePath(dir, "hammer-test", 1))
	if err != nil {
		t.Fatalf("cache entry unreadable after hammer: %v", err)
	}
	if got.Name != "hammer-test" || got.NumEdges() != g.NumEdges() || got.NumVertices() != g.NumVertices() {
		t.Fatalf("cache entry corrupted: name=%q edges=%d verts=%d",
			got.Name, got.NumEdges(), got.NumVertices())
	}
}

// TestWriteCacheRevalidatesUnderLock pins the losing-writer path: once a
// valid entry exists, a second writeCache for the same identity skips its
// redundant write instead of renaming over the winner.
func TestWriteCacheRevalidatesUnderLock(t *testing.T) {
	dir := t.TempDir()
	first := lockTestGraph("reval-test", []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	writeCache(dir, "reval-test", 1, first)

	// Same registered identity, different content — the deterministic-builder
	// contract says this can't happen for real datasets, which is exactly why
	// the revalidation may keep the existing entry.
	second := lockTestGraph("reval-test", []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	})
	writeCache(dir, "reval-test", 1, second)

	got, err := graph.LoadCSR(CachePath(dir, "reval-test", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != first.NumEdges() {
		t.Fatalf("second writer replaced a valid entry: %d edges, want %d",
			got.NumEdges(), first.NumEdges())
	}
}

// TestLoadParallelSharedDiskCache drives the public path: many goroutines
// Load the same dataset with the disk cache on; the entry must end up
// whole and every load must agree.
func TestLoadParallelSharedDiskCache(t *testing.T) {
	dir := t.TempDir()
	SetCacheDir(dir)
	t.Cleanup(func() { SetCacheDir("") })

	var builds atomic.Int32
	if err := Register(Info{Name: "lock-load-test", Kind: SyntheticRoad, Class: graph.LowDegree},
		func(int) (*graph.Graph, error) {
			builds.Add(1)
			return lockTestGraph("lock-load-test", []graph.Edge{
				{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
			}), nil
		}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := Load("lock-load-test", 1)
			if err != nil {
				t.Error(err)
				return
			}
			if g.NumEdges() != 3 {
				t.Errorf("got %d edges, want 3", g.NumEdges())
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times; the in-process cache must singleflight to 1", n)
	}
	if _, err := graph.LoadCSR(CachePath(dir, "lock-load-test", 1)); err != nil {
		t.Fatalf("disk cache entry unreadable: %v", err)
	}
}
