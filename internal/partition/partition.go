// Package partition implements the paper's primary subject: the thirteen
// partitioning strategies shipped by PowerGraph, PowerLyra and GraphX
// (Table 1.1 plus the thesis's 1D-Target variant and resilient Grid), and
// the vertex-cut bookkeeping — edge assignments, vertex replicas, masters,
// replication factor, and balance — that every engine and experiment is
// built on.
//
// # Ingress capabilities
//
// Strategies are dispatched by capability, never by name. Beyond the base
// Strategy interface, a strategy may implement:
//
//   - StatelessStrategy: placement is a pure per-edge function (the hash
//     family: Random, CanonicalRandom, AsymRandom, 1D, 1D-Target, 2D, Grid,
//     ResilientGrid, PDS). The edge stream shards arbitrarily across
//     workers; per-vertex master hints, when produced, come from the
//     assigner's MasterHinter per vertex shard.
//   - StreamingStrategy: single-pass greedy ingress over independent
//     per-loader state (Oblivious, HDRF), matching the paper's
//     one-loader-per-machine semantics (§5.2.2). Loader blocks run
//     concurrently and the result is identical to the sequential pass.
//   - MultiPassStrategy: cannot stream in one bounded-memory pass (Hybrid,
//     H-Ginger); declares its pass structure and the reason.
//
// ShapeOf folds these into an IngressShape for schedulers and cost models.
// New strategies self-register via Register from an init function; no
// central construction switch exists.
//
// Ingress runs either materialized — Partition / ParallelPartition produce
// an Assignment over an in-memory graph — or streamed: a StreamBuilder
// consumes EdgeBatch chunks for a stateless strategy in O(|V|·P/8) memory
// without ever holding the edge list.
package partition

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/metrics"
)

// Result is what a Strategy produces: a partition id per edge, and
// optionally a preferred master partition per vertex (PowerLyra's Hybrid
// family places low-degree masters with their in-edges; -1 or a missing
// hint means "pick the default master").
type Result struct {
	EdgeParts  []int32
	MasterHint []int32 // optional; len 0 or NumVertices
}

// Strategy assigns every edge of a graph to one of numParts partitions.
// Implementations must be deterministic for a given seed.
type Strategy interface {
	// Name returns the strategy's display name as used in the paper.
	Name() string
	// Passes returns how many passes over the edge list the strategy
	// makes during ingress (1 for all streaming strategies; 2 for Hybrid;
	// 3 for Hybrid-Ginger). The ingress-time and memory models use this.
	Passes() int
	// Partition assigns edges to partitions.
	Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error)
}

// HeuristicStrategy is implemented by the greedy strategies (Oblivious,
// HDRF, Hybrid-Ginger) whose per-edge ingress cost scales with the number
// of candidate partitions examined. The ingress model distinguishes these
// from O(1) hash-based strategies.
type HeuristicStrategy interface {
	Strategy
	// Heuristic reports that per-edge assignment work is O(numParts).
	Heuristic() bool
}

// Assignment is a fully-materialized vertex-cut partitioning of a graph:
// every edge placed on a partition, replica sets and masters derived, and
// the paper's quality metrics precomputed.
type Assignment struct {
	G        *graph.Graph
	NumParts int
	Strategy string
	Passes   int

	EdgeParts []int32
	Masters   []int32 // -1 for isolated vertices
	EdgeCount []int64 // edges per partition (aliases the quality summary)

	replicas     *bitMatrix // partitions holding any edge of v
	inEdgeParts  *bitMatrix // partitions holding ≥1 in-edge of v
	outEdgeParts *bitMatrix // partitions holding ≥1 out-edge of v

	// q holds the aggregate quality summary. The one-shot build is the
	// replay-from-empty case of the same incremental accumulator
	// PartitionState maintains under churn.
	q *metrics.Quality
}

// Partition runs a strategy against a graph and materializes the result
// sequentially. ParallelPartition is the multi-worker equivalent; both
// produce identical assignments.
func Partition(g *graph.Graph, s Strategy, numParts int, seed uint64) (*Assignment, error) {
	if numParts < 1 {
		return nil, fmt.Errorf("partition: numParts must be ≥1, got %d", numParts)
	}
	res, err := s.Partition(g, numParts, seed)
	if err != nil {
		return nil, fmt.Errorf("partition: strategy %s: %w", s.Name(), err)
	}
	if len(res.EdgeParts) != g.NumEdges() {
		return nil, fmt.Errorf("partition: strategy %s returned %d assignments for %d edges",
			s.Name(), len(res.EdgeParts), g.NumEdges())
	}
	return newAssignment(g, s.Name(), s.Passes(), numParts, seed, res, 1)
}

// newAssignment materializes a strategy result into an Assignment using the
// given number of workers (≤1 means serial). Worker count never changes the
// result, only wall-clock. The strategy is identified by name and pass
// count rather than interface so deserialized assignments (whose strategy
// no longer exists as code) rebuild through the same validated path.
func newAssignment(g *graph.Graph, name string, passes, numParts int, seed uint64, res *Result, workers int) (*Assignment, error) {
	n := g.NumVertices()
	a := &Assignment{
		G:            g,
		NumParts:     numParts,
		Strategy:     name,
		Passes:       passes,
		EdgeParts:    res.EdgeParts,
		q:            metrics.NewQuality(numParts),
		replicas:     newBitMatrix(n, numParts),
		inEdgeParts:  newBitMatrix(n, numParts),
		outEdgeParts: newBitMatrix(n, numParts),
	}
	a.EdgeCount = a.q.EdgeCounts()
	if workers > 1 {
		if err := a.buildParallel(res, seed, workers); err != nil {
			return nil, err
		}
		return a, nil
	}
	for i, e := range g.Edges {
		p := res.EdgeParts[i]
		if p < 0 || int(p) >= numParts {
			return nil, fmt.Errorf("partition: strategy %s placed edge %d on partition %d (numParts=%d)",
				a.Strategy, i, p, numParts)
		}
		a.q.AddEdge(int(p))
		a.replicas.set(int(e.Src), int(p))
		a.replicas.set(int(e.Dst), int(p))
		a.outEdgeParts.set(int(e.Src), int(p))
		a.inEdgeParts.set(int(e.Dst), int(p))
	}

	// Pick masters. PowerGraph picks one replica at random (§5.1.1); we
	// pick deterministically by hashing the vertex over its replica list.
	// A strategy's MasterHint overrides this when the hinted partition
	// actually holds a replica (Hybrid's low-degree masters).
	a.Masters = make([]int32, n)
	for v := 0; v < n; v++ {
		reps := a.replicas.count(v)
		if reps == 0 {
			a.Masters[v] = -1
			continue
		}
		a.q.VertexPlaced()
		a.replicas.forEach(v, a.q.AddReplica)
		hint := int32(-1)
		if len(res.MasterHint) == n {
			hint = res.MasterHint[v]
		}
		a.Masters[v] = chooseMaster(a.replicas, v, reps, hint, numParts, seed)
	}
	return a, nil
}

// Replicas returns the number of partitions vertex v is replicated on
// (master included). Zero for isolated vertices.
func (a *Assignment) Replicas(v graph.VertexID) int { return a.replicas.count(int(v)) }

// HasReplica reports whether partition p holds a replica of v.
func (a *Assignment) HasReplica(v graph.VertexID, p int) bool { return a.replicas.has(int(v), p) }

// ForEachReplica calls fn for each partition holding a replica of v.
func (a *Assignment) ForEachReplica(v graph.VertexID, fn func(p int)) {
	a.replicas.forEach(int(v), fn)
}

// Master returns the master partition of v, or -1 if v is isolated.
func (a *Assignment) Master(v graph.VertexID) int { return int(a.Masters[v]) }

// InEdgePartCount returns how many partitions hold at least one in-edge of v.
func (a *Assignment) InEdgePartCount(v graph.VertexID) int { return a.inEdgeParts.count(int(v)) }

// OutEdgePartCount returns how many partitions hold at least one out-edge of v.
func (a *Assignment) OutEdgePartCount(v graph.VertexID) int { return a.outEdgeParts.count(int(v)) }

// HasInEdges reports whether partition p holds ≥1 in-edge of v.
func (a *Assignment) HasInEdges(v graph.VertexID, p int) bool { return a.inEdgeParts.has(int(v), p) }

// HasOutEdges reports whether partition p holds ≥1 out-edge of v.
func (a *Assignment) HasOutEdges(v graph.VertexID, p int) bool { return a.outEdgeParts.has(int(v), p) }

// InEdgesLocalToMaster reports whether every in-edge of v lives on v's
// master partition — the condition under which PowerLyra's hybrid engine
// performs a purely local gather for an in-gathering application (§6.1).
func (a *Assignment) InEdgesLocalToMaster(v graph.VertexID) bool {
	m := a.Master(v)
	if m < 0 {
		return true
	}
	return a.inEdgeParts.onlyCol(int(v), m)
}

// OutEdgesLocalToMaster is InEdgesLocalToMaster for out-edges.
func (a *Assignment) OutEdgesLocalToMaster(v graph.VertexID) bool {
	m := a.Master(v)
	if m < 0 {
		return true
	}
	return a.outEdgeParts.onlyCol(int(v), m)
}

// ReplicationFactor returns the average number of images per vertex over
// all non-isolated vertices — the paper's headline partition-quality metric
// (§5.1.1).
func (a *Assignment) ReplicationFactor() float64 { return a.q.ReplicationFactor() }

// TotalReplicas returns the total number of vertex images across all
// partitions.
func (a *Assignment) TotalReplicas() int64 { return a.q.TotalReplicas() }

// EdgeBalance returns max(edges per partition) / mean(edges per partition),
// ≥1; 1.0 is perfectly balanced. The load-balance metric the strategies'
// heuristics optimize.
func (a *Assignment) EdgeBalance() float64 { return a.q.EdgeBalance() }

// ReplicasOnPart returns the number of vertex images partition p holds
// (precomputed during the build; O(1)).
func (a *Assignment) ReplicasOnPart(p int) int64 { return a.q.ReplicasOnPart(p) }

// Quality returns the assignment's aggregate quality summary.
func (a *Assignment) Quality() *metrics.Quality { return a.q }

// Mirrors returns the number of mirror images of v (replicas minus master).
func (a *Assignment) Mirrors(v graph.VertexID) int {
	r := a.Replicas(v)
	if r == 0 {
		return 0
	}
	return r - 1
}
