package partition

import (
	"errors"
	"strings"
	"testing"

	"graphpart/internal/graph"
)

func TestStreamBuilderFeedAfterFinish(t *testing.T) {
	b, err := NewStreamBuilder(Random{}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Feed(EdgeBatch{Edges: []graph.Edge{{Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	sum := b.Finish()
	if sum.NumEdges != 1 {
		t.Fatalf("summary has %d edges, want 1", sum.NumEdges)
	}
	err = b.Feed(EdgeBatch{Edges: []graph.Edge{{Src: 1, Dst: 2}}})
	if !errors.Is(err, ErrFeedAfterFinish) {
		t.Fatalf("Feed after Finish: got %v, want ErrFeedAfterFinish", err)
	}
	// Finish is idempotent and the late Feed must not have leaked in.
	if again := b.Finish(); again != sum || again.NumEdges != 1 {
		t.Fatalf("second Finish returned a different summary (%d edges)", again.NumEdges)
	}
}

func TestShardedFeedAfterFinish(t *testing.T) {
	sb, err := NewShardedStreamBuilder(Random{}, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Feed(EdgeBatch{Edges: []graph.Edge{{Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Finish(); err != nil {
		t.Fatal(err)
	}
	err = sb.Feed(EdgeBatch{Edges: []graph.Edge{{Src: 1, Dst: 2}}})
	if !errors.Is(err, ErrFeedAfterFinish) {
		t.Fatalf("sharded Feed after Finish: got %v, want ErrFeedAfterFinish", err)
	}
	sum, err := sb.Finish()
	if err != nil || sum.NumEdges != 1 {
		t.Fatalf("second Finish: %v, %d edges (want 1)", err, sum.NumEdges)
	}
}

func TestShardedRejectsNonStateless(t *testing.T) {
	_, err := NewShardedStreamBuilder(MustNew("HDRF", Options{}), 4, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "StreamingStrategy") {
		t.Fatalf("HDRF: got %v, want error naming StreamingStrategy", err)
	}
	_, err = NewShardedStreamBuilder(MustNew("Hybrid", Options{HybridThreshold: 30}), 4, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "MultiPassStrategy") {
		t.Fatalf("Hybrid: got %v, want error naming MultiPassStrategy", err)
	}
	if _, err := NewShardedStreamBuilder(MustNew("Grid", Options{}), 9, 2, 1); err != nil {
		t.Fatalf("stateless strategy rejected: %v", err)
	}
}
