package partition

import (
	"bytes"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/metrics"
)

// The conformance suite is the registration gate for strategies: one
// table-driven property set executed against EVERY registered strategy on a
// power-law and a road graph. A strategy that registers but violates any of
// these properties — assignment completeness, summary agreement, parallel
// and seed determinism, the incremental contract, serialization — fails
// here by construction, without anyone writing a strategy-specific test.
// The paper's 13 and the post-paper families (HEP, JaBeJaSwap, Multilevel)
// are all proven against the same contract; CI runs this suite under -race.

// conformanceParts picks a partition count every strategy accepts: Grid
// needs a perfect square, PDS needs p²+p+1.
func conformanceParts(name string) int {
	if name == "PDS" {
		return 7
	}
	return 9
}

// conformanceOptions pins Loaders to one so the greedy strategies' one-shot
// pass uses the same single loader state the persistent incremental
// assigner does — the configuration under which add-only churn must equal
// one-shot ingress exactly.
func conformanceOptions() Options {
	return Options{HybridThreshold: 30, Loaders: 1}
}

// conformanceCase is one property of the strategy contract.
type conformanceCase struct {
	name string
	run  func(t *testing.T, s Strategy, g *graph.Graph, numParts int)
}

var conformanceSuite = []conformanceCase{
	{"every-edge-once", checkEveryEdgeOnce},
	{"summary-agrees-with-quality", checkSummaryAgreesWithQuality},
	{"parallel-matches-sequential", checkParallelMatchesSequential},
	{"seed-deterministic", checkSeedDeterministic},
	{"incremental-add-only", checkIncrementalAddOnly},
	{"serialize-round-trip", checkSerializeRoundTrip},
}

func TestConformance(t *testing.T) {
	for _, g := range []*graph.Graph{testGraph(), roadGraph()} {
		for _, name := range AllNames() {
			s := MustNew(name, conformanceOptions())
			numParts := conformanceParts(name)
			for _, c := range conformanceSuite {
				g, s, c := g, s, c
				t.Run(g.Name+"/"+name+"/"+c.name, func(t *testing.T) {
					t.Parallel()
					c.run(t, s, g, numParts)
				})
			}
		}
	}
}

// checkEveryEdgeOnce: the strategy returns exactly one in-range partition
// per edge, the per-partition counts sum back to the edge count, and the
// replication factor lands in [1, numParts].
func checkEveryEdgeOnce(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	a, err := Partition(g, s, numParts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeParts) != g.NumEdges() {
		t.Fatalf("%d assignments for %d edges", len(a.EdgeParts), g.NumEdges())
	}
	for i, p := range a.EdgeParts {
		if p < 0 || int(p) >= numParts {
			t.Fatalf("edge %d on partition %d (numParts=%d)", i, p, numParts)
		}
	}
	var total int64
	for _, c := range a.EdgeCount {
		total += c
	}
	if total != int64(g.NumEdges()) {
		t.Fatalf("edge counts sum to %d, want %d", total, g.NumEdges())
	}
	if rf := a.ReplicationFactor(); rf < 1 || rf > float64(numParts) {
		t.Fatalf("replication factor %v out of range [1,%d]", rf, numParts)
	}
}

// checkSummaryAgreesWithQuality: the assignment's precomputed Quality
// summary equals an independent accumulator replaying the edge placements
// from scratch — per-partition counts, per-vertex replica sets, totals,
// replication factor and balance.
func checkSummaryAgreesWithQuality(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	a, err := Partition(g, s, numParts, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	q := metrics.NewQuality(numParts)
	reps := newBitMatrix(n, numParts)
	for i, e := range g.Edges {
		p := int(a.EdgeParts[i])
		q.AddEdge(p)
		reps.set(int(e.Src), p)
		reps.set(int(e.Dst), p)
	}
	for v := 0; v < n; v++ {
		c := reps.count(v)
		if got := a.Replicas(graph.VertexID(v)); got != c {
			t.Fatalf("vertex %d: %d replicas in summary, replay has %d", v, got, c)
		}
		if c == 0 {
			continue
		}
		q.VertexPlaced()
		reps.forEach(v, q.AddReplica)
	}
	for p := 0; p < numParts; p++ {
		if a.EdgeCount[p] != q.EdgesOn(p) {
			t.Errorf("part %d: %d edges in summary, replay has %d", p, a.EdgeCount[p], q.EdgesOn(p))
		}
		if a.ReplicasOnPart(p) != q.ReplicasOnPart(p) {
			t.Errorf("part %d: %d images in summary, replay has %d", p, a.ReplicasOnPart(p), q.ReplicasOnPart(p))
		}
	}
	if a.TotalReplicas() != q.TotalReplicas() {
		t.Errorf("total replicas %d, replay has %d", a.TotalReplicas(), q.TotalReplicas())
	}
	if a.ReplicationFactor() != q.ReplicationFactor() {
		t.Errorf("RF %v, replay has %v", a.ReplicationFactor(), q.ReplicationFactor())
	}
	if a.EdgeBalance() != q.EdgeBalance() {
		t.Errorf("balance %v, replay has %v", a.EdgeBalance(), q.EdgeBalance())
	}
	if a.Quality().NumEdges() != q.NumEdges() {
		t.Errorf("quality edge count %d, replay has %d", a.Quality().NumEdges(), q.NumEdges())
	}
}

// checkParallelMatchesSequential: ParallelPartition is byte-identical to
// the sequential path at every worker count — parallelism changes
// wall-clock, never placement.
func checkParallelMatchesSequential(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	seq, err := Partition(g, s, numParts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		par, err := ParallelPartition(g, s, numParts, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq.EdgeParts {
			if seq.EdgeParts[i] != par.EdgeParts[i] {
				t.Fatalf("workers=%d: edge %d on %d parallel, %d sequential",
					workers, i, par.EdgeParts[i], seq.EdgeParts[i])
			}
		}
		for v := range seq.Masters {
			if seq.Masters[v] != par.Masters[v] {
				t.Fatalf("workers=%d: vertex %d master %d parallel, %d sequential",
					workers, v, par.Masters[v], seq.Masters[v])
			}
		}
	}
}

// checkSeedDeterministic: identical (graph, numParts, seed) runs produce
// byte-identical placements and masters.
func checkSeedDeterministic(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	for _, seed := range []uint64{1, 42} {
		a1, err := Partition(g, s, numParts, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a2, err := Partition(g, s, numParts, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range a1.EdgeParts {
			if a1.EdgeParts[i] != a2.EdgeParts[i] {
				t.Fatalf("seed %d: edge %d differs between identical runs", seed, i)
			}
		}
		for v := range a1.Masters {
			if a1.Masters[v] != a2.Masters[v] {
				t.Fatalf("seed %d: vertex %d master differs between identical runs", seed, v)
			}
		}
	}
}

// checkIncrementalAddOnly: the strategy either assigns incrementally — in
// which case an add-only churn trace must reproduce one-shot ingress
// exactly — or refuses with ErrNotIncremental (the multi-pass family), in
// which case PartitionState's rebuild fallback must still converge to the
// one-shot summaries.
func checkIncrementalAddOnly(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	inc, err := AsIncremental(s, numParts, 1)
	shape := ShapeOf(s, numParts)
	switch {
	case err != nil:
		if !IsNotIncremental(err) {
			t.Fatalf("AsIncremental: %v", err)
		}
		if shape.Passes <= 1 {
			t.Fatalf("single-pass strategy refused incremental assignment: %v", err)
		}
	case inc == nil:
		t.Fatal("AsIncremental returned neither an assigner nor an error")
	}
	st, err := NewPartitionState(s, numParts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	applyTrace(t, st, g, gen.ChurnConfig{Windows: 5, DelFrac: 0, Seed: 7})
	a, err := Partition(g, s, numParts, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertStateMatchesAssignment(t, s.Name(), st, a)
}

// checkSerializeRoundTrip: Encode → ReadAssignment preserves placements,
// masters and the derived metrics exactly.
func checkSerializeRoundTrip(t *testing.T, s Strategy, g *graph.Graph, numParts int) {
	a, err := Partition(g, s, numParts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAssignment(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Strategy != a.Strategy || b.NumParts != a.NumParts || b.Passes != a.Passes {
		t.Fatalf("identity (%s,%d,%d) round-tripped to (%s,%d,%d)",
			a.Strategy, a.NumParts, a.Passes, b.Strategy, b.NumParts, b.Passes)
	}
	for i := range a.EdgeParts {
		if a.EdgeParts[i] != b.EdgeParts[i] {
			t.Fatalf("edge %d on %d, round-tripped to %d", i, a.EdgeParts[i], b.EdgeParts[i])
		}
	}
	for v := range a.Masters {
		if a.Masters[v] != b.Masters[v] {
			t.Fatalf("vertex %d master %d, round-tripped to %d", v, a.Masters[v], b.Masters[v])
		}
	}
	if a.ReplicationFactor() != b.ReplicationFactor() || a.EdgeBalance() != b.EdgeBalance() {
		t.Fatalf("metrics (%v,%v) round-tripped to (%v,%v)",
			a.ReplicationFactor(), a.EdgeBalance(), b.ReplicationFactor(), b.EdgeBalance())
	}
}

// FuzzConformance drives random small edge lists through random registered
// strategies, asserting the conformance invariants never panic: whatever
// the input, a successful Partition assigns every edge exactly once to an
// in-range partition, keeps RF in [1, numParts], and is deterministic for
// its seed. Partition-count rejections (Grid's perfect square, PDS's
// p²+p+1) are valid outcomes, not failures. The seed corpus replays the
// corruption-matrix seed graph's shapes — hubs, duplicate edges, a self
// loop, isolated ids — for every strategy family.
func FuzzConformance(f *testing.F) {
	// The graph loaders' fuzz seed graph, byte-encoded as (src, dst) pairs.
	matrixGraph := []byte{0, 1, 1, 2, 2, 0, 5, 1, 1, 5, 0, 1, 7, 0, 3, 3}
	names := AllNames()
	for i := range names {
		f.Add(matrixGraph, uint8(i), uint8(9), uint64(1))
	}
	f.Add([]byte{}, uint8(0), uint8(9), uint64(1))     // empty graph
	f.Add([]byte{4, 4}, uint8(4), uint8(1), uint64(7)) // lone self loop
	f.Add(matrixGraph, uint8(7), uint8(7), uint64(42)) // PDS-compatible count
	f.Add(matrixGraph[:6], uint8(5), uint8(13), uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, stratIdx, parts uint8, seed uint64) {
		edges := make([]graph.Edge, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.VertexID(data[i]), Dst: graph.VertexID(data[i+1])})
		}
		g := graph.FromEdges("fuzz", edges)
		name := names[int(stratIdx)%len(names)]
		s := MustNew(name, Options{HybridThreshold: 4, Loaders: 1})
		numParts := int(parts)%13 + 1
		a, err := Partition(g, s, numParts, seed)
		if err != nil {
			return // partition-count rejection: a documented, non-panicking outcome
		}
		if len(a.EdgeParts) != len(edges) {
			t.Fatalf("%s: %d assignments for %d edges", name, len(a.EdgeParts), len(edges))
		}
		var total int64
		for p, c := range a.EdgeCount {
			if c < 0 {
				t.Fatalf("%s: negative edge count on partition %d", name, p)
			}
			total += c
		}
		if total != int64(len(edges)) {
			t.Fatalf("%s: edge counts sum to %d, want %d", name, total, len(edges))
		}
		for i, p := range a.EdgeParts {
			if p < 0 || int(p) >= numParts {
				t.Fatalf("%s: edge %d on partition %d (numParts=%d)", name, i, p, numParts)
			}
		}
		if len(edges) > 0 {
			if rf := a.ReplicationFactor(); rf < 1 || rf > float64(numParts) {
				t.Fatalf("%s: replication factor %v out of range [1,%d]", name, rf, numParts)
			}
		}
		again, err := Partition(g, s, numParts, seed)
		if err != nil {
			t.Fatalf("%s: second run errored: %v", name, err)
		}
		for i := range a.EdgeParts {
			if a.EdgeParts[i] != again.EdgeParts[i] {
				t.Fatalf("%s: edge %d differs between identical runs", name, i)
			}
		}
	})
}
