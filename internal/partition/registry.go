package partition

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// System identifies one of the three graph processing systems the paper
// evaluates.
type System string

// The three systems of Table 1.1, plus the thesis's "all strategies in one
// system" configurations of chapters 8 and 9, plus the repo's own
// every-registered-family configuration (the paper's 13 and the post-paper
// families: HEP, JaBeJaSwap, Multilevel).
const (
	PowerGraph   System = "PowerGraph"
	PowerLyra    System = "PowerLyra"
	GraphX       System = "GraphX"
	PowerLyraAll System = "PowerLyra-All"
	GraphXAll    System = "GraphX-All"
	AllFamilies  System = "All-Families"
)

// Options carries per-strategy tunables that experiments may scale.
type Options struct {
	// HybridThreshold overrides the Hybrid/H-Ginger high-degree cutoff
	// (0 keeps PowerLyra's default of 100).
	HybridThreshold int
	// Loaders overrides the number of independent ingress loaders used by
	// the greedy strategies (0 means one per partition).
	Loaders int
	// MemBudget overrides HEP's in-memory edge budget as a fraction of the
	// edge count (0 keeps DefaultMemBudget).
	MemBudget float64
}

// Factory constructs a strategy from options. Factories are registered by
// each strategy file's init, so adding a strategy needs no central edits.
type Factory func(Options) Strategy

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// ErrNoIngressCapability is the error wrapped by Register's panic when a
// factory produces a strategy implementing none of the ingress capabilities
// (StatelessStrategy, StreamingStrategy, MultiPassStrategy). Such a strategy
// would register cleanly and then fail only deep inside ShapeOf-driven
// schedulers; the registry rejects it up front, at init time.
var ErrNoIngressCapability = errors.New("partition: strategy declares no ingress capability")

// Register adds a strategy factory under its paper name. It panics on an
// empty name, nil factory, duplicate registration, or a factory whose
// strategy declares no ingress capability — all programmer errors at init
// time. The capability panic wraps ErrNoIngressCapability.
func Register(name string, f Factory) {
	if name == "" {
		panic("partition: Register with empty strategy name")
	}
	if f == nil {
		panic(fmt.Sprintf("partition: Register(%q) with nil factory", name))
	}
	probe := f(Options{})
	if probe == nil {
		panic(fmt.Errorf("%w: Register(%q) factory returned nil", ErrNoIngressCapability, name))
	}
	switch probe.(type) {
	case StatelessStrategy, StreamingStrategy, MultiPassStrategy:
	default:
		panic(fmt.Errorf("%w: Register(%q) strategy %T implements none of StatelessStrategy/StreamingStrategy/MultiPassStrategy",
			ErrNoIngressCapability, name, probe))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("partition: duplicate strategy registration %q", name))
	}
	factories[name] = f
}

// New constructs a registered strategy by its paper name. The built-in set:
// Random, CanonicalRandom, AsymRandom, Oblivious, HDRF, Grid,
// ResilientGrid, PDS, Hybrid, H-Ginger, 1D, 1D-Target, 2D.
func New(name string, opt Options) (Strategy, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("partition: unknown strategy %q (have %v)", name, AllNames())
	}
	return f(opt), nil
}

// MustNew is New that panics on error; for tests and experiment tables.
func MustNew(name string, opt Options) Strategy {
	s, err := New(name, opt)
	if err != nil {
		panic(err)
	}
	return s
}

// AllNames returns every registered strategy name, sorted.
func AllNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SystemStrategies returns the strategy names each system ships with, in
// the paper's order (Table 1.1 for the native sets; §8.1/§9.1 for the
// "all strategies" sets). PDS is included in the native sets, as in Table
// 1.1, even though the paper's measurements exclude it for cluster-size
// reasons (§5.2.3); callers whose partition count is incompatible simply
// skip it.
func SystemStrategies(sys System) ([]string, error) {
	switch sys {
	case PowerGraph:
		return []string{"Random", "Grid", "Oblivious", "HDRF", "PDS"}, nil
	case PowerLyra:
		return []string{"Random", "Grid", "Oblivious", "Hybrid", "H-Ginger", "PDS"}, nil
	case GraphX:
		return []string{"AsymRandom", "CanonicalRandom", "1D", "2D"}, nil
	case PowerLyraAll:
		// §8.1: PowerLyra's native six plus 1D, 2D, AsymRandom, HDRF and
		// the thesis's 1D-Target. (CanonicalRandom ≡ Random; omitted.)
		return []string{
			"1D", "2D", "AsymRandom", "Grid", "HDRF",
			"Hybrid", "H-Ginger", "Oblivious", "Random", "1D-Target",
		}, nil
	case GraphXAll:
		// §9.1: GraphX's native four plus Hybrid, Oblivious, HDRF,
		// H-Ginger, and the resilient Grid.
		return []string{
			"ResilientGrid", "Oblivious", "HDRF", "AsymRandom", "Hybrid",
			"2D", "1D", "H-Ginger", "CanonicalRandom",
		}, nil
	case AllFamilies:
		// Every registered family: the paper's 13 plus the post-paper
		// additions (HEP, JaBeJaSwap, Multilevel). The list is pinned here
		// rather than derived from AllNames so the advisor's choice set for
		// this system cannot drift silently when a strategy registers.
		return []string{
			"Random", "CanonicalRandom", "AsymRandom", "Oblivious", "HDRF",
			"Grid", "ResilientGrid", "PDS", "Hybrid", "H-Ginger",
			"1D", "1D-Target", "2D", "HEP", "JaBeJaSwap", "Multilevel",
		}, nil
	}
	return nil, fmt.Errorf("partition: unknown system %q", sys)
}

// IsHeuristic reports whether a strategy does O(numParts) work per edge
// during ingress (the greedy family), as opposed to O(1) hashing.
func IsHeuristic(s Strategy) bool {
	h, ok := s.(HeuristicStrategy)
	return ok && h.Heuristic()
}
