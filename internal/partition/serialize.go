package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphpart/internal/graph"
)

// Serialization of edge assignments supports the paper's partition-reuse
// scenario (§5.4.3): "when a graph may be partitioned, saved to disk, and
// reused later … lower replication factor should be the priority". The
// format stores only what cannot be rederived — the per-edge partition ids
// and master hints — and is rebuilt against the original graph on load.

// fileMagic identifies the assignment file format.
var fileMagic = [8]byte{'g', 'p', 'a', 's', 'g', 'n', '0', '1'}

// Encode serializes the assignment. The graph itself is not stored; the
// caller must Load against the same graph (validated by edge count).
func (a *Assignment) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	header := []uint64{
		uint64(a.NumParts),
		uint64(len(a.EdgeParts)),
		uint64(len(a.Masters)),
		uint64(a.Passes),
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(a.Strategy))); err != nil {
		return err
	}
	if _, err := bw.WriteString(a.Strategy); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, a.EdgeParts); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, a.Masters); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadAssignment deserializes an assignment saved by Encode and rebuilds
// the replica sets and metrics against g.
func ReadAssignment(g *graph.Graph, r io.Reader) (*Assignment, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("partition: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("partition: not an assignment file (magic %q)", magic)
	}
	var numParts, numEdges, numVerts, passes uint64
	for _, p := range []*uint64{&numParts, &numEdges, &numVerts, &passes} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("partition: reading header: %w", err)
		}
	}
	if int(numEdges) != g.NumEdges() {
		return nil, fmt.Errorf("partition: assignment has %d edges but graph has %d", numEdges, g.NumEdges())
	}
	if int(numVerts) != g.NumVertices() {
		return nil, fmt.Errorf("partition: assignment has %d vertices but graph has %d", numVerts, g.NumVertices())
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("partition: implausible strategy-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	edgeParts := make([]int32, numEdges)
	if err := binary.Read(br, binary.LittleEndian, edgeParts); err != nil {
		return nil, fmt.Errorf("partition: reading edge parts: %w", err)
	}
	masters := make([]int32, numVerts)
	if err := binary.Read(br, binary.LittleEndian, masters); err != nil {
		return nil, fmt.Errorf("partition: reading masters: %w", err)
	}

	// Rebuild through the standard constructor for full validation.
	a, err := newAssignment(g, string(name), int(passes), int(numParts), 0, &Result{EdgeParts: edgeParts, MasterHint: masters}, 1)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// SaveFile writes the assignment to path.
func (a *Assignment) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an assignment for g from path.
func LoadFile(g *graph.Graph, path string) (*Assignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAssignment(g, f)
}
