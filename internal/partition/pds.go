package partition

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// PDS is PowerGraph's perfect-difference-set constrained partitioning
// (§5.2.3): with P = p²+p+1 for prime p, a perfect difference set D of
// size p+1 exists modulo P, and the constraint sets S(v) = {(d+h(v)) mod P
// : d ∈ D} of any two vertices intersect in exactly one partition — giving
// a replication bound of p+1 ≈ √P, tighter than Grid's 2√P−1.
//
// The paper excludes PDS from its measurements because no cluster size
// satisfies both PDS's and Grid's constraints simultaneously (§5.2.3); we
// implement it anyway for completeness and test it at P ∈ {7, 13, 21?...}.
type PDS struct{}

func init() {
	Register("PDS", func(Options) Strategy { return PDS{} })
}

// Name implements Strategy.
func (PDS) Name() string { return "PDS" }

// Passes implements Strategy.
func (PDS) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy. The assigner carries a scratch
// membership array, so create one per goroutine.
func (PDS) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	ds, err := PerfectDifferenceSet(numParts)
	if err != nil {
		return nil, err
	}
	return &pdsAssigner{parts: numParts, seed: seed, ds: ds, inSu: make([]bool, numParts)}, nil
}

// Partition implements Strategy.
func (s PDS) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type pdsAssigner struct {
	parts int
	seed  uint64
	ds    []int
	inSu  []bool // scratch: constraint-set membership of S(u)
}

// Assign finds, for machines hu and hv, the unique common element of S(u)
// and S(v): (d1+hu) ≡ (d2+hv) mod P for exactly one pair (d1,d2) when
// hu≠hv; find it by marking S(u) and scanning S(v).
func (a *pdsAssigner) Assign(e graph.Edge) int32 {
	numParts, ds := a.parts, a.ds
	hu := int(hashing.Vertex(a.seed, e.Src) % uint64(numParts))
	hv := int(hashing.Vertex(a.seed, e.Dst) % uint64(numParts))
	for _, d := range ds {
		a.inSu[(d+hu)%numParts] = true
	}
	chosen := -1
	nFound := 0
	for _, d := range ds {
		c := (d + hv) % numParts
		if a.inSu[c] {
			nFound++
			if chosen < 0 {
				chosen = c
			}
		}
	}
	if nFound > 1 {
		// hu == hv: S(u) == S(v); hash the edge over the whole set.
		chosen = (ds[hashing.EdgeCanonical(a.seed^0x9d5, e.Src, e.Dst)%uint64(len(ds))] + hu) % numParts
	}
	for _, d := range ds {
		a.inSu[(d+hu)%numParts] = false
	}
	return int32(chosen)
}

// PerfectDifferenceSet finds a perfect difference set modulo n, i.e. a set
// D of size k with k(k−1) = n−1 such that every nonzero residue mod n is
// expressible as a difference of two elements of D in exactly one way.
// Such sets exist for n = p²+p+1, p prime (Singer). The search is a small
// backtracking exact-cover search, fine for the cluster sizes that matter
// (n ≤ a few hundred).
func PerfectDifferenceSet(n int) ([]int, error) {
	// k(k-1) = n-1 must have an integer solution.
	k := 1
	for k*(k-1) < n-1 {
		k++
	}
	if k*(k-1) != n-1 {
		return nil, fmt.Errorf("pds: no perfect difference set modulo %d (need p²+p+1 machines)", n)
	}
	if n == 1 {
		return []int{0}, nil
	}
	used := make([]bool, n) // used[d] = difference d already produced
	set := make([]int, 0, k)
	set = append(set, 0)
	var search func(next int) bool
	search = func(next int) bool {
		if len(set) == k {
			return true
		}
		for c := next; c < n; c++ {
			// The differences c introduces must be unused so far *and*
			// mutually distinct (two existing elements could otherwise
			// produce the same new difference against c).
			ok := true
			newDiffs := make(map[int]bool, 2*len(set))
			for _, s := range set {
				d1 := (c - s + n) % n
				d2 := (s - c + n) % n
				if used[d1] || used[d2] || d1 == d2 || newDiffs[d1] || newDiffs[d2] {
					ok = false
					break
				}
				newDiffs[d1] = true
				newDiffs[d2] = true
			}
			if !ok {
				continue
			}
			for _, s := range set {
				used[(c-s+n)%n] = true
				used[(s-c+n)%n] = true
			}
			set = append(set, c)
			if search(c + 1) {
				return true
			}
			set = set[:len(set)-1]
			for _, s := range set {
				used[(c-s+n)%n] = false
				used[(s-c+n)%n] = false
			}
		}
		return false
	}
	if !search(1) {
		return nil, fmt.Errorf("pds: no perfect difference set found modulo %d", n)
	}
	out := make([]int, k)
	copy(out, set)
	return out, nil
}
