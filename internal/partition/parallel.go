package partition

import (
	"fmt"
	"runtime"
	"sync"

	"graphpart/internal/graph"
)

// ParallelPartition partitions g with s using parallel workers. Stateless
// (hash) strategies shard the edge list across workers and assign with no
// coordination; everything else falls back to the sequential Partition
// (the greedy family is inherently order- and state-dependent, which is
// exactly why the paper's systems run it "obliviously", §5.2.2).
//
// The result is identical to Partition for every strategy: parallelism
// changes wall-clock, never placement.
func ParallelPartition(g *graph.Graph, s Strategy, numParts int, seed uint64, workers int) (*Assignment, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hashName := map[string]bool{
		"Random": true, "CanonicalRandom": true, "AsymRandom": true,
		"1D": true, "1D-Target": true, "2D": true,
		"Grid": true, "ResilientGrid": true, "PDS": true,
	}
	if !hashName[s.Name()] || workers == 1 || g.NumEdges() < 2*workers {
		return Partition(g, s, numParts, seed)
	}

	// Shard the edge list; each worker runs the strategy on its shard.
	// Hash strategies assign each edge independently, so concatenating
	// shard results equals the sequential result.
	m := g.NumEdges()
	parts := make([]int32, m)
	var masterHint []int32
	var hintOnce sync.Once
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := m * w / workers
		hi := m * (w + 1) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sub := graph.FromEdges(g.Name, g.Edges[lo:hi])
			res, err := s.Partition(sub, numParts, seed)
			if err != nil {
				errs[w] = err
				return
			}
			copy(parts[lo:hi], res.EdgeParts)
			// Master hints are per-vertex hash functions for the hash
			// strategies; any shard's hint for a vertex matches every
			// other shard's. Keep the first full-length hint we can get
			// by recomputing over the full graph once.
			if len(res.MasterHint) > 0 {
				hintOnce.Do(func() {
					full, err := s.Partition(g, numParts, seed)
					if err == nil {
						masterHint = full.MasterHint
					}
				})
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition: parallel worker: %w", err)
		}
	}
	return newAssignment(g, s, numParts, seed, &Result{EdgeParts: parts, MasterHint: masterHint})
}
