package partition

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"graphpart/internal/graph"
	"graphpart/internal/metrics"
)

// ParallelPartition partitions g with s using up to `workers` concurrent
// workers (≤0 means GOMAXPROCS) and materializes the Assignment with
// vertex-range-sharded workers. Dispatch is by capability:
//
//   - StatelessStrategy: the edge list shards across workers, each with its
//     own Assigner; master hints are produced per vertex shard.
//   - StreamingStrategy: each independent loader streams its own contiguous
//     block of the edge list, concurrently — the paper's multi-loader
//     ingress (§5.2.2).
//   - anything else (the multi-pass family): one sequential strategy pass,
//     but the Assignment is still built in parallel.
//
// The result is identical to Partition for every strategy: parallelism
// changes wall-clock, never placement. The strategy's own Partition method
// runs at most once per call (and not at all for stateless/streaming
// strategies).
func ParallelPartition(g *graph.Graph, s Strategy, numParts int, seed uint64, workers int) (*Assignment, error) {
	if workers <= 0 {
		//graphlint:nondet worker-count default only; placement is worker-count-independent (parallel_test.go)
		workers = runtime.GOMAXPROCS(0)
	}
	if numParts < 1 {
		return nil, fmt.Errorf("partition: numParts must be ≥1, got %d", numParts)
	}
	var res *Result
	var err error
	switch impl := s.(type) {
	case StatelessStrategy:
		res, err = statelessParallel(g, impl, numParts, seed, workers)
	case StreamingStrategy:
		res, err = streamingParallel(g, impl, numParts, seed, workers)
	default:
		res, err = s.Partition(g, numParts, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("partition: strategy %s: %w", s.Name(), err)
	}
	if len(res.EdgeParts) != g.NumEdges() {
		return nil, fmt.Errorf("partition: strategy %s returned %d assignments for %d edges",
			s.Name(), len(res.EdgeParts), g.NumEdges())
	}
	return newAssignment(g, s.Name(), s.Passes(), numParts, seed, res, workers)
}

// statelessParallel shards the edge list across workers, each assigning
// with its own Assigner (pure per-edge function, so shard boundaries cannot
// change placement). When the assigner hints masters, the hint vector is
// filled per vertex shard — no full re-partition, ever.
func statelessParallel(g *graph.Graph, s StatelessStrategy, numParts int, seed uint64, workers int) (*Result, error) {
	// One up-front assigner validates parameters and probes capabilities.
	probe, err := s.NewAssigner(numParts, seed)
	if err != nil {
		return nil, err
	}
	m := g.NumEdges()
	n := g.NumVertices()
	parts := make([]int32, m)
	var hint []int32
	if _, ok := probe.(MasterHinter); ok {
		hint = make([]int32, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			asg := probe
			if w > 0 {
				// Assigners may carry scratch state; one per goroutine.
				if asg, errs[w] = s.NewAssigner(numParts, seed); errs[w] != nil {
					return
				}
			}
			for i := m * w / workers; i < m*(w+1)/workers; i++ {
				parts[i] = asg.Assign(g.Edges[i])
			}
			if hint != nil {
				h := asg.(MasterHinter)
				for v := n * w / workers; v < n*(w+1)/workers; v++ {
					hint[v] = h.MasterHint(graph.VertexID(v))
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{EdgeParts: parts, MasterHint: hint}, nil
}

// streamingParallel runs a StreamingStrategy's independent loaders
// concurrently, each over its own contiguous edge block and private state.
// Loader blocks and per-loader seeds match the sequential path exactly, so
// the placement is byte-identical; only wall-clock changes. At most
// `workers` loader states are live at once, bounding memory.
func streamingParallel(g *graph.Graph, s StreamingStrategy, numParts int, seed uint64, workers int) (*Result, error) {
	m := g.NumEdges()
	nl := s.Loaders(numParts)
	if nl < 1 {
		nl = 1
	}
	parts := make([]int32, m)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for id := 0; id < nl; id++ {
		lo, hi := loaderBlock(m, nl, id)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ld := s.NewLoader(g.NumVertices(), numParts, id, seed)
			for i := lo; i < hi; i++ {
				parts[i] = ld.Assign(g.Edges[i])
			}
		}(id, lo, hi)
	}
	wg.Wait()
	return &Result{EdgeParts: parts}, nil
}

// buildParallel fills an Assignment's edge counts, bit-matrices and masters
// with sharded workers. Edge counts shard by edge range; the replica/in/out
// bit-matrices and masters shard by vertex range, so workers write disjoint
// rows and need no locks. Every step is deterministic: the result is
// byte-identical to the serial build.
func (a *Assignment) buildParallel(res *Result, seed uint64, workers int) error {
	g, numParts := a.G, a.NumParts
	m := g.NumEdges()
	n := g.NumVertices()

	// Phase 1: validate assignments and count edges per partition, sharded
	// by edge range.
	counts := make([][]int64, workers)
	firstBad := int64(m) // lowest invalid edge index, m = none
	var bad atomic.Int64
	bad.Store(firstBad)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int64, numParts)
			for i := m * w / workers; i < m*(w+1)/workers; i++ {
				p := res.EdgeParts[i]
				if p < 0 || int(p) >= numParts {
					for {
						cur := bad.Load()
						if int64(i) >= cur || bad.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				local[p]++
			}
			counts[w] = local
		}(w)
	}
	wg.Wait()
	if i := bad.Load(); i < int64(m) {
		return fmt.Errorf("partition: strategy %s placed edge %d on partition %d (numParts=%d)",
			a.Strategy, i, res.EdgeParts[i], numParts)
	}
	for _, local := range counts {
		for p, c := range local {
			if c != 0 {
				a.q.AddEdges(p, c)
			}
		}
	}

	// Phase 2: bit-matrices, sharded by vertex range. Each worker scans the
	// whole edge list but only touches rows in its own range; row storage is
	// disjoint, so no synchronization is needed. The scan is redundant
	// (O(workers·m) reads), so cap the fan-out: past a handful of workers
	// the extra sequential reads cost more memory bandwidth than the
	// divided random-access bit-sets save.
	mw := workers
	if mw > 8 {
		mw = 8
	}
	for w := 0; w < mw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vlo := graph.VertexID(n * w / mw)
			vhi := graph.VertexID(n * (w + 1) / mw)
			for i, e := range g.Edges {
				p := int(res.EdgeParts[i])
				if e.Src >= vlo && e.Src < vhi {
					a.replicas.set(int(e.Src), p)
					a.outEdgeParts.set(int(e.Src), p)
				}
				if e.Dst >= vlo && e.Dst < vhi {
					a.replicas.set(int(e.Dst), p)
					a.inEdgeParts.set(int(e.Dst), p)
				}
			}
		}(w)
	}
	wg.Wait()

	// Phase 3: masters and replica accounting, sharded by vertex range.
	// Each worker accumulates its shard's image counts into a private
	// quality summary; the merge is a sum, so the folded result equals the
	// sequential replay.
	a.Masters = make([]int32, n)
	locals := make([]*metrics.Quality, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := metrics.NewQuality(numParts)
			for v := n * w / workers; v < n*(w+1)/workers; v++ {
				reps := a.replicas.count(v)
				if reps == 0 {
					a.Masters[v] = -1
					continue
				}
				local.VertexPlaced()
				a.replicas.forEach(v, local.AddReplica)
				hint := int32(-1)
				if len(res.MasterHint) == n {
					hint = res.MasterHint[v]
				}
				a.Masters[v] = chooseMaster(a.replicas, v, reps, hint, numParts, seed)
			}
			locals[w] = local
		}(w)
	}
	wg.Wait()
	for _, local := range locals {
		a.q.Merge(local)
	}
	return nil
}
