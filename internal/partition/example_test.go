package partition_test

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// ExamplePartition partitions a small graph with Grid (a stateless
// hash-family strategy) and reads off the paper's quality metrics:
// replication factor (§5.1.1) and edge balance.
func ExamplePartition() {
	g := graph.FromEdges("example", []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 0}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	})
	s := partition.MustNew("Grid", partition.Options{})
	a, err := partition.Partition(g, s, 4, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("strategy=%s parts=%d\n", a.Strategy, a.NumParts)
	fmt.Printf("replication factor %.2f, edge balance %.2f\n",
		a.ReplicationFactor(), a.EdgeBalance())
	// Output:
	// strategy=Grid parts=4
	// replication factor 2.00, edge balance 2.00
}
