package partition

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"graphpart/internal/graph"
)

// ShardedStreamBuilder fans stateless stream ingress out over worker
// goroutines. Each worker owns a private StreamBuilder (its own assigner,
// counters and bit-matrices — no shared mutable state, no locks on the hot
// path); Feed copies each batch into a pooled buffer and dispatches it to
// whichever worker is free. Because the strategy is stateless and every
// per-edge update commutes (counter addition, bit-set union), the merged
// result is *identical* to a single sequential StreamBuilder over the same
// stream, regardless of how batches interleave across workers.
//
// Feed is intended for a single producer (the file reader); the concurrency
// lives behind it. Memory is O(workers · |V|·P/8) bits plus the in-flight
// batch copies.
type ShardedStreamBuilder struct {
	builders []*StreamBuilder
	jobs     chan shardJob
	wg       sync.WaitGroup
	errs     []error
	failed   atomic.Bool
	pool     sync.Pool
	done     bool
	sum      *StreamSummary
}

type shardJob struct {
	offset int64
	buf    *[]graph.Edge
}

// NewShardedStreamBuilder prepares a sharded stream ingress with the given
// worker count (≤0 means GOMAXPROCS). Only stateless strategies can shard:
// batches interleave arbitrarily across workers, which is sound only when
// per-edge placement is order-independent. Strategies carrying per-loader
// state (StreamingStrategy) or requiring multiple passes (MultiPassStrategy)
// are rejected with an error naming the capability.
func NewShardedStreamBuilder(strat Strategy, numParts, workers int, seed uint64) (*ShardedStreamBuilder, error) {
	s, ok := strat.(StatelessStrategy)
	if !ok {
		switch strat.(type) {
		case StreamingStrategy:
			return nil, fmt.Errorf("partition: strategy %s is a StreamingStrategy (ordered per-loader state); sharded stream ingress requires a StatelessStrategy", strat.Name())
		case MultiPassStrategy:
			return nil, fmt.Errorf("partition: strategy %s is a MultiPassStrategy (needs multiple passes over the edge list); sharded stream ingress requires a StatelessStrategy", strat.Name())
		default:
			return nil, fmt.Errorf("partition: strategy %s does not implement StatelessStrategy; sharded stream ingress requires one", strat.Name())
		}
	}
	if workers <= 0 {
		//graphlint:nondet worker-count default only; placement is worker-count-independent (sharded_test.go)
		workers = runtime.GOMAXPROCS(0)
	}
	sb := &ShardedStreamBuilder{
		builders: make([]*StreamBuilder, workers),
		jobs:     make(chan shardJob, 2*workers),
		errs:     make([]error, workers),
	}
	sb.pool.New = func() any {
		s := make([]graph.Edge, 0, graph.DefaultBatchSize)
		return &s
	}
	for i := range sb.builders {
		b, err := NewStreamBuilder(s, numParts, seed)
		if err != nil {
			return nil, err
		}
		sb.builders[i] = b
	}
	for i := range sb.builders {
		sb.wg.Add(1)
		go func(i int) {
			defer sb.wg.Done()
			for job := range sb.jobs {
				if sb.errs[i] == nil {
					if err := sb.builders[i].Feed(EdgeBatch{Offset: job.offset, Edges: *job.buf}); err != nil {
						sb.errs[i] = err
						sb.failed.Store(true)
					}
				}
				*job.buf = (*job.buf)[:0]
				sb.pool.Put(job.buf)
			}
		}(i)
	}
	return sb, nil
}

// Feed copies one batch into a pooled buffer and hands it to a worker. The
// caller's slice is not retained; in steady state the copy reuses pooled
// memory, so the batch→Feed→release cycle allocates nothing.
func (sb *ShardedStreamBuilder) Feed(batch EdgeBatch) error {
	if sb.done {
		return fmt.Errorf("%w (sharded)", ErrFeedAfterFinish)
	}
	if sb.failed.Load() {
		return sb.firstErr()
	}
	bufp := sb.pool.Get().(*[]graph.Edge)
	*bufp = append((*bufp)[:0], batch.Edges...)
	sb.jobs <- shardJob{offset: batch.Offset, buf: bufp}
	return nil
}

func (sb *ShardedStreamBuilder) firstErr() error {
	for _, err := range sb.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Finish drains the workers, merges their private state and derives the
// summary — identical to what a sequential StreamBuilder would return for
// the same stream. An assignment error from any worker surfaces here (and
// on the Feed that follows it).
func (sb *ShardedStreamBuilder) Finish() (*StreamSummary, error) {
	if !sb.done {
		sb.done = true
		close(sb.jobs)
		sb.wg.Wait()
	}
	if err := sb.firstErr(); err != nil {
		return nil, err
	}
	if sb.sum == nil {
		root := sb.builders[0]
		for _, o := range sb.builders[1:] {
			root.merge(o)
		}
		sb.sum = root.Finish()
	}
	return sb.sum, nil
}
