package partition

import (
	"sync"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// bench1M lazily builds the ~1M-edge heavy-tailed graph shared by the
// ingress benchmarks (170k vertices × 6 edges each ≈ 1.02M edges).
var bench1M = sync.OnceValue(func() *graph.Graph {
	return gen.PrefAttach("bench-1m", 170_000, 6, 0x9e)
})

// BenchmarkStatelessIngress1M measures stateless-strategy ingress plus
// assignment materialization on a 1M-edge graph: the sequential reference
// against the capability-dispatched parallel pipeline. The acceptance bar
// for the streaming refactor is ≥2x wall-clock at GOMAXPROCS ≥ 4.
func BenchmarkStatelessIngress1M(b *testing.B) {
	g := bench1M()
	for _, s := range []Strategy{Random{}, TwoD{}, Grid{}} {
		b.Run(s.Name()+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, s, 9, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.Name()+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelPartition(g, s, 9, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingIngress1M measures the greedy streaming family, whose
// independent loader blocks run concurrently in the parallel pipeline.
func BenchmarkStreamingIngress1M(b *testing.B) {
	g := bench1M()
	for _, s := range []Strategy{Oblivious{}, HDRF{}} {
		b.Run(s.Name()+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, s, 9, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.Name()+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelPartition(g, s, 9, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamBuilder1M measures the memory-bounded batch ingress path
// (assign + replica bookkeeping, no edge list retained).
func BenchmarkStreamBuilder1M(b *testing.B) {
	g := bench1M()
	for i := 0; i < b.N; i++ {
		sb, err := NewStreamBuilder(Random{}, 9, 1)
		if err != nil {
			b.Fatal(err)
		}
		const batch = 1 << 16
		for lo := 0; lo < g.NumEdges(); lo += batch {
			hi := lo + batch
			if hi > g.NumEdges() {
				hi = g.NumEdges()
			}
			if err := sb.Feed(EdgeBatch{Offset: int64(lo), Edges: g.Edges[lo:hi]}); err != nil {
				b.Fatal(err)
			}
		}
		sb.Finish()
	}
}
