package partition

import (
	"testing"

	"graphpart/internal/gen"
)

func TestParallelMatchesSequential(t *testing.T) {
	g := gen.PrefAttach("par", 4000, 6, 0x61)
	for _, name := range []string{"Random", "AsymRandom", "1D", "1D-Target", "2D", "Grid", "ResilientGrid"} {
		s := MustNew(name, Options{})
		parts := 9
		seq, err := Partition(g, s, parts, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 4, 7} {
			par, err := ParallelPartition(g, s, parts, 5, workers)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			for i := range seq.EdgeParts {
				if seq.EdgeParts[i] != par.EdgeParts[i] {
					t.Fatalf("%s/%d workers: edge %d differs (%d vs %d)",
						name, workers, i, seq.EdgeParts[i], par.EdgeParts[i])
				}
			}
			if seq.ReplicationFactor() != par.ReplicationFactor() {
				t.Fatalf("%s/%d workers: RF differs", name, workers)
			}
			for v := range seq.Masters {
				if seq.Masters[v] != par.Masters[v] {
					t.Fatalf("%s/%d workers: master of %d differs", name, workers, v)
				}
			}
		}
	}
}

func TestParallelFallsBackForStateful(t *testing.T) {
	g := gen.RoadNet("par-road", 30, 30, 0x61)
	seq, err := Partition(g, Oblivious{}, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelPartition(g, Oblivious{}, 9, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy strategies fall back to the sequential path, so results are
	// identical.
	for i := range seq.EdgeParts {
		if seq.EdgeParts[i] != par.EdgeParts[i] {
			t.Fatalf("edge %d differs on fallback path", i)
		}
	}
}

func TestParallelTinyGraph(t *testing.T) {
	g := gen.RoadNet("par-tiny", 3, 3, 1)
	if _, err := ParallelPartition(g, Random{}, 4, 1, 16); err != nil {
		t.Fatal(err)
	}
}
