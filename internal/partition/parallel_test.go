package partition

import (
	"runtime"
	"sync/atomic"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// partsFor picks a partition count every strategy accepts: Grid needs a
// perfect square, PDS needs p²+p+1.
func partsFor(name string) int {
	if name == "PDS" {
		return 7
	}
	return 9
}

// TestParallelMatchesSequential asserts, for every registered strategy and
// several worker counts, that the streaming/parallel pipeline's Assignment
// is byte-identical to the sequential path: same EdgeParts, same Masters,
// same replication factor, same per-partition loads.
func TestParallelMatchesSequential(t *testing.T) {
	g := gen.PrefAttach("par", 4000, 6, 0x61)
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, name := range AllNames() {
		s := MustNew(name, Options{HybridThreshold: 30})
		parts := partsFor(name)
		seq, err := Partition(g, s, parts, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range workerCounts {
			par, err := ParallelPartition(g, s, parts, 5, workers)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			for i := range seq.EdgeParts {
				if seq.EdgeParts[i] != par.EdgeParts[i] {
					t.Fatalf("%s/%d workers: edge %d differs (%d vs %d)",
						name, workers, i, seq.EdgeParts[i], par.EdgeParts[i])
				}
			}
			if seq.ReplicationFactor() != par.ReplicationFactor() {
				t.Fatalf("%s/%d workers: RF differs (%v vs %v)",
					name, workers, seq.ReplicationFactor(), par.ReplicationFactor())
			}
			for v := range seq.Masters {
				if seq.Masters[v] != par.Masters[v] {
					t.Fatalf("%s/%d workers: master of %d differs (%d vs %d)",
						name, workers, v, seq.Masters[v], par.Masters[v])
				}
			}
			for p := range seq.EdgeCount {
				if seq.EdgeCount[p] != par.EdgeCount[p] {
					t.Fatalf("%s/%d workers: partition %d load differs", name, workers, p)
				}
			}
		}
	}
}

// counting wrappers: forward a strategy's capabilities while counting how
// often its full-graph Partition runs.

type countingStrategy struct {
	Strategy
	calls *int32
}

func (c countingStrategy) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	atomic.AddInt32(c.calls, 1)
	return c.Strategy.Partition(g, numParts, seed)
}

type countingStateless struct{ countingStrategy }

func (c countingStateless) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return c.Strategy.(StatelessStrategy).NewAssigner(numParts, seed)
}

type countingStreaming struct{ countingStrategy }

func (c countingStreaming) Loaders(numParts int) int {
	return c.Strategy.(StreamingStrategy).Loaders(numParts)
}

func (c countingStreaming) NewLoader(numVertices, numParts, id int, seed uint64) Loader {
	return c.Strategy.(StreamingStrategy).NewLoader(numVertices, numParts, id, seed)
}

// TestParallelNeverPartitionsTwice is the regression test for the old
// hintOnce fallback, which re-ran a full sequential partition inside the
// parallel path to recover master hints. One ParallelPartition call must
// run the strategy's full-graph Partition at most once — and not at all for
// stateless/streaming strategies, whose assigners and loaders replace it.
func TestParallelNeverPartitionsTwice(t *testing.T) {
	g := gen.PrefAttach("par-count", 2000, 5, 0x13)
	for _, name := range AllNames() {
		inner := MustNew(name, Options{HybridThreshold: 30})
		var calls int32
		wrapped := countingStrategy{Strategy: inner, calls: &calls}
		var s Strategy
		var wantCalls int32
		switch inner.(type) {
		case StatelessStrategy:
			s, wantCalls = countingStateless{wrapped}, 0
		case StreamingStrategy:
			s, wantCalls = countingStreaming{wrapped}, 0
		default:
			s, wantCalls = wrapped, 1
		}
		if _, err := ParallelPartition(g, s, partsFor(name), 5, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := atomic.LoadInt32(&calls); got != wantCalls {
			t.Errorf("%s: full-graph Partition ran %d times in one ParallelPartition call, want %d",
				name, got, wantCalls)
		}
	}
}

func TestParallelTinyGraph(t *testing.T) {
	g := gen.RoadNet("par-tiny", 3, 3, 1)
	for _, name := range []string{"Random", "Oblivious", "Hybrid"} {
		s := MustNew(name, Options{HybridThreshold: 30})
		seq, err := Partition(g, s, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := ParallelPartition(g, s, 4, 1, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range seq.EdgeParts {
			if seq.EdgeParts[i] != par.EdgeParts[i] {
				t.Fatalf("%s: edge %d differs on tiny graph", name, i)
			}
		}
	}
}

// TestParallelRejectsBadAssignments asserts the sharded builder validates
// partition ids like the serial one.
func TestParallelRejectsBadAssignments(t *testing.T) {
	g := gen.RoadNet("par-bad", 5, 5, 1)
	var calls int32
	bad := countingStrategy{Strategy: badStrategy{}, calls: &calls}
	if _, err := ParallelPartition(g, bad, 4, 1, 4); err == nil {
		t.Fatal("out-of-range assignment accepted by parallel builder")
	}
}

type badStrategy struct{}

func (badStrategy) Name() string { return "Bad" }
func (badStrategy) Passes() int  { return 1 }
func (badStrategy) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	parts := make([]int32, g.NumEdges())
	for i := range parts {
		parts[i] = int32(numParts) // every edge out of range
	}
	return &Result{EdgeParts: parts}, nil
}
