package partition

import (
	"math"
	"sort"
)

// RebalanceConfig tunes when and how far a PartitionState is rebalanced.
type RebalanceConfig struct {
	// MaxBalance is the edge-balance (max/mean) threshold: NeedsRebalance
	// fires above it and Rebalance migrates edges until every partition is
	// at or under ⌊MaxBalance · mean⌋ edges. Must be > 1.
	MaxBalance float64
	// MaxRF, when > 0, also triggers NeedsRebalance once the replication
	// factor drifts above it. The migration pass itself is balance-driven;
	// its receiver scoring prefers partitions already holding the moved
	// edge's endpoints, which is what keeps RF from growing and usually
	// shrinks it.
	MaxRF float64
}

// RebalanceStats reports what one Rebalance pass did.
type RebalanceStats struct {
	Moved         int
	BalanceBefore float64
	BalanceAfter  float64
	RFBefore      float64
	RFAfter       float64
}

// NeedsRebalance reports whether the state's quality has drifted past the
// configured thresholds.
func (st *PartitionState) NeedsRebalance(cfg RebalanceConfig) bool {
	if cfg.MaxBalance > 1 && st.q.EdgeBalance() > cfg.MaxBalance {
		return true
	}
	if cfg.MaxRF > 0 && st.q.ReplicationFactor() > cfg.MaxRF {
		return true
	}
	return false
}

// Rebalance migrates edges off overloaded partitions until none exceeds
// ceil(MaxBalance · mean) edges. Donors are drained most-loaded first,
// newest edges first; each moved edge goes to the under-cap partition
// scoring best on (endpoints already resident, load, id) — resident
// endpoints mean the move adds no new vertex images. Works for every
// strategy: migration touches only the state's own bookkeeping, never the
// assigner. Deterministic given the state.
func (st *PartitionState) Rebalance(cfg RebalanceConfig) RebalanceStats {
	stats := RebalanceStats{
		BalanceBefore: st.q.EdgeBalance(),
		RFBefore:      st.q.ReplicationFactor(),
	}
	if cfg.MaxBalance <= 1 || st.q.NumEdges() == 0 {
		stats.BalanceAfter, stats.RFAfter = stats.BalanceBefore, stats.RFBefore
		return stats
	}
	// Cap = ⌊MaxBalance·mean⌋ so the post-pass balance (maxLoad/mean) lands
	// at or under the threshold; clamped to ⌈mean⌉, below which draining
	// donors is infeasible (total headroom < total overflow).
	mean := float64(st.q.NumEdges()) / float64(st.numParts)
	cap64 := int64(cfg.MaxBalance * mean)
	if minCap := int64(math.Ceil(mean)); cap64 < minCap {
		cap64 = minCap
	}

	donors := make([]int, 0, st.numParts)
	for p := 0; p < st.numParts; p++ {
		if st.q.EdgesOn(p) > cap64 {
			donors = append(donors, p)
		}
	}
	if len(donors) == 0 {
		stats.BalanceAfter, stats.RFAfter = stats.BalanceBefore, stats.RFBefore
		return stats
	}
	sort.Slice(donors, func(i, j int) bool {
		if st.q.EdgesOn(donors[i]) != st.q.EdgesOn(donors[j]) {
			return st.q.EdgesOn(donors[i]) > st.q.EdgesOn(donors[j])
		}
		return donors[i] < donors[j]
	})

	// Group live positions by partition once; positions are stable during
	// the pass (moves change p, never the live order).
	byPart := make([][]int32, st.numParts)
	for pos := range st.live {
		p := st.live[pos].p
		byPart[p] = append(byPart[p], int32(pos))
	}

	for _, donor := range donors {
		cands := byPart[donor]
		for i := len(cands) - 1; i >= 0 && st.q.EdgesOn(donor) > cap64; i-- {
			pos := cands[i]
			to := st.bestReceiver(pos, int32(donor), cap64)
			if to < 0 {
				break // every other partition is at cap
			}
			st.moveLive(pos, to)
			stats.Moved++
		}
	}
	stats.BalanceAfter = st.q.EdgeBalance()
	stats.RFAfter = st.q.ReplicationFactor()
	return stats
}

// bestReceiver scores the under-cap partitions for the edge at live[pos]:
// most resident endpoints first (no new images), then least loaded, then
// lowest id. -1 when no partition is under cap.
func (st *PartitionState) bestReceiver(pos, from int32, cap64 int64) int32 {
	e := st.live[pos].e
	best := int32(-1)
	bestScore := -1
	var bestLoad int64
	for p := 0; p < st.numParts; p++ {
		if int32(p) == from || st.q.EdgesOn(p) >= cap64 {
			continue
		}
		score := 0
		if st.ref.get(int(e.Src), p) > 0 {
			score++
		}
		if st.ref.get(int(e.Dst), p) > 0 {
			score++
		}
		load := st.q.EdgesOn(p)
		if best < 0 || score > bestScore || (score == bestScore && load < bestLoad) {
			best, bestScore, bestLoad = int32(p), score, load
		}
	}
	return best
}

// moveLive migrates the edge at live[pos] to partition to, updating the
// incidence bookkeeping and quality summary.
func (st *PartitionState) moveLive(pos, to int32) {
	le := &st.live[pos]
	from := le.p
	st.removeIncidence(int(le.e.Src), int(from))
	st.removeIncidence(int(le.e.Dst), int(from))
	st.q.MoveEdge(int(from), int(to))
	st.addIncidence(int(le.e.Src), int(to))
	st.addIncidence(int(le.e.Dst), int(to))
	le.p = to
}
