package partition

import (
	"testing"
	"testing/quick"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

func testGraph() *graph.Graph {
	return gen.PrefAttach("test-pa", 2000, 5, 0xbeef)
}

func roadGraph() *graph.Graph {
	return gen.RoadNet("test-road", 40, 40, 0xbeef)
}

// allStrategies returns one instance of every strategy with parameters
// suitable for the small test graphs.
func allStrategies() []Strategy {
	var out []Strategy
	for _, name := range AllNames() {
		out = append(out, MustNew(name, Options{HybridThreshold: 30}))
	}
	return out
}

func TestEveryStrategyAssignsEveryEdge(t *testing.T) {
	g := testGraph()
	for _, s := range allStrategies() {
		numParts := 9
		if s.Name() == "PDS" {
			numParts = 7 // p=2: p²+p+1
		}
		a, err := Partition(g, s, numParts, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var total int64
		for _, c := range a.EdgeCount {
			total += c
		}
		if total != int64(g.NumEdges()) {
			t.Errorf("%s: %d edges assigned, want %d", s.Name(), total, g.NumEdges())
		}
		if rf := a.ReplicationFactor(); rf < 1 || rf > float64(numParts) {
			t.Errorf("%s: replication factor %v out of range [1,%d]", s.Name(), rf, numParts)
		}
	}
}

func TestStrategiesDeterministic(t *testing.T) {
	g := testGraph()
	for _, s := range allStrategies() {
		numParts := 9
		if s.Name() == "PDS" {
			numParts = 7
		}
		a1, err := Partition(g, s, numParts, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		a2, err := Partition(g, s, numParts, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i := range a1.EdgeParts {
			if a1.EdgeParts[i] != a2.EdgeParts[i] {
				t.Fatalf("%s: edge %d differs between identical runs", s.Name(), i)
			}
		}
	}
}

func TestRandomIsCanonical(t *testing.T) {
	// PowerGraph's Random ignores direction (§5.2.1): (u,v) and (v,u)
	// hash identically.
	g := graph.FromEdges("pair", []graph.Edge{{Src: 3, Dst: 7}, {Src: 7, Dst: 3}})
	a, err := Partition(g, Random{}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeParts[0] != a.EdgeParts[1] {
		t.Errorf("canonical random split (u,v)/(v,u): %d vs %d", a.EdgeParts[0], a.EdgeParts[1])
	}
}

func TestAsymRandomSplitsSomePairs(t *testing.T) {
	var edges []graph.Edge
	for i := uint32(0); i < 64; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: i + 64}, graph.Edge{Src: i + 64, Dst: i})
	}
	g := graph.FromEdges("pairs", edges)
	a, err := Partition(g, AsymRandom{}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	split := 0
	for i := 0; i < len(edges); i += 2 {
		if a.EdgeParts[i] != a.EdgeParts[i+1] {
			split++
		}
	}
	if split == 0 {
		t.Error("asymmetric random never split a symmetric pair; expected some splits")
	}
}

func TestOneDColocatesOutEdges(t *testing.T) {
	g := testGraph()
	a, err := Partition(g, OneD{}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VertexID(v)) > 0 && a.OutEdgePartCount(graph.VertexID(v)) != 1 {
			t.Fatalf("1D: vertex %d out-edges on %d partitions, want 1", v, a.OutEdgePartCount(graph.VertexID(v)))
		}
	}
}

func TestOneDTargetColocatesInEdgesWithMaster(t *testing.T) {
	g := testGraph()
	a, err := Partition(g, OneDTarget{}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if g.InDegree(vid) > 0 && !a.InEdgesLocalToMaster(vid) {
			t.Fatalf("1D-Target: vertex %d in-edges not local to master", v)
		}
	}
}

func TestGridRequiresPerfectSquare(t *testing.T) {
	g := testGraph()
	if _, err := Partition(g, Grid{}, 10, 1); err == nil {
		t.Fatal("Grid accepted 10 partitions; want error (not a perfect square)")
	}
	if _, err := Partition(g, Grid{}, 9, 1); err != nil {
		t.Fatalf("Grid rejected 9 partitions: %v", err)
	}
}

func TestGridReplicationBound(t *testing.T) {
	// Grid bounds per-vertex replication by 2√P−1 (§5.2.3).
	g := testGraph()
	for _, p := range []int{9, 16, 25} {
		a, err := Partition(g, Grid{}, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		side := 0
		for side*side < p {
			side++
		}
		bound := 2*side - 1
		for v := 0; v < g.NumVertices(); v++ {
			if r := a.Replicas(graph.VertexID(v)); r > bound {
				t.Fatalf("P=%d: vertex %d has %d replicas, bound %d", p, v, r, bound)
			}
		}
	}
}

func TestResilientGridNonSquare(t *testing.T) {
	g := testGraph()
	for _, p := range []int{10, 12, 7} {
		a, err := Partition(g, ResilientGrid{}, p, 3)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		var total int64
		for _, c := range a.EdgeCount {
			total += c
		}
		if total != int64(g.NumEdges()) {
			t.Fatalf("P=%d: %d edges assigned", p, total)
		}
	}
}

func TestPerfectDifferenceSet(t *testing.T) {
	for _, n := range []int{7, 13, 21, 31, 57, 73} {
		// 21 and 57 are p²+p+1 for p=4 and p=7... p=4 is not prime (no
		// projective plane of order 4? actually 4=2² is a prime power, a
		// plane exists); verify only that found sets are valid, and that
		// prime-power sizes succeed.
		ds, err := PerfectDifferenceSet(n)
		if err != nil {
			if n == 7 || n == 13 || n == 31 || n == 57 || n == 73 || n == 21 {
				t.Fatalf("n=%d: %v", n, err)
			}
			continue
		}
		seen := make([]bool, n)
		for i, a := range ds {
			for j, b := range ds {
				if i == j {
					continue
				}
				d := ((a-b)%n + n) % n
				if seen[d] {
					t.Fatalf("n=%d: difference %d produced twice", n, d)
				}
				seen[d] = true
			}
		}
		for d := 1; d < n; d++ {
			if !seen[d] {
				t.Fatalf("n=%d: difference %d never produced", n, d)
			}
		}
	}
}

func TestPDSReplicationBound(t *testing.T) {
	g := testGraph()
	// P = 7 (p=2): bound p+1 = 3. P = 13 (p=3): bound 4.
	for _, tc := range []struct{ parts, bound int }{{7, 3}, {13, 4}} {
		a, err := Partition(g, PDS{}, tc.parts, 9)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if r := a.Replicas(graph.VertexID(v)); r > tc.bound {
				t.Fatalf("P=%d: vertex %d has %d replicas, bound %d", tc.parts, v, r, tc.bound)
			}
		}
	}
}

func TestPDSRejectsBadCounts(t *testing.T) {
	g := testGraph()
	if _, err := Partition(g, PDS{}, 9, 1); err == nil {
		t.Fatal("PDS accepted 9 partitions")
	}
}

func TestGreedyBeatsRandomOnRF(t *testing.T) {
	// The core qualitative result of §5.4: the greedy heuristics deliver
	// lower replication factors than Random.
	for _, g := range []*graph.Graph{testGraph(), roadGraph()} {
		rnd, err := Partition(g, Random{}, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{Oblivious{}, HDRF{}} {
			a, err := Partition(g, s, 16, 2)
			if err != nil {
				t.Fatal(err)
			}
			if a.ReplicationFactor() >= rnd.ReplicationFactor() {
				t.Errorf("%s on %s: RF %.2f ≥ Random's %.2f",
					s.Name(), g.Name, a.ReplicationFactor(), rnd.ReplicationFactor())
			}
		}
	}
}

func TestAsymRandomWorseThanRandom(t *testing.T) {
	// §8.2.2: Asymmetric Random yields even higher replication factors
	// than Random. Needs symmetric edges to matter; road nets have them
	// all.
	g := roadGraph()
	rnd, _ := Partition(g, Random{}, 16, 2)
	asym, _ := Partition(g, AsymRandom{}, 16, 2)
	if asym.ReplicationFactor() <= rnd.ReplicationFactor() {
		t.Errorf("AsymRandom RF %.3f ≤ Random RF %.3f; paper says strictly worse",
			asym.ReplicationFactor(), rnd.ReplicationFactor())
	}
}

func TestHybridLowDegreeMastersLocal(t *testing.T) {
	g := testGraph()
	thr := 30
	a, err := Partition(g, Hybrid{Threshold: thr}, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if g.InDegree(vid) == 0 || g.InDegree(vid) > thr {
			continue
		}
		if !a.InEdgesLocalToMaster(vid) {
			t.Fatalf("Hybrid: low-degree vertex %d (in-deg %d) in-edges not local to master",
				v, g.InDegree(vid))
		}
	}
}

func TestHybridBalance(t *testing.T) {
	g := testGraph()
	a, err := Partition(g, Hybrid{Threshold: 30}, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b := a.EdgeBalance(); b > 3 {
		t.Errorf("Hybrid edge balance %v; want < 3", b)
	}
}

func TestGingerNotWorseThanHybridRF(t *testing.T) {
	// §6.4.4: H-Ginger delivers slightly better replication factor than
	// Hybrid (at high ingress cost). Allow equality.
	g := testGraph()
	hy, _ := Partition(g, Hybrid{Threshold: 30}, 9, 4)
	gi, _ := Partition(g, HybridGinger{Threshold: 30}, 9, 4)
	if gi.ReplicationFactor() > hy.ReplicationFactor()*1.02 {
		t.Errorf("H-Ginger RF %.3f notably worse than Hybrid RF %.3f",
			gi.ReplicationFactor(), hy.ReplicationFactor())
	}
}

func TestMastersAreReplicas(t *testing.T) {
	g := testGraph()
	for _, s := range allStrategies() {
		numParts := 9
		if s.Name() == "PDS" {
			numParts = 7
		}
		a, err := Partition(g, s, numParts, 1)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			m := a.Master(vid)
			if g.Degree(vid) == 0 {
				if m != -1 {
					t.Fatalf("%s: isolated vertex %d has master %d", s.Name(), v, m)
				}
				continue
			}
			if m < 0 || !a.HasReplica(vid, m) {
				t.Fatalf("%s: vertex %d master %d is not a replica", s.Name(), v, m)
			}
		}
	}
}

func TestReplicationFactorProperty(t *testing.T) {
	// RF == total replicas / placed vertices for arbitrary small graphs
	// under Random, and every edge's endpoints have a replica where the
	// edge lives.
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.VertexID(raw[i] % 128), Dst: graph.VertexID(raw[i+1] % 128)})
		}
		g := graph.FromEdges("q", edges)
		a, err := Partition(g, Random{}, 5, 1)
		if err != nil {
			return false
		}
		for i, e := range g.Edges {
			p := int(a.EdgeParts[i])
			if !a.HasReplica(e.Src, p) || !a.HasReplica(e.Dst, p) {
				return false
			}
		}
		var totalReps int64
		placed := 0
		for v := 0; v < g.NumVertices(); v++ {
			r := a.Replicas(graph.VertexID(v))
			totalReps += int64(r)
			if r > 0 {
				placed++
			}
		}
		if placed == 0 {
			return a.ReplicationFactor() == 0
		}
		return a.ReplicationFactor() == float64(totalReps)/float64(placed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemStrategies(t *testing.T) {
	// Table 1.1 inventory.
	cases := map[System]int{
		PowerGraph:   5,
		PowerLyra:    6,
		GraphX:       4,
		PowerLyraAll: 10,
		GraphXAll:    9,
	}
	for sys, want := range cases {
		names, err := SystemStrategies(sys)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != want {
			t.Errorf("%s: %d strategies, want %d (%v)", sys, len(names), want, names)
		}
		for _, n := range names {
			if _, err := New(n, Options{}); err != nil {
				t.Errorf("%s: strategy %q not constructible: %v", sys, n, err)
			}
		}
	}
	if _, err := SystemStrategies(System("nope")); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestNewUnknownStrategy(t *testing.T) {
	if _, err := New("Metis", Options{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestEdgeBalanceBounds(t *testing.T) {
	g := testGraph()
	for _, s := range []Strategy{Random{}, OneD{}, TwoD{}, Grid{}} {
		a, err := Partition(g, s, 9, 8)
		if err != nil {
			t.Fatal(err)
		}
		if b := a.EdgeBalance(); b < 1 {
			t.Errorf("%s: balance %v < 1", s.Name(), b)
		}
	}
}
