package partition

import "math/bits"

// bitMatrix is a dense rows×cols bit matrix used to track, per vertex, the
// set of partitions something lives on (replicas, in-edges, out-edges).
// Rows are vertices; columns are partitions.
type bitMatrix struct {
	cols  int
	words int // words per row
	bits  []uint64
}

func newBitMatrix(rows, cols int) *bitMatrix {
	w := (cols + 63) / 64
	return &bitMatrix{cols: cols, words: w, bits: make([]uint64, rows*w)}
}

// ensureRows grows the matrix to hold at least rows rows, reallocating
// geometrically so streamed ingress can discover the vertex count as it
// consumes batches.
func (m *bitMatrix) ensureRows(rows int) {
	need := rows * m.words
	if need <= len(m.bits) {
		return
	}
	if need <= cap(m.bits) {
		m.bits = m.bits[:need]
		return
	}
	newCap := 2 * cap(m.bits)
	if newCap < need {
		newCap = need
	}
	nb := make([]uint64, need, newCap)
	copy(nb, m.bits)
	m.bits = nb
}

func (m *bitMatrix) set(row int, col int) {
	m.bits[row*m.words+col/64] |= 1 << uint(col%64)
}

func (m *bitMatrix) has(row int, col int) bool {
	return m.bits[row*m.words+col/64]&(1<<uint(col%64)) != 0
}

// clear unsets one bit; the inverse of set, needed once partitions can lose
// a vertex's last edge under churn.
func (m *bitMatrix) clear(row int, col int) {
	m.bits[row*m.words+col/64] &^= 1 << uint(col%64)
}

// reset zeroes every bit in place, keeping the allocated rows.
func (m *bitMatrix) reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// count returns the number of set bits in a row.
func (m *bitMatrix) count(row int) int {
	n := 0
	for _, w := range m.bits[row*m.words : (row+1)*m.words] {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls fn for every set column in a row, in ascending order.
func (m *bitMatrix) forEach(row int, fn func(col int)) {
	base := row * m.words
	for wi := 0; wi < m.words; wi++ {
		w := m.bits[base+wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// or folds every set bit of other into m, growing m to other's row count.
// Both matrices must have the same column count. Because set-union is
// commutative and associative, or-merging per-worker matrices yields the
// same matrix a single sequential pass would have built.
func (m *bitMatrix) or(other *bitMatrix) {
	if m.words != other.words {
		panic("bitMatrix: or across different column counts")
	}
	if len(other.bits) > len(m.bits) {
		m.ensureRows(len(other.bits) / other.words)
	}
	for i, w := range other.bits {
		if w != 0 {
			m.bits[i] |= w
		}
	}
}

// row returns the words of a row (shared; do not modify).
func (m *bitMatrix) row(row int) []uint64 {
	return m.bits[row*m.words : (row+1)*m.words]
}

// subsetOf reports whether row a's bits (in m) are a subset of the single
// set {col}. Used to test "all edges on one partition".
func (m *bitMatrix) onlyCol(row, col int) bool {
	base := row * m.words
	for wi := 0; wi < m.words; wi++ {
		want := uint64(0)
		if col/64 == wi {
			want = 1 << uint(col%64)
		}
		if m.bits[base+wi]&^want != 0 {
			return false
		}
	}
	return true
}
