package partition

import (
	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("Random", func(Options) Strategy { return Random{} })
	Register("CanonicalRandom", func(Options) Strategy { return CanonicalRandom{} })
	Register("AsymRandom", func(Options) Strategy { return AsymRandom{} })
	Register("1D", func(Options) Strategy { return OneD{} })
	Register("1D-Target", func(Options) Strategy { return OneDTarget{} })
	Register("2D", func(Options) Strategy { return TwoD{} })
}

// Random is PowerGraph's Random hash partitioning (§5.2.1): the hash
// ignores edge direction, so (u,v) and (v,u) land on the same partition.
// GraphX calls the same scheme "Canonical Random" (§7.2.1).
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "Random" }

// Passes implements Strategy.
func (Random) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (Random) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return randomAssigner{parts: uint64(numParts), seed: seed}, nil
}

// Partition implements Strategy.
func (s Random) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type randomAssigner struct {
	parts uint64
	seed  uint64
}

func (a randomAssigner) Assign(e graph.Edge) int32 {
	return int32(hashing.EdgeCanonical(a.seed, e.Src, e.Dst) % a.parts)
}

// CanonicalRandom is GraphX's name for Random; it exists so GraphX
// experiment output uses the paper's GraphX terminology.
type CanonicalRandom struct{ Random }

// Name implements Strategy.
func (CanonicalRandom) Name() string { return "CanonicalRandom" }

// AsymRandom is GraphX's "Random" (§7.2.1): the edge hash is direction
// sensitive, so (u,v) and (v,u) may land on different partitions. The
// thesis calls it "Asymmetric Random" when ported to PowerLyra (§8.1) and
// finds it strictly worse than Random (§8.2.2).
type AsymRandom struct{}

// Name implements Strategy.
func (AsymRandom) Name() string { return "AsymRandom" }

// Passes implements Strategy.
func (AsymRandom) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (AsymRandom) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return asymAssigner{parts: uint64(numParts), seed: seed}, nil
}

// Partition implements Strategy.
func (s AsymRandom) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type asymAssigner struct {
	parts uint64
	seed  uint64
}

func (a asymAssigner) Assign(e graph.Edge) int32 {
	return int32(hashing.EdgeDirected(a.seed, e.Src, e.Dst) % a.parts)
}

// OneD is GraphX's 1D edge partitioning (§7.2.2): every edge is hashed by
// its source vertex, colocating each vertex's out-edges.
type OneD struct{}

// Name implements Strategy.
func (OneD) Name() string { return "1D" }

// Passes implements Strategy.
func (OneD) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (OneD) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return oneDAssigner{parts: uint64(numParts), seed: seed}, nil
}

// Partition implements Strategy.
func (s OneD) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type oneDAssigner struct {
	parts uint64
	seed  uint64
}

func (a oneDAssigner) Assign(e graph.Edge) int32 {
	return int32(hashing.Vertex(a.seed, e.Src) % a.parts)
}

// OneDTarget is the thesis's new variant (§8.2.3): hash edges by their
// *target* vertex, colocating in-edges — the gather direction of natural
// applications — so PowerLyra's hybrid engine can gather locally. Its
// assigner also hints each vertex's master onto the partition holding its
// in-edges, mirroring how the engine-integrated variant colocates
// gather-edges with masters.
type OneDTarget struct{}

// Name implements Strategy.
func (OneDTarget) Name() string { return "1D-Target" }

// Passes implements Strategy.
func (OneDTarget) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (OneDTarget) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return oneDTargetAssigner{parts: uint64(numParts), seed: seed}, nil
}

// Partition implements Strategy.
func (s OneDTarget) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type oneDTargetAssigner struct {
	parts uint64
	seed  uint64
}

func (a oneDTargetAssigner) Assign(e graph.Edge) int32 {
	return int32(hashing.Vertex(a.seed, e.Dst) % a.parts)
}

// MasterHint implements MasterHinter.
func (a oneDTargetAssigner) MasterHint(v graph.VertexID) int32 {
	return int32(hashing.Vertex(a.seed, v) % a.parts)
}

// TwoD is GraphX's 2D edge partitioning (§7.2.3): partitions are arranged
// in a √P×√P matrix, the column picked by the source hash and the row by
// the destination hash, bounding the replication factor by 2√P−1. When P
// is not a perfect square the next larger square is used and assignments
// are mapped back down modulo P, as GraphX does.
type TwoD struct{}

// Name implements Strategy.
func (TwoD) Name() string { return "2D" }

// Passes implements Strategy.
func (TwoD) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (TwoD) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	return twoDAssigner{parts: uint64(numParts), side: uint64(ceilSqrt(numParts)), seed: seed}, nil
}

// Partition implements Strategy.
func (s TwoD) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

type twoDAssigner struct {
	parts uint64
	side  uint64
	seed  uint64
}

func (a twoDAssigner) Assign(e graph.Edge) int32 {
	col := hashing.Vertex(a.seed, e.Src) % a.side
	row := hashing.Vertex(a.seed^0x2d, e.Dst) % a.side
	return int32((col*a.side + row) % a.parts)
}

// ceilSqrt returns the smallest s with s*s >= n.
func ceilSqrt(n int) int {
	s := 0
	for s*s < n {
		s++
	}
	return s
}
