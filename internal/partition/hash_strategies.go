package partition

import (
	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// Random is PowerGraph's Random hash partitioning (§5.2.1): the hash
// ignores edge direction, so (u,v) and (v,u) land on the same partition.
// GraphX calls the same scheme "Canonical Random" (§7.2.1).
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "Random" }

// Passes implements Strategy.
func (Random) Passes() int { return 1 }

// Partition implements Strategy.
func (Random) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		parts[i] = int32(hashing.EdgeCanonical(seed, e.Src, e.Dst) % uint64(numParts))
	}
	return &Result{EdgeParts: parts}, nil
}

// CanonicalRandom is GraphX's name for Random; it exists so GraphX
// experiment output uses the paper's GraphX terminology.
type CanonicalRandom struct{ Random }

// Name implements Strategy.
func (CanonicalRandom) Name() string { return "CanonicalRandom" }

// AsymRandom is GraphX's "Random" (§7.2.1): the edge hash is direction
// sensitive, so (u,v) and (v,u) may land on different partitions. The
// thesis calls it "Asymmetric Random" when ported to PowerLyra (§8.1) and
// finds it strictly worse than Random (§8.2.2).
type AsymRandom struct{}

// Name implements Strategy.
func (AsymRandom) Name() string { return "AsymRandom" }

// Passes implements Strategy.
func (AsymRandom) Passes() int { return 1 }

// Partition implements Strategy.
func (AsymRandom) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		parts[i] = int32(hashing.EdgeDirected(seed, e.Src, e.Dst) % uint64(numParts))
	}
	return &Result{EdgeParts: parts}, nil
}

// OneD is GraphX's 1D edge partitioning (§7.2.2): every edge is hashed by
// its source vertex, colocating each vertex's out-edges.
type OneD struct{}

// Name implements Strategy.
func (OneD) Name() string { return "1D" }

// Passes implements Strategy.
func (OneD) Passes() int { return 1 }

// Partition implements Strategy.
func (OneD) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		parts[i] = int32(hashing.Vertex(seed, e.Src) % uint64(numParts))
	}
	return &Result{EdgeParts: parts}, nil
}

// OneDTarget is the thesis's new variant (§8.2.3): hash edges by their
// *target* vertex, colocating in-edges — the gather direction of natural
// applications — so PowerLyra's hybrid engine can gather locally.
type OneDTarget struct{}

// Name implements Strategy.
func (OneDTarget) Name() string { return "1D-Target" }

// Passes implements Strategy.
func (OneDTarget) Passes() int { return 1 }

// Partition implements Strategy.
func (OneDTarget) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	n := g.NumVertices()
	parts := make([]int32, g.NumEdges())
	hint := make([]int32, n)
	for v := 0; v < n; v++ {
		hint[v] = int32(hashing.Vertex(seed, graph.VertexID(v)) % uint64(numParts))
	}
	for i, e := range g.Edges {
		parts[i] = hint[e.Dst]
	}
	// Master on the partition holding the vertex's in-edges, mirroring how
	// the engine-integrated variant colocates gather-edges with masters.
	return &Result{EdgeParts: parts, MasterHint: hint}, nil
}

// TwoD is GraphX's 2D edge partitioning (§7.2.3): partitions are arranged
// in a √P×√P matrix, the column picked by the source hash and the row by
// the destination hash, bounding the replication factor by 2√P−1. When P
// is not a perfect square the next larger square is used and assignments
// are mapped back down modulo P, as GraphX does.
type TwoD struct{}

// Name implements Strategy.
func (TwoD) Name() string { return "2D" }

// Passes implements Strategy.
func (TwoD) Passes() int { return 1 }

// Partition implements Strategy.
func (TwoD) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	side := ceilSqrt(numParts)
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		col := hashing.Vertex(seed, e.Src) % uint64(side)
		row := hashing.Vertex(seed^0x2d, e.Dst) % uint64(side)
		parts[i] = int32((col*uint64(side) + row) % uint64(numParts))
	}
	return &Result{EdgeParts: parts}, nil
}

// ceilSqrt returns the smallest s with s*s >= n.
func ceilSqrt(n int) int {
	s := 0
	for s*s < n {
		s++
	}
	return s
}
