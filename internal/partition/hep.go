package partition

import (
	"container/heap"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("HEP", func(opt Options) Strategy { return HEP{MemBudget: opt.MemBudget} })
}

// DefaultMemBudget is HEP's default in-memory edge budget: the fraction of
// the edge list the in-memory NE phase may hold (arXiv 2103.12594 evaluates
// budgets around 10–100% of |E|; half the graph is the bridging default).
const DefaultMemBudget = 0.5

// HEP is the hybrid edge partitioner (arXiv 2103.12594): the low-degree
// core of the graph — every edge whose endpoints both fall at or below a
// degree threshold τ — is partitioned in memory with NE-style neighborhood
// expansion, and the remaining high-degree "spill" edges are streamed
// through HDRF scoring against the core placement. τ is chosen as the
// largest degree for which the core fits the memory budget, so the budget
// dials the strategy continuously between pure streaming (budget→0 degrades
// to single-loader HDRF) and pure in-memory partitioning (budget≥1).
//
// The split exploits the power-law structure the paper measures throughout:
// almost all vertices are low-degree, so even a modest budget covers most
// edges with the high-quality in-memory phase, while the hub-dominated
// remainder is exactly the regime HDRF's degree-aware scoring handles best.
type HEP struct {
	// MemBudget is the in-memory edge budget as a fraction of |E|
	// (0 means DefaultMemBudget; values are clamped to [0,1]).
	MemBudget float64
	// Lambda is the HDRF balance weight for the spill stream (0 means λ=1).
	Lambda float64
}

// Name implements Strategy.
func (HEP) Name() string { return "HEP" }

// Passes implements Strategy, derived from MultiPass so the two can never
// drift apart.
func (h HEP) Passes() int { p, _, _ := h.MultiPass(); return p }

// MultiPass implements MultiPassStrategy: the degree threshold and the core
// subgraph must be known before any edge can be placed, so a degree-census
// scan precedes the placement scan; the placement scan pays O(numParts)
// HDRF scoring on the spill edges.
func (HEP) MultiPass() (passes, heuristicPasses int, why string) {
	return 2, 1, "needs a degree census to split the low-degree core (in-memory NE) from the high-degree spill (streamed HDRF) under the memory budget"
}

// Heuristic implements HeuristicStrategy: the spill stream scores all
// numParts candidates per edge, and the NE phase examines frontier
// candidates per core edge.
func (HEP) Heuristic() bool { return true }

func (h HEP) budget() float64 {
	b := h.MemBudget
	if b == 0 {
		b = DefaultMemBudget
	}
	if b < 0 {
		b = 0
	}
	if b > 1 {
		b = 1
	}
	return b
}

// Partition implements Strategy.
func (h HEP) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1
	}
	n := g.NumVertices()
	m := g.NumEdges()
	parts := make([]int32, m)

	// Pass 1 (census): find the largest degree threshold τ whose core —
	// edges with both endpoints of degree ≤ τ — fits the budget. An edge
	// enters the core at threshold max(deg(src), deg(dst)), so a histogram
	// of that quantity prefix-sums straight to the core size per τ.
	capEdges := int64(h.budget() * float64(m))
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int64, maxDeg+1)
	for _, e := range g.Edges {
		d := g.Degree(e.Src)
		if dd := g.Degree(e.Dst); dd > d {
			d = dd
		}
		hist[d]++
	}
	tau, coreSize := 0, int64(0)
	for d := 1; d <= maxDeg; d++ {
		if coreSize+hist[d] > capEdges {
			break
		}
		coreSize += hist[d]
		tau = d
	}

	// Collect the core edge indices and the core incidence lists.
	isCore := func(e graph.Edge) bool {
		return g.Degree(e.Src) <= tau && g.Degree(e.Dst) <= tau
	}
	coreDeg := make([]int32, n)
	coreIdx := make([]int32, 0, coreSize)
	for i, e := range g.Edges {
		if isCore(e) {
			coreIdx = append(coreIdx, int32(i))
			coreDeg[e.Src]++
			coreDeg[e.Dst]++
		}
	}
	// CSR over core incidence: adj[adjStart[v]:adjStart[v+1]] lists the core
	// edge indices incident to v (a self-loop appears twice).
	adjStart := make([]int32, n+1)
	for v := 0; v < n; v++ {
		adjStart[v+1] = adjStart[v] + coreDeg[v]
	}
	adj := make([]int32, adjStart[n])
	cursor := make([]int32, n)
	copy(cursor, adjStart[:n])
	for _, i := range coreIdx {
		e := g.Edges[i]
		adj[cursor[e.Src]] = i
		cursor[e.Src]++
		adj[cursor[e.Dst]] = i
		cursor[e.Dst]++
	}

	// Pass 2a (in-memory NE over the core): grow partitions one at a time
	// to a proportional cap. The frontier vertex with the fewest unassigned
	// incident core edges is expanded next (lowest id on ties) — pulling in
	// whole neighborhoods while cutting the cheapest boundary vertices, the
	// NE expansion rule. Exhausted frontiers reseed from the lowest-id
	// vertex that still has unassigned core edges.
	assigned := make([]bool, m) // by edge index; spill edges stay false here
	residual := make([]int32, n)
	copy(residual, coreDeg)
	remaining := int64(len(coreIdx))
	seedCursor := 0
	for p := 0; p < numParts && remaining > 0; p++ {
		quota := (remaining + int64(numParts-p) - 1) / int64(numParts-p)
		var took int64
		fr := &vertexHeap{}
		inFrontier := make([]bool, n)
		for took < quota && remaining > 0 {
			var v int
			if fr.Len() > 0 {
				v = heap.Pop(fr).(heapVertex).id
				if residual[v] == 0 {
					continue
				}
			} else {
				for seedCursor < n && residual[seedCursor] == 0 {
					seedCursor++
				}
				v = seedCursor
			}
			for _, ei := range adj[adjStart[v]:adjStart[v+1]] {
				if assigned[ei] {
					continue
				}
				e := g.Edges[ei]
				assigned[ei] = true
				parts[ei] = int32(p)
				residual[e.Src]--
				residual[e.Dst]--
				took++
				remaining--
				o := e.Src
				if int(o) == v {
					o = e.Dst
				}
				if residual[o] > 0 && !inFrontier[o] {
					inFrontier[o] = true
					heap.Push(fr, heapVertex{key: residual[o], id: int(o)})
				}
			}
		}
	}

	// Pass 2b (streamed spill): one HDRF loader pre-seeded with the core
	// placement — its partition loads, placement sets and partial degrees
	// all reflect the in-memory phase — streams the spill edges in edge
	// order. Spill edges are hub edges, HDRF's best case.
	st := newLoaderState(n, numParts, hashing.Combine(seed, 0x48e9), true)
	for _, i := range coreIdx {
		e := g.Edges[i]
		st.place(e, int(parts[i]))
		st.pdeg[e.Src]++
		st.pdeg[e.Dst]++
	}
	for i, e := range g.Edges {
		if assigned[i] {
			continue
		}
		p := hdrfPick(st, e, numParts, lambda)
		st.place(e, p)
		parts[i] = int32(p)
	}
	return &Result{EdgeParts: parts}, nil
}

// heapVertex is a frontier entry: the vertex and its unassigned-incident-
// edge count at push time (stale entries are skipped on pop).
type heapVertex struct {
	key int32
	id  int
}

// vertexHeap is a deterministic min-heap over (key, id).
type vertexHeap []heapVertex

func (h vertexHeap) Len() int { return len(h) }
func (h vertexHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].id < h[j].id
}
func (h vertexHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x any)   { *h = append(*h, x.(heapVertex)) }
func (h *vertexHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
