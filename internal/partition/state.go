package partition

import (
	"fmt"
	"sort"

	"graphpart/internal/graph"
	"graphpart/internal/metrics"
)

// liveEdge is one live edge of a PartitionState: the edge plus the partition
// it currently lives on.
type liveEdge struct {
	e graph.Edge
	p int32
}

// edgeKey packs an edge into the map key used by the live-edge index.
func edgeKey(e graph.Edge) uint64 {
	return uint64(e.Src)<<32 | uint64(e.Dst)
}

// PartitionState is a long-lived, mutable partitioning of a churning graph —
// the counterpart of the frozen Assignment. It keeps every piece of
// vertex-cut bookkeeping incrementally maintainable:
//
//   - the live edge list with each edge's partition (and a multiset index,
//     so duplicate edges delete correctly);
//   - per-vertex, per-partition endpoint reference counts (a bitMatrix can
//     say a vertex touches a partition but not when it stops — the counts
//     are what make the replica sets decrementable);
//   - the replica bit-matrix and masters, updated per image transition;
//   - a metrics.Quality summary, so replication factor and edge balance are
//     O(1) reads after O(batch) updates, never recomputed from scratch.
//
// Edges are placed by the strategy's IncrementalAssigner (stateless
// strategies adapt for free; Oblivious/HDRF keep one persistent loader).
// Multi-pass strategies cannot assign incrementally: for them every
// ApplyBatch folds the churn into the live set and repartitions it one-shot
// (Rebuild), which is exactly the cost the dyn.* experiments compare
// incremental maintenance against.
//
// A PartitionState is single-goroutine. For an add-only trace its summary
// is identical to the one-shot path over the same edges in the same order.
type PartitionState struct {
	strategy Strategy
	numParts int
	seed     uint64
	workers  int

	inc    IncrementalAssigner // nil ⇒ repartition per batch (multi-pass)
	hinter MasterHinter        // nil when the assigner emits no hints

	n     int // vertex-space high-water mark (max id seen + 1)
	live  []liveEdge
	index map[uint64][]int32 // edge key → positions in live, insertion order

	ref      *countMatrix // endpoint reference counts per (vertex, partition)
	replicas *bitMatrix   // pinned hot images included
	pinned   *bitMatrix   // hot-vertex images held beyond their edges
	deg      []int32      // live degree per vertex (drives hot selection)
	masters  []int32      // -1 for isolated vertices
	q        *metrics.Quality

	hotK int     // replicate the top-hotK degree vertices everywhere; 0 = off
	hot  []int32 // current hot set, ascending vertex id
}

// BatchStats reports what one ApplyBatch did.
type BatchStats struct {
	Added   int
	Deleted int
	// Rebuilt is true when the batch was absorbed by a full repartition of
	// the live edge set (multi-pass strategies) rather than incrementally.
	Rebuilt bool
}

// NewPartitionState prepares an empty mutable partitioning for a strategy.
// workers bounds the parallelism of Rebuild (≤0 means GOMAXPROCS).
func NewPartitionState(s Strategy, numParts int, seed uint64, workers int) (*PartitionState, error) {
	if numParts < 1 {
		return nil, fmt.Errorf("partition: numParts must be ≥1, got %d", numParts)
	}
	inc, err := AsIncremental(s, numParts, seed)
	if err != nil && !IsNotIncremental(err) {
		return nil, err
	}
	st := &PartitionState{
		strategy: s,
		numParts: numParts,
		seed:     seed,
		workers:  workers,
		inc:      inc,
		index:    make(map[uint64][]int32),
		ref:      newCountMatrix(0, numParts),
		replicas: newBitMatrix(0, numParts),
		pinned:   newBitMatrix(0, numParts),
		q:        metrics.NewQuality(numParts),
	}
	if inc != nil {
		st.hinter, _ = inc.(MasterHinter)
	}
	return st, nil
}

// SetHotReplication replicates the k highest-degree live vertices onto
// every partition — the replicate-hot/partition-cold hybrid for the
// power-law tail. The hot set refreshes after every batch; images pinned
// for no-longer-hot vertices are dropped wherever no live edge holds them.
// k=0 (the default) disables pinning and hot-aware routing, keeping the
// incremental path placement-identical to one-shot ingress.
func (st *PartitionState) SetHotReplication(k int) {
	st.hotK = k
	st.refreshHot()
}

// ApplyBatch folds one churn batch — deletions first, then additions — into
// the state in O(batch) (amortized; multi-pass strategies repartition).
// Deleting an edge that is not live is an error and aborts the batch
// mid-way; duplicate edges delete one copy per request, newest first.
func (st *PartitionState) ApplyBatch(adds, dels []graph.Edge) (BatchStats, error) {
	stats := BatchStats{}
	if st.inc == nil {
		return st.applyByRebuild(adds, dels)
	}
	for _, e := range dels {
		p, err := st.unlink(e)
		if err != nil {
			return stats, err
		}
		st.removeCopy(e, p)
		st.inc.ObserveDelete(e, p)
		st.deg[e.Src]--
		st.deg[e.Dst]--
		stats.Deleted++
	}
	for _, e := range adds {
		st.ensure(int(max(e.Src, e.Dst)) + 1)
		p, routed := st.routeHot(e)
		if !routed {
			p = st.inc.AssignAdd(e)
		}
		if p < 0 || int(p) >= st.numParts {
			return stats, fmt.Errorf("partition: strategy %s placed edge (%d,%d) on partition %d (numParts=%d)",
				st.strategy.Name(), e.Src, e.Dst, p, st.numParts)
		}
		st.link(e, p)
		st.placeCopy(e, p)
		st.deg[e.Src]++
		st.deg[e.Dst]++
		stats.Added++
	}
	if st.hotK > 0 {
		st.refreshHot()
	}
	return stats, nil
}

// applyByRebuild is the multi-pass fallback: validate and fold the churn
// into the live set, then repartition it one-shot.
func (st *PartitionState) applyByRebuild(adds, dels []graph.Edge) (BatchStats, error) {
	stats := BatchStats{Rebuilt: true}
	for _, e := range dels {
		p, err := st.unlink(e)
		if err != nil {
			return stats, err
		}
		st.removeCopy(e, p)
		st.deg[e.Src]--
		st.deg[e.Dst]--
		stats.Deleted++
	}
	for _, e := range adds {
		st.ensure(int(max(e.Src, e.Dst)) + 1)
		st.link(e, 0) // placeholder partition; Rebuild assigns for real
		st.deg[e.Src]++
		st.deg[e.Dst]++
		stats.Added++
	}
	if err := st.Rebuild(); err != nil {
		return stats, err
	}
	return stats, nil
}

// unlink removes one live copy of e (the most recently added) from the
// edge index and live list, returning the partition it lived on.
func (st *PartitionState) unlink(e graph.Edge) (int32, error) {
	key := edgeKey(e)
	lst := st.index[key]
	if len(lst) == 0 {
		return -1, fmt.Errorf("partition: delete of edge (%d,%d) which is not live", e.Src, e.Dst)
	}
	pos := lst[len(lst)-1]
	if len(lst) == 1 {
		delete(st.index, key)
	} else {
		st.index[key] = lst[:len(lst)-1]
	}
	p := st.live[pos].p
	last := int32(len(st.live) - 1)
	if pos != last {
		moved := st.live[last]
		st.live[pos] = moved
		mlst := st.index[edgeKey(moved.e)]
		for i := len(mlst) - 1; i >= 0; i-- {
			if mlst[i] == last {
				mlst[i] = pos
				break
			}
		}
	}
	st.live = st.live[:last]
	return p, nil
}

// link appends e as a live edge on partition p.
func (st *PartitionState) link(e graph.Edge, p int32) {
	pos := int32(len(st.live))
	st.live = append(st.live, liveEdge{e: e, p: p})
	key := edgeKey(e)
	st.index[key] = append(st.index[key], pos)
}

// ensure grows the vertex-space bookkeeping to cover at least n vertices.
func (st *PartitionState) ensure(n int) {
	if n <= st.n {
		return
	}
	st.ref.ensureRows(n)
	st.replicas.ensureRows(n)
	st.pinned.ensureRows(n)
	for len(st.deg) < n {
		st.deg = append(st.deg, 0)
	}
	for len(st.masters) < n {
		st.masters = append(st.masters, -1)
	}
	st.n = n
}

// placeCopy accounts one edge landing on partition p: the edge count and
// both endpoints' incidence.
func (st *PartitionState) placeCopy(e graph.Edge, p int32) {
	st.q.AddEdge(int(p))
	st.addIncidence(int(e.Src), int(p))
	st.addIncidence(int(e.Dst), int(p))
}

// removeCopy undoes placeCopy.
func (st *PartitionState) removeCopy(e graph.Edge, p int32) {
	st.q.RemoveEdge(int(p))
	st.removeIncidence(int(e.Src), int(p))
	st.removeIncidence(int(e.Dst), int(p))
}

// addIncidence bumps v's endpoint count on p; the 0→1 transition creates an
// image unless a pinned hot image already holds it.
func (st *PartitionState) addIncidence(v, p int) {
	if st.ref.inc(v, p) == 1 && !st.pinned.has(v, p) {
		st.gainImage(v, p)
	}
}

// removeIncidence drops v's endpoint count on p; the 1→0 transition removes
// the image unless it is pinned hot.
func (st *PartitionState) removeIncidence(v, p int) {
	if st.ref.dec(v, p) == 0 && !st.pinned.has(v, p) {
		st.loseImage(v, p)
	}
}

// gainImage records vertex v gaining an image on partition p and keeps the
// quality summary and v's master current.
func (st *PartitionState) gainImage(v, p int) {
	st.replicas.set(v, p)
	st.q.AddReplica(p)
	if st.replicas.count(v) == 1 {
		st.q.VertexPlaced()
	}
	st.recomputeMaster(v)
}

// loseImage undoes gainImage.
func (st *PartitionState) loseImage(v, p int) {
	st.replicas.clear(v, p)
	st.q.RemoveReplica(p)
	if st.replicas.count(v) == 0 {
		st.q.VertexDropped()
	}
	st.recomputeMaster(v)
}

// recomputeMaster re-derives v's master with the same hint-then-hash rule
// the one-shot paths use. O(numParts) per replica-set change.
func (st *PartitionState) recomputeMaster(v int) {
	reps := st.replicas.count(v)
	if reps == 0 {
		st.masters[v] = -1
		return
	}
	hint := int32(-1)
	if st.hinter != nil {
		hint = st.hinter.MasterHint(graph.VertexID(v))
	}
	st.masters[v] = chooseMaster(st.replicas, v, reps, hint, st.numParts, st.seed)
}

// Rebuild repartitions the live edge set one-shot with the state's own
// strategy and replays the result into the incremental bookkeeping — the
// repartition-from-scratch baseline the dyn.* experiments price, and the
// only ingress path for multi-pass strategies. The incremental assigner is
// reconstructed afterwards: its per-loader state restarts from the rebuilt
// placement's graph, not the churn history.
func (st *PartitionState) Rebuild() error {
	edges := make([]graph.Edge, len(st.live))
	for i := range st.live {
		edges[i] = st.live[i].e
	}
	g := graph.FromEdges("live", edges)
	a, err := ParallelPartition(g, st.strategy, st.numParts, st.seed, st.workers)
	if err != nil {
		return err
	}
	// Reset the derived bookkeeping and replay the fresh placement.
	st.q.Reset()
	st.ref.reset()
	st.replicas.reset()
	st.pinned.reset()
	for i := range st.live {
		p := a.EdgeParts[i]
		st.live[i].p = p
		st.placeCopy(st.live[i].e, p)
	}
	// Take the assignment's masters verbatim: multi-pass hint vectors exist
	// only inside the one-shot build, so replay cannot re-derive them.
	copy(st.masters, a.Masters)
	for v := len(a.Masters); v < st.n; v++ {
		st.masters[v] = -1
	}
	if st.inc != nil {
		inc, err := AsIncremental(st.strategy, st.numParts, st.seed)
		if err != nil {
			return err
		}
		st.inc = inc
		st.hinter, _ = inc.(MasterHinter)
	}
	if st.hotK > 0 {
		st.hot = st.hot[:0]
		st.refreshHot()
	}
	return nil
}

// routeHot intercepts an add when hot replication is on and either endpoint
// is hot: a hot endpoint is replicated everywhere, so only the cold
// endpoint's locality matters and the edge goes to the least-loaded
// partition already holding the cold endpoint (or overall). Bypasses the
// strategy's assigner — the documented placement drift of hot mode.
func (st *PartitionState) routeHot(e graph.Edge) (int32, bool) {
	if st.hotK == 0 || len(st.hot) == 0 {
		return 0, false
	}
	hs, hd := st.isHot(e.Src), st.isHot(e.Dst)
	if !hs && !hd {
		return 0, false
	}
	if hs != hd {
		cold := e.Src
		if hs {
			cold = e.Dst
		}
		if int(cold) < st.n {
			if p := st.leastLoadedHolding(int(cold)); p >= 0 {
				return p, true
			}
		}
	}
	return st.leastLoadedPart(), true
}

// isHot reports whether v is in the current hot set.
func (st *PartitionState) isHot(v graph.VertexID) bool {
	i := sort.Search(len(st.hot), func(i int) bool { return st.hot[i] >= int32(v) })
	return i < len(st.hot) && st.hot[i] == int32(v)
}

// leastLoadedPart returns the partition with the fewest edges (lowest id on
// ties).
func (st *PartitionState) leastLoadedPart() int32 {
	best := 0
	for p := 1; p < st.numParts; p++ {
		if st.q.EdgesOn(p) < st.q.EdgesOn(best) {
			best = p
		}
	}
	return int32(best)
}

// leastLoadedHolding returns the least-loaded partition with a live edge of
// v, or -1 when v has none.
func (st *PartitionState) leastLoadedHolding(v int) int32 {
	best := int32(-1)
	for p := 0; p < st.numParts; p++ {
		if st.ref.get(v, p) > 0 && (best < 0 || st.q.EdgesOn(p) < st.q.EdgesOn(int(best))) {
			best = int32(p)
		}
	}
	return best
}

// refreshHot recomputes the top-hotK degree vertices and adjusts pinning:
// newly hot vertices gain an image on every partition, vertices that fell
// out of the tail keep images only where live edges hold them.
func (st *PartitionState) refreshHot() {
	var next []int32
	if st.hotK > 0 {
		cands := make([]int32, 0, st.n)
		for v := 0; v < st.n; v++ {
			if st.deg[v] > 0 {
				cands = append(cands, int32(v))
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if st.deg[cands[i]] != st.deg[cands[j]] {
				return st.deg[cands[i]] > st.deg[cands[j]]
			}
			return cands[i] < cands[j]
		})
		if len(cands) > st.hotK {
			cands = cands[:st.hotK]
		}
		next = cands
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	}
	// Unpin vertices that left the hot set.
	for _, v := range st.hot {
		if !inSorted(next, v) {
			st.unpin(int(v))
		}
	}
	// Pin new arrivals.
	for _, v := range next {
		if !inSorted(st.hot, v) {
			st.pin(int(v))
		}
	}
	st.hot = next
}

func inSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// pin gives v an image on every partition, creating images where no live
// edge holds one.
func (st *PartitionState) pin(v int) {
	for p := 0; p < st.numParts; p++ {
		if !st.pinned.has(v, p) {
			st.pinned.set(v, p)
			if !st.replicas.has(v, p) {
				st.gainImage(v, p)
			}
		}
	}
}

// unpin releases v's pinned images, dropping those no live edge sustains.
func (st *PartitionState) unpin(v int) {
	for p := 0; p < st.numParts; p++ {
		if st.pinned.has(v, p) {
			st.pinned.clear(v, p)
			if st.ref.get(v, p) == 0 && st.replicas.has(v, p) {
				st.loseImage(v, p)
			}
		}
	}
}

// --- summary accessors (the Assignment-compatible read side) -----------

// NumEdges returns the number of live edges.
func (st *PartitionState) NumEdges() int64 { return st.q.NumEdges() }

// NumVertices returns the vertex-space high-water mark (max id seen + 1);
// vertices whose edges were all deleted stay isolated, master -1.
func (st *PartitionState) NumVertices() int { return st.n }

// NumParts returns the partition count.
func (st *PartitionState) NumParts() int { return st.numParts }

// StrategyName returns the partitioning strategy's display name.
func (st *PartitionState) StrategyName() string { return st.strategy.Name() }

// Incremental reports whether churn is absorbed incrementally (false for
// the multi-pass family, which repartitions per batch).
func (st *PartitionState) Incremental() bool { return st.inc != nil }

// EdgeCount returns the live per-partition edge counts (the summary's
// backing slice; do not modify).
func (st *PartitionState) EdgeCount() []int64 { return st.q.EdgeCounts() }

// Masters returns the live master per vertex, -1 for isolated vertices
// (the state's backing slice; do not modify).
func (st *PartitionState) Masters() []int32 { return st.masters }

// Master returns the master partition of v, or -1 if v is isolated.
func (st *PartitionState) Master(v graph.VertexID) int {
	if int(v) >= st.n {
		return -1
	}
	return int(st.masters[v])
}

// Replicas returns the number of partitions holding an image of v.
func (st *PartitionState) Replicas(v graph.VertexID) int {
	if int(v) >= st.n {
		return 0
	}
	return st.replicas.count(int(v))
}

// Degree returns v's live degree.
func (st *PartitionState) Degree(v graph.VertexID) int {
	if int(v) >= st.n {
		return 0
	}
	return int(st.deg[v])
}

// ReplicationFactor returns the average images per placed vertex.
func (st *PartitionState) ReplicationFactor() float64 { return st.q.ReplicationFactor() }

// TotalReplicas returns the total number of vertex images.
func (st *PartitionState) TotalReplicas() int64 { return st.q.TotalReplicas() }

// EdgeBalance returns max/mean edges per partition (≥1).
func (st *PartitionState) EdgeBalance() float64 { return st.q.EdgeBalance() }

// ReplicasOnPart returns the number of vertex images partition p holds.
func (st *PartitionState) ReplicasOnPart(p int) int64 { return st.q.ReplicasOnPart(p) }

// Quality returns the live aggregate quality summary.
func (st *PartitionState) Quality() *metrics.Quality { return st.q }

// LiveEdges returns a copy of the live edge set. For add-only histories the
// order is insertion order (the original stream); deletions swap edges from
// the tail, deterministically.
func (st *PartitionState) LiveEdges() []graph.Edge {
	out := make([]graph.Edge, len(st.live))
	for i := range st.live {
		out[i] = st.live[i].e
	}
	return out
}
