package partition

import (
	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("Hybrid", func(opt Options) Strategy { return Hybrid{Threshold: opt.HybridThreshold} })
	Register("H-Ginger", func(opt Options) Strategy { return HybridGinger{Threshold: opt.HybridThreshold} })
}

// DefaultHybridThreshold is PowerLyra's default high-degree cutoff (§6.2.1).
// Experiments on the scaled synthetic datasets pass a smaller value via the
// Threshold field so that the high-degree population is proportionally
// similar to the paper's.
const DefaultHybridThreshold = 100

// Hybrid is PowerLyra's hybrid-cut (§6.2.1): edge-cuts for low-degree
// vertices and vertex-cuts for high-degree vertices, assigning each edge by
// its destination. Pass 1 places every edge by hash(dst) while counting
// in-degrees; pass 2 reassigns edges whose destination's in-degree exceeds
// Threshold by hash(src). Low-degree masters are colocated with all their
// in-edges, which is what lets PowerLyra's engine gather locally for
// natural applications.
type Hybrid struct {
	Threshold int // 0 means DefaultHybridThreshold
}

// Name implements Strategy.
func (Hybrid) Name() string { return "Hybrid" }

// Passes implements Strategy, derived from MultiPass so the two can never
// drift apart.
func (h Hybrid) Passes() int { p, _, _ := h.MultiPass(); return p }

// MultiPass implements MultiPassStrategy: hybrid-cut must know every
// destination's in-degree before it can place that destination's edges, so
// a degree-discovery scan precedes the placement scan and single-pass
// bounded-memory streaming is impossible.
func (Hybrid) MultiPass() (passes, heuristicPasses int, why string) {
	return 2, 0, "needs a full degree-counting scan before any edge can be placed (§6.2.1)"
}

func (h Hybrid) threshold() int {
	if h.Threshold <= 0 {
		return DefaultHybridThreshold
	}
	return h.Threshold
}

// Partition implements Strategy.
func (h Hybrid) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	res, _ := h.partition(g, numParts, seed)
	return res, nil
}

// partition additionally returns the high-degree flags for HybridGinger.
func (h Hybrid) partition(g *graph.Graph, numParts int, seed uint64) (*Result, []bool) {
	n := g.NumVertices()
	thr := h.threshold()
	parts := make([]int32, g.NumEdges())
	vhash := make([]int32, n)
	for v := 0; v < n; v++ {
		vhash[v] = int32(hashing.Vertex(seed, graph.VertexID(v)) % uint64(numParts))
	}

	// Pass 1: place every edge with its destination; count in-degrees.
	// (The real system also uses this pass to discover degrees; we read
	// them from the graph, which is equivalent for a two-pass scheme.)
	high := make([]bool, n)
	for v := 0; v < n; v++ {
		high[v] = g.InDegree(graph.VertexID(v)) > thr
	}

	// Pass 2: low-degree destinations keep hash(dst); high-degree
	// destinations are reassigned by hash(src).
	for i, e := range g.Edges {
		if high[e.Dst] {
			parts[i] = vhash[e.Src]
		} else {
			parts[i] = vhash[e.Dst]
		}
	}
	return &Result{EdgeParts: parts, MasterHint: vhash}, high
}

// HybridGinger is Hybrid plus a Fennel-inspired refinement phase (§6.2.2):
// after hybrid partitioning, each low-degree vertex v is migrated (with its
// in-edges) to the partition p maximizing
//
//	c(v,p) = |Ni(v) ∩ Vp| − b(p),   b(p) = ½(|Vp| + |V|/|E|·|Ep|)
//
// i.e. toward its in-neighbors, discounted by a load-balance cost. The
// thesis finds the extra phase buys little replication-factor improvement
// at a large ingress and memory cost (§6.4.4) — behaviour this
// implementation reproduces.
type HybridGinger struct {
	Threshold int // 0 means DefaultHybridThreshold
}

// Name implements Strategy.
func (HybridGinger) Name() string { return "H-Ginger" }

// Passes implements Strategy, derived from MultiPass so the two can never
// drift apart.
func (hg HybridGinger) Passes() int { p, _, _ := hg.MultiPass(); return p }

// MultiPass implements MultiPassStrategy. All three passes pay greedy
// O(numParts) scoring in the ingress model: the degree pass, the placement
// pass, and the Fennel-style refinement sweep, which additionally walks
// every low-degree vertex's in-edges — the paper's "significantly slower
// ingress" (§6.4.4).
func (HybridGinger) MultiPass() (passes, heuristicPasses int, why string) {
	return 3, 3, "hybrid's degree-counting scan plus a Fennel-style refinement sweep over vertex homes (§6.2.2)"
}

// Heuristic implements HeuristicStrategy.
func (HybridGinger) Heuristic() bool { return true }

// Partition implements Strategy.
func (hg HybridGinger) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	res, high := Hybrid{Threshold: hg.Threshold}.partition(g, numParts, seed)
	n := g.NumVertices()

	// Current low-degree home per vertex (where its in-edges live).
	home := make([]int32, n)
	copy(home, res.MasterHint)

	// Partition occupancy for the balance term.
	vCount := make([]float64, numParts)
	eCount := make([]float64, numParts)
	for v := 0; v < n; v++ {
		if g.Degree(graph.VertexID(v)) == 0 {
			continue
		}
		vCount[home[v]]++
		eCount[home[v]] += float64(g.InDegree(graph.VertexID(v)))
	}
	ratio := 0.0
	if g.NumEdges() > 0 {
		ratio = float64(n) / float64(g.NumEdges())
	}
	balance := func(p int) float64 { return 0.5 * (vCount[p] + ratio*eCount[p]) }

	// Refinement sweep over low-degree vertices in id order (the greedy,
	// order-dependent sweep the real implementation performs).
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		if high[v] || g.Degree(vid) == 0 {
			continue
		}
		inDeg := float64(g.InDegree(vid))
		// Count in-neighbors' homes.
		nbrAt := make(map[int32]float64)
		for _, u := range g.InNeighbors(vid) {
			nbrAt[home[u]]++
		}
		best := home[v]
		bestScore := nbrAt[home[v]] - balance(int(home[v]))
		for p := 0; p < numParts; p++ {
			if int32(p) == home[v] {
				continue
			}
			score := nbrAt[int32(p)] - balance(p)
			if score > bestScore {
				best, bestScore = int32(p), score
			}
		}
		// Guard against balance-term churn: a migration must strictly
		// improve in-neighbor colocation (each move mirrors every
		// non-colocated in-neighbor at the new home, so moves that only
		// help balance inflate the replication factor).
		if best != home[v] && nbrAt[best] <= nbrAt[home[v]] {
			best = home[v]
		}
		if best != home[v] {
			vCount[home[v]]--
			eCount[home[v]] -= inDeg
			vCount[best]++
			eCount[best] += inDeg
			home[v] = best
		}
	}

	// Apply the migrations: low-degree destinations move their in-edges.
	for i, e := range g.Edges {
		if !high[e.Dst] {
			res.EdgeParts[i] = home[e.Dst]
		}
	}
	res.MasterHint = home
	return res, nil
}
