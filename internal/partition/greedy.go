package partition

import (
	"math/bits"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("Oblivious", func(opt Options) Strategy { return Oblivious{NumLoaders: opt.Loaders} })
	Register("HDRF", func(opt Options) Strategy { return HDRF{NumLoaders: opt.Loaders} })
}

// loaderState is the per-loader view used by the greedy strategies. In the
// real systems, ingress is distributed: each machine streams its share of
// the edge list and greedily places edges using only the assignments *it*
// has made — it is "oblivious" to the other loaders (§5.2.2). We reproduce
// that by striping the edge list across numLoaders independent states,
// exposed through the StreamingStrategy capability so the blocks can run
// concurrently.
type loaderState struct {
	parts *bitMatrix // A(v): partitions this loader has placed v's edges on
	load  []int64    // edges this loader has assigned to each partition
	pdeg  []int32    // HDRF partial-degree counters (δ)
	rng   *hashing.RNG
}

func newLoaderState(numVertices, numParts int, seed uint64, partialDeg bool) *loaderState {
	st := &loaderState{
		parts: newBitMatrix(numVertices, numParts),
		load:  make([]int64, numParts),
		rng:   hashing.NewRNG(seed),
	}
	if partialDeg {
		st.pdeg = make([]int32, numVertices)
	}
	return st
}

// grow extends the state to cover at least n vertices, so a persistent
// incremental loader can follow a graph whose vertex set is discovered as
// edges arrive.
func (st *loaderState) grow(n int) {
	st.parts.ensureRows(n)
	if st.pdeg != nil && n > len(st.pdeg) {
		if n <= cap(st.pdeg) {
			st.pdeg = st.pdeg[:n]
		} else {
			np := make([]int32, n, 2*n)
			copy(np, st.pdeg)
			st.pdeg = np
		}
	}
}

// leastLoaded returns the least-loaded partition among the set bits of
// mask rows a (and b, if both non-nil: the union), or over all partitions
// when none is set. Ties are broken pseudo-randomly, as in PowerGraph.
func (st *loaderState) leastLoadedIn(cands []int) int {
	best := cands[0]
	ties := 1
	for _, c := range cands[1:] {
		switch {
		case st.load[c] < st.load[best]:
			best, ties = c, 1
		case st.load[c] == st.load[best]:
			ties++
			if st.rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

func (st *loaderState) place(e graph.Edge, p int) {
	st.load[p]++
	st.parts.set(int(e.Src), p)
	st.parts.set(int(e.Dst), p)
}

// greedyLoader adapts a loaderState to the Loader interface: one block of
// the edge stream, one private state, no cross-loader coordination.
type greedyLoader struct {
	st       *loaderState
	numParts int
	hdrf     bool    // select HDRF scoring over Oblivious case logic
	lambda   float64 // HDRF's λ
	cands    []int
}

// Assign implements Loader.
func (l *greedyLoader) Assign(e graph.Edge) int32 {
	var p int
	if l.hdrf {
		p = hdrfPick(l.st, e, l.numParts, l.lambda)
	} else {
		p = obliviousPick(l.st, e, l.numParts, &l.cands)
	}
	l.st.place(e, p)
	return int32(p)
}

// greedyIncremental is a persistent single-loader view used for churn: adds
// stream through the ordinary greedy pick, deletes decrement the loads and
// partial degrees so balance pressure tracks the live graph. The placement
// sets stay monotone — the loader is oblivious to whether a vertex still
// has edges on a partition, just as it is oblivious to other loaders —
// which keeps per-batch work O(batch) at the cost of stale affinity after
// heavy deletion. An add-only trace reproduces the one-shot single-loader
// pass (Options{Loaders: 1}) placement for placement.
type greedyIncremental struct {
	greedyLoader
}

// AssignAdd implements IncrementalAssigner.
func (l *greedyIncremental) AssignAdd(e graph.Edge) int32 {
	l.st.grow(int(max(e.Src, e.Dst)) + 1)
	return l.Assign(e)
}

// ObserveDelete implements IncrementalAssigner.
func (l *greedyIncremental) ObserveDelete(e graph.Edge, p int32) {
	if l.st.load[p] > 0 {
		l.st.load[p]--
	}
	if l.st.pdeg != nil {
		l.st.grow(int(max(e.Src, e.Dst)) + 1)
		if l.st.pdeg[e.Src] > 0 {
			l.st.pdeg[e.Src]--
		}
		if l.st.pdeg[e.Dst] > 0 {
			l.st.pdeg[e.Dst]--
		}
	}
}

// Oblivious is PowerGraph's greedy heuristic (§5.2.2, Appendix A). For
// each edge (u,v) with current placement sets A(u), A(v):
//
//	Case 1: A(u)∩A(v) ≠ ∅        → least-loaded partition in the intersection
//	Case 2: exactly one is empty  → least-loaded in the non-empty set
//	Case 3: both empty            → least-loaded partition overall
//	Case 4: both non-empty, disjoint → least-loaded in A(u)∪A(v)
//
// NumLoaders controls how many independent loader views stripe the edge
// list (0 means one per partition, matching one loader per machine).
type Oblivious struct {
	NumLoaders int
}

// Name implements Strategy.
func (Oblivious) Name() string { return "Oblivious" }

// Passes implements Strategy.
func (Oblivious) Passes() int { return 1 }

// Heuristic implements HeuristicStrategy.
func (Oblivious) Heuristic() bool { return true }

// Loaders implements StreamingStrategy.
func (o Oblivious) Loaders(numParts int) int { return loadersOrDefault(o.NumLoaders, numParts) }

// NewLoader implements StreamingStrategy.
func (o Oblivious) NewLoader(numVertices, numParts, id int, seed uint64) Loader {
	return &greedyLoader{
		st:       newLoaderState(numVertices, numParts, hashing.Combine(seed, uint64(id)), false),
		numParts: numParts,
		cands:    make([]int, 0, numParts),
	}
}

// Partition implements Strategy.
func (o Oblivious) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return streamingPartition(o, g, numParts, seed)
}

// NewIncremental implements IncrementalStrategy: one persistent loader
// (loader id 0) whose state follows adds and deletes across batches.
func (o Oblivious) NewIncremental(numParts int, seed uint64) (IncrementalAssigner, error) {
	return &greedyIncremental{greedyLoader{
		st:       newLoaderState(0, numParts, hashing.Combine(seed, 0), false),
		numParts: numParts,
		cands:    make([]int, 0, numParts),
	}}, nil
}

// HDRF is High-Degree Replicated First (§5.2.4, Appendix B): greedy like
// Oblivious but scoring candidate partitions with
//
//	C(u,v,M) = CREP(u,v,M) + λ·CBAL(M)
//	CREP     = g(u,M) + g(v,M),   g(v,M) = 1 + (1−θ(v)) if M ∈ A(v) else 0
//	θ(v)     = δ(v) / (δ(u)+δ(v))   (partial degrees)
//
// so ties prefer cutting the *higher*-degree endpoint, concentrating
// replication on hubs and sparing low-degree vertices. λ=1, the value
// hardcoded by PowerGraph and used throughout the paper.
type HDRF struct {
	Lambda     float64 // 0 means the default λ=1
	NumLoaders int
}

// Name implements Strategy.
func (HDRF) Name() string { return "HDRF" }

// Passes implements Strategy.
func (HDRF) Passes() int { return 1 }

// Heuristic implements HeuristicStrategy.
func (HDRF) Heuristic() bool { return true }

// Loaders implements StreamingStrategy.
func (h HDRF) Loaders(numParts int) int { return loadersOrDefault(h.NumLoaders, numParts) }

// NewLoader implements StreamingStrategy.
func (h HDRF) NewLoader(numVertices, numParts, id int, seed uint64) Loader {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1
	}
	return &greedyLoader{
		st:       newLoaderState(numVertices, numParts, hashing.Combine(seed, uint64(id)), true),
		numParts: numParts,
		hdrf:     true,
		lambda:   lambda,
	}
}

// Partition implements Strategy.
func (h HDRF) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return streamingPartition(h, g, numParts, seed)
}

// NewIncremental implements IncrementalStrategy: one persistent loader
// whose loads and partial degrees follow adds and deletes across batches.
func (h HDRF) NewIncremental(numParts int, seed uint64) (IncrementalAssigner, error) {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1
	}
	return &greedyIncremental{greedyLoader{
		st:       newLoaderState(0, numParts, hashing.Combine(seed, 0), true),
		numParts: numParts,
		hdrf:     true,
		lambda:   lambda,
	}}, nil
}

// loadersOrDefault resolves a NumLoaders option: 0 means one loader per
// partition (one per machine in the paper's single-partition-per-machine
// clusters).
func loadersOrDefault(numLoaders, numParts int) int {
	if numLoaders <= 0 {
		return numParts
	}
	return numLoaders
}

func obliviousPick(st *loaderState, e graph.Edge, numParts int, scratch *[]int) int {
	au := st.parts.row(int(e.Src))
	av := st.parts.row(int(e.Dst))
	cands := (*scratch)[:0]

	// Case 1: intersection.
	for wi := range au {
		w := au[wi] & av[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			cands = append(cands, wi*64+b)
			w &= w - 1
		}
	}
	if len(cands) == 0 {
		// Cases 2 and 4: union of the non-empty sets.
		for wi := range au {
			w := au[wi] | av[wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				cands = append(cands, wi*64+b)
				w &= w - 1
			}
		}
	}
	if len(cands) == 0 {
		// Case 3: anywhere.
		for p := 0; p < numParts; p++ {
			cands = append(cands, p)
		}
	}
	*scratch = cands
	return st.leastLoadedIn(cands)
}

func hdrfPick(st *loaderState, e graph.Edge, numParts int, lambda float64) int {
	st.pdeg[e.Src]++
	st.pdeg[e.Dst]++
	du := float64(st.pdeg[e.Src])
	dv := float64(st.pdeg[e.Dst])
	thetaU := du / (du + dv)
	thetaV := dv / (du + dv)

	var maxLoad, minLoad int64
	maxLoad, minLoad = st.load[0], st.load[0]
	for _, l := range st.load[1:] {
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
	}
	denom := float64(maxLoad-minLoad) + 1

	best := 0
	bestScore := -1.0
	ties := 1
	for p := 0; p < numParts; p++ {
		var crep float64
		if st.parts.has(int(e.Src), p) {
			crep += 1 + (1 - thetaU)
		}
		if st.parts.has(int(e.Dst), p) {
			crep += 1 + (1 - thetaV)
		}
		// CBAL ∈ [0,1): less-loaded partitions score higher.
		cbal := float64(maxLoad-st.load[p]) / denom
		score := crep + lambda*cbal
		switch {
		case score > bestScore:
			best, bestScore, ties = p, score, 1
		case score == bestScore:
			ties++
			if st.rng.Intn(ties) == 0 {
				best = p
			}
		}
	}
	return best
}
