package partition

import (
	"math/bits"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// loaderState is the per-loader view used by the greedy strategies. In the
// real systems, ingress is distributed: each machine streams its share of
// the edge list and greedily places edges using only the assignments *it*
// has made — it is "oblivious" to the other loaders (§5.2.2). We reproduce
// that by striping the edge list across numLoaders independent states.
type loaderState struct {
	parts *bitMatrix // A(v): partitions this loader has placed v's edges on
	load  []int64    // edges this loader has assigned to each partition
	pdeg  []int32    // HDRF partial-degree counters (δ)
	rng   *hashing.RNG
}

func newLoaderState(numVertices, numParts int, seed uint64, partialDeg bool) *loaderState {
	st := &loaderState{
		parts: newBitMatrix(numVertices, numParts),
		load:  make([]int64, numParts),
		rng:   hashing.NewRNG(seed),
	}
	if partialDeg {
		st.pdeg = make([]int32, numVertices)
	}
	return st
}

// leastLoaded returns the least-loaded partition among the set bits of
// mask rows a (and b, if both non-nil: the union), or over all partitions
// when none is set. Ties are broken pseudo-randomly, as in PowerGraph.
func (st *loaderState) leastLoadedIn(cands []int) int {
	best := cands[0]
	ties := 1
	for _, c := range cands[1:] {
		switch {
		case st.load[c] < st.load[best]:
			best, ties = c, 1
		case st.load[c] == st.load[best]:
			ties++
			if st.rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

func (st *loaderState) place(e graph.Edge, p int) {
	st.load[p]++
	st.parts.set(int(e.Src), p)
	st.parts.set(int(e.Dst), p)
}

// Oblivious is PowerGraph's greedy heuristic (§5.2.2, Appendix A). For
// each edge (u,v) with current placement sets A(u), A(v):
//
//	Case 1: A(u)∩A(v) ≠ ∅        → least-loaded partition in the intersection
//	Case 2: exactly one is empty  → least-loaded in the non-empty set
//	Case 3: both empty            → least-loaded partition overall
//	Case 4: both non-empty, disjoint → least-loaded in A(u)∪A(v)
//
// NumLoaders controls how many independent loader views stripe the edge
// list (0 means one per partition, matching one loader per machine).
type Oblivious struct {
	NumLoaders int
}

// Name implements Strategy.
func (Oblivious) Name() string { return "Oblivious" }

// Passes implements Strategy.
func (Oblivious) Passes() int { return 1 }

// Heuristic implements HeuristicStrategy.
func (Oblivious) Heuristic() bool { return true }

// Partition implements Strategy.
func (o Oblivious) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return greedyPartition(g, numParts, seed, o.NumLoaders, nil)
}

// HDRF is High-Degree Replicated First (§5.2.4, Appendix B): greedy like
// Oblivious but scoring candidate partitions with
//
//	C(u,v,M) = CREP(u,v,M) + λ·CBAL(M)
//	CREP     = g(u,M) + g(v,M),   g(v,M) = 1 + (1−θ(v)) if M ∈ A(v) else 0
//	θ(v)     = δ(v) / (δ(u)+δ(v))   (partial degrees)
//
// so ties prefer cutting the *higher*-degree endpoint, concentrating
// replication on hubs and sparing low-degree vertices. λ=1, the value
// hardcoded by PowerGraph and used throughout the paper.
type HDRF struct {
	Lambda     float64 // 0 means the default λ=1
	NumLoaders int
}

// Name implements Strategy.
func (HDRF) Name() string { return "HDRF" }

// Passes implements Strategy.
func (HDRF) Passes() int { return 1 }

// Heuristic implements HeuristicStrategy.
func (HDRF) Heuristic() bool { return true }

// Partition implements Strategy.
func (h HDRF) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1
	}
	return greedyPartition(g, numParts, seed, h.NumLoaders, &lambda)
}

// greedyPartition runs the shared greedy loop. hdrfLambda nil selects
// Oblivious case logic; non-nil selects HDRF scoring with that λ.
func greedyPartition(g *graph.Graph, numParts int, seed uint64, numLoaders int, hdrfLambda *float64) (*Result, error) {
	if numLoaders <= 0 {
		numLoaders = numParts
	}
	n := g.NumVertices()
	loaders := make([]*loaderState, numLoaders)
	for i := range loaders {
		loaders[i] = newLoaderState(n, numParts, hashing.Combine(seed, uint64(i)), hdrfLambda != nil)
	}
	parts := make([]int32, g.NumEdges())
	cands := make([]int, 0, numParts)

	// Each loader streams a contiguous block of the edge list, as
	// PowerGraph's parallel ingress does ("all datasets were split into as
	// many blocks as there are machines", §5.3). Block locality is what
	// lets the greedy heuristics exploit the ordering of low-degree graphs.
	m := g.NumEdges()
	for i, e := range g.Edges {
		st := loaders[i*numLoaders/max(m, 1)]
		var p int
		if hdrfLambda != nil {
			p = hdrfPick(st, e, numParts, *hdrfLambda)
		} else {
			p = obliviousPick(st, e, numParts, &cands)
		}
		st.place(e, p)
		parts[i] = int32(p)
	}
	return &Result{EdgeParts: parts}, nil
}

func obliviousPick(st *loaderState, e graph.Edge, numParts int, scratch *[]int) int {
	au := st.parts.row(int(e.Src))
	av := st.parts.row(int(e.Dst))
	cands := (*scratch)[:0]

	// Case 1: intersection.
	for wi := range au {
		w := au[wi] & av[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			cands = append(cands, wi*64+b)
			w &= w - 1
		}
	}
	if len(cands) == 0 {
		// Cases 2 and 4: union of the non-empty sets.
		for wi := range au {
			w := au[wi] | av[wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				cands = append(cands, wi*64+b)
				w &= w - 1
			}
		}
	}
	if len(cands) == 0 {
		// Case 3: anywhere.
		for p := 0; p < numParts; p++ {
			cands = append(cands, p)
		}
	}
	*scratch = cands
	return st.leastLoadedIn(cands)
}

func hdrfPick(st *loaderState, e graph.Edge, numParts int, lambda float64) int {
	st.pdeg[e.Src]++
	st.pdeg[e.Dst]++
	du := float64(st.pdeg[e.Src])
	dv := float64(st.pdeg[e.Dst])
	thetaU := du / (du + dv)
	thetaV := dv / (du + dv)

	var maxLoad, minLoad int64
	maxLoad, minLoad = st.load[0], st.load[0]
	for _, l := range st.load[1:] {
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
	}
	denom := float64(maxLoad-minLoad) + 1

	best := 0
	bestScore := -1.0
	ties := 1
	for p := 0; p < numParts; p++ {
		var crep float64
		if st.parts.has(int(e.Src), p) {
			crep += 1 + (1 - thetaU)
		}
		if st.parts.has(int(e.Dst), p) {
			crep += 1 + (1 - thetaV)
		}
		// CBAL ∈ [0,1): less-loaded partitions score higher.
		cbal := float64(maxLoad-st.load[p]) / denom
		score := crep + lambda*cbal
		switch {
		case score > bestScore:
			best, bestScore, ties = p, score, 1
		case score == bestScore:
			ties++
			if st.rng.Intn(ties) == 0 {
				best = p
			}
		}
	}
	return best
}
