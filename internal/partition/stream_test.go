package partition

import (
	"errors"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// feedInBatches pushes a graph's edge list through a StreamBuilder in
// batches of the given size, reusing one buffer as a file reader would.
func feedInBatches(t *testing.T, b *StreamBuilder, g *graph.Graph, batchSize int) {
	t.Helper()
	buf := make([]graph.Edge, 0, batchSize)
	offset := int64(0)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if err := b.Feed(EdgeBatch{Offset: offset, Edges: buf}); err != nil {
			t.Fatal(err)
		}
		offset += int64(len(buf))
		buf = buf[:0]
	}
	for _, e := range g.Edges {
		buf = append(buf, e)
		if len(buf) == batchSize {
			flush()
		}
	}
	flush()
}

// TestStreamMatchesMaterialized asserts that the memory-bounded stream
// ingress produces the same bookkeeping as the materialized Partition path
// for every stateless strategy: edge counts, masters, replica totals,
// replication factor and balance.
func TestStreamMatchesMaterialized(t *testing.T) {
	g := gen.PrefAttach("stream", 3000, 5, 0x71)
	for _, name := range AllNames() {
		s := MustNew(name, Options{HybridThreshold: 30})
		ss, ok := s.(StatelessStrategy)
		if !ok {
			continue
		}
		parts := partsFor(name)
		want, err := Partition(g, s, parts, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, batchSize := range []int{1, 97, 4096} {
			b, err := NewStreamBuilder(ss, parts, 9)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			feedInBatches(t, b, g, batchSize)
			got := b.Finish()
			if got.NumEdges != int64(g.NumEdges()) || got.NumVertices != g.NumVertices() {
				t.Fatalf("%s/batch=%d: sizes |V|=%d |E|=%d, want %d/%d",
					name, batchSize, got.NumVertices, got.NumEdges, g.NumVertices(), g.NumEdges())
			}
			for p := range want.EdgeCount {
				if want.EdgeCount[p] != got.EdgeCount[p] {
					t.Fatalf("%s/batch=%d: partition %d holds %d edges, want %d",
						name, batchSize, p, got.EdgeCount[p], want.EdgeCount[p])
				}
			}
			for v := range want.Masters {
				if want.Masters[v] != got.Masters[v] {
					t.Fatalf("%s/batch=%d: master of %d is %d, want %d",
						name, batchSize, v, got.Masters[v], want.Masters[v])
				}
			}
			for p := 0; p < parts; p++ {
				if want.ReplicasOnPart(p) != got.ReplicasOnPart(p) {
					t.Fatalf("%s/batch=%d: partition %d holds %d replicas, want %d",
						name, batchSize, p, got.ReplicasOnPart(p), want.ReplicasOnPart(p))
				}
			}
			if want.TotalReplicas() != got.TotalReplicas() {
				t.Fatalf("%s/batch=%d: total replicas %d, want %d",
					name, batchSize, got.TotalReplicas(), want.TotalReplicas())
			}
			if want.ReplicationFactor() != got.ReplicationFactor() {
				t.Fatalf("%s/batch=%d: RF %v, want %v",
					name, batchSize, got.ReplicationFactor(), want.ReplicationFactor())
			}
			if want.EdgeBalance() != got.EdgeBalance() {
				t.Fatalf("%s/batch=%d: balance %v, want %v",
					name, batchSize, got.EdgeBalance(), want.EdgeBalance())
			}
		}
	}
}

// TestStreamBuilderRejectsStateful documents that the greedy and multi-pass
// families do not satisfy the stateless capability (the compiler enforces
// it; this guards against someone "helpfully" adding NewAssigner to them).
func TestStreamBuilderRejectsStateful(t *testing.T) {
	for _, name := range []string{"Oblivious", "HDRF", "Hybrid", "H-Ginger"} {
		if _, ok := MustNew(name, Options{}).(StatelessStrategy); ok {
			t.Errorf("%s claims to be stateless; its placement depends on stream order/state", name)
		}
	}
}

func TestStreamBuilderEmpty(t *testing.T) {
	b, err := NewStreamBuilder(Random{}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := b.Finish()
	if sum.NumEdges != 0 || sum.NumVertices != 0 {
		t.Fatalf("empty stream: |V|=%d |E|=%d", sum.NumVertices, sum.NumEdges)
	}
	if rf := sum.ReplicationFactor(); rf != 0 {
		t.Fatalf("empty stream RF = %v", rf)
	}
	if bal := sum.EdgeBalance(); bal != 1 {
		t.Fatalf("empty stream balance = %v", bal)
	}
}

func TestStreamBuilderBadParts(t *testing.T) {
	if _, err := NewStreamBuilder(Random{}, 0, 1); err == nil {
		t.Error("numParts=0 accepted")
	}
	// Grid propagates its perfect-square constraint through NewAssigner.
	if _, err := NewStreamBuilder(Grid{}, 8, 1); err == nil {
		t.Error("Grid with non-square parts accepted")
	}
}

// TestShapeOf pins the capability-derived ingress shapes the cluster model
// depends on.
func TestShapeOf(t *testing.T) {
	cases := []struct {
		name      string
		passes    int
		heuristic int
		streaming bool
		loaders   int
		multiPass bool
	}{
		{"Random", 1, 0, true, 0, false},
		{"Grid", 1, 0, true, 0, false},
		{"Oblivious", 1, 1, true, 16, false},
		{"HDRF", 1, 1, true, 16, false},
		{"Hybrid", 2, 0, false, 0, true},
		{"H-Ginger", 3, 3, false, 0, true},
		{"HEP", 2, 1, false, 0, true},
		{"JaBeJaSwap", 5, 0, false, 0, true}, // Random's 1 pass + 4 swap rounds
		{"Multilevel", 3, 1, false, 0, true},
	}
	for _, tc := range cases {
		shape := ShapeOf(MustNew(tc.name, Options{}), 16)
		if shape.Passes != tc.passes || shape.HeuristicPasses != tc.heuristic ||
			shape.Streaming != tc.streaming || shape.Loaders != tc.loaders {
			t.Errorf("%s: shape %+v, want passes=%d hp=%d streaming=%v loaders=%d",
				tc.name, shape, tc.passes, tc.heuristic, tc.streaming, tc.loaders)
		}
		if (shape.MultiPassReason != "") != tc.multiPass {
			t.Errorf("%s: MultiPassReason %q, want declared=%v", tc.name, shape.MultiPassReason, tc.multiPass)
		}
	}
}

// TestRegisterRejectsDuplicates guards the self-registering factory map.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("Random", func(Options) Strategy { return Random{} })
}

// noCapStrategy implements only the base Strategy interface — none of the
// ingress capabilities — so registering it must be rejected.
type noCapStrategy struct{}

func (noCapStrategy) Name() string { return "NoCap" }
func (noCapStrategy) Passes() int  { return 1 }
func (noCapStrategy) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return &Result{EdgeParts: make([]int32, g.NumEdges())}, nil
}

// TestRegisterRejectsCapabilityless: a strategy with no ingress capability
// would dodge ShapeOf dispatch and every stream builder; Register panics at
// init time instead, wrapping the named ErrNoIngressCapability.
func TestRegisterRejectsCapabilityless(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("capability-less Register did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrNoIngressCapability) {
			t.Fatalf("panic %v (%T) does not wrap ErrNoIngressCapability", r, r)
		}
	}()
	Register("NoCap", func(Options) Strategy { return noCapStrategy{} })
}

// TestRegisterRejectsNilProbe: a factory that builds no strategy at all is
// the degenerate capability-less case and trips the same guard.
func TestRegisterRejectsNilProbe(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nil-producing Register did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrNoIngressCapability) {
			t.Fatalf("panic %v (%T) does not wrap ErrNoIngressCapability", r, r)
		}
	}()
	Register("NilProbe", func(Options) Strategy { return nil })
}
