package partition

import (
	"errors"
	"fmt"

	"graphpart/internal/graph"
)

// ErrNotIncremental is wrapped by AsIncremental when a strategy cannot
// assign edges incrementally (today: the multi-pass family, which needs the
// whole edge list per pass). Callers fall back to repartition-per-batch.
var ErrNotIncremental = errors.New("partition: strategy cannot assign incrementally")

// IncrementalAssigner places edges one at a time into a long-lived
// partitioning as the graph churns. Unlike an Assigner it may carry state
// across calls (the greedy loaders do), and it is told about deletions so
// that bounded state — per-partition loads, partial degrees — tracks the
// live graph rather than the whole history.
type IncrementalAssigner interface {
	// AssignAdd places a newly arrived edge.
	AssignAdd(e graph.Edge) int32
	// ObserveDelete informs the assigner that edge e, previously placed on
	// partition p, has been deleted. Stateless assigners ignore it.
	ObserveDelete(e graph.Edge, p int32)
}

// IncrementalStrategy is the capability of strategies that natively maintain
// assignment state across churn batches (Oblivious, HDRF: one persistent
// loader whose loads and partial degrees follow adds and deletes).
// Stateless strategies do not implement it — AsIncremental adapts them for
// free, because a pure per-edge hash needs no state at all.
type IncrementalStrategy interface {
	Strategy
	// NewIncremental builds the persistent assigner for (numParts, seed).
	NewIncremental(numParts int, seed uint64) (IncrementalAssigner, error)
}

// statelessIncremental adapts a stateless Assigner to the incremental
// interface: adds hash exactly as one-shot ingress would, deletes are
// no-ops. This is what makes the incremental path's placements literally
// identical to the one-shot path for the whole hash family.
type statelessIncremental struct {
	asg Assigner
}

func (s statelessIncremental) AssignAdd(e graph.Edge) int32    { return s.asg.Assign(e) }
func (s statelessIncremental) ObserveDelete(graph.Edge, int32) {}

// statelessIncrementalHinted additionally forwards the assigner's master
// hints, so hint-driven master selection (1D-Target, AsymRandom) survives
// the adaptation.
type statelessIncrementalHinted struct {
	statelessIncremental
	h MasterHinter
}

func (s statelessIncrementalHinted) MasterHint(v graph.VertexID) int32 { return s.h.MasterHint(v) }

// IsNotIncremental reports whether err means "this strategy cannot assign
// incrementally" (as opposed to an invalid-parameter error).
func IsNotIncremental(err error) bool {
	return errors.Is(err, ErrNotIncremental)
}

// AsIncremental resolves a strategy's incremental assigner by capability:
// native IncrementalStrategy first, then the free stateless adaptation.
// Anything else — the multi-pass family — gets an error wrapping
// ErrNotIncremental that names the missing capability, and callers
// repartition per batch instead.
func AsIncremental(s Strategy, numParts int, seed uint64) (IncrementalAssigner, error) {
	if is, ok := s.(IncrementalStrategy); ok {
		return is.NewIncremental(numParts, seed)
	}
	if ss, ok := s.(StatelessStrategy); ok {
		asg, err := ss.NewAssigner(numParts, seed)
		if err != nil {
			return nil, fmt.Errorf("partition: strategy %s: %w", s.Name(), err)
		}
		base := statelessIncremental{asg: asg}
		if h, ok := asg.(MasterHinter); ok {
			return statelessIncrementalHinted{statelessIncremental: base, h: h}, nil
		}
		return base, nil
	}
	if mp, ok := s.(MultiPassStrategy); ok {
		_, _, why := mp.MultiPass()
		return nil, fmt.Errorf("%w: %s is a MultiPassStrategy (%s)", ErrNotIncremental, s.Name(), why)
	}
	return nil, fmt.Errorf("%w: %s implements neither IncrementalStrategy nor StatelessStrategy", ErrNotIncremental, s.Name())
}
