package partition

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// Grid is PowerGraph's constrained Grid partitioning (§5.2.3, from the
// GraphBuilder paper): machines form a √P×√P matrix; a vertex's constraint
// set S(v) is the row plus column of the machine it hashes to; an edge
// (u,v) is placed on a partition in S(u)∩S(v), which is never empty and
// bounds the replication factor by 2√P−1. As in PowerGraph, P must be a
// perfect square.
type Grid struct{}

// Name implements Strategy.
func (Grid) Name() string { return "Grid" }

// Passes implements Strategy.
func (Grid) Passes() int { return 1 }

// Partition implements Strategy.
func (Grid) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	side := ceilSqrt(numParts)
	if side*side != numParts {
		return nil, fmt.Errorf("grid: numParts=%d is not a perfect square", numParts)
	}
	parts := gridAssign(g, numParts, side, seed)
	return &Result{EdgeParts: parts}, nil
}

// ResilientGrid is the thesis's non-square-tolerant Grid (§9.1): the grid
// is built at the next perfect square ≥ P and chosen partitions are mapped
// back down modulo P (potentially unbalancing load, as the thesis notes
// for 2D in §7.2.3).
type ResilientGrid struct{}

// Name implements Strategy.
func (ResilientGrid) Name() string { return "ResilientGrid" }

// Passes implements Strategy.
func (ResilientGrid) Passes() int { return 1 }

// Partition implements Strategy.
func (ResilientGrid) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	side := ceilSqrt(numParts)
	parts := gridAssign(g, side*side, side, seed)
	if side*side != numParts {
		for i := range parts {
			parts[i] = parts[i] % int32(numParts)
		}
	}
	return &Result{EdgeParts: parts}, nil
}

// gridAssign places each edge on a deterministic member of S(u)∩S(v) for a
// side×side grid of gridParts partitions.
func gridAssign(g *graph.Graph, gridParts, side int, seed uint64) []int32 {
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		hu := int(hashing.Vertex(seed, e.Src) % uint64(gridParts))
		hv := int(hashing.Vertex(seed, e.Dst) % uint64(gridParts))
		ru, cu := hu/side, hu%side
		rv, cv := hv/side, hv%side
		// S(u)∩S(v) always contains the two "corner" machines (ru,cv) and
		// (rv,cu); when u and v share a row or column the intersection is
		// that whole line. PowerGraph hashes the edge over the candidates.
		var cands [2]int
		n := 0
		cands[n] = ru*side + cv
		n++
		if c := rv*side + cu; c != cands[0] {
			cands[n] = c
			n++
		}
		pick := hashing.EdgeCanonical(seed^0x96d, e.Src, e.Dst) % uint64(n)
		parts[i] = int32(cands[pick])
	}
	return parts
}
