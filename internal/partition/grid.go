package partition

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("Grid", func(Options) Strategy { return Grid{} })
	Register("ResilientGrid", func(Options) Strategy { return ResilientGrid{} })
}

// Grid is PowerGraph's constrained Grid partitioning (§5.2.3, from the
// GraphBuilder paper): machines form a √P×√P matrix; a vertex's constraint
// set S(v) is the row plus column of the machine it hashes to; an edge
// (u,v) is placed on a partition in S(u)∩S(v), which is never empty and
// bounds the replication factor by 2√P−1. As in PowerGraph, P must be a
// perfect square.
type Grid struct{}

// Name implements Strategy.
func (Grid) Name() string { return "Grid" }

// Passes implements Strategy.
func (Grid) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (Grid) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	side := ceilSqrt(numParts)
	if side*side != numParts {
		return nil, fmt.Errorf("grid: numParts=%d is not a perfect square", numParts)
	}
	return gridAssigner{gridParts: numParts, side: side, mod: numParts, seed: seed}, nil
}

// Partition implements Strategy.
func (s Grid) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

// ResilientGrid is the thesis's non-square-tolerant Grid (§9.1): the grid
// is built at the next perfect square ≥ P and chosen partitions are mapped
// back down modulo P (potentially unbalancing load, as the thesis notes
// for 2D in §7.2.3).
type ResilientGrid struct{}

// Name implements Strategy.
func (ResilientGrid) Name() string { return "ResilientGrid" }

// Passes implements Strategy.
func (ResilientGrid) Passes() int { return 1 }

// NewAssigner implements StatelessStrategy.
func (ResilientGrid) NewAssigner(numParts int, seed uint64) (Assigner, error) {
	side := ceilSqrt(numParts)
	return gridAssigner{gridParts: side * side, side: side, mod: numParts, seed: seed}, nil
}

// Partition implements Strategy.
func (s ResilientGrid) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	return statelessPartition(s, g, numParts, seed)
}

// gridAssigner places each edge on a deterministic member of S(u)∩S(v) for
// a side×side grid of gridParts partitions, mapped down modulo mod.
type gridAssigner struct {
	gridParts int
	side      int
	mod       int
	seed      uint64
}

func (a gridAssigner) Assign(e graph.Edge) int32 {
	hu := int(hashing.Vertex(a.seed, e.Src) % uint64(a.gridParts))
	hv := int(hashing.Vertex(a.seed, e.Dst) % uint64(a.gridParts))
	ru, cu := hu/a.side, hu%a.side
	rv, cv := hv/a.side, hv%a.side
	// S(u)∩S(v) always contains the two "corner" machines (ru,cv) and
	// (rv,cu); when u and v share a row or column the intersection is
	// that whole line. PowerGraph hashes the edge over the candidates.
	var cands [2]int
	n := 0
	cands[n] = ru*a.side + cv
	n++
	if c := rv*a.side + cu; c != cands[0] {
		cands[n] = c
		n++
	}
	pick := hashing.EdgeCanonical(a.seed^0x96d, e.Src, e.Dst) % uint64(n)
	return int32(cands[pick] % a.mod)
}
