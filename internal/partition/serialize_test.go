package partition

import (
	"bytes"
	"path/filepath"
	"testing"

	"graphpart/internal/gen"
)

func TestAssignmentRoundTrip(t *testing.T) {
	g := gen.PrefAttach("ser", 1500, 5, 0x31)
	orig, err := Partition(g, Hybrid{Threshold: 30}, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignment(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != orig.Strategy || got.NumParts != orig.NumParts || got.Passes != orig.Passes {
		t.Fatalf("metadata mismatch: %+v vs %+v", got.Strategy, orig.Strategy)
	}
	for i := range orig.EdgeParts {
		if got.EdgeParts[i] != orig.EdgeParts[i] {
			t.Fatalf("edge %d part %d != %d", i, got.EdgeParts[i], orig.EdgeParts[i])
		}
	}
	for v := range orig.Masters {
		if got.Masters[v] != orig.Masters[v] {
			t.Fatalf("vertex %d master %d != %d", v, got.Masters[v], orig.Masters[v])
		}
	}
	if got.ReplicationFactor() != orig.ReplicationFactor() {
		t.Fatalf("RF %v != %v", got.ReplicationFactor(), orig.ReplicationFactor())
	}
}

func TestAssignmentFileRoundTrip(t *testing.T) {
	g := gen.RoadNet("ser-road", 20, 20, 0x31)
	orig, err := Partition(g, Oblivious{}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "asg.bin")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReplicationFactor() != orig.ReplicationFactor() {
		t.Fatalf("RF mismatch after file round trip")
	}
	if got.EdgeBalance() != orig.EdgeBalance() {
		t.Fatalf("balance mismatch after file round trip")
	}
}

func TestReadAssignmentValidation(t *testing.T) {
	g := gen.RoadNet("ser-v", 10, 10, 1)
	other := gen.RoadNet("ser-w", 12, 12, 2)
	a, err := Partition(g, Random{}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAssignment(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted assignment against the wrong graph")
	}
	if _, err := ReadAssignment(g, bytes.NewReader([]byte("garbage data here....."))); err == nil {
		t.Error("accepted garbage input")
	}
	if _, err := ReadAssignment(g, bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("accepted truncated input")
	}
}

func TestLoadedAssignmentKeepsStrategyIdentity(t *testing.T) {
	g := gen.RoadNet("ser-x", 10, 10, 1)
	a, _ := Partition(g, Random{}, 4, 1)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignment(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// A deserialized assignment carries the writer's strategy identity
	// without any Strategy implementation behind it: there is no
	// registered (or registrable) type to re-partition with.
	if got.Strategy != a.Strategy || got.Passes != a.Passes {
		t.Errorf("identity drifted: got %s/%d, want %s/%d", got.Strategy, got.Passes, a.Strategy, a.Passes)
	}
	if _, err := New(got.Strategy, Options{}); err != nil {
		t.Fatalf("writer strategy %s should still construct: %v", got.Strategy, err)
	}
}
