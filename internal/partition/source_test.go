package partition_test

import (
	"path/filepath"
	"testing"

	"graphpart/internal/datasets"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// sourceParts picks a partition count every strategy accepts: Grid needs a
// perfect square, PDS needs p²+p+1.
func sourceParts(name string) int {
	if name == "PDS" {
		return 13
	}
	return 9
}

// TestBinaryAndTextSourcesYieldIdenticalAssignments is the acceptance bar
// for the binary graph format: for every registered dataset, partitioning
// the graph loaded from its .csrg form must yield byte-identical edge
// placements and masters to the graph loaded from a text edge list, for all
// 16 strategies (the paper's 13 plus HEP, JaBeJaSwap and Multilevel). The
// formats must therefore preserve edge order exactly — streaming strategies
// assign by edge index, so order is part of graph identity.
func TestBinaryAndTextSourcesYieldIdenticalAssignments(t *testing.T) {
	names := datasets.Names()
	if testing.Short() {
		names = []string{"road-ca", "livejournal"} // one per ingress regime
	}
	strategies := partition.AllNames()
	if len(strategies) != 16 {
		t.Fatalf("registry has %d strategies, want the paper's 13 plus the 3 added families", len(strategies))
	}
	dir := t.TempDir()
	for _, ds := range names {
		g := datasets.MustLoad(ds, 1)
		textPath := filepath.Join(dir, ds+".txt")
		v1Path := filepath.Join(dir, ds+".v1.csrg")
		v2Path := filepath.Join(dir, ds+".v2.csrg")
		if err := graph.SaveEdgeList(g, textPath); err != nil {
			t.Fatal(err)
		}
		if err := graph.SaveCSR(g, v1Path); err != nil {
			t.Fatal(err)
		}
		if err := graph.SaveCSRVersion(g, v2Path, graph.CSRVersion2); err != nil {
			t.Fatal(err)
		}

		// Every source format and load path in the repo, against the text
		// baseline: v1 via mmap (when the platform has it), v1 via the
		// portable read path, and v2's parallel block decode.
		sources := map[string]*graph.Graph{}
		load := func(how string, fn func() (*graph.Graph, error)) {
			lg, err := fn()
			if err != nil {
				t.Fatalf("%s (%s): %v", ds, how, err)
			}
			if lg.NumEdges() != g.NumEdges() {
				t.Fatalf("%s (%s): reloaded %d edges, want %d", ds, how, lg.NumEdges(), g.NumEdges())
			}
			sources[how] = lg
		}
		load("text", func() (*graph.Graph, error) { return graph.LoadFile(textPath) })
		load("v1-mmap", func() (*graph.Graph, error) { return graph.LoadCSR(v1Path) })
		load("v1-read", func() (*graph.Graph, error) {
			return graph.LoadCSRWith(v1Path, graph.CSRLoadOptions{DisableMmap: true})
		})
		load("v2", func() (*graph.Graph, error) { return graph.LoadCSR(v2Path) })
		fromText := sources["text"]

		for _, name := range strategies {
			parts := sourceParts(name)
			s := partition.MustNew(name, partition.Options{HybridThreshold: 30})
			at, err := partition.Partition(fromText, s, parts, 1)
			if err != nil {
				t.Fatalf("%s/%s (text): %v", ds, name, err)
			}
			for how, src := range sources {
				if how == "text" {
					continue
				}
				ab, err := partition.Partition(src, s, parts, 1)
				if err != nil {
					t.Fatalf("%s/%s (%s): %v", ds, name, how, err)
				}
				if !int32SlicesEqual(at.EdgeParts, ab.EdgeParts) {
					t.Errorf("%s/%s: edge placements differ between text and %s sources", ds, name, how)
				}
				if !int32SlicesEqual(at.Masters, ab.Masters) {
					t.Errorf("%s/%s: masters differ between text and %s sources", ds, name, how)
				}
			}
		}
	}
}

// TestStreamedBinarySourceMatchesText feeds a StreamBuilder from both file
// formats via graph.StreamFile and checks the streamed summaries agree —
// the bounded-memory ingress path accepts the binary source too.
func TestStreamedBinarySourceMatchesText(t *testing.T) {
	g := datasets.MustLoad("road-ca", 1)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.csrg")
	v2Path := filepath.Join(dir, "g.v2.csrg")
	if err := graph.SaveEdgeList(g, textPath); err != nil {
		t.Fatal(err)
	}
	if err := graph.SaveCSR(g, binPath); err != nil {
		t.Fatal(err)
	}
	if err := graph.SaveCSRVersion(g, v2Path, graph.CSRVersion2); err != nil {
		t.Fatal(err)
	}

	summarize := func(path string) *partition.StreamSummary {
		s := partition.MustNew("Grid", partition.Options{}).(partition.StatelessStrategy)
		b, err := partition.NewStreamBuilder(s, 9, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := graph.StreamFile(path, 4096, func(offset int64, edges []graph.Edge) error {
			return b.Feed(partition.EdgeBatch{Offset: offset, Edges: edges})
		}); err != nil {
			t.Fatal(err)
		}
		return b.Finish()
	}
	st := summarize(textPath)
	for _, path := range []string{binPath, v2Path} {
		sb := summarize(path)
		if st.NumEdges != sb.NumEdges || st.NumVertices != sb.NumVertices {
			t.Errorf("%s: streamed sizes differ: text |V|=%d |E|=%d, binary |V|=%d |E|=%d",
				path, st.NumVertices, st.NumEdges, sb.NumVertices, sb.NumEdges)
		}
		if st.ReplicationFactor() != sb.ReplicationFactor() || st.EdgeBalance() != sb.EdgeBalance() {
			t.Errorf("%s: streamed metrics differ: text rf=%v bal=%v, binary rf=%v bal=%v",
				path, st.ReplicationFactor(), st.EdgeBalance(), sb.ReplicationFactor(), sb.EdgeBalance())
		}
		if !int32SlicesEqual(st.Masters, sb.Masters) {
			t.Errorf("%s: streamed masters differ between text and binary sources", path)
		}
	}
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
