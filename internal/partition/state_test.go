package partition

import (
	"errors"
	"strings"
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// applyTrace drives a PartitionState through a churn trace over g's edges
// and returns the surviving edge set.
func applyTrace(t *testing.T, st *PartitionState, g *graph.Graph, cfg gen.ChurnConfig) []graph.Edge {
	t.Helper()
	survivors, err := gen.ChurnTrace(g.Edges, cfg, func(w gen.ChurnWindow) error {
		_, err := st.ApplyBatch(gen.Edges(w.Adds), gen.Edges(w.Dels))
		return err
	})
	if err != nil {
		t.Fatalf("churn trace: %v", err)
	}
	return survivors
}

// assertStateMatchesAssignment checks every summary a PartitionState shares
// with the one-shot Assignment path: edge counts, replica counts, masters,
// and the derived quality metrics.
func assertStateMatchesAssignment(t *testing.T, label string, st *PartitionState, a *Assignment) {
	t.Helper()
	if st.NumEdges() != int64(a.G.NumEdges()) {
		t.Fatalf("%s: %d live edges, one-shot has %d", label, st.NumEdges(), a.G.NumEdges())
	}
	for p := 0; p < st.NumParts(); p++ {
		if st.EdgeCount()[p] != a.EdgeCount[p] {
			t.Errorf("%s: part %d holds %d edges incrementally, %d one-shot", label, p, st.EdgeCount()[p], a.EdgeCount[p])
		}
		if st.ReplicasOnPart(p) != a.ReplicasOnPart(p) {
			t.Errorf("%s: part %d holds %d images incrementally, %d one-shot", label, p, st.ReplicasOnPart(p), a.ReplicasOnPart(p))
		}
	}
	if st.TotalReplicas() != a.TotalReplicas() {
		t.Errorf("%s: %d total replicas, one-shot %d", label, st.TotalReplicas(), a.TotalReplicas())
	}
	if st.ReplicationFactor() != a.ReplicationFactor() {
		t.Errorf("%s: RF %v, one-shot %v", label, st.ReplicationFactor(), a.ReplicationFactor())
	}
	if st.EdgeBalance() != a.EdgeBalance() {
		t.Errorf("%s: balance %v, one-shot %v", label, st.EdgeBalance(), a.EdgeBalance())
	}
	n := a.G.NumVertices()
	for v := 0; v < n; v++ {
		if st.Master(graph.VertexID(v)) != a.Master(graph.VertexID(v)) {
			t.Fatalf("%s: vertex %d master %d incrementally, %d one-shot", label, v, st.Master(graph.VertexID(v)), a.Master(graph.VertexID(v)))
		}
		if st.Replicas(graph.VertexID(v)) != a.Replicas(graph.VertexID(v)) {
			t.Fatalf("%s: vertex %d has %d replicas incrementally, %d one-shot", label, v, st.Replicas(graph.VertexID(v)), a.Replicas(graph.VertexID(v)))
		}
	}
	// Vertices beyond the one-shot graph's id space must be isolated.
	for v := n; v < st.NumVertices(); v++ {
		if st.Master(graph.VertexID(v)) != -1 || st.Replicas(graph.VertexID(v)) != 0 {
			t.Fatalf("%s: vertex %d beyond survivors has master %d / %d replicas", label, v, st.Master(graph.VertexID(v)), st.Replicas(graph.VertexID(v)))
		}
	}
}

// TestIncrementalMatchesOneShotAddOnly is the acceptance property: an
// add-only churn trace through PartitionState yields summaries identical to
// the one-shot path for every registered strategy. Greedy strategies pin
// Loaders:1 so the one-shot pass uses the same single loader state the
// persistent incremental assigner does.
func TestIncrementalMatchesOneShotAddOnly(t *testing.T) {
	g := testGraph()
	for _, name := range AllNames() {
		s := MustNew(name, Options{HybridThreshold: 30, Loaders: 1})
		numParts := 9
		if name == "PDS" {
			numParts = 7
		}
		st, err := NewPartitionState(s, numParts, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		applyTrace(t, st, g, gen.ChurnConfig{Windows: 5, DelFrac: 0, Seed: 7})
		a, err := Partition(g, s, numParts, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertStateMatchesAssignment(t, name, st, a)
	}
}

// TestStatelessChurnEquivalence is the satellite property test: after an
// arbitrary add/delete trace, the state's summaries equal a one-shot
// partitioning of the surviving edge set, for every stateless strategy,
// across seeds and rebuild worker counts.
func TestStatelessChurnEquivalence(t *testing.T) {
	g := testGraph()
	for _, s := range allStrategies() {
		ss, ok := s.(StatelessStrategy)
		if !ok {
			continue
		}
		numParts := 9
		if s.Name() == "PDS" {
			numParts = 7
		}
		for _, seed := range []uint64{1, 42} {
			for _, workers := range []int{1, 4} {
				st, err := NewPartitionState(ss, numParts, seed, workers)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				survivors := applyTrace(t, st, g, gen.ChurnConfig{Windows: 6, DelFrac: 0.3, Seed: seed})
				lg := graph.FromEdges("survivors", survivors)
				a, err := ParallelPartition(lg, ss, numParts, seed, workers)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				label := s.Name()
				assertStateMatchesAssignment(t, label, st, a)
			}
		}
	}
}

// TestMultiPassChurnEquivalence: multi-pass strategies absorb churn by
// repartitioning the live set per batch, so after any trace they too must
// match the one-shot partitioning of the state's live edge list. The live
// list — not the trace's survivor list — is the reference: deletions swap
// edges from the tail, and order-dependent strategies (HEP's streamed
// spill, JaBeJaSwap's indexed swap partners, Multilevel's load-aware cut
// split) legitimately place a permuted edge list differently.
func TestMultiPassChurnEquivalence(t *testing.T) {
	g := testGraph()
	for _, s := range allStrategies() {
		if _, ok := s.(MultiPassStrategy); !ok {
			continue
		}
		st, err := NewPartitionState(s, 9, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if st.Incremental() {
			t.Fatalf("%s: multi-pass strategy claims incremental support", s.Name())
		}
		survivors := applyTrace(t, st, g, gen.ChurnConfig{Windows: 4, DelFrac: 0.2, Seed: 3})
		if int64(len(survivors)) != st.NumEdges() {
			t.Fatalf("%s: %d live edges, trace left %d", s.Name(), st.NumEdges(), len(survivors))
		}
		lg := graph.FromEdges("survivors", st.LiveEdges())
		a, err := ParallelPartition(lg, s, 9, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		assertStateMatchesAssignment(t, s.Name(), st, a)
	}
}

// TestGreedyIncrementalBoundedDrift: under deletions the persistent greedy
// loader's placements may drift from a from-scratch pass, but the state's
// own bookkeeping must stay exact (counts sum to live edges) and quality
// must stay in sane bounds.
func TestGreedyIncrementalBoundedDrift(t *testing.T) {
	g := testGraph()
	for _, name := range []string{"Oblivious", "HDRF"} {
		s := MustNew(name, Options{Loaders: 1})
		st, err := NewPartitionState(s, 9, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		survivors := applyTrace(t, st, g, gen.ChurnConfig{Windows: 6, DelFrac: 0.3, Seed: 11})
		if st.NumEdges() != int64(len(survivors)) {
			t.Fatalf("%s: %d live edges, trace left %d", name, st.NumEdges(), len(survivors))
		}
		var total int64
		for p := 0; p < st.NumParts(); p++ {
			total += st.EdgeCount()[p]
		}
		if total != st.NumEdges() {
			t.Fatalf("%s: edge counts sum to %d, want %d", name, total, st.NumEdges())
		}
		if rf := st.ReplicationFactor(); rf < 1 || rf > 9 {
			t.Fatalf("%s: replication factor %v out of range", name, rf)
		}
	}
}

func TestApplyBatchRejectsUnknownDelete(t *testing.T) {
	st, err := NewPartitionState(MustNew("Random", Options{}), 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch([]graph.Edge{{Src: 0, Dst: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	_, err = st.ApplyBatch(nil, []graph.Edge{{Src: 1, Dst: 0}})
	if err == nil || !strings.Contains(err.Error(), "not live") {
		t.Fatalf("deleting a non-live edge: got %v, want 'not live' error", err)
	}
}

func TestDuplicateEdgesDeleteOneCopy(t *testing.T) {
	st, err := NewPartitionState(MustNew("Random", Options{}), 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := graph.Edge{Src: 2, Dst: 5}
	if _, err := st.ApplyBatch([]graph.Edge{e, e, e}, nil); err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != 3 {
		t.Fatalf("3 copies added, %d live", st.NumEdges())
	}
	if _, err := st.ApplyBatch(nil, []graph.Edge{e}); err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != 2 {
		t.Fatalf("one copy deleted, %d live (want 2)", st.NumEdges())
	}
	if st.Replicas(2) == 0 || st.Replicas(5) == 0 {
		t.Fatal("endpoints lost their images while copies remain")
	}
	if _, err := st.ApplyBatch(nil, []graph.Edge{e, e}); err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != 0 || st.Replicas(2) != 0 || st.Master(2) != -1 {
		t.Fatalf("all copies deleted: %d live, %d replicas, master %d", st.NumEdges(), st.Replicas(2), st.Master(2))
	}
}

func TestRebalanceBringsBalanceUnderThreshold(t *testing.T) {
	// 1D hashes by source, so a hub-heavy power-law graph loads a few
	// partitions far beyond the mean.
	g := gen.PowerLaw("pl", gen.PowerLawConfig{N: 3000, Alpha: 1.7, MinD: 2, MaxD: 600, Seed: 5})
	st, err := NewPartitionState(MustNew("1D", Options{}), 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	applyTrace(t, st, g, gen.ChurnConfig{Windows: 1, DelFrac: 0, Seed: 1})
	cfg := RebalanceConfig{MaxBalance: 1.1}
	if !st.NeedsRebalance(cfg) {
		t.Skipf("graph not imbalanced enough to exercise rebalance (balance %v)", st.EdgeBalance())
	}
	stats := st.Rebalance(cfg)
	if stats.Moved == 0 {
		t.Fatal("rebalance moved nothing despite imbalance")
	}
	if stats.BalanceAfter > cfg.MaxBalance+0.05 {
		t.Fatalf("balance %v after rebalance, want ≤ ~%v", stats.BalanceAfter, cfg.MaxBalance)
	}
	if st.NeedsRebalance(cfg) {
		t.Fatalf("still needs rebalance after pass: balance %v", st.EdgeBalance())
	}
	// The bookkeeping must survive migration intact.
	var total int64
	for p := 0; p < st.NumParts(); p++ {
		total += st.EdgeCount()[p]
	}
	if total != st.NumEdges() {
		t.Fatalf("edge counts sum to %d after rebalance, want %d", total, st.NumEdges())
	}
}

func TestHotReplicationPinsAndReleases(t *testing.T) {
	g := testGraph()
	st, err := NewPartitionState(MustNew("HDRF", Options{Loaders: 1}), 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.SetHotReplication(16)
	applyTrace(t, st, g, gen.ChurnConfig{Windows: 4, DelFrac: 0.1, Seed: 2})
	hot := 0
	for v := 0; v < st.NumVertices(); v++ {
		if st.Replicas(graph.VertexID(v)) == 8 {
			hot++
		}
	}
	if hot < 16 {
		t.Fatalf("%d vertices fully replicated, want ≥16 hot pins", hot)
	}
	// Disabling drops every pinned image no live edge sustains.
	st.SetHotReplication(0)
	for v := 0; v < st.NumVertices(); v++ {
		reps := st.Replicas(graph.VertexID(v))
		if st.Degree(graph.VertexID(v)) == 0 && reps != 0 {
			t.Fatalf("vertex %d has %d images with no live edges after unpin", v, reps)
		}
	}
	var total int64
	for p := 0; p < st.NumParts(); p++ {
		total += st.EdgeCount()[p]
	}
	if total != st.NumEdges() {
		t.Fatalf("edge counts sum to %d, want %d", total, st.NumEdges())
	}
}

// TestRebalanceNewFamilies: the migration pass never touches the assigner,
// so it must also hold for the added multi-pass families — including
// JaBeJaSwap, whose swap refinement preserves per-partition loads and so
// inherits whatever imbalance its base left. After Rebalance the balance
// must sit at or under MaxBalance and the bookkeeping must stay coherent.
func TestRebalanceNewFamilies(t *testing.T) {
	g := gen.PowerLaw("pl", gen.PowerLawConfig{N: 3000, Alpha: 1.7, MinD: 2, MaxD: 600, Seed: 5})
	for _, name := range []string{"HEP", "JaBeJaSwap", "Multilevel"} {
		t.Run(name, func(t *testing.T) {
			st, err := NewPartitionState(MustNew(name, Options{}), 8, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			applyTrace(t, st, g, gen.ChurnConfig{Windows: 2, DelFrac: 0.05, Seed: 3})
			cfg := RebalanceConfig{MaxBalance: 1.05}
			before := st.EdgeBalance()
			stats := st.Rebalance(cfg)
			if st.NeedsRebalance(cfg) {
				t.Fatalf("balance %v after rebalance (before %v, moved %d), want ≤ %v",
					st.EdgeBalance(), before, stats.Moved, cfg.MaxBalance)
			}
			if before > cfg.MaxBalance && stats.Moved == 0 {
				t.Fatalf("balance %v over threshold yet rebalance moved nothing", before)
			}
			var total int64
			for p := 0; p < st.NumParts(); p++ {
				total += st.EdgeCount()[p]
			}
			if total != st.NumEdges() {
				t.Fatalf("edge counts sum to %d after rebalance, want %d", total, st.NumEdges())
			}
			if rf := st.ReplicationFactor(); rf < 1 || rf > stats.RFBefore+0.5 {
				t.Fatalf("RF %v after rebalance (before %v): migration should prefer resident endpoints",
					rf, stats.RFBefore)
			}
		})
	}
}

// TestHotReplicationNewFamilies: hot-vertex pinning is state-level too; it
// must pin and release cleanly on top of the added families' placements,
// and survive a Rebalance in between.
func TestHotReplicationNewFamilies(t *testing.T) {
	g := testGraph()
	for _, name := range []string{"HEP", "JaBeJaSwap", "Multilevel"} {
		t.Run(name, func(t *testing.T) {
			st, err := NewPartitionState(MustNew(name, Options{}), 8, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			st.SetHotReplication(16)
			applyTrace(t, st, g, gen.ChurnConfig{Windows: 3, DelFrac: 0.1, Seed: 4})
			hot := 0
			for v := 0; v < st.NumVertices(); v++ {
				if st.Replicas(graph.VertexID(v)) == 8 {
					hot++
				}
			}
			if hot < 16 {
				t.Fatalf("%d vertices fully replicated, want ≥16 hot pins", hot)
			}
			st.Rebalance(RebalanceConfig{MaxBalance: 1.1})
			st.SetHotReplication(0)
			for v := 0; v < st.NumVertices(); v++ {
				if st.Degree(graph.VertexID(v)) == 0 && st.Replicas(graph.VertexID(v)) != 0 {
					t.Fatalf("vertex %d has images with no live edges after unpin", v)
				}
			}
			var total int64
			for p := 0; p < st.NumParts(); p++ {
				total += st.EdgeCount()[p]
			}
			if total != st.NumEdges() {
				t.Fatalf("edge counts sum to %d, want %d", total, st.NumEdges())
			}
		})
	}
}

func TestAsIncrementalCapabilities(t *testing.T) {
	if _, err := AsIncremental(MustNew("2D", Options{}), 8, 1); err != nil {
		t.Fatalf("stateless strategy must adapt: %v", err)
	}
	if _, err := AsIncremental(MustNew("HDRF", Options{}), 8, 1); err != nil {
		t.Fatalf("HDRF must be natively incremental: %v", err)
	}
	_, err := AsIncremental(MustNew("Hybrid", Options{HybridThreshold: 30}), 8, 1)
	if !IsNotIncremental(err) {
		t.Fatalf("Hybrid: got %v, want ErrNotIncremental", err)
	}
	if !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("error must wrap ErrNotIncremental: %v", err)
	}
}
