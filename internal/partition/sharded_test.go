package partition

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"graphpart/internal/gen"
	"graphpart/internal/graph"
)

// feedSharded pushes a graph through a ShardedStreamBuilder in batches,
// reusing one buffer exactly as graph.StreamFile does.
func feedSharded(t *testing.T, sb *ShardedStreamBuilder, g *graph.Graph, batchSize int) {
	t.Helper()
	buf := make([]graph.Edge, 0, batchSize)
	offset := int64(0)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if err := sb.Feed(EdgeBatch{Offset: offset, Edges: buf}); err != nil {
			t.Fatal(err)
		}
		offset += int64(len(buf))
		buf = buf[:0]
	}
	for _, e := range g.Edges {
		buf = append(buf, e)
		if len(buf) == batchSize {
			flush()
		}
	}
	flush()
}

// TestShardedMatchesSequential is the correctness bar for sharded ingress:
// for every stateless strategy and several worker counts, the merged
// summary must be fully identical to the sequential StreamBuilder's —
// masters, per-partition counts, replicas, RF and balance — no matter how
// batches interleave across workers.
func TestShardedMatchesSequential(t *testing.T) {
	g := gen.PrefAttach("sharded", 4000, 5, 0x5d)
	for _, name := range AllNames() {
		s := MustNew(name, Options{HybridThreshold: 30})
		ss, ok := s.(StatelessStrategy)
		if !ok {
			continue
		}
		parts := partsFor(name)
		seq, err := NewStreamBuilder(ss, parts, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		feedInBatches(t, seq, g, 512)
		want := seq.Finish()

		for _, workers := range []int{1, 3, 8} {
			sb, err := NewShardedStreamBuilder(ss, parts, workers, 9)
			if err != nil {
				t.Fatalf("%s/w=%d: %v", name, workers, err)
			}
			feedSharded(t, sb, g, 512)
			got, err := sb.Finish()
			if err != nil {
				t.Fatalf("%s/w=%d: %v", name, workers, err)
			}
			if got.NumEdges != want.NumEdges || got.NumVertices != want.NumVertices {
				t.Fatalf("%s/w=%d: sizes |V|=%d |E|=%d, want %d/%d",
					name, workers, got.NumVertices, got.NumEdges, want.NumVertices, want.NumEdges)
			}
			for p := range want.EdgeCount {
				if want.EdgeCount[p] != got.EdgeCount[p] {
					t.Fatalf("%s/w=%d: partition %d holds %d edges, want %d",
						name, workers, p, got.EdgeCount[p], want.EdgeCount[p])
				}
			}
			for v := range want.Masters {
				if want.Masters[v] != got.Masters[v] {
					t.Fatalf("%s/w=%d: master of %d is %d, want %d",
						name, workers, v, got.Masters[v], want.Masters[v])
				}
			}
			for p := 0; p < parts; p++ {
				if want.ReplicasOnPart(p) != got.ReplicasOnPart(p) {
					t.Fatalf("%s/w=%d: partition %d holds %d replicas, want %d",
						name, workers, p, got.ReplicasOnPart(p), want.ReplicasOnPart(p))
				}
			}
			if want.ReplicationFactor() != got.ReplicationFactor() || want.EdgeBalance() != got.EdgeBalance() {
				t.Fatalf("%s/w=%d: metrics rf=%v bal=%v, want rf=%v bal=%v",
					name, workers, got.ReplicationFactor(), got.EdgeBalance(),
					want.ReplicationFactor(), want.EdgeBalance())
			}
		}
	}
}

// badAssigner places every edge out of range, to exercise the sharded error
// path end to end.
type badAssigner struct{}

func (badAssigner) Assign(graph.Edge) int32 { return 1 << 20 }

type badShardStrategy struct{ Random }

func (badShardStrategy) NewAssigner(int, uint64) (Assigner, error) { return badAssigner{}, nil }

func TestShardedPropagatesAssignmentErrors(t *testing.T) {
	sb, err := NewShardedStreamBuilder(badShardStrategy{}, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The error surfaces asynchronously: keep feeding until Feed reports
	// it or the stream ends, then Finish must report it regardless.
	var feedErr error
	for i := 0; i < 100 && feedErr == nil; i++ {
		feedErr = sb.Feed(EdgeBatch{Edges: []graph.Edge{{Src: 1, Dst: 2}}})
	}
	_, finishErr := sb.Finish()
	if finishErr == nil {
		t.Fatal("Finish swallowed the assignment error")
	}
	if !strings.Contains(finishErr.Error(), "placed edge") {
		t.Errorf("error %q does not name the misplaced edge", finishErr)
	}
	if err := sb.Feed(EdgeBatch{}); err == nil {
		t.Error("Feed after Finish accepted")
	}
}

// TestStreamBuilderFeedDoesNotAllocate pins the steady-state ingress hot
// path at zero allocations per batch: once the bit-matrices have grown to
// the vertex range, the batch→Feed cycle must reuse everything.
func TestStreamBuilderFeedDoesNotAllocate(t *testing.T) {
	g := gen.PrefAttach("allocs", 2000, 4, 0x33)
	for _, name := range []string{"Random", "Grid", "HDRF"} {
		s := MustNew(name, Options{})
		ss, ok := s.(StatelessStrategy)
		if !ok {
			continue // HDRF is streaming, not stateless — documented skip
		}
		b, err := NewStreamBuilder(ss, 9, 1)
		if err != nil {
			t.Fatal(err)
		}
		batch := EdgeBatch{Edges: g.Edges}
		if err := b.Feed(batch); err != nil { // warm: grows rows to |V|
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if err := b.Feed(batch); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: steady-state Feed allocates %.1f times per batch, want 0", name, avg)
		}
	}
}

// TestShardedFeedSteadyStateAllocs pins the sharded path too: after warmup
// the copy buffers come from the pool, so the producer side of Feed should
// allocate at most the occasional pool refill.
func TestShardedFeedSteadyStateAllocs(t *testing.T) {
	g := gen.PrefAttach("allocs-sharded", 2000, 4, 0x34)
	ss := MustNew("Random", Options{}).(StatelessStrategy)
	sb, err := NewShardedStreamBuilder(ss, 9, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := EdgeBatch{Edges: g.Edges[:1024]}
	for i := 0; i < 50; i++ { // warm pool and worker matrices
		if err := sb.Feed(batch); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := sb.Feed(batch); err != nil {
			t.Fatal(err)
		}
	})
	// The pool may refill when the GC clears it mid-run; allow a small
	// fraction but reject per-batch allocation.
	if avg > 0.5 {
		t.Errorf("sharded Feed allocates %.2f times per batch in steady state", avg)
	}
	if _, err := sb.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedIngressScales is the acceptance gate for near-linear stateless
// ingress: on a ≥4-core machine, 4 workers must ingest a stream ≥2× faster
// than 1 worker. Skipped in -short mode and on small machines (CI boxes
// with 1–2 cores cannot exhibit the scaling this measures).
func TestShardedIngressScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling measurement needs ≥4 cores, have %d", runtime.NumCPU())
	}
	g := gen.PrefAttach("scaling", 200_000, 8, 0x77)
	ss := MustNew("2D", Options{}).(StatelessStrategy)

	ingest := func(workers int) time.Duration {
		start := time.Now()
		// A few repetitions so the measurement dominates setup noise.
		for rep := 0; rep < 3; rep++ {
			sb, err := NewShardedStreamBuilder(ss, 16, workers, 9)
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(g.Edges); lo += graph.DefaultBatchSize {
				hi := lo + graph.DefaultBatchSize
				if hi > len(g.Edges) {
					hi = len(g.Edges)
				}
				if err := sb.Feed(EdgeBatch{Offset: int64(lo), Edges: g.Edges[lo:hi]}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sb.Finish(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	ingest(4) // warm caches and pools before timing
	t1 := ingest(1)
	t4 := ingest(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("1 worker %v, 4 workers %v, speedup %.2fx", t1, t4, speedup)
	if speedup < 2 {
		t.Errorf("sharded ingress speedup 1→4 workers is %.2fx, want ≥2x", speedup)
	}
}
