package partition

// countMatrix is a dense rows×cols int32 count matrix: per vertex, how many
// live edge endpoints it has on each partition. A bitMatrix can say a vertex
// touches a partition but cannot say when it stops; the reference counts are
// what make replica sets decrementable under edge deletion.
type countMatrix struct {
	cols   int
	counts []int32
}

func newCountMatrix(rows, cols int) *countMatrix {
	return &countMatrix{cols: cols, counts: make([]int32, rows*cols)}
}

// ensureRows grows the matrix to hold at least rows rows, reallocating
// geometrically like bitMatrix.ensureRows.
func (m *countMatrix) ensureRows(rows int) {
	need := rows * m.cols
	if need <= len(m.counts) {
		return
	}
	if need <= cap(m.counts) {
		m.counts = m.counts[:need]
		return
	}
	newCap := 2 * cap(m.counts)
	if newCap < need {
		newCap = need
	}
	nc := make([]int32, need, newCap)
	copy(nc, m.counts)
	m.counts = nc
}

// inc increments the (row, col) count and returns the new value.
func (m *countMatrix) inc(row, col int) int32 {
	m.counts[row*m.cols+col]++
	return m.counts[row*m.cols+col]
}

// dec decrements the (row, col) count and returns the new value.
func (m *countMatrix) dec(row, col int) int32 {
	m.counts[row*m.cols+col]--
	return m.counts[row*m.cols+col]
}

// get returns the (row, col) count.
func (m *countMatrix) get(row, col int) int32 {
	return m.counts[row*m.cols+col]
}

// reset zeroes every count in place, keeping the allocated rows.
func (m *countMatrix) reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
}
