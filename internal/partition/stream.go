package partition

import (
	"errors"
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
	"graphpart/internal/metrics"
)

// ErrFeedAfterFinish is returned by StreamBuilder.Feed and
// ShardedStreamBuilder.Feed once Finish has been called: the summary has
// been derived and the builder accepts no more edges.
var ErrFeedAfterFinish = errors.New("partition: Feed after Finish")

// EdgeBatch is one chunk of an edge stream: a run of edges plus the global
// offset of Edges[0] within the stream. Batches are how the ingress pipeline
// moves edges between loaders, strategies and the assignment builder without
// ever requiring the whole edge list in memory.
type EdgeBatch struct {
	Offset int64
	Edges  []graph.Edge
}

// Assigner is a per-edge placement function produced by a StatelessStrategy
// for a fixed (numParts, seed). Assign must depend only on the edge — never
// on call order or on previously assigned edges — which is what makes
// stateless ingress embarrassingly parallel. Assigners may carry scratch
// buffers and are NOT safe for concurrent use; they are cheap to construct,
// so create one per goroutine.
type Assigner interface {
	Assign(e graph.Edge) int32
}

// MasterHinter is implemented by Assigners whose strategy also emits a
// per-vertex master hint (a pure function of the vertex id, e.g. 1D-Target's
// hash-by-target). Hints are produced per vertex shard by the parallel
// pipeline; no full sequential re-partition is ever needed.
type MasterHinter interface {
	MasterHint(v graph.VertexID) int32
}

// StatelessStrategy is the capability of the whole hash family (Random,
// CanonicalRandom, AsymRandom, 1D, 1D-Target, 2D, Grid, ResilientGrid, PDS):
// edge placement is a pure function of the edge, so the edge stream can be
// sharded arbitrarily across workers with no coordination and no state.
type StatelessStrategy interface {
	Strategy
	// NewAssigner builds the per-edge placement function for (numParts,
	// seed), returning an error for invalid partition counts (Grid's
	// perfect-square requirement, PDS's p²+p+1 requirement).
	NewAssigner(numParts int, seed uint64) (Assigner, error)
}

// Loader is one independent loader state of a StreamingStrategy. Assign
// consumes the loader's share of the edge stream in order, updating the
// loader's private state (placement sets, loads, partial degrees) as the
// paper's "oblivious" ingress does (§5.2.2).
type Loader interface {
	Assign(e graph.Edge) int32
}

// StreamingStrategy is the capability of the greedy single-pass family
// (Oblivious, HDRF): ingress runs as numLoaders *independent* loaders, each
// streaming a contiguous block of the edge list with its own private state
// and no cross-loader coordination — exactly the paper's multi-machine
// ingress semantics (§5.2.2). Because loaders never share state, the blocks
// can run concurrently and the result is identical to the sequential pass.
type StreamingStrategy interface {
	Strategy
	// Loaders returns the number of independent loader states used when
	// partitioning into numParts partitions (the paper runs one loader per
	// machine; the default is one per partition).
	Loaders(numParts int) int
	// NewLoader builds loader #id of Loaders(numParts) with its own seed
	// stream and private state.
	NewLoader(numVertices, numParts, id int, seed uint64) Loader
}

// MultiPassStrategy is the capability of strategies that cannot consume the
// edge stream in a single bounded-memory pass (Hybrid, H-Ginger). MultiPass
// declares the pass structure — total scans over the edge list, how many of
// them pay O(numParts) greedy scoring per edge — and why single-pass
// streaming is impossible, so schedulers and the ingress model need no
// per-name knowledge.
type MultiPassStrategy interface {
	Strategy
	MultiPass() (passes, heuristicPasses int, why string)
}

// IngressShape describes how a strategy consumes the edge stream during
// ingress, derived entirely from its capability interfaces. The cluster
// ingress model and scheduling decisions are functions of this shape, never
// of strategy names.
type IngressShape struct {
	// Passes is the number of full scans over the edge list.
	Passes int
	// HeuristicPasses is how many of those passes pay O(numParts) greedy
	// scoring per edge (0 for pure hash strategies).
	HeuristicPasses int
	// Streaming reports single-pass bounded-memory stream consumption.
	Streaming bool
	// Loaders is the number of independent loader states (0 when the
	// strategy keeps no per-loader state).
	Loaders int
	// MultiPassReason is non-empty for multi-pass strategies: why the
	// strategy cannot stream in one pass.
	MultiPassReason string
}

// ShapeOf derives a strategy's ingress shape from its capabilities:
// StatelessStrategy → one hash pass; StreamingStrategy → one pass over
// independent sharded loaders (heuristic-priced if the strategy is greedy);
// MultiPassStrategy → whatever the strategy declares. Strategies with none
// of the capabilities fall back to Passes()/IsHeuristic.
func ShapeOf(s Strategy, numParts int) IngressShape {
	if mp, ok := s.(MultiPassStrategy); ok {
		p, hp, why := mp.MultiPass()
		return IngressShape{Passes: p, HeuristicPasses: hp, MultiPassReason: why}
	}
	if ss, ok := s.(StreamingStrategy); ok {
		hp := 0
		if IsHeuristic(s) {
			hp = 1
		}
		return IngressShape{Passes: 1, HeuristicPasses: hp, Streaming: true, Loaders: ss.Loaders(numParts)}
	}
	if _, ok := s.(StatelessStrategy); ok {
		return IngressShape{Passes: 1, Streaming: true}
	}
	hp := 0
	if IsHeuristic(s) {
		hp = 1
	}
	return IngressShape{Passes: s.Passes(), HeuristicPasses: hp}
}

// loaderBlock returns the contiguous edge-index range [lo, hi) streamed by
// loader id when m edges are striped over numLoaders loaders: edge i belongs
// to loader ⌊i·numLoaders/m⌋, matching PowerGraph's "split into as many
// blocks as there are machines" ingress (§5.3).
func loaderBlock(m, numLoaders, id int) (lo, hi int) {
	lo = (id*m + numLoaders - 1) / numLoaders
	hi = ((id+1)*m + numLoaders - 1) / numLoaders
	return lo, hi
}

// statelessPartition is the sequential reference path shared by every
// StatelessStrategy's Partition method: one assigner streams the whole edge
// list; hints, when the assigner produces them, are evaluated per vertex.
func statelessPartition(s StatelessStrategy, g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	asg, err := s.NewAssigner(numParts, seed)
	if err != nil {
		return nil, err
	}
	parts := make([]int32, g.NumEdges())
	for i, e := range g.Edges {
		parts[i] = asg.Assign(e)
	}
	var hint []int32
	if h, ok := asg.(MasterHinter); ok {
		n := g.NumVertices()
		hint = make([]int32, n)
		for v := 0; v < n; v++ {
			hint[v] = h.MasterHint(graph.VertexID(v))
		}
	}
	return &Result{EdgeParts: parts, MasterHint: hint}, nil
}

// streamingPartition is the sequential reference path shared by every
// StreamingStrategy's Partition method: loader blocks run one after another,
// each over its own private state.
func streamingPartition(s StreamingStrategy, g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	m := g.NumEdges()
	nl := s.Loaders(numParts)
	if nl < 1 {
		nl = 1
	}
	parts := make([]int32, m)
	for id := 0; id < nl; id++ {
		lo, hi := loaderBlock(m, nl, id)
		if lo >= hi {
			continue
		}
		ld := s.NewLoader(g.NumVertices(), numParts, id, seed)
		for i := lo; i < hi; i++ {
			parts[i] = ld.Assign(g.Edges[i])
		}
	}
	return &Result{EdgeParts: parts}, nil
}

// --- memory-bounded stream ingress ------------------------------------

// StreamBuilder consumes an edge stream batch by batch for a stateless
// strategy and accumulates the vertex-cut bookkeeping — per-partition edge
// counts and the replica/in/out bit-matrices — without ever materializing
// the edge list. Peak memory is O(|V|·P/8) bits plus one batch, the
// memory-bounded ingress regime of the paper's real systems.
//
// A StreamBuilder is single-goroutine; feed it batches in any order (results
// are order-independent because the strategy is stateless).
type StreamBuilder struct {
	strategy string
	numParts int
	seed     uint64
	asg      Assigner
	hinter   MasterHinter // nil when the strategy emits no hints

	n        int // vertices seen so far (max id + 1)
	q        *metrics.Quality
	replicas *bitMatrix
	inParts  *bitMatrix
	outParts *bitMatrix
	finished *StreamSummary // non-nil once Finish has derived the summary
}

// NewStreamBuilder prepares a stream ingress for a stateless strategy.
func NewStreamBuilder(s StatelessStrategy, numParts int, seed uint64) (*StreamBuilder, error) {
	if numParts < 1 {
		return nil, fmt.Errorf("partition: numParts must be ≥1, got %d", numParts)
	}
	asg, err := s.NewAssigner(numParts, seed)
	if err != nil {
		return nil, fmt.Errorf("partition: strategy %s: %w", s.Name(), err)
	}
	b := &StreamBuilder{
		strategy: s.Name(),
		numParts: numParts,
		seed:     seed,
		asg:      asg,
		q:        metrics.NewQuality(numParts),
		replicas: newBitMatrix(0, numParts),
		inParts:  newBitMatrix(0, numParts),
		outParts: newBitMatrix(0, numParts),
	}
	b.hinter, _ = asg.(MasterHinter)
	return b, nil
}

// Feed assigns and accounts one batch of edges. The batch's slice is not
// retained; callers may reuse it. Feeding after Finish returns
// ErrFeedAfterFinish.
func (b *StreamBuilder) Feed(batch EdgeBatch) error {
	if b.finished != nil {
		return fmt.Errorf("%w (strategy %s)", ErrFeedAfterFinish, b.strategy)
	}
	for i, e := range batch.Edges {
		if v := int(max(e.Src, e.Dst)) + 1; v > b.n {
			b.n = v
			b.replicas.ensureRows(v)
			b.inParts.ensureRows(v)
			b.outParts.ensureRows(v)
		}
		p := b.asg.Assign(e)
		if p < 0 || int(p) >= b.numParts {
			return fmt.Errorf("partition: strategy %s placed edge %d on partition %d (numParts=%d)",
				b.strategy, batch.Offset+int64(i), p, b.numParts)
		}
		b.q.AddEdge(int(p))
		b.replicas.set(int(e.Src), int(p))
		b.replicas.set(int(e.Dst), int(p))
		b.outParts.set(int(e.Src), int(p))
		b.inParts.set(int(e.Dst), int(p))
	}
	return nil
}

// merge folds another builder's accumulated state into b. Every piece of
// StreamBuilder state is a commutative monoid under merge (counter sums,
// bit-set unions, max vertex id), which is what makes sharded ingress exact:
// masters and metrics are derived only at Finish, from the merged state.
func (b *StreamBuilder) merge(o *StreamBuilder) {
	if o.n > b.n {
		b.n = o.n
	}
	b.q.Merge(o.q)
	b.replicas.or(o.replicas)
	b.inParts.or(o.inParts)
	b.outParts.or(o.outParts)
}

// Finish derives masters and the quality metrics from the accumulated state.
// The summary matches what Partition would have computed for the same edges:
// identical EdgeCount, Masters and ReplicationFactor. Finish is idempotent;
// after the first call the builder accepts no more edges.
func (b *StreamBuilder) Finish() *StreamSummary {
	if b.finished != nil {
		return b.finished
	}
	sum := &StreamSummary{
		Strategy:    b.strategy,
		NumParts:    b.numParts,
		NumVertices: b.n,
		NumEdges:    b.q.NumEdges(),
		EdgeCount:   b.q.EdgeCounts(),
		Masters:     make([]int32, b.n),
		replicas:    b.replicas,
		q:           b.q,
	}
	for v := 0; v < b.n; v++ {
		reps := b.replicas.count(v)
		if reps == 0 {
			sum.Masters[v] = -1
			continue
		}
		b.q.VertexPlaced()
		b.replicas.forEach(v, b.q.AddReplica)
		hint := int32(-1)
		if b.hinter != nil {
			hint = b.hinter.MasterHint(graph.VertexID(v))
		}
		sum.Masters[v] = chooseMaster(b.replicas, v, reps, hint, b.numParts, b.seed)
	}
	b.finished = sum
	return sum
}

// StreamSummary is the outcome of a streamed ingress: everything Assignment
// offers that does not require the materialized edge list.
type StreamSummary struct {
	Strategy    string
	NumParts    int
	NumVertices int
	NumEdges    int64
	EdgeCount   []int64
	Masters     []int32 // -1 for isolated vertices

	replicas *bitMatrix
	q        *metrics.Quality
}

// Replicas returns the number of partitions vertex v is replicated on.
func (s *StreamSummary) Replicas(v graph.VertexID) int { return s.replicas.count(int(v)) }

// ReplicasOnPart returns the number of vertex images partition p holds
// (precomputed at Finish; O(1)).
func (s *StreamSummary) ReplicasOnPart(p int) int64 { return s.q.ReplicasOnPart(p) }

// TotalReplicas returns the total number of vertex images.
func (s *StreamSummary) TotalReplicas() int64 { return s.q.TotalReplicas() }

// ReplicationFactor returns the average images per non-isolated vertex.
func (s *StreamSummary) ReplicationFactor() float64 { return s.q.ReplicationFactor() }

// EdgeBalance returns max/mean edges per partition (≥1; 1.0 is balanced).
func (s *StreamSummary) EdgeBalance() float64 { return s.q.EdgeBalance() }

// chooseMaster picks vertex v's master: the hint when it holds a replica,
// else a deterministic hash over the replica list — the exact rule used by
// the materialized Assignment path.
func chooseMaster(replicas *bitMatrix, v, reps int, hint int32, numParts int, seed uint64) int32 {
	if hint >= 0 && int(hint) < numParts && replicas.has(v, int(hint)) {
		return hint
	}
	pick := int(hashing.Vertex(seed^0xa57e, graph.VertexID(v)) % uint64(reps))
	idx := 0
	chosen := int32(-1)
	replicas.forEach(v, func(col int) {
		if idx == pick {
			chosen = int32(col)
		}
		idx++
	})
	return chosen
}
