package partition

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

func init() {
	Register("JaBeJaSwap", func(opt Options) Strategy { return JaBeJaSwap{} })
}

// DefaultSwapRounds is how many refinement rounds JaBeJaSwap runs when the
// Rounds field is zero: enough for the acceptance rate to decay to noise on
// the synthetic power-law graphs while keeping ingress a small multiple of
// the base strategy's.
const DefaultSwapRounds = 4

// JaBeJaSwap is a JA-BE-JA-style refinement partitioner (arXiv 1403.6270):
// it first places every edge with a base strategy, then runs seeded rounds
// of pairwise edge-partition swaps. Each round scans the edge list once;
// edge i proposes swapping partitions with a pseudo-randomly chosen partner
// edge j, and the swap is kept only when it strictly reduces the total
// vertex-image count. Because a swap moves one edge from p to q and one
// from q to p, the per-partition edge counts — and therefore the balance —
// are invariants of refinement: JA-BE-JA's defining property. Replication
// factor is monotonically non-increasing across rounds; the annealing
// temperature is zero (no uphill moves), keeping every run deterministic
// and every round an improvement.
type JaBeJaSwap struct {
	// Base is the strategy whose assignment is refined (nil means Random,
	// the paper's baseline for every system).
	Base Strategy
	// Rounds is the number of swap rounds (0 means DefaultSwapRounds).
	Rounds int
}

// SwapStats reports what one JaBeJaSwap refinement did: how many swaps each
// round proposed and accepted, and the replication factor before and after.
type SwapStats struct {
	Rounds   int
	Proposed int
	Accepted int
	RFBefore float64
	RFAfter  float64
}

// Name implements Strategy.
func (JaBeJaSwap) Name() string { return "JaBeJaSwap" }

// Passes implements Strategy, derived from MultiPass so the two can never
// drift apart.
func (jb JaBeJaSwap) Passes() int { p, _, _ := jb.MultiPass(); return p }

// MultiPass implements MultiPassStrategy: the base assignment must be
// complete before any swap can be evaluated, and every refinement round is
// another full scan of the edge list.
func (jb JaBeJaSwap) MultiPass() (passes, heuristicPasses int, why string) {
	base := jb.base()
	bp := base.Passes()
	bh := 0
	if IsHeuristic(base) {
		bh = bp
	}
	return bp + jb.rounds(), bh, "refines a completed base assignment with whole-edge-list swap rounds; no edge's final home is known until the last round ends"
}

func (jb JaBeJaSwap) base() Strategy {
	if jb.Base != nil {
		return jb.Base
	}
	return Random{}
}

func (jb JaBeJaSwap) rounds() int {
	if jb.Rounds <= 0 {
		return DefaultSwapRounds
	}
	return jb.Rounds
}

// Partition implements Strategy.
func (jb JaBeJaSwap) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	res, _, err := jb.PartitionStats(g, numParts, seed)
	return res, err
}

// PartitionStats is Partition plus the refinement statistics: the round
// count, proposal/acceptance totals, and the replication factor the base
// assignment had before any swap ran.
func (jb JaBeJaSwap) PartitionStats(g *graph.Graph, numParts int, seed uint64) (*Result, SwapStats, error) {
	stats := SwapStats{Rounds: jb.rounds()}
	base := jb.base()
	res, err := base.Partition(g, numParts, seed)
	if err != nil {
		return nil, stats, err
	}
	n := g.NumVertices()
	m := g.NumEdges()
	if len(res.EdgeParts) != m {
		return nil, stats, fmt.Errorf("partition: base strategy %s returned %d assignments for %d edges",
			base.Name(), len(res.EdgeParts), m)
	}
	parts := res.EdgeParts

	// Per-(vertex, partition) incidence counts: the number of live edges of
	// v on p. A count's 0↔nonzero transition is a vertex image appearing or
	// vanishing, which is what lets a swap's replication delta be computed
	// exactly in O(1).
	counts := make([]int32, n*numParts)
	totalImages := int64(0)
	placed := int64(0)
	for i, e := range g.Edges {
		p := parts[i]
		if p < 0 || int(p) >= numParts {
			return nil, stats, fmt.Errorf("partition: base strategy %s placed edge %d on partition %d (numParts=%d)",
				base.Name(), i, p, numParts)
		}
		counts[int(e.Src)*numParts+int(p)]++
		counts[int(e.Dst)*numParts+int(p)]++
	}
	for v := 0; v < n; v++ {
		row := counts[v*numParts : (v+1)*numParts]
		images := int64(0)
		for _, c := range row {
			if c > 0 {
				images++
			}
		}
		if images > 0 {
			placed++
			totalImages += images
		}
	}
	if placed > 0 {
		stats.RFBefore = float64(totalImages) / float64(placed)
	}

	// move relocates edge e from partition `from` to `to` in the incidence
	// counts and returns the image delta. Applying a move and its inverse
	// is an exact rollback, so rejected swaps cost two moves each way.
	move := func(e graph.Edge, from, to int32) int64 {
		var d int64
		for _, v := range [2]graph.VertexID{e.Src, e.Dst} {
			fi := int(v)*numParts + int(from)
			ti := int(v)*numParts + int(to)
			counts[fi]--
			if counts[fi] == 0 {
				d--
			}
			counts[ti]++
			if counts[ti] == 1 {
				d++
			}
		}
		return d
	}

	for r := 0; r < stats.Rounds && m > 0 && numParts > 1; r++ {
		rng := hashing.NewRNG(hashing.Combine(seed^0x6a62, uint64(r)))
		for i := 0; i < m; i++ {
			j := rng.Intn(m)
			p, q := parts[i], parts[j]
			if i == j || p == q {
				continue
			}
			stats.Proposed++
			d := move(g.Edges[i], p, q) + move(g.Edges[j], q, p)
			if d < 0 {
				parts[i], parts[j] = q, p
				totalImages += d
				stats.Accepted++
			} else {
				move(g.Edges[j], p, q)
				move(g.Edges[i], q, p)
			}
		}
	}
	if placed > 0 {
		stats.RFAfter = float64(totalImages) / float64(placed)
	}
	return &Result{EdgeParts: parts}, stats, nil
}
