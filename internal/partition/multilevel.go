package partition

import (
	"sort"

	"graphpart/internal/graph"
)

func init() {
	Register("Multilevel", func(opt Options) Strategy { return Multilevel{} })
}

// Multilevel is a METIS-style offline baseline: coarsen the graph by
// heavy-edge matching until it fits comfortably in memory, partition the
// coarse graph greedily, then project the labels back level by level with a
// boundary-refinement sweep at each step. The result is a *vertex*
// partitioning — each vertex gets one home — converted to the repo's edge
// placement at the end: an edge between same-home endpoints lives on that
// home, a cut edge goes to whichever endpoint's home currently holds fewer
// edges. It fills the batch-rebalancing role of ADR-009: the quality
// ceiling an offline pass can reach when ingress cost is no object, against
// which the streaming families are compared.
type Multilevel struct {
	// CoarseTarget stops coarsening at or below this many vertices
	// (0 means max(64, 8·numParts)).
	CoarseTarget int
}

// Name implements Strategy.
func (Multilevel) Name() string { return "Multilevel" }

// Passes implements Strategy, derived from MultiPass so the two can never
// drift apart.
func (ml Multilevel) Passes() int { p, _, _ := ml.MultiPass(); return p }

// MultiPass implements MultiPassStrategy: coarsening, initial partitioning
// and projection all need the whole (successively contracted) edge list
// resident; only the refinement sweeps pay O(numParts) work per vertex.
func (Multilevel) MultiPass() (passes, heuristicPasses int, why string) {
	return 3, 1, "coarsens the whole graph by heavy-edge matching, partitions the coarse graph, and projects labels back through refinement sweeps — offline by construction"
}

// mlEdge is one weighted undirected edge of a coarsening level
// (u < v; parallel edges are merged, self-loops dropped).
type mlEdge struct {
	u, v int32
	w    int64
}

// mlLevel is one graph in the coarsening hierarchy.
type mlLevel struct {
	n     int
	edges []mlEdge
	vw    []int64 // original vertices folded into each coarse vertex
}

// Partition implements Strategy.
func (ml Multilevel) Partition(g *graph.Graph, numParts int, seed uint64) (*Result, error) {
	n := g.NumVertices()
	labels := ml.vertexLabels(g, numParts)

	// Convert the vertex partitioning to an edge placement: internal edges
	// live with their endpoints, cut edges go to the lighter of the two
	// homes (ties to the lower partition id), streamed in edge order so the
	// split is deterministic and load-aware.
	parts := make([]int32, g.NumEdges())
	load := make([]int64, numParts)
	for i, e := range g.Edges {
		lu, lv := labels[e.Src], labels[e.Dst]
		p := lu
		if lu != lv && (load[lv] < load[lu] || (load[lv] == load[lu] && lv < lu)) {
			p = lv
		}
		parts[i] = p
		load[p]++
	}
	hint := make([]int32, n)
	copy(hint, labels)
	return &Result{EdgeParts: parts, MasterHint: hint}, nil
}

// vertexLabels runs the coarsen → partition → uncoarsen pipeline and
// returns each vertex's home partition.
func (ml Multilevel) vertexLabels(g *graph.Graph, numParts int) []int32 {
	target := ml.CoarseTarget
	if target <= 0 {
		target = 8 * numParts
		if target < 64 {
			target = 64
		}
	}

	// Level 0: the input graph, normalized to weighted undirected form.
	base := &mlLevel{n: g.NumVertices(), vw: make([]int64, g.NumVertices())}
	for i := range base.vw {
		base.vw[i] = 1
	}
	raw := make([]mlEdge, 0, g.NumEdges())
	for _, e := range g.Edges {
		u, v := int32(e.Src), int32(e.Dst)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		raw = append(raw, mlEdge{u: u, v: v, w: 1})
	}
	base.edges = mergeEdges(raw)

	levels := []*mlLevel{base}
	var maps [][]int32 // maps[i]: level i vertex → level i+1 vertex
	for levels[len(levels)-1].n > target {
		cur := levels[len(levels)-1]
		next, mapTo := coarsen(cur)
		if next.n >= cur.n || cur.n-next.n < cur.n/20 {
			break // matching stalled; further levels would not shrink
		}
		levels = append(levels, next)
		maps = append(maps, mapTo)
	}

	// Initial partition of the coarsest level: heaviest vertices first,
	// each to the lightest partition — balanced by construction, locality
	// left to the refinement sweeps.
	coarsest := levels[len(levels)-1]
	order := make([]int32, coarsest.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if coarsest.vw[order[i]] != coarsest.vw[order[j]] {
			return coarsest.vw[order[i]] > coarsest.vw[order[j]]
		}
		return order[i] < order[j]
	})
	labels := make([]int32, coarsest.n)
	pw := make([]int64, numParts)
	for _, v := range order {
		best := 0
		for p := 1; p < numParts; p++ {
			if pw[p] < pw[best] {
				best = p
			}
		}
		labels[v] = int32(best)
		pw[best] += coarsest.vw[v]
	}
	refine(coarsest, labels, numParts)

	// Uncoarsen: project labels down one level at a time, refining at each.
	for li := len(levels) - 2; li >= 0; li-- {
		lvl := levels[li]
		fine := make([]int32, lvl.n)
		for v := 0; v < lvl.n; v++ {
			fine[v] = labels[maps[li][v]]
		}
		labels = fine
		refine(lvl, labels, numParts)
	}
	return labels
}

// coarsen contracts one level by heavy-edge matching: edges in weight order
// (heaviest first, lowest endpoint ids on ties) match their endpoints when
// both are still free; unmatched vertices survive alone.
func coarsen(cur *mlLevel) (*mlLevel, []int32) {
	byWeight := make([]mlEdge, len(cur.edges))
	copy(byWeight, cur.edges)
	sort.Slice(byWeight, func(i, j int) bool {
		if byWeight[i].w != byWeight[j].w {
			return byWeight[i].w > byWeight[j].w
		}
		if byWeight[i].u != byWeight[j].u {
			return byWeight[i].u < byWeight[j].u
		}
		return byWeight[i].v < byWeight[j].v
	})
	match := make([]int32, cur.n)
	for i := range match {
		match[i] = -1
	}
	for _, e := range byWeight {
		if match[e.u] < 0 && match[e.v] < 0 {
			match[e.u], match[e.v] = e.v, e.u
		}
	}

	// Coarse ids in fine-id order: a matched pair takes the lower
	// endpoint's slot, singletons keep their own.
	mapTo := make([]int32, cur.n)
	nextID := int32(0)
	for v := 0; v < cur.n; v++ {
		if m := match[v]; m >= 0 && int(m) < v {
			mapTo[v] = mapTo[m]
			continue
		}
		mapTo[v] = nextID
		nextID++
	}
	next := &mlLevel{n: int(nextID), vw: make([]int64, nextID)}
	for v := 0; v < cur.n; v++ {
		next.vw[mapTo[v]] += cur.vw[v]
	}
	contracted := make([]mlEdge, 0, len(cur.edges))
	for _, e := range cur.edges {
		u, v := mapTo[e.u], mapTo[e.v]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		contracted = append(contracted, mlEdge{u: u, v: v, w: e.w})
	}
	next.edges = mergeEdges(contracted)
	return next, mapTo
}

// mergeEdges sorts edges by endpoint pair and folds parallel edges into one
// with summed weight.
func mergeEdges(edges []mlEdge) []mlEdge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
			out[len(out)-1].w += e.w
			continue
		}
		out = append(out, e)
	}
	return out
}

// refine runs two greedy boundary sweeps over one level: each vertex in id
// order moves to the partition holding the most incident edge weight,
// provided the move strictly improves locality and keeps the destination
// under the balance cap (15% over the mean vertex weight).
func refine(lvl *mlLevel, labels []int32, numParts int) {
	if numParts < 2 || lvl.n == 0 {
		return
	}
	// CSR adjacency over the level's undirected edges.
	deg := make([]int32, lvl.n)
	for _, e := range lvl.edges {
		deg[e.u]++
		deg[e.v]++
	}
	start := make([]int32, lvl.n+1)
	for v := 0; v < lvl.n; v++ {
		start[v+1] = start[v] + deg[v]
	}
	type half struct {
		to int32
		w  int64
	}
	adj := make([]half, start[lvl.n])
	cursor := make([]int32, lvl.n)
	copy(cursor, start[:lvl.n])
	for _, e := range lvl.edges {
		adj[cursor[e.u]] = half{to: e.v, w: e.w}
		cursor[e.u]++
		adj[cursor[e.v]] = half{to: e.u, w: e.w}
		cursor[e.v]++
	}

	var total int64
	pw := make([]int64, numParts)
	for v := 0; v < lvl.n; v++ {
		pw[labels[v]] += lvl.vw[v]
		total += lvl.vw[v]
	}
	capW := total/int64(numParts) + total/int64(numParts*7) + 1 // ≈1.14× mean

	gain := make([]int64, numParts)
	touched := make([]int32, 0, numParts)
	for sweep := 0; sweep < 2; sweep++ {
		moved := false
		for v := 0; v < lvl.n; v++ {
			touched = touched[:0]
			for _, h := range adj[start[v]:start[v+1]] {
				p := labels[h.to]
				if gain[p] == 0 {
					touched = append(touched, p)
				}
				gain[p] += h.w
			}
			cur := labels[v]
			best, bestGain := cur, gain[cur]
			for _, p := range touched {
				if gain[p] > bestGain || (gain[p] == bestGain && best != cur && p < best) {
					best, bestGain = p, gain[p]
				}
			}
			if best != cur && gain[best] > gain[cur] && pw[best]+lvl.vw[v] <= capW {
				pw[cur] -= lvl.vw[v]
				pw[best] += lvl.vw[v]
				labels[v] = best
				moved = true
			}
			for _, p := range touched {
				gain[p] = 0
			}
		}
		if !moved {
			break
		}
	}
}
