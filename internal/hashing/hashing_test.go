package hashing

import (
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("Mix64(42) == Mix64(43): suspicious collision")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x123456789abcdef)
	for bit := 0; bit < 64; bit += 7 {
		diff := base ^ Mix64(0x123456789abcdef^(1<<uint(bit)))
		ones := 0
		for d := diff; d != 0; d &= d - 1 {
			ones++
		}
		if ones < 12 || ones > 52 {
			t.Errorf("bit %d: only %d output bits flipped", bit, ones)
		}
	}
}

func TestEdgeCanonicalSymmetric(t *testing.T) {
	f := func(seed uint64, a, b uint32) bool {
		return EdgeCanonical(seed, a, b) == EdgeCanonical(seed, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeDirectedAsymmetric(t *testing.T) {
	// Directed hashing must distinguish direction for most pairs.
	same := 0
	const trials = 1000
	for i := uint32(0); i < trials; i++ {
		if EdgeDirected(1, i, i+trials) == EdgeDirected(1, i+trials, i) {
			same++
		}
	}
	if same > trials/100 {
		t.Fatalf("%d/%d symmetric collisions in directed hash", same, trials)
	}
}

func TestVertexSeedSensitivity(t *testing.T) {
	if Vertex(1, 7) == Vertex(2, 7) {
		t.Fatal("vertex hash ignores seed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean %.3f far from 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Errorf("bucket %d: %d of %d (expected ~%d)", b, c, n, n/10)
		}
	}
}
