// Package hashing provides the deterministic 64-bit mixing functions used by
// the hash-based partitioners and the synthetic graph generators.
//
// All randomness in this repository flows through splitmix64 so that every
// experiment is reproducible bit-for-bit across runs and platforms.
package hashing

// Mix64 is the splitmix64 finalizer: a fast, high-quality 64-bit mixer.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Combine mixes two 64-bit values into one, order-sensitively.
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b+0x517cc1b727220a95))
}

// Vertex hashes a vertex id with a seed.
func Vertex(seed uint64, v uint32) uint64 {
	return Mix64(seed ^ (uint64(v) + 0x9e3779b97f4a7c15))
}

// EdgeDirected hashes a directed edge: (u,v) and (v,u) hash differently.
// This is GraphX's "Random" (asymmetric) edge hash (§7.2.1).
func EdgeDirected(seed uint64, src, dst uint32) uint64 {
	return Combine(Vertex(seed, src), uint64(dst)+1)
}

// EdgeCanonical hashes an undirected edge: (u,v) and (v,u) hash identically.
// This is PowerGraph's Random (§5.2.1) and GraphX's Canonical Random
// (§7.2.1).
func EdgeCanonical(seed uint64, src, dst uint32) uint64 {
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	return EdgeDirected(seed, lo, hi)
}

// RNG is a splitmix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; use NewRNG to pick a seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
