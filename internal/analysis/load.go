package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool from dir, compiles export data
// for every dependency, and parses + type-checks each matched package that
// belongs to the surrounding module. Dependencies are imported from export
// data, so only the packages under analysis are type-checked from source —
// the same split `go vet` uses, without requiring golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	matched, err := goList(dir, append([]string{"list", "-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, p := range matched {
		want[p.ImportPath] = true
	}
	closure, err := goList(dir, append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPkg
	for _, p := range closure {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if want[p.ImportPath] && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs one `go list` invocation in dir and decodes its JSON stream.
func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts an importpath→exportfile map to the lookup function
// the gc importer wants.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// checkFiles parses and type-checks one package from explicit file paths.
func checkFiles(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// CheckVetUnit type-checks one `go vet` unit of work: a package's source
// files plus an importpath→exportfile map supplied by the vet driver.
func CheckVetUnit(importPath string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	return checkFiles(fset, importPath, files, imp)
}

// --- fixture loading ---------------------------------------------------

// fixtureImporter resolves imports for testdata fixture packages: an import
// path with a directory under root type-checks recursively from source (so
// fixtures can model cross-package shapes like report.Cell), anything else
// is expected to be standard library and comes from export data.
type fixtureImporter struct {
	root    string // testdata/src
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fi.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.std.Import(path)
}

func (fi *fixtureImporter) load(importPath, dir string) (*Package, error) {
	if pkg, ok := fi.checked[importPath]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files in %s", importPath, dir)
	}
	pkg, err := checkFiles(fi.fset, importPath, files, fi)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	fi.checked[importPath] = pkg
	return pkg, nil
}

// LoadFixture type-checks the fixture package in root/<path> (and its
// fixture siblings), with standard-library imports satisfied from export
// data. root is the testdata/src directory.
func LoadFixture(root, path string) (*Package, error) {
	stdExports, err := stdlibExports(root, path)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		root:    root,
		fset:    fset,
		std:     importer.ForCompiler(fset, "gc", exportLookup(stdExports)),
		checked: map[string]*Package{},
	}
	return fi.load(path, filepath.Join(root, filepath.FromSlash(path)))
}

// stdlibExports walks the fixture tree once for import specs, then asks the
// go tool for export data covering every non-fixture (standard library)
// import and its dependencies.
func stdlibExports(root, path string) (map[string]string, error) {
	seen := map[string]bool{}
	var std []string
	var collect func(path string) error
	collect = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			std = append(std, path)
			return nil
		}
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if err := collect(p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(path); err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(std) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, std...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", std, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
