package analysis_test

import (
	"path/filepath"
	"testing"

	"graphpart/internal/analysis"
	"graphpart/internal/analysis/analysistest"
)

var fixtureRoot = filepath.Join("testdata", "src")

// Each analyzer gets a positive fixture (a violation it must flag), an
// idiom-negative (the sanctioned shape it must accept — sorted iteration,
// seeded rand, documented aliasing, a fully-registered strategy), and a
// waiver-negative (the marker comment suppressing the finding).

func TestDetrangeFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "detrange", analysis.Detrange)
}

func TestNondetFlowFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "nondetflow", analysis.Nondet)
}

func TestNondetCellValueFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "nondetbench", analysis.Nondet)
}

func TestRegistryCleanFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "registryok", analysis.Registry)
}

func TestRegistryViolationsFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "registrybad", analysis.Registry)
}

func TestUnsafeguardFixture(t *testing.T) {
	analysistest.Run(t, fixtureRoot, "unsafeguard", analysis.Unsafeguard)
}

// TestSuiteComplete pins the multichecker's contents: adding an analyzer
// without wiring it into All() would silently drop it from CI.
func TestSuiteComplete(t *testing.T) {
	want := map[string]bool{"detrange": true, "nondet": true, "registry": true, "unsafeguard": true}
	got := analysis.All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in All()", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
