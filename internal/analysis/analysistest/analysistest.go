// Package analysistest runs graphlint analyzers over fixture packages under
// testdata/src and checks their diagnostics against expectations embedded in
// the fixtures, mirroring golang.org/x/tools/go/analysis/analysistest on the
// repo's stdlib-only framework.
//
// An expectation is a comment of the form
//
//	// want `regexp`
//
// on the line the diagnostic is reported at. Where a comment on that line
// would change the analyzer's behavior (unsafeguard treats any adjacent
// comment as an invariant comment), the expectation can sit on a nearby
// line and point at the real one with a relative offset:
//
//	// want:-2 `regexp`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by at least one diagnostic; anything else
// fails the test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"graphpart/internal/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want(?::(-?\\d+))?\\s+`([^`]+)`")

type lineKey struct {
	file string // base name: fixtures are single-directory packages
	line int
}

// Run loads the fixture package at root/<path> (root is the testdata/src
// directory), applies the analyzers, and asserts the diagnostics and the
// fixture's want comments match exactly.
func Run(t *testing.T, root, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadFixture(root, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}

	type expect struct {
		re      *regexp.Regexp
		raw     string
		key     lineKey
		matched bool
	}
	var expects []*expect
	byKey := map[lineKey][]*expect{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					line := pos.Line
					if m[1] != "" {
						off, err := strconv.Atoi(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[1])
						}
						line += off
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[2], err)
					}
					e := &expect{re: re, raw: m[2], key: lineKey{filepath.Base(pos.Filename), line}}
					expects = append(expects, e)
					byKey[e.key] = append(byKey[e.key], e)
				}
			}
		}
	}

	for _, d := range diags {
		k := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		found := false
		for _, e := range byKey[k] {
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("missing diagnostic at %s:%d: no finding matched %q", e.key.file, e.key.line, e.raw)
		}
	}
}
