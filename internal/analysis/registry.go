package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Registry enforces the strategy-registration contract of the partition
// package: strategies are dispatched by capability, never by name, and the
// registry is the only construction path. Concretely, in any package named
// partition that declares a Strategy interface and a Register function:
//
//   - every non-interface type that satisfies Strategy must be passed to
//     Register from an init function in the same file that declares it
//     (adding a strategy must never require central edits, and a declared
//     strategy that is not registered is dead weight the experiment tables
//     silently miss);
//   - every such type must implement exactly one ingress capability —
//     StatelessStrategy, StreamingStrategy, or MultiPassStrategy — because
//     ShapeOf and the stream builders dispatch on exactly one;
//   - IncrementalStrategy may only be implemented alongside
//     StreamingStrategy: stateless strategies get incrementality for free
//     via the AsIncremental adapter, and a second explicit path would
//     shadow it ambiguously.
var Registry = &Analyzer{
	Name: "registry",
	Doc:  "every strategy type registers in its file's init and declares exactly one ingress capability",
	Run:  runRegistry,
}

// ingressCapabilities are the mutually-exclusive stream-consumption
// contracts, in dispatch order.
var ingressCapabilities = []string{"StatelessStrategy", "StreamingStrategy", "MultiPassStrategy"}

func runRegistry(pass *Pass) error {
	if pass.Pkg.Name() != "partition" {
		return nil
	}
	scope := pass.Pkg.Scope()
	base := lookupInterface(scope, "Strategy")
	registerFn, _ := scope.Lookup("Register").(*types.Func)
	if base == nil || registerFn == nil {
		return nil // not a strategy-registry package
	}
	caps := map[string]*types.Interface{}
	for _, name := range append(append([]string{}, ingressCapabilities...), "IncrementalStrategy") {
		if iface := lookupInterface(scope, name); iface != nil {
			caps[name] = iface
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		registered := registeredTypes(pass, f, registerFn)
		for _, ts := range typeSpecs(f) {
			obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			T := obj.Type()
			if types.IsInterface(T) || !implements(T, base) {
				continue
			}
			if !registered[obj] {
				pass.Reportf(ts.Pos(),
					"strategy type %s is not registered: call Register(%q, ...) from an init in this file (strategies self-register; no central construction switch exists)",
					obj.Name(), obj.Name())
			}
			var have []string
			for _, name := range ingressCapabilities {
				if iface, ok := caps[name]; ok && implements(T, iface) {
					have = append(have, name)
				}
			}
			switch len(have) {
			case 1: // exactly one ingress capability: correct
			case 0:
				pass.Reportf(ts.Pos(),
					"strategy type %s implements no ingress capability: ShapeOf and the stream builders need exactly one of %s",
					obj.Name(), strings.Join(ingressCapabilities, " / "))
			default:
				pass.Reportf(ts.Pos(),
					"strategy type %s implements %d ingress capabilities (%s): ingress dispatch needs exactly one",
					obj.Name(), len(have), strings.Join(have, ", "))
			}
			if inc, ok := caps["IncrementalStrategy"]; ok && implements(T, inc) {
				if len(have) == 1 && have[0] != "StreamingStrategy" {
					pass.Reportf(ts.Pos(),
						"strategy type %s implements IncrementalStrategy alongside %s: only streaming strategies carry native incremental state (stateless strategies adapt for free via AsIncremental, and an explicit path would shadow the adapter)",
						obj.Name(), have[0])
				}
			}
		}
	}
	return nil
}

// registeredTypes collects the type objects referenced anywhere inside a
// Register(...) call within an init function of file f.
func registeredTypes(pass *Pass, f *ast.File, registerFn *types.Func) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "init" || fd.Recv != nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != registerFn {
				return true
			}
			ast.Inspect(call, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if tn, ok := pass.Info.Uses[id].(*types.TypeName); ok {
						out[tn] = true
					}
				}
				return true
			})
			return true
		})
	}
	return out
}

// typeSpecs returns every type declaration in the file.
func typeSpecs(f *ast.File) []*ast.TypeSpec {
	var out []*ast.TypeSpec
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok {
				out = append(out, ts)
			}
		}
	}
	return out
}

func lookupInterface(scope *types.Scope, name string) *types.Interface {
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// implements reports whether T or *T satisfies iface.
func implements(T types.Type, iface *types.Interface) bool {
	return types.Implements(T, iface) || types.Implements(types.NewPointer(T), iface)
}
