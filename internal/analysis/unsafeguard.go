package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Unsafeguard confines pointer aliasing to the mmap layer. The zero-copy
// load path reinterprets mapped bytes as []Edge / []uint32 slices, which is
// sound only under the invariants csr_view.go states (little-endian host,
// 8-aligned payload, pinned mapping); anywhere else, unsafe is a liability
// with no measured win. Two rules:
//
//   - the unsafe package and reflect.SliceHeader/StringHeader aliasing may
//     appear only in internal/graph's mmap*.go and csr_view.go;
//   - inside those files, every use must be covered by an invariant
//     comment — a doc comment on the enclosing declaration or a comment on
//     the preceding line — so each aliasing site states why it is sound.
var Unsafeguard = &Analyzer{
	Name: "unsafeguard",
	Doc:  "confine unsafe/reflect-header aliasing to the documented mmap layer",
	Run:  runUnsafeguard,
}

// unsafeAllowedFile reports whether the file may use unsafe: the mmap layer
// of the graph package.
func unsafeAllowedFile(pkgName, filename string) bool {
	if pkgName != "graph" {
		return false
	}
	base := filepath.Base(filename)
	if base == "csr_view.go" {
		return true
	}
	return strings.HasPrefix(base, "mmap") && strings.HasSuffix(base, ".go")
}

func runUnsafeguard(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		filename := pass.Fset.Position(f.Pos()).Filename
		allowed := unsafeAllowedFile(pass.Pkg.Name(), filename)
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "unsafe" && !allowed {
				pass.Reportf(imp.Pos(),
					"import of unsafe outside the mmap layer: aliasing is confined to internal/graph/mmap*.go and csr_view.go")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			use := unsafeUseName(pass, sel)
			if use == "" {
				return true
			}
			if !allowed {
				pass.Reportf(sel.Pos(),
					"%s outside the mmap layer: aliasing is confined to internal/graph/mmap*.go and csr_view.go", use)
				return true
			}
			if !hasInvariantComment(pass, f, sel) {
				pass.Reportf(sel.Pos(),
					"%s without an invariant comment: state why this aliasing is sound on the enclosing declaration or the preceding line", use)
			}
			return true
		})
	}
	return nil
}

// unsafeUseName classifies a selector as an unsafe-package use or a
// reflect header type, returning a diagnostic label or "".
func unsafeUseName(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	switch pkgName.Imported().Path() {
	case "unsafe":
		return "unsafe." + sel.Sel.Name
	case "reflect":
		if sel.Sel.Name == "SliceHeader" || sel.Sel.Name == "StringHeader" {
			return "reflect." + sel.Sel.Name
		}
	}
	return ""
}

// hasInvariantComment reports whether the use is covered by documentation:
// a comment on the line before the use (or its enclosing statement), or a
// doc comment on the enclosing top-level declaration.
func hasInvariantComment(pass *Pass, f *ast.File, n ast.Node) bool {
	p := pass // any comment suffices; the content is reviewed by humans
	if p.Waived(f, n, "") {
		return true
	}
	if stmtWaived(p, f, n, "") {
		return true
	}
	for _, decl := range f.Decls {
		if decl.Pos() <= n.Pos() && n.End() <= decl.End() {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				return d.Doc != nil
			case *ast.GenDecl:
				if d.Doc != nil {
					return true
				}
				for _, spec := range d.Specs {
					if spec.Pos() <= n.Pos() && n.End() <= spec.End() {
						switch s := spec.(type) {
						case *ast.ValueSpec:
							return s.Doc != nil || s.Comment != nil
						case *ast.TypeSpec:
							return s.Doc != nil || s.Comment != nil
						}
					}
				}
			}
		}
	}
	return false
}
