package graph

import "unsafe"

// sizeOfEdge is allowed here: mmap*.go is in the allowlist and the
// declaration carries this doc comment as its invariant.
var sizeOfEdge = unsafe.Sizeof(int64(0))
