// Package graph (fixture): csr_view.go is inside the unsafeguard allowlist,
// so unsafe is importable here — but each use still needs an invariant
// comment. The want expectations use line offsets because any comment
// adjacent to a use would itself count as the invariant comment.
package graph

import "unsafe"

// pointerOf documents its aliasing: the slice is non-empty and the caller
// pins the backing array for the pointer's lifetime.
func pointerOf(b []byte) unsafe.Pointer {
	return unsafe.Pointer(&b[0])
}

func inlineDocumented(b []byte) uintptr {
	// Invariant: b is non-empty and pinned by the caller for the duration.
	return uintptr(unsafe.Pointer(&b[0]))
}

func undocumented(b []byte) uintptr {
	p := uintptr(unsafe.Pointer(&b[0]))

	return p // want:-2 `unsafe.Pointer without an invariant comment`
}
