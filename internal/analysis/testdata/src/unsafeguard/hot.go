package graph

import (
	"reflect"
	"unsafe" // want `import of unsafe outside the mmap layer`
)

// hot.go is outside the allowlist: neither unsafe nor reflect headers may
// appear here, documented or not.
func alias(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0])) // want `unsafe.Pointer outside the mmap layer`
}

func headerData(s []int32) uintptr {
	h := (*reflect.SliceHeader)(unsafe.Pointer(&s)) // want `reflect.SliceHeader outside the mmap layer` // want `unsafe.Pointer outside the mmap layer`
	return h.Data
}
