// Package bench (fixture) exercises nondet rule 2: bench is a sanctioned
// timing package, so time.Now is legal — but a nondeterministic call
// embedded directly in a report.Cell Value is flagged, keeping every
// wall-clock cell auditable at the measurement site.
package bench

import (
	"time"

	"report"
)

func goodMeasuredCell(f func()) report.Cell {
	start := time.Now() // sanctioned: bench measures by design
	f()
	elapsed := time.Since(start).Seconds()
	return report.Cell{Metric: "wall-s", Value: elapsed}
}

func badInlineCell(f func()) report.Cell {
	start := time.Now()
	f()
	return report.Cell{Metric: "wall-s", Value: time.Since(start).Seconds()} // want `time.Since embedded directly in a report.Cell Value`
}

func goodDerivedCell(elapsed float64) report.Cell {
	return report.Cell{Metric: "wall-s", Value: elapsed * 1000}
}
