// Package engine (fixture) exercises nondet rule 1: engine is not a
// sanctioned timing package, so wall-clock, global-rand, and core-count
// reads are flagged unless waived with a proof.
package engine

import (
	"math/rand"
	"runtime"
	"time"
)

func badWallClock() time.Time {
	return time.Now() // want `time.Now in deterministic package engine`
}

func badElapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time.Since in deterministic package engine`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `rand.Intn in deterministic package engine`
}

func badCoreCount() int {
	return runtime.NumCPU() // want `runtime.NumCPU in deterministic package engine`
}

func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // deterministic by construction
	return r.Intn(10)
}

func goodWaivedWorkers() int {
	//graphlint:nondet worker-pool default only; results are worker-count-independent (determinism test)
	return runtime.GOMAXPROCS(0)
}
