// Package report (fixture) supplies the Cell shape the nondet analyzer's
// rule 2 recognizes: a measurement cell whose Value the regression gates
// diff byte-for-byte.
package report

// Cell is one measured value.
type Cell struct {
	Metric string
	Value  float64
}
