package partition

// Hash is a correctly-shaped stateless strategy: registered in this file's
// init, exactly one ingress capability.
type Hash struct{}

func (Hash) Name() string                             { return "hash" }
func (Hash) Partition(numParts int) []int32           { return nil }
func (Hash) NewAssigner(numParts int) func(int) int32 { return nil }

// Greedy is a correctly-shaped streaming strategy that also carries native
// incremental state — the one combination IncrementalStrategy is legal in.
type Greedy struct{ state []int32 }

func (*Greedy) Name() string                   { return "greedy" }
func (*Greedy) Partition(numParts int) []int32 { return nil }
func (*Greedy) NewLoader(id int) func(int) int32 {
	return nil
}
func (*Greedy) Apply(delta int) {}

func init() {
	Register("hash", func() Strategy { return Hash{} })
	Register("greedy", func() Strategy { return &Greedy{} })
}
