// Package partition (fixture) models the strategy registry the registry
// analyzer enforces: the base Strategy contract, the three mutually
// exclusive ingress capabilities, the incremental add-on, and the
// self-registration entry point.
package partition

// Strategy is the base contract every partitioning strategy satisfies.
type Strategy interface {
	Name() string
	Partition(numParts int) []int32
}

// StatelessStrategy assigns each edge independently.
type StatelessStrategy interface {
	Strategy
	NewAssigner(numParts int) func(edge int) int32
}

// StreamingStrategy consumes the edge stream with per-loader state.
type StreamingStrategy interface {
	Strategy
	NewLoader(id int) func(edge int) int32
}

// MultiPassStrategy revisits the edge list across passes.
type MultiPassStrategy interface {
	Strategy
	PassCount() int
}

// IncrementalStrategy adapts an assignment under edge churn; only
// streaming strategies implement it natively.
type IncrementalStrategy interface {
	Strategy
	Apply(delta int)
}

var registry = map[string]func() Strategy{}

// Register installs a strategy constructor under its name.
func Register(name string, mk func() Strategy) { registry[name] = mk }
