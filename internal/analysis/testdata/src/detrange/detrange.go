// Package metrics (fixture) exercises the detrange analyzer: its name puts
// it in the determinism-critical set, so every map range must be a
// recognized order-safe shape, sorted-key iteration, or carry a waiver.
package metrics

import "sort"

// Quality mimics the real metrics accumulator whose Merge contract (PR 7)
// requires deterministic shard order: merging inside a map range is exactly
// the violation the analyzer exists to catch.
type Quality struct{ Edges int }

// Merge folds another shard's counts in. Callers must merge in ascending
// shard order; the sums are commutative but the contract keeps every
// accumulation order reproducible.
func (q *Quality) Merge(o *Quality) { q.Edges += o.Edges }

func badSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `non-deterministic iteration over map m`
		total += v
	}
	return total
}

func badMergeOrder(shards map[int]*Quality) *Quality {
	out := &Quality{}
	for _, q := range shards { // want `non-deterministic iteration over map shards`
		out.Merge(q)
	}
	return out
}

func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `non-deterministic iteration over map m`
		keys = append(keys, k)
	}
	return keys // collected but never sorted: order still leaks
}

func goodCollectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodMergeSorted(shards map[int]*Quality) *Quality {
	ids := make([]int, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := &Quality{}
	for _, id := range ids {
		out.Merge(shards[id])
	}
	return out
}

func goodClear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func goodRepetition(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func goodWaived(m map[string]int) int {
	best := 0
	//graphlint:unordered max reduction over values — commutative, order cannot reach the result
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
