package partition

// Forgotten satisfies Strategy with one capability but no init registers
// it: the experiment tables would silently miss it.
type Forgotten struct{} // want `strategy type Forgotten is not registered`

func (Forgotten) Name() string                             { return "forgotten" }
func (Forgotten) Partition(numParts int) []int32           { return nil }
func (Forgotten) NewAssigner(numParts int) func(int) int32 { return nil }

// Capless satisfies Strategy but no ingress capability: ShapeOf and the
// stream builders have nothing to dispatch on.
type Capless struct{} // want `strategy type Capless implements no ingress capability`

func (Capless) Name() string                   { return "capless" }
func (Capless) Partition(numParts int) []int32 { return nil }

// Ambiguous claims two ingress capabilities; dispatch order would decide
// which one wins, silently.
type Ambiguous struct{} // want `strategy type Ambiguous implements 2 ingress capabilities`

func (Ambiguous) Name() string                             { return "ambiguous" }
func (Ambiguous) Partition(numParts int) []int32           { return nil }
func (Ambiguous) NewAssigner(numParts int) func(int) int32 { return nil }
func (Ambiguous) NewLoader(id int) func(int) int32         { return nil }

// EagerIncremental is stateless but implements IncrementalStrategy
// explicitly, shadowing the AsIncremental adapter.
type EagerIncremental struct{} // want `strategy type EagerIncremental implements IncrementalStrategy alongside StatelessStrategy`

func (EagerIncremental) Name() string                             { return "eager" }
func (EagerIncremental) Partition(numParts int) []int32           { return nil }
func (EagerIncremental) NewAssigner(numParts int) func(int) int32 { return nil }
func (EagerIncremental) Apply(delta int)                          {}

func init() {
	Register("capless", func() Strategy { return Capless{} })
	Register("ambiguous", func() Strategy { return Ambiguous{} })
	Register("eager", func() Strategy { return EagerIncremental{} })
}
