// Package partition (fixture) carries one of each registry violation: an
// unregistered strategy, a capability-less strategy, a dual-capability
// strategy, and an incremental stateless strategy.
package partition

// Strategy is the base contract every partitioning strategy satisfies.
type Strategy interface {
	Name() string
	Partition(numParts int) []int32
}

// StatelessStrategy assigns each edge independently.
type StatelessStrategy interface {
	Strategy
	NewAssigner(numParts int) func(edge int) int32
}

// StreamingStrategy consumes the edge stream with per-loader state.
type StreamingStrategy interface {
	Strategy
	NewLoader(id int) func(edge int) int32
}

// MultiPassStrategy revisits the edge list across passes.
type MultiPassStrategy interface {
	Strategy
	PassCount() int
}

// IncrementalStrategy adapts an assignment under edge churn.
type IncrementalStrategy interface {
	Strategy
	Apply(delta int)
}

var registry = map[string]func() Strategy{}

// Register installs a strategy constructor under its name.
func Register(name string, mk func() Strategy) { registry[name] = mk }
