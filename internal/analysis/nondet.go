package analysis

import (
	"go/ast"
	"go/types"
)

// NondetWaiver marks a site where a wall-clock / core-count / global-rand
// read provably cannot reach a deterministic result, with the proof cited:
// //graphlint:nondet <why the value never reaches a result>.
const NondetWaiver = "graphlint:nondet"

// Nondet flags nondeterministic value sources in packages whose outputs are
// regression-gated byte-for-byte. Two rules:
//
//  1. Outside the sanctioned timing packages (bench, cluster), no internal
//     package may call time.Now/Since/Until, runtime.GOMAXPROCS/NumCPU, or
//     the global math/rand functions (seeded rand.New sources are fine —
//     they are deterministic by construction). Worker-pool defaults that
//     scale with the machine but never change results carry a
//     //graphlint:nondet waiver citing the determinism test that proves it.
//  2. Inside bench and cluster, timing is legal but must flow through named
//     variables: a nondeterministic call embedded directly in a
//     report.Cell's Value is flagged, so every wall-clock cell is auditable
//     at the measurement site.
var Nondet = &Analyzer{
	Name: "nondet",
	Doc:  "flag wall-clock, global rand, and core-count reads on deterministic result paths",
	Run:  runNondet,
}

// nondetFuncName describes a flagged source for diagnostics, or "" if the
// function is not a nondeterminism source.
func nondetFuncName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "runtime":
		switch fn.Name() {
		case "GOMAXPROCS", "NumCPU":
			return "runtime." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		// Constructors of explicitly-seeded generators are deterministic;
		// everything else at package level draws from the global source.
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return ""
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "" // methods on a seeded *Rand are fine
		}
		return "rand." + fn.Name()
	}
	return ""
}

func runNondet(pass *Pass) error {
	sanctioned := nondetSanctioned[pass.Pkg.Name()]
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned {
				return inspectCellValue(pass, f, n)
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := nondetFuncName(calleeFunc(pass.Info, call))
			if name == "" {
				return true
			}
			if stmtWaived(pass, f, call, NondetWaiver) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s in deterministic package %s: results here are regression-gated byte-for-byte; thread the value in as an input, or waive with //%s <proof it cannot reach a result>",
				name, pass.Pkg.Name(), NondetWaiver)
			return true
		})
	}
	return nil
}

// inspectCellValue enforces rule 2 in the sanctioned packages: a
// report.Cell composite literal whose Value entry contains a
// nondeterministic call directly.
func inspectCellValue(pass *Pass, f *ast.File, n ast.Node) bool {
	cl, ok := n.(*ast.CompositeLit)
	if !ok {
		return true
	}
	tv, ok := pass.Info.Types[cl]
	if !ok || !isReportCell(tv.Type) {
		return true
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Value" {
			continue
		}
		ast.Inspect(kv.Value, func(v ast.Node) bool {
			call, ok := v.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := nondetFuncName(calleeFunc(pass.Info, call))
			if name == "" {
				return true
			}
			if stmtWaived(pass, f, cl, NondetWaiver) || stmtWaived(pass, f, call, NondetWaiver) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s embedded directly in a report.Cell Value; measure into a named variable at the sanctioned timing site, then derive the cell",
				name)
			return true
		})
	}
	return true
}

// isReportCell reports whether t is (a pointer to) the Cell type of a
// package named report.
func isReportCell(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cell" && obj.Pkg() != nil && obj.Pkg().Name() == "report"
}

// stmtWaived extends Waived to also accept the marker on the enclosing
// statement's first line, so a call nested in a multi-line expression can
// be waived where the statement starts.
func stmtWaived(pass *Pass, f *ast.File, node ast.Node, marker string) bool {
	if pass.Waived(f, node, marker) {
		return true
	}
	// Walk up to the statement that contains the node, approximated by the
	// innermost enclosing function's statement list.
	body := enclosingFunc(f, node.Pos())
	if body == nil {
		return false
	}
	var stmt ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok && s.Pos() <= node.Pos() && node.End() <= s.End() {
			stmt = s // innermost wins: keep descending
		}
		return true
	})
	return stmt != nil && pass.Waived(f, stmt, marker)
}
