// Package analysis is the repo's static-analyzer suite: four checkers that
// mechanically prove the determinism, capability, and hot-path invariants
// every regression gate in this reproduction leans on. The golden renders,
// the worker-count-independent engines, and the BENCH_seed1.json cell diffs
// are only trustworthy because result paths never observe map iteration
// order, wall-clock time, or GOMAXPROCS — contracts that used to live in
// tests and reviewer memory and are enforced here at vet time instead.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic) but is built purely on the standard library's go/ast and
// go/types, with export data supplied by `go list -export`, so the suite
// needs no dependencies outside the Go toolchain. cmd/graphlint is the
// multichecker driver; it also speaks the `go vet -vettool` protocol.
//
// The analyzers:
//
//   - detrange: no ranging over maps in determinism-critical packages unless
//     the keys are collected and sorted, the loop is an order-independent
//     idiom (map clearing), or the site carries a //graphlint:unordered
//     waiver explaining why order cannot reach a result.
//   - nondet: no time.Now / global math/rand / GOMAXPROCS in deterministic
//     packages (the sanctioned timing sites are internal/bench and
//     internal/cluster), and even there, no raw nondeterministic call may be
//     embedded directly in a report.Cell Value.
//   - registry: every file declaring a partition strategy registers it in
//     that file's init, and every strategy implements exactly one ingress
//     capability (stateless / streaming / multi-pass).
//   - unsafeguard: unsafe and reflect header aliasing confined to the mmap
//     layer (internal/graph/mmap*.go, csr_view.go), each use covered by an
//     invariant comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a Pass and reports findings
// through Pass.Reportf; returning an error means the analyzer itself could
// not run (not that the code is in violation).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diagnostics []Diagnostic
	comments    map[string]map[int][]string // filename → line → comment texts
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// All is the full graphlint suite in the order the multichecker runs it.
func All() []*Analyzer {
	return []*Analyzer{Detrange, Nondet, Registry, Unsafeguard}
}

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by file position then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
			out = append(out, pass.diagnostics...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- shared predicates -------------------------------------------------

// detrangeCritical are the package names whose result paths feed golden
// renders and BENCH cell diffs: iteration order there is observable as
// output bytes. graphx rides along with engine (it is the second engine).
var detrangeCritical = map[string]bool{
	"partition": true, "metrics": true, "bench": true, "report": true,
	"advisor": true, "decision": true, "engine": true, "graphx": true,
}

// nondetSanctioned are the packages allowed to read wall-clock time and
// core counts at all: the experiment harness (bench) and the cost model's
// scheduler (cluster) are where measurement happens by design, and the
// service layer (service) measures request latency/uptime for its metrics
// endpoint — observability, not result computation. Everything else
// internal must stay a pure function of its inputs. The analyzer suite
// itself and main packages (CLIs print timings legitimately) are also out
// of scope.
var nondetSanctioned = map[string]bool{
	"bench": true, "cluster": true, "analysis": true, "main": true,
	"service": true,
}

// isTestFile reports whether the file sits in _test.go. The determinism
// contracts are about production result paths; tests assert them and may
// time or randomize freely.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Waived reports whether node carries (or is immediately preceded by) a
// comment containing the given //graphlint:<name> marker. Waivers document
// why the invariant cannot be violated at this site; the analyzer trusts
// the human, but the marker makes every exception greppable.
func (p *Pass) Waived(f *ast.File, node ast.Node, marker string) bool {
	p.buildComments(f)
	pos := p.Fset.Position(node.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, text := range p.comments[pos.Filename][line] {
			if strings.Contains(text, marker) {
				return true
			}
		}
	}
	return false
}

func (p *Pass) buildComments(f *ast.File) {
	name := p.Fset.Position(f.Pos()).Filename
	if p.comments == nil {
		p.comments = map[string]map[int][]string{}
	}
	if p.comments[name] != nil {
		return
	}
	lines := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			start := p.Fset.Position(c.Pos()).Line
			end := p.Fset.Position(c.End()).Line
			for line := start; line <= end; line++ {
				lines[line] = append(lines[line], c.Text)
			}
		}
	}
	p.comments[name] = lines
}

// enclosingFunc returns the innermost FuncDecl or FuncLit body containing
// pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep descending: inner funcs overwrite outer
		}
		return true
	})
	return best
}

// calleeFunc resolves a call expression to the package-level function it
// invokes (directly or via a package selector), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcIs reports whether fn is package pkgPath's function named name.
func funcIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
