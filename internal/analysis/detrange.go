package analysis

import (
	"go/ast"
	"go/types"
)

// UnorderedWaiver is the comment marker that waives a map-range finding:
// the author asserts iteration order cannot reach any result. Write it as
// //graphlint:unordered <why order does not matter>.
const UnorderedWaiver = "graphlint:unordered"

// Detrange flags `for ... := range m` over maps in determinism-critical
// packages. Map iteration order is randomized per loop, so any map range on
// a result path can leak scheduling noise into golden renders, BENCH cell
// values, or fitted models. Three shapes are recognized as safe:
//
//   - collect-and-sort: every statement in the body appends to slices, and
//     each collected slice is later passed to a sort.* / slices.* call in
//     the same function;
//   - map clearing: a body that only delete()s the ranged key from the
//     ranged map (order-independent by the language spec);
//   - `for range m` with no iteration variables (pure repetition).
//
// Anything else needs a //graphlint:unordered waiver stating why order
// cannot be observed.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flag unordered map iteration in determinism-critical packages",
	Run:  runDetrange,
}

func runDetrange(pass *Pass) error {
	if !detrangeCritical[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				return true // pure repetition; no order observable
			}
			if pass.Waived(f, rs, UnorderedWaiver) {
				return true
			}
			if isMapClearLoop(pass, rs) || isCollectAndSort(pass, f, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"non-deterministic iteration over map %s in determinism-critical package %s; iterate sorted keys, or waive with //%s <reason>",
				types.ExprString(rs.X), pass.Pkg.Name(), UnorderedWaiver)
			return true
		})
	}
	return nil
}

// isMapClearLoop matches `for k := range m { delete(m, k) }`, which the
// spec defines to remove every entry regardless of order.
func isMapClearLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 || rs.Value != nil {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "delete" {
		return false
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	return sameObject(pass, call.Args[0], rs.X) && sameObject(pass, call.Args[1], rs.Key)
}

// isCollectAndSort matches the sorted-key idiom: the body only appends the
// iteration variables into slices, and every one of those slices reaches a
// sort.* or slices.* call later in the same function. The sort is what
// discharges the obligation — collecting alone still leaks order.
func isCollectAndSort(pass *Pass, f *ast.File, rs *ast.RangeStmt) bool {
	var collected []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		obj := exprObject(pass, as.Lhs[0])
		if obj == nil {
			return false
		}
		collected = append(collected, obj)
	}
	if len(collected) == 0 {
		return false
	}
	body := enclosingFunc(f, rs.Pos())
	if body == nil {
		return false
	}
	for _, obj := range collected {
		if !sortedAfter(pass, body, rs, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is passed (anywhere in the argument
// tree) to a sort.* or slices.* call after the loop, in the same function.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if e, ok := a.(ast.Expr); ok && exprObject(pass, e) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// exprObject resolves an identifier or a field selector (x.f) to the
// variable object it denotes, so collect-and-sort also recognizes slices
// held in struct fields.
func exprObject(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return obj
		}
		return pass.Info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// sameObject reports whether two expressions are uses of the same
// variable.
func sameObject(pass *Pass, a, b ast.Expr) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	ao := pass.Info.Uses[ai]
	bo := pass.Info.Uses[bi]
	if bo == nil {
		bo = pass.Info.Defs[bi]
	}
	return ao != nil && ao == bo
}
