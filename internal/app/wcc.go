package app

import (
	"graphpart/internal/engine"
	"graphpart/internal/graph"
)

// WCC is Weakly Connected Components by label propagation (§3.3.2): every
// vertex starts with its own id and repeatedly adopts the minimum label
// among its neighbors (both directions — weak connectivity), propagating
// changes until a fixpoint. Not a natural application: it gathers and
// scatters in both directions.
type WCC struct{}

// Name implements engine.Program.
func (WCC) Name() string { return "WCC" }

// GatherDir implements engine.Program.
func (WCC) GatherDir() engine.Direction { return engine.DirBoth }

// ScatterDir implements engine.Program.
func (WCC) ScatterDir() engine.Direction { return engine.DirBoth }

// Init implements engine.Program.
func (WCC) Init(_ *graph.Graph, v graph.VertexID) uint32 { return uint32(v) }

// InitiallyActive implements engine.Program: all vertices start active and
// send out their labels (§3.3.2).
func (WCC) InitiallyActive(*graph.Graph, graph.VertexID) bool { return true }

// Gather implements engine.Program: the neighbor's current label.
func (WCC) Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal uint32, target graph.VertexID) uint32 {
	if target == dst {
		return srcVal
	}
	return dstVal
}

// Sum implements engine.Program: min.
func (WCC) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Apply implements engine.Program.
func (WCC) Apply(_ *graph.Graph, _ graph.VertexID, old uint32, acc uint32, hasAcc bool) (uint32, bool) {
	if hasAcc && acc < old {
		return acc, true
	}
	return old, false
}

// AccBytes implements engine.Program.
func (WCC) AccBytes() int { return 4 }

// ValueBytes implements engine.Program.
func (WCC) ValueBytes() int { return 4 }
