package app

import (
	"math"

	"graphpart/internal/engine"
	"graphpart/internal/graph"
)

// SSSP is Single-Source Shortest Paths (§3.3.4): the source starts at
// distance 0, everything else at +∞, and active vertices relax
// p(v) = min(p(u)+1) over their neighbors.
//
// The paper runs the *undirected* variant on PowerGraph/PowerLyra (§6.4.1
// notes this makes it non-natural); set Directed for the natural directed
// variant.
type SSSP struct {
	Source   graph.VertexID
	Directed bool
}

// Name implements engine.Program.
func (SSSP) Name() string { return "SSSP" }

// GatherDir implements engine.Program.
func (s SSSP) GatherDir() engine.Direction {
	if s.Directed {
		return engine.DirIn
	}
	return engine.DirBoth
}

// ScatterDir implements engine.Program.
func (s SSSP) ScatterDir() engine.Direction {
	if s.Directed {
		return engine.DirOut
	}
	return engine.DirBoth
}

// Init implements engine.Program. Every vertex (including the source)
// starts at +∞; the source's first Apply sets it to 0 and the resulting
// "changed" signal seeds the propagation.
func (s SSSP) Init(_ *graph.Graph, v graph.VertexID) float64 {
	return math.Inf(1)
}

// InitiallyActive implements engine.Program: only the source (§3.3.4).
func (s SSSP) InitiallyActive(_ *graph.Graph, v graph.VertexID) bool { return v == s.Source }

// Gather implements engine.Program: neighbor's distance + 1.
func (SSSP) Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal float64, target graph.VertexID) float64 {
	if target == dst {
		return srcVal + 1
	}
	return dstVal + 1
}

// Sum implements engine.Program: min.
func (SSSP) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements engine.Program.
func (s SSSP) Apply(_ *graph.Graph, v graph.VertexID, old float64, acc float64, hasAcc bool) (float64, bool) {
	if v == s.Source && math.IsInf(old, 1) {
		return 0, true
	}
	if hasAcc && acc < old {
		return acc, true
	}
	return old, false
}

// AccBytes implements engine.Program.
func (SSSP) AccBytes() int { return 8 }

// ValueBytes implements engine.Program.
func (SSSP) ValueBytes() int { return 8 }
