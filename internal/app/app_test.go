package app

import (
	"math"
	"testing"

	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

func partitioned(t *testing.T, g *graph.Graph, strategy string, parts int) *partition.Assignment {
	t.Helper()
	s := partition.MustNew(strategy, partition.Options{HybridThreshold: 30})
	a, err := partition.Partition(g, s, parts, 7)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"road": gen.RoadNet("road", 25, 25, 0x11),
		"pa":   gen.PrefAttach("pa", 1200, 5, 0x22),
	}
}

var testModel = cluster.DefaultModel()

func TestPageRankMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for _, strategy := range []string{"Random", "Oblivious", "Hybrid"} {
			a := partitioned(t, g, strategy, 9)
			for _, mode := range []engine.Mode{engine.ModePowerGraph, engine.ModePowerLyra} {
				out, err := engine.Run[float64, float64](mode, PageRank{}, a, cluster.Local9, testModel,
					engine.Options{MaxSupersteps: 500})
				if err != nil {
					t.Fatal(err)
				}
				if !out.Stats.Converged {
					t.Fatalf("%s/%s mode %d: did not converge", name, strategy, mode)
				}
				ref := refPageRank(g, DefaultDamping, DefaultTolerance, 0)
				for v := range ref {
					if math.Abs(out.Values[v]-ref[v]) > 0.05 {
						t.Fatalf("%s/%s: pagerank[%d] = %v, ref %v", name, strategy, v, out.Values[v], ref[v])
					}
				}
			}
		}
	}
}

func TestPageRankFixedIterations(t *testing.T) {
	g := testGraphs()["pa"]
	a := partitioned(t, g, "Random", 9)
	out, err := engine.Run[float64, float64](engine.ModePowerGraph, PageRank{}, a, cluster.Local9, testModel,
		engine.Options{FixedIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Supersteps != 10 {
		t.Fatalf("ran %d supersteps, want 10", out.Stats.Supersteps)
	}
	ref := refPageRank(g, DefaultDamping, DefaultTolerance, 10)
	for v := range ref {
		if math.Abs(out.Values[v]-ref[v]) > 1e-9 {
			t.Fatalf("pagerank[%d] = %v, ref %v", v, out.Values[v], ref[v])
		}
	}
}

func TestPageRankIsNatural(t *testing.T) {
	if !engine.Natural[float64, float64](PageRank{}) {
		t.Error("PageRank must be natural (gathers In, scatters Out)")
	}
	if engine.Natural[uint32, uint32](WCC{}) {
		t.Error("WCC must not be natural")
	}
}

func TestWCCMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		a := partitioned(t, g, "Grid", 9)
		out, err := engine.Run[uint32, uint32](engine.ModePowerGraph, WCC{}, a, cluster.Local9, testModel,
			engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Stats.Converged {
			t.Fatalf("%s: WCC did not converge", name)
		}
		ref := refWCC(g)
		for v := range ref {
			if out.Values[v] != ref[v] {
				t.Fatalf("%s: wcc[%d] = %d, ref %d", name, v, out.Values[v], ref[v])
			}
		}
	}
}

func TestSSSPMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		for _, directed := range []bool{false, true} {
			a := partitioned(t, g, "HDRF", 9)
			prog := SSSP{Source: 0, Directed: directed}
			out, err := engine.Run[float64, float64](engine.ModePowerGraph, prog, a, cluster.Local9, testModel,
				engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Stats.Converged {
				t.Fatalf("%s directed=%v: SSSP did not converge", name, directed)
			}
			ref := refBFS(g, 0, directed)
			for v := range ref {
				if out.Values[v] != ref[v] && !(math.IsInf(out.Values[v], 1) && math.IsInf(ref[v], 1)) {
					t.Fatalf("%s directed=%v: dist[%d] = %v, ref %v", name, directed, v, out.Values[v], ref[v])
				}
			}
		}
	}
}

func TestSSSPDirectedIsNatural(t *testing.T) {
	if !engine.Natural[float64, float64](SSSP{Directed: true}) {
		t.Error("directed SSSP should be natural")
	}
	if engine.Natural[float64, float64](SSSP{}) {
		t.Error("undirected SSSP must not be natural (§6.4.1)")
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		a := partitioned(t, g, "Random", 9)
		kmin, kmax := 3, 6
		core, stats, err := KCoreDecomposition(engine.ModePowerGraph, kmin, kmax, a, cluster.Local9, testModel,
			engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("%s: k-core did not converge", name)
		}
		ref := refKCoreNumbers(g, kmin, kmax)
		for v := range ref {
			if core[v] != ref[v] {
				t.Fatalf("%s: core[%d] = %d, ref %d", name, v, core[v], ref[v])
			}
		}
	}
}

func TestColoringIsProper(t *testing.T) {
	for name, g := range testGraphs() {
		a := partitioned(t, g, "Oblivious", 9)
		out, err := engine.Run[int32, ColorSet](engine.ModePowerGraph, Coloring{}, a, cluster.Local9, testModel,
			engine.Options{MaxSupersteps: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Stats.Converged {
			t.Fatalf("%s: coloring did not converge", name)
		}
		if !ValidColoring(g, out.Values) {
			t.Fatalf("%s: invalid coloring", name)
		}
		// Colors should be reasonably small (bounded by max degree + 1).
		maxColor := int32(0)
		for _, c := range out.Values {
			if c > maxColor {
				maxColor = c
			}
		}
		if int(maxColor) > g.MaxDegree() {
			t.Errorf("%s: used %d colors, max degree %d", name, maxColor+1, g.MaxDegree())
		}
	}
}

func TestColorSetOps(t *testing.T) {
	var s ColorSet
	s = s.Add(0).Add(63).Add(64).Add(130)
	for _, c := range []int32{0, 63, 64, 130} {
		if !s.Has(c) {
			t.Errorf("set missing %d", c)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("set has spurious members")
	}
	if got := s.smallestFree(); got != 1 {
		t.Errorf("smallestFree = %d, want 1", got)
	}
	other := ColorSet{}.Add(1).Add(2)
	u := s.Union(other)
	for _, c := range []int32{0, 1, 2, 63, 64, 130} {
		if !u.Has(c) {
			t.Errorf("union missing %d", c)
		}
	}
	full := ColorSet{}.Add(0).Add(1).Add(2)
	if got := full.smallestFree(); got != 3 {
		t.Errorf("smallestFree = %d, want 3", got)
	}
}

func TestEngineRejectsMismatchedCluster(t *testing.T) {
	g := testGraphs()["pa"]
	a := partitioned(t, g, "Random", 9)
	_, err := engine.Run[float64, float64](engine.ModePowerGraph, PageRank{}, a, cluster.EC2x16, testModel,
		engine.Options{})
	if err == nil {
		t.Fatal("engine accepted 9-partition assignment on 16-machine cluster")
	}
}

func TestStatsPopulated(t *testing.T) {
	g := testGraphs()["pa"]
	a := partitioned(t, g, "Random", 9)
	out, err := engine.Run[float64, float64](engine.ModePowerGraph, PageRank{}, a, cluster.Local9, testModel,
		engine.Options{FixedIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats
	if st.ComputeSeconds <= 0 {
		t.Error("ComputeSeconds not positive")
	}
	if st.AvgNetInGB <= 0 {
		t.Error("AvgNetInGB not positive")
	}
	if st.PeakMemGB <= 0 {
		t.Error("PeakMemGB not positive")
	}
	if len(st.CPUUtil) != 9 {
		t.Errorf("CPUUtil has %d entries, want 9", len(st.CPUUtil))
	}
	for m, u := range st.CPUUtil {
		if u <= 0 || u > 1 {
			t.Errorf("machine %d utilization %v out of (0,1]", m, u)
		}
	}
	if len(st.SuperstepSeconds) != 5 {
		t.Errorf("SuperstepSeconds has %d entries, want 5", len(st.SuperstepSeconds))
	}
}
