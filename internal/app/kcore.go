package app

import (
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// VertexAlive / VertexRemoved are the two states of a KCore vertex value.
const (
	VertexAlive   int32 = 0
	VertexRemoved int32 = 1
)

// KCore is one peeling pass of k-core decomposition (§3.3.3): vertices with
// (remaining) degree < K are repeatedly removed until a fixpoint; survivors
// form the k-core. A vertex's remaining degree is its original degree minus
// its removed neighbors, which the gather stage counts.
type KCore struct {
	K int
	// InitRemoved carries the removals of the previous (smaller-k) pass so
	// that decomposition peels incrementally, as PowerGraph's kmin..kmax
	// application does. Nil means no prior removals.
	InitRemoved []bool
}

// Name implements engine.Program.
func (KCore) Name() string { return "K-Core" }

// GatherDir implements engine.Program (degree counts both directions).
func (KCore) GatherDir() engine.Direction { return engine.DirBoth }

// ScatterDir implements engine.Program.
func (KCore) ScatterDir() engine.Direction { return engine.DirBoth }

// Init implements engine.Program.
func (kc KCore) Init(_ *graph.Graph, v graph.VertexID) int32 {
	if kc.InitRemoved != nil && kc.InitRemoved[v] {
		return VertexRemoved
	}
	return VertexAlive
}

// InitiallyActive implements engine.Program: every still-alive vertex
// checks its degree in the first superstep.
func (kc KCore) InitiallyActive(_ *graph.Graph, v graph.VertexID) bool {
	return kc.InitRemoved == nil || !kc.InitRemoved[v]
}

// Gather implements engine.Program: 1 for each removed neighbor.
func (KCore) Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal int32, target graph.VertexID) int32 {
	nbrVal := srcVal
	if target == src {
		nbrVal = dstVal
	}
	if nbrVal == VertexRemoved {
		return 1
	}
	return 0
}

// Sum implements engine.Program.
func (KCore) Sum(a, b int32) int32 { return a + b }

// Apply implements engine.Program: remove when remaining degree < K.
func (kc KCore) Apply(g *graph.Graph, v graph.VertexID, old int32, acc int32, hasAcc bool) (int32, bool) {
	if old == VertexRemoved {
		return old, false
	}
	removedNbrs := int32(0)
	if hasAcc {
		removedNbrs = acc
	}
	if g.Degree(v)-int(removedNbrs) < kc.K {
		return VertexRemoved, true
	}
	return old, false
}

// StayActive implements engine.Reactivator: every still-alive vertex
// re-checks its remaining degree each round, so a peeling pass is a
// bulk-iterative computation over the whole remaining subgraph — the
// behaviour that makes K-core the paper's long-running, compute-heavy job
// (Table 5.1).
func (KCore) StayActive(_ *graph.Graph, _ graph.VertexID, val int32) bool {
	return val == VertexAlive
}

// AccBytes implements engine.Program.
func (KCore) AccBytes() int { return 4 }

// ValueBytes implements engine.Program (a removal flag).
func (KCore) ValueBytes() int { return 1 }

// KCoreDecomposition runs the paper's k-core application: find the k-cores
// for every k in [kmin, kmax] (§5.3 uses 10..20), peeling incrementally.
// It returns the per-vertex core numbers capped at kmax (coreNum[v] = the
// largest k ≤ kmax such that v is in the k-core, or kmin−1 if v is not even
// in the kmin-core) and the aggregate engine statistics over all passes.
func KCoreDecomposition(mode engine.Mode, kmin, kmax int, a *partition.Assignment, cfg cluster.Config, model cluster.CostModel, opts engine.Options) ([]int, engine.Stats, error) {
	n := a.G.NumVertices()
	coreNum := make([]int, n)
	for v := range coreNum {
		coreNum[v] = kmin - 1
	}
	var removed []bool
	agg := engine.Stats{App: "K-Core", Strategy: a.Strategy, Mode: mode, Converged: true}
	for k := kmin; k <= kmax; k++ {
		out, err := engine.Run[int32, int32](mode, KCore{K: k, InitRemoved: removed}, a, cfg, model, opts)
		if err != nil {
			return nil, agg, err
		}
		if removed == nil {
			removed = make([]bool, n)
		}
		for v, val := range out.Values {
			if val == VertexRemoved {
				removed[v] = true
			} else {
				coreNum[v] = k
			}
		}
		agg.Supersteps += out.Stats.Supersteps
		agg.ComputeSeconds += out.Stats.ComputeSeconds
		agg.AvgNetInGB += out.Stats.AvgNetInGB
		agg.EdgesProcessed += out.Stats.EdgesProcessed
		if out.Stats.PeakMemGB > agg.PeakMemGB {
			agg.PeakMemGB = out.Stats.PeakMemGB
		}
		agg.Converged = agg.Converged && out.Stats.Converged
		if agg.CPUUtil == nil {
			agg.CPUUtil = make([]float64, len(out.Stats.CPUUtil))
		}
		for i, u := range out.Stats.CPUUtil {
			agg.CPUUtil[i] += u * out.Stats.ComputeSeconds
		}
		agg.SuperstepSeconds = append(agg.SuperstepSeconds, out.Stats.SuperstepSeconds...)
	}
	if agg.ComputeSeconds > 0 {
		for i := range agg.CPUUtil {
			agg.CPUUtil[i] /= agg.ComputeSeconds
		}
	}
	return coreNum, agg, nil
}
