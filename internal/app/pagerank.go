// Package app implements the paper's five benchmark applications (§3.3) as
// GAS vertex programs: PageRank, Weakly Connected Components, K-core
// decomposition, Single-Source Shortest Paths, and Simple Coloring.
package app

import (
	"math"

	"graphpart/internal/engine"
	"graphpart/internal/graph"
)

// DefaultDamping is the PageRank dampening factor d (§3.3.1).
const DefaultDamping = 0.85

// DefaultTolerance is the per-vertex convergence tolerance used by the
// convergent "PageRank(C)" configuration.
const DefaultTolerance = 1e-3

// PageRank is §3.3.1: p(v) = (1−d) + d·Σ p(u)/|No(u)| over in-neighbors.
// It is a *natural* application (gathers In, scatters Out), the case
// PowerLyra's hybrid engine optimizes (§6.1).
type PageRank struct {
	Damping   float64 // 0 means DefaultDamping
	Tolerance float64 // 0 means DefaultTolerance
}

func (p PageRank) damping() float64 {
	if p.Damping == 0 {
		return DefaultDamping
	}
	return p.Damping
}

func (p PageRank) tolerance() float64 {
	if p.Tolerance == 0 {
		return DefaultTolerance
	}
	return p.Tolerance
}

// Name implements engine.Program.
func (PageRank) Name() string { return "PageRank" }

// GatherDir implements engine.Program.
func (PageRank) GatherDir() engine.Direction { return engine.DirIn }

// ScatterDir implements engine.Program.
func (PageRank) ScatterDir() engine.Direction { return engine.DirOut }

// Init implements engine.Program.
func (PageRank) Init(*graph.Graph, graph.VertexID) float64 { return 1 }

// InitiallyActive implements engine.Program.
func (PageRank) InitiallyActive(*graph.Graph, graph.VertexID) bool { return true }

// Gather implements engine.Program: contribution p(u)/|No(u)| of in-edge
// (u,v).
func (PageRank) Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal float64, target graph.VertexID) float64 {
	od := g.OutDegree(src)
	if od == 0 {
		return 0
	}
	return srcVal / float64(od)
}

// Sum implements engine.Program.
func (PageRank) Sum(a, b float64) float64 { return a + b }

// Apply implements engine.Program.
func (p PageRank) Apply(g *graph.Graph, v graph.VertexID, old float64, acc float64, hasAcc bool) (float64, bool) {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	next := (1 - p.damping()) + p.damping()*sum
	return next, math.Abs(next-old) > p.tolerance()
}

// AccBytes implements engine.Program (one float64 partial sum).
func (PageRank) AccBytes() int { return 8 }

// ValueBytes implements engine.Program.
func (PageRank) ValueBytes() int { return 8 }
