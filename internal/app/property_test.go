package app

import (
	"math"
	"testing"
	"testing/quick"

	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// randomGraphFrom turns fuzz bytes into a small graph.
func randomGraphFrom(raw []uint16) *graph.Graph {
	edges := make([]graph.Edge, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		s, d := graph.VertexID(raw[i]%200), graph.VertexID(raw[i+1]%200)
		if s == d {
			continue
		}
		edges = append(edges, graph.Edge{Src: s, Dst: d})
	}
	return graph.FromEdges("fuzz", edges)
}

func runOn(g *graph.Graph) (*partition.Assignment, error) {
	return partition.Partition(g, partition.Random{}, 5, 1)
}

var propCluster = cluster.Config{Machines: 5, PartsPerMachine: 1}

// TestWCCLabelsArePartitionProperty: for any graph, WCC labels form a valid
// partition — every edge connects same-labeled endpoints, and each label
// equals the minimum vertex id carrying it.
func TestWCCLabelsArePartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		g := randomGraphFrom(raw)
		if g.NumEdges() == 0 {
			return true
		}
		a, err := runOn(g)
		if err != nil {
			return false
		}
		out, err := engine.Run[uint32, uint32](engine.ModePowerGraph, WCC{}, a, propCluster, testModel,
			engine.Options{MaxSupersteps: 4000})
		if err != nil || !out.Stats.Converged {
			return false
		}
		labels := out.Values
		for _, e := range g.Edges {
			if labels[e.Src] != labels[e.Dst] {
				return false
			}
		}
		// The label of each component is its smallest member id.
		for v, l := range labels {
			if uint32(v) < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSSSPTriangleInequalityProperty: for any graph, converged distances
// satisfy |d(u) − d(v)| ≤ 1 across every (undirected) edge, and d is 0 only
// at the source.
func TestSSSPTriangleInequalityProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		g := randomGraphFrom(raw)
		if g.NumEdges() == 0 {
			return true
		}
		a, err := runOn(g)
		if err != nil {
			return false
		}
		src := g.Edges[0].Src
		out, err := engine.Run[float64, float64](engine.ModePowerGraph, SSSP{Source: src}, a, propCluster, testModel,
			engine.Options{MaxSupersteps: 4000})
		if err != nil || !out.Stats.Converged {
			return false
		}
		d := out.Values
		if d[src] != 0 {
			return false
		}
		for _, e := range g.Edges {
			du, dv := d[e.Src], d[e.Dst]
			if math.IsInf(du, 1) != math.IsInf(dv, 1) {
				return false // an edge connects reached and unreached
			}
			if !math.IsInf(du, 1) && math.Abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestColoringProperProperty: the coloring program produces a proper
// coloring on any graph.
func TestColoringProperProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		g := randomGraphFrom(raw)
		if g.NumEdges() == 0 {
			return true
		}
		a, err := runOn(g)
		if err != nil {
			return false
		}
		out, err := engine.Run[int32, ColorSet](engine.ModePowerGraph, Coloring{}, a, propCluster, testModel,
			engine.Options{MaxSupersteps: 4000})
		if err != nil || !out.Stats.Converged {
			return false
		}
		return ValidColoring(g, out.Values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestKCoreMonotoneProperty: the k-core shrinks (weakly) as k grows, and
// every surviving vertex has ≥ k neighbors inside the core.
func TestKCoreMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		g := randomGraphFrom(raw)
		if g.NumEdges() == 0 {
			return true
		}
		a, err := runOn(g)
		if err != nil {
			return false
		}
		core, stats, err := KCoreDecomposition(engine.ModePowerGraph, 2, 5, a, propCluster, testModel,
			engine.Options{MaxSupersteps: 4000})
		if err != nil || !stats.Converged {
			return false
		}
		for k := 2; k <= 5; k++ {
			inCore := func(v graph.VertexID) bool { return core[v] >= k }
			for v := 0; v < g.NumVertices(); v++ {
				if !inCore(graph.VertexID(v)) {
					continue
				}
				deg := 0
				for _, u := range g.OutNeighbors(graph.VertexID(v)) {
					if inCore(u) {
						deg++
					}
				}
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if inCore(u) {
						deg++
					}
				}
				if deg < k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPageRankMassProperty: with damping d, the converged total mass is
// bounded: each vertex's rank sits in [1−d, 1 + d·maxInDeg].
func TestPageRankMassProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		g := randomGraphFrom(raw)
		if g.NumEdges() == 0 {
			return true
		}
		a, err := runOn(g)
		if err != nil {
			return false
		}
		out, err := engine.Run[float64, float64](engine.ModePowerGraph, PageRank{}, a, propCluster, testModel,
			engine.Options{MaxSupersteps: 4000})
		if err != nil {
			return false
		}
		for v, r := range out.Values {
			if r < 0.15-1e-9 {
				return false
			}
			if r > 0.15+0.85*float64(g.InDegree(graph.VertexID(v)))*3+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
