package app

import (
	"math"

	"graphpart/internal/graph"
)

// Sequential reference implementations used to validate the engines.

// refPageRank runs synchronous PageRank for iters iterations (or to
// convergence when iters == 0) with damping d.
func refPageRank(g *graph.Graph, d float64, tol float64, iters int) []float64 {
	n := g.NumVertices()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	for it := 0; iters == 0 || it < iters; it++ {
		changed := false
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				sum += pr[u] / float64(g.OutDegree(u))
			}
			next[v] = (1 - d) + d*sum
			if math.Abs(next[v]-pr[v]) > tol {
				changed = true
			}
		}
		pr, next = next, pr
		if iters == 0 && !changed {
			break
		}
	}
	return pr
}

// refWCC computes weakly-connected-component labels (min vertex id per
// component).
func refWCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	label := make([]uint32, n)
	for v := range label {
		label[v] = uint32(v)
	}
	for {
		changed := false
		for _, e := range g.Edges {
			if label[e.Src] < label[e.Dst] {
				label[e.Dst] = label[e.Src]
				changed = true
			} else if label[e.Dst] < label[e.Src] {
				label[e.Src] = label[e.Dst]
				changed = true
			}
		}
		if !changed {
			return label
		}
	}
}

// refBFS computes unweighted shortest-path distances from src, treating
// edges as undirected when directed is false.
func refBFS(g *graph.Graph, src graph.VertexID, directed bool) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(src) >= n {
		return dist
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		relax := func(u graph.VertexID) {
			if dist[v]+1 < dist[u] {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
		for _, u := range g.OutNeighbors(v) {
			relax(u)
		}
		if !directed {
			for _, u := range g.InNeighbors(v) {
				relax(u)
			}
		}
	}
	return dist
}

// refKCoreNumbers peels the graph and returns each vertex's core number
// capped at kmax; vertices below the kmin-core get kmin−1.
func refKCoreNumbers(g *graph.Graph, kmin, kmax int) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VertexID(v))
	}
	removed := make([]bool, n)
	core := make([]int, n)
	for v := range core {
		core[v] = kmin - 1
	}
	for k := kmin; k <= kmax; k++ {
		for {
			any := false
			for v := 0; v < n; v++ {
				if removed[v] || deg[v] >= k {
					continue
				}
				removed[v] = true
				any = true
				for _, u := range g.OutNeighbors(graph.VertexID(v)) {
					deg[u]--
				}
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					deg[u]--
				}
			}
			if !any {
				break
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				core[v] = k
			}
		}
	}
	return core
}
