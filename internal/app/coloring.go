package app

import (
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// ColorSet is the gather accumulator for Coloring: a grow-as-needed bitset
// of colors used by (higher-priority) neighbors.
type ColorSet []uint64

// Add returns the set with color c included.
func (s ColorSet) Add(c int32) ColorSet {
	w := int(c) / 64
	for len(s) <= w {
		s = append(s, 0)
	}
	s[w] |= 1 << uint(c%64)
	return s
}

// Has reports whether color c is in the set.
func (s ColorSet) Has(c int32) bool {
	w := int(c) / 64
	return w < len(s) && s[w]&(1<<uint(c%64)) != 0
}

// Union returns the union of two sets.
func (s ColorSet) Union(o ColorSet) ColorSet {
	if len(o) > len(s) {
		s, o = o, s
	}
	out := make(ColorSet, len(s))
	copy(out, s)
	for i := range o {
		out[i] |= o[i]
	}
	return out
}

// smallestFree returns the smallest non-negative color not in the set.
func (s ColorSet) smallestFree() int32 {
	for c := int32(0); ; c++ {
		if !s.Has(c) {
			return c
		}
	}
}

// Coloring is Simple Coloring (§3.3.5): assign every vertex the smallest
// color different from all neighbors'. The paper runs this on the
// *asynchronous* engine, which it observes sometimes hangs (Oblivious) or
// fails (HDRF) (§5.4.1). Our deterministic substitution uses
// Jones–Plassmann-style priorities: a vertex only recolors against
// higher-priority neighbors (priority = hash of the id), which converges
// without the async engine's nondeterminism. Gathers and scatters both
// directions — not a natural application.
type Coloring struct {
	// Seed salts the priority hash (0 is fine).
	Seed uint64
}

// higherPriority reports whether a outranks b, breaking hash ties by id so
// that no two distinct vertices ever compare equal.
func (c Coloring) higherPriority(a, b graph.VertexID) bool {
	ha, hb := hashing.Vertex(c.Seed^0xc0109, a), hashing.Vertex(c.Seed^0xc0109, b)
	if ha != hb {
		return ha > hb
	}
	return a > b
}

// Name implements engine.Program.
func (Coloring) Name() string { return "Coloring" }

// GatherDir implements engine.Program.
func (Coloring) GatherDir() engine.Direction { return engine.DirBoth }

// ScatterDir implements engine.Program.
func (Coloring) ScatterDir() engine.Direction { return engine.DirBoth }

// Init implements engine.Program: everyone starts with color 0 (§3.3.5,
// "all the vertices initially start with the same color").
func (Coloring) Init(*graph.Graph, graph.VertexID) int32 { return 0 }

// InitiallyActive implements engine.Program.
func (Coloring) InitiallyActive(*graph.Graph, graph.VertexID) bool { return true }

// Gather implements engine.Program: the colors of higher-priority
// neighbors.
func (c Coloring) Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal int32, target graph.VertexID) ColorSet {
	nbr, nbrVal := src, srcVal
	if target == src {
		nbr, nbrVal = dst, dstVal
	}
	if c.higherPriority(nbr, target) {
		return ColorSet(nil).Add(nbrVal)
	}
	return nil
}

// Sum implements engine.Program.
func (Coloring) Sum(a, b ColorSet) ColorSet { return a.Union(b) }

// Apply implements engine.Program: take the smallest color unused by
// higher-priority neighbors.
func (c Coloring) Apply(_ *graph.Graph, v graph.VertexID, old int32, acc ColorSet, hasAcc bool) (int32, bool) {
	var want int32
	if hasAcc {
		want = acc.smallestFree()
	}
	return want, want != old
}

// AccBytes implements engine.Program (a small color bitmap).
func (Coloring) AccBytes() int { return 8 }

// ValueBytes implements engine.Program.
func (Coloring) ValueBytes() int { return 4 }

// ValidColoring verifies that colors is a proper coloring of g (no edge
// connects two same-colored endpoints, ignoring self-loops).
func ValidColoring(g *graph.Graph, colors []int32) bool {
	for _, e := range g.Edges {
		if e.Src != e.Dst && colors[e.Src] == colors[e.Dst] {
			return false
		}
	}
	return true
}
