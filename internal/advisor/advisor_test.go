package advisor

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// seedModel fits the advisor from the committed scale-1 baseline report
// and the builtin manifests, once per test binary.
var seedOnce = struct {
	sync.Once
	rep  *report.Report
	mans []datasets.Manifest
	err  error
}{}

func seedInputs(t *testing.T) (*report.Report, []datasets.Manifest) {
	t.Helper()
	seedOnce.Do(func() {
		f, err := os.Open("../../BENCH_seed1.json")
		if err != nil {
			seedOnce.err = err
			return
		}
		defer f.Close()
		seedOnce.rep, seedOnce.err = report.Decode(f)
		if seedOnce.err != nil {
			return
		}
		for _, n := range datasets.Names() {
			m, err := datasets.BuildManifest(n, 1)
			if err != nil {
				seedOnce.err = err
				return
			}
			seedOnce.mans = append(seedOnce.mans, m)
		}
	})
	if seedOnce.err != nil {
		t.Fatalf("seed inputs: %v", seedOnce.err)
	}
	return seedOnce.rep, seedOnce.mans
}

func seedModel(t *testing.T) *Model {
	t.Helper()
	rep, mans := seedInputs(t)
	m, err := Fit(rep, mans)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return m
}

func TestFitCoversAllEngines(t *testing.T) {
	m := seedModel(t)
	want := []string{"GraphX", "PowerGraph", "PowerLyra"}
	if got := m.Engines(); !reflect.DeepEqual(got, want) {
		t.Errorf("Engines() = %v, want %v", got, want)
	}
	for _, eng := range m.Engines() {
		if n := len(m.Observations(eng)); n < 4 {
			t.Errorf("engine %s: only %d observations extracted from the seed report", eng, n)
		}
	}
	if m.Skipped != 0 {
		t.Errorf("%d observation groups skipped despite manifests for every builtin", m.Skipped)
	}
}

// TestDeterministicRecommendation is the advisor determinism contract:
// fitting twice from the same report and manifests yields an identical
// model (same rendered trees) and identical recommendations, including
// the explanation traces and predicted cells.
func TestDeterministicRecommendation(t *testing.T) {
	rep, mans := seedInputs(t)
	m1, err := Fit(rep, mans)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(rep, mans)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Explain() != m2.Explain() {
		t.Fatalf("two fits of the same inputs render different trees:\n--- first ---\n%s\n--- second ---\n%s", m1.Explain(), m2.Explain())
	}
	for _, man := range mans {
		for _, sys := range []partition.System{
			partition.PowerGraph, partition.PowerLyra, partition.GraphX,
			partition.PowerLyraAll, partition.GraphXAll,
		} {
			for _, ratio := range []float64{0.25, 5} {
				w, err := WorkloadFor(man, 25, ratio, "PageRank(C)")
				if err != nil {
					t.Fatal(err)
				}
				r1, err1 := m1.Recommend(sys, w)
				r2, err2 := m2.Recommend(sys, w)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s/%s: error mismatch: %v vs %v", man.Name, sys, err1, err2)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Errorf("%s/%s ratio=%g: recommendations differ:\n%+v\n%+v", man.Name, sys, ratio, r1, r2)
				}
			}
		}
	}
}

func TestRecommendationsAreConstructible(t *testing.T) {
	m := seedModel(t)
	_, mans := seedInputs(t)
	for _, man := range mans {
		for _, sys := range []partition.System{
			partition.PowerGraph, partition.PowerLyra, partition.GraphX,
			partition.PowerLyraAll, partition.GraphXAll, partition.AllFamilies,
		} {
			w, err := WorkloadFor(man, 25, 1, "WCC")
			if err != nil {
				t.Fatal(err)
			}
			rec, err := m.Recommend(sys, w)
			if err != nil {
				t.Fatalf("%s/%s: %v", man.Name, sys, err)
			}
			if rec.Source != "empirical" {
				t.Errorf("%s/%s: source %q", man.Name, sys, rec.Source)
			}
			if rec.Confidence < 0 || rec.Confidence > 1 {
				t.Errorf("%s/%s: confidence %g outside [0,1]", man.Name, sys, rec.Confidence)
			}
			if len(rec.Explanation) == 0 {
				t.Errorf("%s/%s: empty explanation trace", man.Name, sys)
			}
			names, err := partition.SystemStrategies(sys)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, n := range names {
				if n == rec.Strategy {
					found = true
				}
			}
			if !found {
				t.Errorf("%s/%s: recommended %q, not a %s strategy", man.Name, sys, rec.Strategy, sys)
			}
			if _, err := partition.New(rec.Strategy, partition.Options{}); err != nil {
				t.Errorf("%s/%s: recommended unconstructible strategy %q", man.Name, sys, rec.Strategy)
			}
		}
	}
}

// TestGridNeverRecommendedOffSquare mirrors the paper trees' constraint:
// Grid needs an N×N machine arrangement.
func TestGridNeverRecommendedOffSquare(t *testing.T) {
	m := seedModel(t)
	_, mans := seedInputs(t)
	for _, man := range mans {
		for machines := 5; machines <= 26; machines++ {
			w, err := WorkloadFor(man, machines, 0.5, "PageRank(C)")
			if err != nil {
				t.Fatal(err)
			}
			rec, err := m.Recommend(partition.PowerGraph, w)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Strategy == "Grid" && !perfectSquare(machines) {
				t.Errorf("%s machines=%d: Grid recommended off-square", man.Name, machines)
			}
		}
	}
}

// TestInSampleRegret replays every measured end-to-end workload through
// the fitted model: the recommended strategy's measured total must stay
// within 20% of the best measured strategy (the regret experiment in
// internal/bench asserts the same bound against fresh measurements).
func TestInSampleRegret(t *testing.T) {
	m := seedModel(t)
	sysOf := map[string]partition.System{
		"PowerGraph": partition.PowerGraph,
		"PowerLyra":  partition.PowerLyraAll,
		"GraphX":     partition.GraphXAll,
	}
	cases := 0
	for _, eng := range m.Engines() {
		for _, o := range m.Observations(eng) {
			if o.Kind != KindTotal {
				continue
			}
			rec, err := m.Recommend(sysOf[eng], o.W)
			if err != nil {
				t.Fatalf("%s/%s/%s: %v", eng, o.Dataset, o.App, err)
			}
			score, ok := o.Scores[rec.Strategy]
			if !ok {
				// The recommendation came from wider leaf evidence than
				// this observation measured (fig6.6 scores only two
				// strategies); nothing to grade.
				continue
			}
			cases++
			if regret := score/o.BestScore - 1; regret > 0.20 {
				t.Errorf("%s %s/%s/%s: advisor picked %s with regret %.1f%% (best %s)",
					eng, o.Dataset, o.App, o.Variant, rec.Strategy, 100*regret, o.Best)
			}
		}
	}
	if cases < 10 {
		t.Fatalf("only %d gradeable end-to-end workloads; seed report should provide more", cases)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("nil report accepted")
	}
	empty := &report.Report{SchemaVersion: report.SchemaVersion, Tool: "test"}
	if _, err := Fit(empty, nil); err == nil {
		t.Error("empty report accepted")
	}
	// Cells without manifests are skipped, which must surface as an error
	// when nothing remains.
	rep := &report.Report{SchemaVersion: report.SchemaVersion, Tool: "test",
		Experiments: []report.Experiment{{ID: "x", Cells: []report.Cell{
			{Dims: report.Dims{Engine: "PowerGraph", Dataset: "mystery", Strategy: "HDRF"}, Metric: "total-s", Value: 1},
			{Dims: report.Dims{Engine: "PowerGraph", Dataset: "mystery", Strategy: "Grid"}, Metric: "total-s", Value: 2},
		}}}}
	if _, err := Fit(rep, nil); err == nil {
		t.Error("report whose only dataset lacks a manifest accepted")
	}
}

func TestUnmeasuredEngineErrors(t *testing.T) {
	_, mans := seedInputs(t)
	rep := &report.Report{SchemaVersion: report.SchemaVersion, Tool: "test",
		Experiments: []report.Experiment{{ID: "x", Cells: []report.Cell{
			{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "HDRF", Cluster: "EC2-25", Parts: 25}, Metric: "ingress-seconds", Value: 1},
			{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "Grid", Cluster: "EC2-25", Parts: 25}, Metric: "ingress-seconds", Value: 2},
		}}}}
	m, err := Fit(rep, mans)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadFor(mans[0], 25, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recommend(partition.GraphX, w); err == nil {
		t.Error("recommendation for an unmeasured engine did not error")
	}
}

// TestNearestDatasetPrediction: a workload naming no registered dataset
// still gets predictions, pulled from its feature-space neighbor.
func TestNearestDatasetPrediction(t *testing.T) {
	m := seedModel(t)
	_, mans := seedInputs(t)
	var road datasets.Manifest
	for _, man := range mans {
		if man.Name == "road-ca" {
			road = man
		}
	}
	ext := road
	ext.Name = "my-road-graph"
	w, err := WorkloadFor(ext, 25, 0.5, "PageRank(C)")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Recommend(partition.PowerGraph, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Predicted) == 0 {
		t.Fatal("no predicted cells for an unmeasured dataset")
	}
	for _, c := range rec.Predicted {
		if c.Dims.Dataset != "road-ca" {
			t.Errorf("prediction drawn from %s, want nearest neighbor road-ca", c.Dims.Dataset)
		}
		if c.Dims.Strategy != rec.Strategy {
			t.Errorf("predicted cell for %s, want recommended %s", c.Dims.Strategy, rec.Strategy)
		}
	}
}

func TestWorkloadForRejectsBadClass(t *testing.T) {
	if _, err := WorkloadFor(datasets.Manifest{Name: "x", Class: "bogus"}, 9, 1, ""); err == nil {
		t.Error("bogus degree class accepted")
	}
}

func TestMachinesOf(t *testing.T) {
	cases := []struct {
		cluster string
		parts   int
		want    int
	}{
		{"EC2-25", 25, 25},
		{"Local-9", 9, 9},
		{"GraphX-Local-9", 36, 9},
		{"GraphX-Local-10", 40, 10},
		{"", 16, 16},
		{"weird", 7, 7},
	}
	for _, tc := range cases {
		if got := machinesOf(tc.cluster, tc.parts); got != tc.want {
			t.Errorf("machinesOf(%q, %d) = %d, want %d", tc.cluster, tc.parts, got, tc.want)
		}
	}
}

func TestVariantRatio(t *testing.T) {
	if r, ok := variantRatio("iters=25"); !ok || r != 5 {
		t.Errorf("iters=25 → (%g, %v)", r, ok)
	}
	if r, ok := variantRatio("iters=2"); !ok || r != 0.4 {
		t.Errorf("iters=2 → (%g, %v)", r, ok)
	}
	if _, ok := variantRatio("λ=1.00"); ok {
		t.Error("non-iters variant parsed")
	}
}

func TestNaturalApp(t *testing.T) {
	for app, want := range map[string]bool{
		"PageRank(10)": true, "PageRank(C)": true, "PageRank": true,
		"WCC": false, "SSSP": false, "K-Core": false, "Coloring": false, "": false,
	} {
		if NaturalApp(app) != want {
			t.Errorf("NaturalApp(%q) = %v", app, !want)
		}
	}
}

// TestModelIsARule pins the package contract: the fitted model is a
// decision.Rule and can stand beside decision.PaperTrees.
func TestModelIsARule(t *testing.T) {
	var rules []decision.Rule = []decision.Rule{decision.PaperTrees(), seedModel(t)}
	if rules[0].Name() == rules[1].Name() {
		t.Error("rule names collide")
	}
}
