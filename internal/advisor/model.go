package advisor

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// Learner bounds. The training sets are tens of observations per engine,
// so the model stays a shallow, readable tree: every recommendation can
// print the handful of threshold comparisons behind it.
const (
	maxDepth = 4
	minLeaf  = 1
	minSplit = 2
)

// nearBestSlack is the tolerance behind confidences and regret checks: a
// strategy within 10% of an observation's best counts as a hit (the same
// slack the paper's Fig 5.9 validation uses).
const nearBestSlack = 1.10

// Model is a fitted advisor: one learned threshold tree per engine plus
// the observations and manifests it was fitted from. It implements
// decision.Rule, so it slots in beside decision.PaperTrees.
type Model struct {
	engines   map[string]*engineModel
	manifests map[string]datasets.Manifest
	// Skipped counts observation groups dropped because their dataset had
	// no manifest (feature vector unknown).
	Skipped int
}

var _ decision.Rule = (*Model)(nil)

// engineModel is one engine's learned tree over its training set.
type engineModel struct {
	engine string
	obs    []*Observation
	root   *node
}

// node is one learned split (internal: left if feature < threshold) or
// leaf (obs non-nil).
type node struct {
	feature   string
	threshold float64
	left      *node
	right     *node
	obs       []*Observation
}

// Fit learns a model from a benchrunner report and the manifests of the
// datasets it measures. It errors when the report contains no usable
// measurement groups (a group needs an engine, a dataset with a manifest,
// and at least two scored strategies).
func Fit(rep *report.Report, mans []datasets.Manifest) (*Model, error) {
	if rep == nil {
		return nil, fmt.Errorf("advisor: nil report")
	}
	mm := make(map[string]datasets.Manifest, len(mans))
	for _, m := range mans {
		mm[m.Name] = m
	}
	obs, skipped, err := observations(rep, mm)
	if err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("advisor: no usable measurement cells in report (need engine+dataset+strategy dims and manifests for the datasets; %d groups lacked a manifest)", skipped)
	}
	byEngine := map[string][]*Observation{}
	for _, o := range obs {
		byEngine[o.Engine] = append(byEngine[o.Engine], o)
	}
	m := &Model{engines: map[string]*engineModel{}, manifests: mm, Skipped: skipped}
	for _, engine := range sortedKeys(byEngine) {
		set := byEngine[engine]
		m.engines[engine] = &engineModel{engine: engine, obs: set, root: learn(set, 0)}
	}
	return m, nil
}

// sortedKeys returns m's keys in sorted order. Every map iteration on the
// fitting path goes through it: model fitting must be a pure function of
// the report, and Go randomizes map order per range statement (this is
// what graphlint's detrange analyzer enforces).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Advise is the one-shot form: fit a model from the report and manifests,
// then recommend for a single system and workload. Callers comparing
// several systems (or rules) should Fit once and Recommend repeatedly.
func Advise(rep *report.Report, mans []datasets.Manifest, sys partition.System, w decision.Workload) (decision.Recommendation, error) {
	m, err := Fit(rep, mans)
	if err != nil {
		return decision.Recommendation{}, err
	}
	return m.Recommend(sys, w)
}

// Name implements decision.Rule.
func (m *Model) Name() string { return "empirical" }

// Engines returns the engine labels the model has measurements for,
// sorted.
func (m *Model) Engines() []string {
	out := make([]string, 0, len(m.engines))
	for e := range m.engines {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Observations returns the engine's training set (nil for unmeasured
// engines).
func (m *Model) Observations(engine string) []*Observation {
	if em := m.engines[engine]; em != nil {
		return em.obs
	}
	return nil
}

// --- learning ---------------------------------------------------------

// impurity is the Gini impurity of the best-strategy labels. The sum runs
// over sorted labels: float accumulation is order-sensitive in the last
// ulp, and learn() compares split scores at 1e-12, so summing in map order
// could flip a split between two fits of the same report.
func impurity(obs []*Observation) float64 {
	counts := map[string]int{}
	for _, o := range obs {
		counts[o.Best]++
	}
	n := float64(len(obs))
	g := 1.0
	for _, label := range sortedKeys(counts) {
		p := float64(counts[label]) / n
		g -= p * p
	}
	return g
}

// learn grows the threshold tree top-down: at each node it scans every
// feature (in featureNames order) and every midpoint between adjacent
// observed values, keeping the split with the lowest weighted child
// impurity. Pure nodes, tiny nodes, and depth-capped nodes become leaves.
func learn(obs []*Observation, depth int) *node {
	if depth >= maxDepth || len(obs) < minSplit || impurity(obs) == 0 {
		return &node{obs: obs}
	}
	parent := impurity(obs)
	best := struct {
		feature     string
		threshold   float64
		score       float64
		left, right []*Observation
	}{score: parent}
	for _, feat := range featureNames {
		vals := make([]float64, 0, len(obs))
		seen := map[float64]bool{}
		for _, o := range obs {
			v := featureValue(o.W, feat)
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		for i := 0; i+1 < len(vals); i++ {
			thr := (vals[i] + vals[i+1]) / 2
			var left, right []*Observation
			for _, o := range obs {
				if featureValue(o.W, feat) < thr {
					left = append(left, o)
				} else {
					right = append(right, o)
				}
			}
			if len(left) < minLeaf || len(right) < minLeaf {
				continue
			}
			n := float64(len(obs))
			score := float64(len(left))/n*impurity(left) + float64(len(right))/n*impurity(right)
			// Strict improvement with an epsilon: equal-quality splits
			// keep the earlier feature and lower threshold, which is what
			// makes fitting order-independent and deterministic.
			if score < best.score-1e-12 {
				best.feature, best.threshold, best.score = feat, thr, score
				best.left, best.right = left, right
			}
		}
	}
	if best.feature == "" {
		return &node{obs: obs}
	}
	return &node{
		feature:   best.feature,
		threshold: best.threshold,
		left:      learn(best.left, depth+1),
		right:     learn(best.right, depth+1),
	}
}

// walk descends from the root to a leaf, recording one line per split.
func (em *engineModel) walk(w decision.Workload) (*node, []string) {
	n := em.root
	var trace []string
	for n.obs == nil {
		v := featureValue(w, n.feature)
		if v < n.threshold {
			trace = append(trace, fmt.Sprintf("%s %.4g < %.4g", n.feature, v, n.threshold))
			n = n.left
		} else {
			trace = append(trace, fmt.Sprintf("%s %.4g ≥ %.4g", n.feature, v, n.threshold))
			n = n.right
		}
	}
	return n, trace
}

// --- recommendation ---------------------------------------------------

// engineLabel maps a system to the engine dimension its measurements
// carry: the "all strategies in one system" configurations run on the
// host system's engine.
func engineLabel(sys partition.System) (string, error) {
	switch sys {
	case partition.PowerGraph:
		return "PowerGraph", nil
	case partition.PowerLyra, partition.PowerLyraAll, partition.AllFamilies:
		// All-Families ranks over the PowerLyra measurements: the engine
		// with the broadest strategy coverage, including the added
		// families' fig8.x rows.
		return "PowerLyra", nil
	case partition.GraphX, partition.GraphXAll:
		return "GraphX", nil
	}
	return "", fmt.Errorf("advisor: unknown system %q", sys)
}

// allowedStrategies is the candidate set for a system under a workload:
// the system's shipped strategies, minus Grid when the cluster cannot form
// the N×N arrangement it needs (ResilientGrid handles non-squares).
func allowedStrategies(sys partition.System, w decision.Workload) (map[string]bool, error) {
	names, err := partition.SystemStrategies(sys)
	if err != nil {
		return nil, err
	}
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "Grid" && w.Machines > 0 && !perfectSquare(w.Machines) {
			continue
		}
		allowed[n] = true
	}
	return allowed, nil
}

// candidate aggregates one strategy's standing across a set of
// observations.
type candidate struct {
	strategy string
	// meanSlowdown averages score/best over the observations that measure
	// the strategy; 1 means it was the best everywhere.
	meanSlowdown float64
	// support is how many observations measure the strategy; nearBest how
	// many of those have it within nearBestSlack of their best.
	support  int
	nearBest int
}

// rank orders the allowed strategies by mean slowdown over obs. Only
// strategies with at least one measurement rank; ties break by name.
func rank(obs []*Observation, allowed map[string]bool) []candidate {
	sums := map[string]*candidate{}
	for _, o := range obs {
		if o.BestScore <= 0 {
			continue
		}
		for _, s := range o.Strategies() {
			if !allowed[s] {
				continue
			}
			c := sums[s]
			if c == nil {
				c = &candidate{strategy: s}
				sums[s] = c
			}
			slow := o.Scores[s] / o.BestScore
			c.meanSlowdown += slow
			c.support++
			if slow <= nearBestSlack {
				c.nearBest++
			}
		}
	}
	out := make([]candidate, 0, len(sums))
	for _, s := range sortedKeys(sums) {
		c := sums[s]
		c.meanSlowdown /= float64(c.support)
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].meanSlowdown != out[j].meanSlowdown {
			return out[i].meanSlowdown < out[j].meanSlowdown
		}
		return out[i].strategy < out[j].strategy
	})
	return out
}

// Recommend implements decision.Rule: walk the engine's learned tree to a
// leaf, rank the system's strategies over the leaf's measured workloads,
// and attach the trace, a confidence, and predicted metrics.
func (m *Model) Recommend(sys partition.System, w decision.Workload) (decision.Recommendation, error) {
	engine, err := engineLabel(sys)
	if err != nil {
		return decision.Recommendation{}, err
	}
	em := m.engines[engine]
	if em == nil {
		return decision.Recommendation{}, fmt.Errorf("advisor: report has no %s measurements (have %v)", engine, m.Engines())
	}
	allowed, err := allowedStrategies(sys, w)
	if err != nil {
		return decision.Recommendation{}, err
	}
	leaf, trace := em.walk(w)
	explanation := []string{fmt.Sprintf("model: %s tree fitted on %d measured workloads", engine, len(em.obs))}
	explanation = append(explanation, trace...)

	cands := rank(leaf.obs, allowed)
	scope := leaf.obs
	if len(cands) == 0 {
		// The leaf's measurements don't cover this system's strategy set;
		// fall back to the engine's whole training set.
		scope = em.obs
		cands = rank(scope, allowed)
		explanation = append(explanation, fmt.Sprintf("leaf has no measurements for %s strategies; ranking over all %d workloads", sys, len(scope)))
	}
	if len(cands) == 0 {
		return decision.Recommendation{}, fmt.Errorf("advisor: no measured strategy of %s is usable on %d machines", sys, w.Machines)
	}
	top := cands[0]
	explanation = append(explanation, fmt.Sprintf(
		"leaf: %d workload(s); %s mean slowdown ×%.3f vs best, near-best in %d/%d",
		len(scope), top.strategy, top.meanSlowdown, top.nearBest, top.support))

	predicted, note := m.predict(em, w, top.strategy)
	if note != "" {
		explanation = append(explanation, note)
	}
	return decision.Recommendation{
		System:      sys,
		Strategy:    top.strategy,
		Source:      m.Name(),
		Confidence:  float64(top.nearBest) / float64(top.support),
		Explanation: explanation,
		Predicted:   predicted,
	}, nil
}

// --- prediction -------------------------------------------------------

// predict pulls the measured cells for the recommended strategy on the
// workload's dataset — or, for unmeasured graphs, its nearest measured
// neighbor in feature space — and re-emits them as pred-* cells.
func (m *Model) predict(em *engineModel, w decision.Workload, strategy string) ([]report.Cell, string) {
	ds, note := m.nearestDataset(em, w)
	if ds == "" {
		return nil, ""
	}
	var cells []report.Cell
	for _, o := range em.obs {
		if o.Dataset != ds {
			continue
		}
		// Total/compute observations are app-specific; only predict from
		// the matching app (or all, when the workload names none).
		if (o.Kind == KindTotal || o.Kind == KindCompute) && w.App != "" && o.App != w.App {
			continue
		}
		score, ok := o.Scores[strategy]
		if !ok {
			continue
		}
		metric, unit := "pred-total-s", "s"
		switch o.Kind {
		case KindCompute:
			metric = "pred-compute-s"
		case KindIngress:
			metric = "pred-ingress-s"
		case KindReplication:
			metric, unit = "pred-replication-factor", "ratio"
		}
		cells = append(cells, report.Cell{
			Dims: report.Dims{
				Dataset: ds, Strategy: strategy, App: o.App,
				Engine: em.engine, Cluster: o.Cluster, Parts: o.Parts,
				Variant: o.Variant,
			},
			Metric: metric, Value: score, Unit: unit,
		})
	}
	return cells, note
}

// nearestDataset returns the engine's measured dataset to predict from:
// the workload's own when measured, else the feature-space nearest
// neighbor (normalized Euclidean over the manifest statistics).
func (m *Model) nearestDataset(em *engineModel, w decision.Workload) (string, string) {
	measured := map[string]decision.Workload{}
	for _, o := range em.obs {
		if _, ok := measured[o.Dataset]; !ok {
			measured[o.Dataset] = o.W
		}
	}
	if _, ok := measured[w.Dataset]; ok && w.Dataset != "" {
		return w.Dataset, fmt.Sprintf("prediction: measured cells for %s", w.Dataset)
	}
	names := make([]string, 0, len(measured))
	for n := range measured {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "", ""
	}
	feats := []string{"class", "gini", "alpha", "lowDegreeRatio", "maxDegree", "avgDegree"}
	// Normalize each feature by its range over the measured datasets and
	// the query, so maxDegree (hundreds) doesn't drown gini (0..1) and an
	// out-of-range query doesn't blow up a feature with a tiny measured
	// span.
	lo, hi := map[string]float64{}, map[string]float64{}
	for _, f := range feats {
		lo[f], hi[f] = math.Inf(1), math.Inf(-1)
		for _, n := range names {
			v := scaled(featureValue(measured[n], f), f)
			lo[f], hi[f] = math.Min(lo[f], v), math.Max(hi[f], v)
		}
		v := scaled(featureValue(w, f), f)
		lo[f], hi[f] = math.Min(lo[f], v), math.Max(hi[f], v)
	}
	bestName, bestDist := "", math.Inf(1)
	for _, n := range names {
		var d float64
		for _, f := range feats {
			span := hi[f] - lo[f]
			if span == 0 {
				continue
			}
			diff := (scaled(featureValue(w, f), f) - scaled(featureValue(measured[n], f), f)) / span
			d += diff * diff
		}
		if d < bestDist {
			bestName, bestDist = n, d
		}
	}
	return bestName, fmt.Sprintf("prediction: %s is unmeasured; using nearest measured dataset %s", orUnnamed(w.Dataset), bestName)
}

// scaled compresses heavy-tailed features before distance computation.
func scaled(v float64, feature string) float64 {
	if feature == "maxDegree" || feature == "avgDegree" {
		return math.Log1p(math.Max(v, 0))
	}
	return v
}

func orUnnamed(name string) string {
	if name == "" {
		return "the input graph"
	}
	return name
}

// --- rendering --------------------------------------------------------

// Explain renders every learned tree as indented text — the interpretable
// artifact the advisor trades on. The output is deterministic for a given
// report + manifests.
func (m *Model) Explain() string {
	var sb strings.Builder
	for _, engine := range m.Engines() {
		em := m.engines[engine]
		fmt.Fprintf(&sb, "engine %s — %d measured workloads\n", engine, len(em.obs))
		renderNode(&sb, em.root, 1)
	}
	return sb.String()
}

func renderNode(sb *strings.Builder, n *node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.obs != nil {
		counts := map[string]int{}
		for _, o := range n.obs {
			counts[o.Best]++
		}
		names := make([]string, 0, len(counts))
		for s := range counts {
			names = append(names, s)
		}
		sort.Slice(names, func(i, j int) bool {
			if counts[names[i]] != counts[names[j]] {
				return counts[names[i]] > counts[names[j]]
			}
			return names[i] < names[j]
		})
		parts := make([]string, len(names))
		for i, s := range names {
			parts[i] = fmt.Sprintf("%s %d/%d", s, counts[s], len(n.obs))
		}
		fmt.Fprintf(sb, "%sleaf: best = %s\n", indent, strings.Join(parts, ", "))
		return
	}
	fmt.Fprintf(sb, "%s%s < %.4g?\n", indent, n.feature, n.threshold)
	fmt.Fprintf(sb, "%syes:\n", indent)
	renderNode(sb, n.left, depth+1)
	fmt.Fprintf(sb, "%sno:\n", indent)
	renderNode(sb, n.right, depth+1)
}
