package advisor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/report"
)

// Observation kinds: how the per-strategy scores were measured.
const (
	// KindTotal scores are end-to-end job seconds (ingress + compute),
	// either measured directly (total-s cells) or synthesized from
	// matching ingress and compute cells.
	KindTotal = "total"
	// KindCompute scores are compute seconds only — a long-job proxy
	// (ingress amortizes away, §5.4.3).
	KindCompute = "compute"
	// KindIngress scores are ingress seconds only — a short-job proxy
	// (the job is the load).
	KindIngress = "ingress"
	// KindReplication scores are replication factors — the paper's
	// long-job network proxy: per-superstep traffic scales with the
	// number of replicas (§5.1.1).
	KindReplication = "replication"
)

// Proxy compute/ingress ratios attached to observations whose job length
// is implied by their kind rather than measured.
const (
	shortJobRatio = 0.25
	longJobRatio  = 4
)

// Observation is one measured workload point: a (engine, dataset, app)
// combination with a score per strategy, lower better. The learner's
// training label is Best; the leaf statistics that back confidences and
// regret come from the full Scores map.
type Observation struct {
	Engine  string
	Dataset string
	App     string
	Variant string
	Cluster string
	Parts   int
	Kind    string
	// Ratio is the compute/ingress ratio: measured when the cells allow
	// it, otherwise the kind's proxy value.
	Ratio float64
	// W is the workload feature vector the model branches on.
	W decision.Workload
	// Scores maps strategy → score (seconds or replication factor).
	Scores map[string]float64
	// Best is the argmin of Scores (ties broken by name); BestScore its
	// value.
	Best      string
	BestScore float64
}

// Strategies returns the observation's measured strategies, sorted.
func (o *Observation) Strategies() []string {
	out := make([]string, 0, len(o.Scores))
	for s := range o.Scores {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// groupKey identifies one observation group: every dimension except the
// strategy axis the scores range over.
type groupKey struct {
	engine, dataset, app, variant, cluster string
	parts                                  int
}

// ingressKey is groupKey without the app/variant axes: ingress runs before
// any application exists.
type ingressKey struct {
	engine, dataset, cluster string
	parts                    int
}

// acc averages duplicate cells (the same dims can be emitted by several
// experiments; runs are deterministic so the values agree, but averaging
// keeps the extraction total).
type acc struct {
	sum float64
	n   int
}

func (a *acc) add(v float64) { a.sum += v; a.n++ }
func (a *acc) mean() float64 { return a.sum / float64(a.n) }

// scoreTable accumulates strategy→value for one group.
type scoreTable map[string]*acc

func addScore[K comparable](tables map[K]scoreTable, k K, strategy string, v float64) {
	t := tables[k]
	if t == nil {
		t = scoreTable{}
		tables[k] = t
	}
	a := t[strategy]
	if a == nil {
		a = &acc{}
		t[strategy] = a
	}
	a.add(v)
}

func (t scoreTable) means() map[string]float64 {
	out := make(map[string]float64, len(t))
	//graphlint:unordered map→map transform; every consumer iterates the result via sorted keys
	for s, a := range t {
		out[s] = a.mean()
	}
	return out
}

// sortedGroupKeys returns m's keys ordered by every field: observation
// extraction iterates groups in this order so the fitted model (and any
// extraction error) is a pure function of the report.
func sortedGroupKeys(m map[groupKey]scoreTable) []groupKey {
	keys := make([]groupKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

func sortedIngressKeys(m map[ingressKey]scoreTable) []ingressKey {
	keys := make([]ingressKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		ga := groupKey{a.engine, a.dataset, "", "", a.cluster, a.parts}
		gb := groupKey{b.engine, b.dataset, "", "", b.cluster, b.parts}
		return ga.less(gb)
	})
	return keys
}

// less is a total order over group keys (field-lexicographic).
func (a groupKey) less(b groupKey) bool {
	switch {
	case a.engine != b.engine:
		return a.engine < b.engine
	case a.dataset != b.dataset:
		return a.dataset < b.dataset
	case a.app != b.app:
		return a.app < b.app
	case a.variant != b.variant:
		return a.variant < b.variant
	case a.cluster != b.cluster:
		return a.cluster < b.cluster
	}
	return a.parts < b.parts
}

// machinesOf recovers the machine count from a cluster label ("EC2-25",
// "Local-9", "GraphX-Local-9" — the trailing dash-separated number), with
// the partition count as fallback.
func machinesOf(cluster string, parts int) int {
	if i := strings.LastIndex(cluster, "-"); i >= 0 {
		if n, err := strconv.Atoi(cluster[i+1:]); err == nil && n > 0 {
			return n
		}
	}
	return parts
}

// variantRatio maps an "iters=N" variant to a compute/ingress ratio: the
// Fig 9.1 crossover falls around iteration 3–5 at scale 1, so 5 iterations
// ≈ break-even.
func variantRatio(variant string) (float64, bool) {
	s, ok := strings.CutPrefix(variant, "iters=")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, false
	}
	return float64(n) / 5, true
}

// observations extracts the training set from a report: one observation
// per measured (engine, dataset, app) group with at least two strategies
// scored, plus short-job (ingress) and long-job (replication) proxy
// observations. Datasets without a manifest are skipped — their feature
// vector is unknown; skipped counts how many groups that dropped.
func observations(rep *report.Report, mans map[string]datasets.Manifest) (obs []*Observation, skipped int, err error) {
	totals := map[groupKey]scoreTable{}
	compute := map[groupKey]scoreTable{}
	ingress := map[ingressKey]scoreTable{}
	replication := map[ingressKey]scoreTable{}

	for _, e := range rep.Experiments {
		for _, c := range e.Cells {
			d := c.Dims
			if d.Engine == "" || d.Dataset == "" || d.Strategy == "" {
				continue
			}
			gk := groupKey{d.Engine, d.Dataset, d.App, d.Variant, d.Cluster, d.Parts}
			ik := ingressKey{d.Engine, d.Dataset, d.Cluster, d.Parts}
			switch c.Metric {
			case "total-s":
				addScore(totals, gk, d.Strategy, c.Value)
			case "compute-s", "compute-seconds":
				if d.App != "" {
					addScore(compute, gk, d.Strategy, c.Value)
				}
			case "ingress-seconds", "ingress-s":
				if d.App == "" && d.Variant == "" {
					addScore(ingress, ik, d.Strategy, c.Value)
				}
			case "replication-factor":
				if d.App == "" && d.Variant == "" {
					addScore(replication, ik, d.Strategy, c.Value)
				}
			}
		}
	}

	// Synthesize totals from compute + matching ingress where no measured
	// total exists: end-to-end = load + run, the quantity the trees rank.
	for _, gk := range sortedGroupKeys(compute) {
		if _, have := totals[gk]; have {
			continue
		}
		ing := ingress[ingressKey{gk.engine, gk.dataset, gk.cluster, gk.parts}]
		if ing == nil {
			continue
		}
		comp := compute[gk]
		for _, strat := range sortedKeys(comp) {
			if ia := ing[strat]; ia != nil {
				addScore(totals, gk, strat, comp[strat].mean()+ia.mean())
			}
		}
	}

	build := func(gk groupKey, kind string, ratio float64, scores map[string]float64) error {
		if len(scores) < 2 {
			return nil // nothing to choose between
		}
		m, ok := mans[gk.dataset]
		if !ok {
			skipped++
			return nil
		}
		w, err := WorkloadFor(m, machinesOf(gk.cluster, gk.parts), ratio, gk.app)
		if err != nil {
			return err
		}
		o := &Observation{
			Engine: gk.engine, Dataset: gk.dataset, App: gk.app,
			Variant: gk.variant, Cluster: gk.cluster, Parts: gk.parts,
			Kind: kind, Ratio: ratio, W: w, Scores: scores,
		}
		for _, s := range o.Strategies() {
			if o.Best == "" || scores[s] < o.BestScore {
				o.Best, o.BestScore = s, scores[s]
			}
		}
		obs = append(obs, o)
		return nil
	}

	// Measured (or synthesized) end-to-end totals. The ratio is recovered
	// from matching ingress cells when they exist, from an "iters=N"
	// variant otherwise, defaulting to break-even.
	for _, gk := range sortedGroupKeys(totals) {
		scores := totals[gk].means()
		ratio := 1.0
		if ing := ingress[ingressKey{gk.engine, gk.dataset, gk.cluster, gk.parts}]; ing != nil {
			var sum float64
			var n int
			// Sorted so the float accumulation order — and hence the
			// last-ulp value of the ratio — is a pure function of the data.
			for _, strat := range sortedKeys(scores) {
				if ia := ing[strat]; ia != nil && ia.mean() > 0 {
					r := scores[strat]/ia.mean() - 1
					if r < 0 {
						r = 0
					}
					sum += r
					n++
				}
			}
			if n > 0 {
				ratio = sum / float64(n)
			}
		} else if r, ok := variantRatio(gk.variant); ok {
			ratio = r
		}
		if err := build(gk, KindTotal, ratio, scores); err != nil {
			return nil, 0, err
		}
	}

	// Compute-only groups with no ingress to pair with: long-job proxies.
	for _, gk := range sortedGroupKeys(compute) {
		if _, have := totals[gk]; have {
			continue
		}
		if err := build(gk, KindCompute, longJobRatio, compute[gk].means()); err != nil {
			return nil, 0, err
		}
	}

	// Ingress sweeps: short-job proxies (the job is the load).
	for _, ik := range sortedIngressKeys(ingress) {
		gk := groupKey{ik.engine, ik.dataset, "", "", ik.cluster, ik.parts}
		if err := build(gk, KindIngress, shortJobRatio, ingress[ik].means()); err != nil {
			return nil, 0, err
		}
	}

	// Replication-factor sweeps: long-job network proxies.
	for _, ik := range sortedIngressKeys(replication) {
		gk := groupKey{ik.engine, ik.dataset, "", "", ik.cluster, ik.parts}
		if err := build(gk, KindReplication, longJobRatio, replication[ik].means()); err != nil {
			return nil, 0, err
		}
	}

	sort.Slice(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		ka := fmt.Sprintf("%s|%s|%s|%s|%s|%d|%s", a.Engine, a.Dataset, a.App, a.Variant, a.Cluster, a.Parts, a.Kind)
		kb := fmt.Sprintf("%s|%s|%s|%s|%s|%d|%s", b.Engine, b.Dataset, b.App, b.Variant, b.Cluster, b.Parts, b.Kind)
		return ka < kb
	})
	return obs, skipped, nil
}
