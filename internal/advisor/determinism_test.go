package advisor

import (
	"math"
	"testing"
)

// TestFitDeterministicExplain is the determinism contract for model fitting:
// fitting the same report twice must produce byte-identical models. This is
// what graphlint's detrange analyzer enforces statically on this package;
// the test catches anything the analyzer waives or cannot see.
func TestFitDeterministicExplain(t *testing.T) {
	rep, mans := seedInputs(t)
	a, err := Fit(rep, mans)
	if err != nil {
		t.Fatalf("Fit #1: %v", err)
	}
	b, err := Fit(rep, mans)
	if err != nil {
		t.Fatalf("Fit #2: %v", err)
	}
	ea, eb := a.Explain(), b.Explain()
	if ea != eb {
		t.Fatalf("two fits of the same report explain differently:\n--- fit 1 ---\n%s\n--- fit 2 ---\n%s", ea, eb)
	}
	if ea == "" {
		t.Fatal("Explain returned an empty model description")
	}
}

// TestImpurityDeterministic pins the float-accumulation order inside the
// Gini impurity. The label counts are chosen so that summing p² in
// different orders produces different last-ulp results (verified offline:
// the 120 permutations of these five counts yield three distinct float64
// bit patterns). If impurity ever iterates its counts map directly instead
// of via sortedKeys, this test fails within a handful of trials — and the
// ulp difference matters, because learn() compares impurities with a 1e-12
// epsilon when choosing splits.
func TestImpurityDeterministic(t *testing.T) {
	spec := []struct {
		label string
		n     int
	}{{"s-a", 18}, {"s-b", 47}, {"s-c", 15}, {"s-d", 38}, {"s-e", 7}}
	var obs []*Observation
	for _, s := range spec {
		for i := 0; i < s.n; i++ {
			obs = append(obs, &Observation{Best: s.label})
		}
	}
	want := impurity(obs)
	if math.IsNaN(want) || want <= 0 || want >= 1 {
		t.Fatalf("implausible impurity %v for a five-label mix", want)
	}
	for i := 0; i < 500; i++ {
		if got := impurity(obs); got != want {
			t.Fatalf("impurity is order-sensitive: trial %d returned %x, first call returned %x (map iteration order leaked into the float sum)",
				i, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
