// Package advisor recommends partitioning strategies from measurements
// instead of rules of thumb: it consumes a benchrunner JSON report
// (report.Report) plus dataset manifests (datasets.Manifest), extracts
// per-workload features and per-strategy scores, and fits a small
// interpretable decision model — learned thresholds over the measured
// cells, one tree per engine. The fitted Model implements decision.Rule,
// so it plugs in beside the paper's decision trees (decision.PaperTrees)
// everywhere a recommendation source is consumed, with a confidence and
// an explanation trace attached to every answer.
package advisor

import (
	"fmt"
	"strings"

	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
)

// featureNames are the workload features the learner may split on, in the
// fixed order the split search scans them. First-feature-wins tie-breaking
// makes fitting deterministic: the same report and manifests always yield
// the same model.
var featureNames = []string{
	"class", "gini", "alpha", "r2", "lowDegreeRatio",
	"maxDegree", "avgDegree", "ratio", "natural",
	"machines", "squareMachines",
}

// featureValue projects one named feature out of a workload. Booleans
// become 0/1 and the degree class its ordinal, so every split is a
// threshold over one number.
func featureValue(w decision.Workload, name string) float64 {
	switch name {
	case "class":
		return float64(w.Class)
	case "gini":
		return w.Gini
	case "alpha":
		return w.Alpha
	case "r2":
		return w.R2
	case "lowDegreeRatio":
		return w.LowDegreeRatio
	case "maxDegree":
		return float64(w.MaxDegree)
	case "avgDegree":
		return w.AvgDegree
	case "ratio":
		return w.ComputeIngressRatio
	case "natural":
		if w.NaturalApp {
			return 1
		}
		return 0
	case "machines":
		return float64(w.Machines)
	case "squareMachines":
		if perfectSquare(w.Machines) {
			return 1
		}
		return 0
	}
	return 0
}

// NaturalApp reports whether a benchmark application gathers in one
// direction and scatters in the other (§6.1) — the property PowerLyra's
// Hybrid engine exploits. Of the paper's application set only the
// PageRank family is natural.
func NaturalApp(app string) bool {
	return strings.HasPrefix(app, "PageRank")
}

// WorkloadFor builds the decision.Workload for a measured dataset under a
// concrete job: the manifest supplies the graph-side features (class and
// degree-skew statistics), the arguments the job side. It is the single
// translation point between the dataset subsystem and the decision layer.
func WorkloadFor(m datasets.Manifest, machines int, ratio float64, app string) (decision.Workload, error) {
	cls, err := graph.ParseDegreeClass(m.Class)
	if err != nil {
		return decision.Workload{}, fmt.Errorf("advisor: manifest %s: %w", m.Name, err)
	}
	return decision.Workload{
		Class:               cls,
		Machines:            machines,
		ComputeIngressRatio: ratio,
		NaturalApp:          NaturalApp(app),
		Dataset:             m.Name,
		App:                 app,
		Gini:                m.Stats.Gini,
		Alpha:               m.Stats.Alpha,
		R2:                  m.Stats.R2,
		LowDegreeRatio:      m.Stats.LowDegreeRatio,
		MaxDegree:           m.Stats.MaxDegree,
		AvgDegree:           m.Stats.AvgDegree,
	}, nil
}

// perfectSquare reports whether n = k² (Grid needs a square machine
// arrangement; same test as the paper trees').
func perfectSquare(n int) bool {
	for k := 0; k*k <= n; k++ {
		if k*k == n {
			return true
		}
	}
	return false
}
