package advisor_test

import (
	"fmt"

	"graphpart/internal/advisor"
	"graphpart/internal/datasets"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// ExampleAdvise fits the empirical advisor on a small measured report and
// asks it for a PowerGraph strategy. Real inputs come from `benchrunner
// -json` (the cells) and `gengraph -manifest` (the dataset features); here
// they are two hand-made workloads — a road network where the greedy
// family wins and a skewed web graph where Grid wins.
func ExampleAdvise() {
	cell := func(ds, strat string, total float64) report.Cell {
		return report.Cell{
			Dims:   report.Dims{Engine: "PowerGraph", Dataset: ds, Strategy: strat, App: "PageRank(C)", Cluster: "EC2-25", Parts: 25},
			Metric: "total-s", Value: total, Unit: "s",
		}
	}
	rep := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Tool:          "example",
		Experiments: []report.Experiment{{ID: "train", Cells: []report.Cell{
			cell("road", "HDRF", 1.0), cell("road", "Grid", 2.0),
			cell("web", "HDRF", 3.0), cell("web", "Grid", 2.0),
		}}},
	}
	mans := []datasets.Manifest{
		{Name: "road", Class: "low-degree",
			Stats: datasets.DegreeStats{MaxDegree: 8, AvgDegree: 3.2, Gini: 0.08}},
		{Name: "web", Class: "power-law",
			Stats: datasets.DegreeStats{MaxDegree: 3000, AvgDegree: 41, Gini: 0.79, Alpha: 1.2, R2: 0.83, LowDegreeRatio: 0.52}},
	}

	w, err := advisor.WorkloadFor(mans[1], 25, 0.5, "PageRank(C)")
	if err != nil {
		panic(err)
	}
	rec, err := advisor.Advise(rep, mans, partition.PowerGraph, w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s → %s (source %s, confidence %.2f)\n", w.Dataset, rec.Strategy, rec.Source, rec.Confidence)
	// Output:
	// web → Grid (source empirical, confidence 1.00)
}
