package metrics

// Quality incrementally maintains the paper's partition-quality summary:
// per-partition edge counts, per-partition vertex-image counts, the total
// image count, and the number of placed (non-isolated) vertices — everything
// replication factor (§5.1.1) and edge balance are computed from.
//
// Every update is an O(1) delta, so a long-lived partition state can keep
// the summary current under edge churn in O(batch) per batch. The one-shot
// paths (a materialized Assignment, a streamed ingress) are the "replay from
// empty" special case: they build a Quality by replaying the same AddEdge /
// AddReplica / VertexPlaced primitives once over the frozen edge set.
//
// Quality never inspects the graph: callers own the transition logic (when
// a vertex gains or loses its image on a partition) and report only the
// transitions.
type Quality struct {
	numParts      int
	edgeCount     []int64
	partReplicas  []int64
	totalReplicas int64
	placed        int64
	numEdges      int64
}

// NewQuality prepares an empty summary over numParts partitions.
func NewQuality(numParts int) *Quality {
	return &Quality{
		numParts:     numParts,
		edgeCount:    make([]int64, numParts),
		partReplicas: make([]int64, numParts),
	}
}

// NumParts returns the partition count the summary is tracked over.
func (q *Quality) NumParts() int { return q.numParts }

// AddEdge records one edge placed on partition p.
func (q *Quality) AddEdge(p int) {
	q.edgeCount[p]++
	q.numEdges++
}

// AddEdges records n edges placed on partition p — the bulk form used when
// per-worker counts are folded in after a sharded scan.
func (q *Quality) AddEdges(p int, n int64) {
	q.edgeCount[p] += n
	q.numEdges += n
}

// RemoveEdge records one edge removed from partition p.
func (q *Quality) RemoveEdge(p int) {
	q.edgeCount[p]--
	q.numEdges--
}

// MoveEdge records one edge migrated from partition p to partition to —
// numEdges is unchanged.
func (q *Quality) MoveEdge(from, to int) {
	q.edgeCount[from]--
	q.edgeCount[to]++
}

// AddReplica records a vertex gaining an image on partition p (it had none
// there before).
func (q *Quality) AddReplica(p int) {
	q.partReplicas[p]++
	q.totalReplicas++
}

// RemoveReplica records a vertex losing its image on partition p.
func (q *Quality) RemoveReplica(p int) {
	q.partReplicas[p]--
	q.totalReplicas--
}

// VertexPlaced records a vertex going from zero replicas to at least one.
func (q *Quality) VertexPlaced() { q.placed++ }

// VertexDropped records a vertex going from at least one replica to zero.
func (q *Quality) VertexDropped() { q.placed-- }

// EdgeCounts returns the live per-partition edge counts. The slice is the
// accumulator's own backing store: it stays current as the summary evolves
// and must not be modified by callers.
func (q *Quality) EdgeCounts() []int64 { return q.edgeCount }

// EdgesOn returns the number of edges partition p holds.
func (q *Quality) EdgesOn(p int) int64 { return q.edgeCount[p] }

// ReplicasOnPart returns the number of vertex images partition p holds.
func (q *Quality) ReplicasOnPart(p int) int64 { return q.partReplicas[p] }

// TotalReplicas returns the total number of vertex images.
func (q *Quality) TotalReplicas() int64 { return q.totalReplicas }

// Placed returns the number of vertices with at least one replica.
func (q *Quality) Placed() int64 { return q.placed }

// NumEdges returns the number of live edges.
func (q *Quality) NumEdges() int64 { return q.numEdges }

// ReplicationFactor returns the average images per placed vertex — the
// paper's headline partition-quality metric (§5.1.1). Zero when nothing is
// placed.
func (q *Quality) ReplicationFactor() float64 {
	if q.placed == 0 {
		return 0
	}
	return float64(q.totalReplicas) / float64(q.placed)
}

// EdgeBalance returns max(edges per partition) / mean(edges per partition),
// ≥1; 1.0 is perfectly balanced. 1 when there are no edges.
func (q *Quality) EdgeBalance() float64 {
	if q.numParts == 0 || q.numEdges == 0 {
		return 1
	}
	var max int64
	for _, c := range q.edgeCount {
		if c > max {
			max = c
		}
	}
	return float64(max) / (float64(q.numEdges) / float64(q.numParts))
}

// Merge folds another summary over the same partition count into q. Every
// field is a sum, so per-worker summaries merged in any order equal the
// sequential accumulation — what makes sharded ingress and sharded
// assignment materialization exact.
func (q *Quality) Merge(o *Quality) {
	for p := 0; p < q.numParts; p++ {
		q.edgeCount[p] += o.edgeCount[p]
		q.partReplicas[p] += o.partReplicas[p]
	}
	q.totalReplicas += o.totalReplicas
	q.placed += o.placed
	q.numEdges += o.numEdges
}

// Reset zeroes the summary in place, keeping the partition count.
func (q *Quality) Reset() {
	for p := range q.edgeCount {
		q.edgeCount[p] = 0
		q.partReplicas[p] = 0
	}
	q.totalReplicas, q.placed, q.numEdges = 0, 0, 0
}
