// Package metrics provides the small statistical toolkit the experiments
// use: linear regression (the replication-factor correlation lines of Figs
// 5.3–5.5, 6.1–6.2 and 8.3), box-plot summaries (Fig 8.4), and simple
// aggregates.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// LinFit is an ordinary-least-squares line y = Slope·x + Intercept.
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Fit computes the least-squares line through (x[i], y[i]).
func Fit(x, y []float64) (LinFit, error) {
	if len(x) != len(y) {
		return LinFit{}, fmt.Errorf("metrics: len(x)=%d len(y)=%d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinFit{}, fmt.Errorf("metrics: need ≥2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return LinFit{}, fmt.Errorf("metrics: degenerate x values")
	}
	f := LinFit{N: len(x)}
	f.Slope = (n*sxy - sx*sy) / denom
	f.Intercept = (sy - f.Slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := f.Slope*x[i] + f.Intercept
		ssTot += (y[i] - meanY) * (y[i] - meanY)
		ssRes += (y[i] - pred) * (y[i] - pred)
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

// Predict evaluates the fitted line at x.
func (f LinFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Residual returns y − Predict(x): positive means the point sits above the
// trend line (worse than its replication factor predicts, in the paper's
// reading of Figs 6.1/8.3).
func (f LinFit) Residual(x, y float64) float64 { return y - f.Predict(x) }

// BoxPlot is the five-number summary drawn in Fig 8.4, plus outliers
// ("flier points") beyond 1.5×IQR.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64 // whiskers exclude outliers
	Outliers                 []float64
	Mean                     float64
}

// NewBoxPlot summarizes the sample (which it sorts in place).
func NewBoxPlot(sample []float64) BoxPlot {
	var b BoxPlot
	if len(sample) == 0 {
		return b
	}
	sort.Float64s(sample)
	b.Q1 = Quantile(sample, 0.25)
	b.Median = Quantile(sample, 0.5)
	b.Q3 = Quantile(sample, 0.75)
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.Min, b.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, v := range sample {
		sum += v
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Mean = sum / float64(len(sample))
	if math.IsInf(b.Min, 1) { // everything was an outlier
		b.Min, b.Max = sample[0], sample[len(sample)-1]
	}
	return b
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted data, with linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("metrics: need two equal-length samples of ≥2")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("metrics: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
