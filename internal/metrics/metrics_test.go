package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	f, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 < 1-1e-12 {
		t.Fatalf("R² = %v, want 1", f.R2)
	}
	if got := f.Predict(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("Predict(10) = %v, want 21", got)
	}
	if got := f.Residual(10, 25); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Residual = %v, want 4", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Fit([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitResidualSignProperty(t *testing.T) {
	// For any 3+ distinct points, residuals sum to ~0 (OLS property).
	f := func(seed int64) bool {
		xs := []float64{1, 2, 3, 5, 8}
		ys := make([]float64, len(xs))
		s := seed
		for i := range ys {
			s = s*6364136223846793005 + 1442695040888963407
			ys[i] = float64(s%1000) / 100
		}
		fit, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range xs {
			sum += fit.Residual(xs[i], ys[i])
		}
		return math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlot(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100})
	if b.Median < 5 || b.Median > 6 {
		t.Errorf("median = %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.Max == 100 {
		t.Error("whisker max should exclude the outlier")
	}
	if b.Min != 1 {
		t.Errorf("min = %v, want 1", b.Min)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if b.Mean != 0 {
		t.Errorf("empty boxplot mean = %v", b.Mean)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	if got := Quantile(data, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(data, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(data, 0.5); got != 2.5 {
		t.Errorf("q0.5 = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestMeanMax(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max([]float64{2, 9, 6}); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Mean/Max should be NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
	yneg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want −1", r)
	}
	if _, err := Pearson(x, []float64{1, 1, 1, 1}); err == nil {
		t.Error("zero-variance accepted")
	}
}
