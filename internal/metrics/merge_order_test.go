package metrics

import (
	"math/rand"
	"testing"
)

// TestQualityMergeShardOrder documents the sharded-merge contract the
// parallel builders rely on (and graphlint's detrange fixture enforces at
// the call sites): per-shard summaries merged in ascending shard order
// equal the sequential replay exactly — and because every Quality field is
// an integer sum, ANY merge order equals it too. The contract callers keep
// is nonetheless ascending shard order (see partition.buildParallel and
// the sharded stream builder), so that if a non-commutative field is ever
// added, the accumulation order is already pinned and this test is what
// fails first.
func TestQualityMergeShardOrder(t *testing.T) {
	const numParts, shards = 7, 5
	r := rand.New(rand.NewSource(42))

	// One sequential summary and per-shard summaries fed the same stream.
	seq := NewQuality(numParts)
	locals := make([]*Quality, shards)
	for i := range locals {
		locals[i] = NewQuality(numParts)
	}
	for i := 0; i < 10_000; i++ {
		p := r.Intn(numParts)
		shard := r.Intn(shards)
		seq.AddEdge(p)
		locals[shard].AddEdge(p)
		if i%3 == 0 {
			seq.VertexPlaced()
			locals[shard].VertexPlaced()
		}
		if i%2 == 0 {
			seq.AddReplica(p)
			locals[shard].AddReplica(p)
		}
	}

	equal := func(a, b *Quality) bool {
		if a.TotalReplicas() != b.TotalReplicas() || a.Placed() != b.Placed() || a.NumEdges() != b.NumEdges() {
			return false
		}
		for p := 0; p < numParts; p++ {
			if a.EdgesOn(p) != b.EdgesOn(p) || a.ReplicasOnPart(p) != b.ReplicasOnPart(p) {
				return false
			}
		}
		return true
	}

	// Ascending shard order — the order every caller uses.
	asc := NewQuality(numParts)
	for i := 0; i < shards; i++ {
		asc.Merge(locals[i])
	}
	if !equal(asc, seq) {
		t.Fatalf("ascending-order merge diverges from the sequential replay: RF %v vs %v, balance %v vs %v",
			asc.ReplicationFactor(), seq.ReplicationFactor(), asc.EdgeBalance(), seq.EdgeBalance())
	}

	// Commutativity: the property that makes the contract cheap to keep.
	// Merge in several shuffled orders; every result must equal ascending.
	for trial := 0; trial < 10; trial++ {
		order := r.Perm(shards)
		shuffled := NewQuality(numParts)
		for _, i := range order {
			shuffled.Merge(locals[i])
		}
		if !equal(shuffled, asc) {
			t.Fatalf("merge order %v diverges from ascending order: Quality gained a non-commutative field without updating the shard-order contract", order)
		}
	}
}
