package engine

// Deterministic work-sharding shared by the GAS executor (Run) and the
// GraphX engine (internal/engine/graphx).
//
// The central invariant: the decomposition of a phase's work list into
// contiguous shards depends only on the *length of the list*, never on the
// number of workers, and every floating-point meter is accumulated into a
// per-shard scratch slot and merged in shard order. Workers only change
// which goroutine evaluates a shard — so Stats and Values are byte-identical
// for every Workers value, for any cost model, which is the reproducibility
// contract the simulation's "metrics are deterministic functions of
// partitioning quality" claim rests on.

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"graphpart/internal/graph"
)

const (
	// minShardItems is the smallest work-list slice worth a shard of its
	// own: below it, merge overhead dominates and the phase runs inline.
	// Small frontiers (the long convergence tail of SSSP on road networks)
	// therefore stay on the calling goroutine automatically.
	minShardItems = 256
	// maxShards caps per-shard scratch memory and merge cost.
	maxShards = 64
)

// ResolveWorkers maps an Options.Workers value to a concrete worker count:
// ≤0 means GOMAXPROCS.
func ResolveWorkers(w int) int {
	if w <= 0 {
		//graphlint:nondet worker-count default only; results are worker-count-independent (TestShardedDeterminism)
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// NumShards returns the number of contiguous shards an n-item work list is
// split into. It is a function of n only — never of the worker count.
func NumShards(n int) int {
	s := n / minShardItems
	if s < 1 {
		return 1
	}
	if s > maxShards {
		return maxShards
	}
	return s
}

// ShardRange returns shard s's half-open item range [lo, hi) of an n-item
// list split into shards contiguous pieces.
func ShardRange(n, shards, s int) (lo, hi int) {
	return n * s / shards, n * (s + 1) / shards
}

// ForEachShard evaluates fn(shard, worker) for every shard in [0, shards)
// using up to workers goroutines. Workers pull shards from a shared counter
// (so a skewed shard cannot serialize the phase behind a static block
// assignment); worker ids are dense in [0, min(workers, shards)). With one
// worker or one shard everything runs inline on the calling goroutine as
// worker 0 — the sequential path is the same code path, not a special case.
func ForEachShard(workers, shards int, fn func(shard, worker int)) {
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s, w)
			}
		}(w)
	}
	wg.Wait()
}

// Meters is one shard's private accounting scratch: per-partition CPU work
// and traffic, plus the scalar counters a superstep accumulates. Workers
// write only their own shard's Meters; the merge (in shard order) happens on
// the coordinating goroutine.
type Meters struct {
	Work, In, Out []float64 // indexed by partition
	Edges         int64     // gather+scatter edge visits
	Dyn           float64   // dynamic message bytes (peak-memory accounting)
}

// NewMeters returns zeroed meters for numParts partitions.
func NewMeters(numParts int) Meters {
	return Meters{
		Work: make([]float64, numParts),
		In:   make([]float64, numParts),
		Out:  make([]float64, numParts),
	}
}

// Reset zeroes the meters for reuse.
func (m *Meters) Reset() {
	for i := range m.Work {
		m.Work[i], m.In[i], m.Out[i] = 0, 0, 0
	}
	m.Edges = 0
	m.Dyn = 0
}

// MergeInto adds this shard's per-partition meters into the global arrays.
func (m *Meters) MergeInto(work, in, out []float64) {
	for p := range work {
		work[p] += m.Work[p]
		in[p] += m.In[p]
		out[p] += m.Out[p]
	}
}

// Bitset is a fixed-size bit set over a dense vertex-id space. Scatter
// workers each own one, so activation writes need no synchronization; the
// per-worker sets merge by OR, which is commutative and idempotent — the
// merged frontier is identical no matter which worker set which bit.
type Bitset []uint64

// NewBitset returns a zeroed bitset holding n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Clear zeroes the whole set.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// MergeClear ORs src into b and zeroes src, in one pass.
func (b Bitset) MergeClear(src Bitset) {
	for i, w := range src {
		if w != 0 {
			b[i] |= w
			src[i] = 0
		}
	}
}

// ForEach calls fn for every set bit in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Sharder owns the sharded-phase scratch of one engine run and provides the
// three phase shapes both engines execute supersteps with. Centralizing the
// orchestration here — worker clamp, per-shard meter pools, shard-order
// merges, per-worker bitmap lazy-init and OR-merge — keeps the GAS and
// GraphX engines in lockstep on the invariants the byte-identical-
// determinism contract depends on.
type Sharder struct {
	// Workers is the resolved goroutine bound, clamped to the maximum
	// shard count so idle workers are never spawned.
	Workers int

	shards  []Meters
	changed [][]graph.VertexID
	next    []Bitset // per-worker activation bitmaps, allocated on first use
	n       int      // vertices, for bitmap sizing
}

// NewSharder sizes the scratch for a run over n vertices and numParts
// partitions. No phase can use more shards than NumShards(n) (work lists
// are at most n items), so both pools are bounded up front.
func NewSharder(workers, numParts, n int) *Sharder {
	w := ResolveWorkers(workers)
	if maxSh := NumShards(n); w > maxSh {
		w = maxSh
	}
	sh := &Sharder{Workers: w, n: n}
	sh.shards = make([]Meters, NumShards(n))
	for i := range sh.shards {
		sh.shards[i] = NewMeters(numParts)
	}
	sh.changed = make([][]graph.VertexID, len(sh.shards))
	sh.next = make([]Bitset, w)
	return sh
}

// Do runs body over contiguous shards of an nItems-long work list. For
// phases with no meters (e.g. committing newVals), where shards only write
// disjoint indexes.
func (sh *Sharder) Do(nItems int, body func(lo, hi int)) {
	ns := NumShards(nItems)
	ForEachShard(sh.Workers, ns, func(s, _ int) {
		lo, hi := ShardRange(nItems, ns, s)
		body(lo, hi)
	})
}

// Meter runs body over contiguous shards of an nItems-long work list, each
// shard with zeroed private Meters and a reusable change-list buffer (body
// returns the buffer it appended to). Meters merge into work/in/out in
// shard order and the per-shard change lists concatenate onto dst — also in
// shard order, so for a contiguous decomposition the result is in work-list
// order, exactly as a sequential loop would produce it. Returns the
// appended dst plus the summed Edges and Dyn counters.
func (sh *Sharder) Meter(nItems int, work, in, out []float64, dst []graph.VertexID,
	body func(lo, hi int, ms *Meters, ch []graph.VertexID) []graph.VertexID) ([]graph.VertexID, int64, float64) {
	ns := NumShards(nItems)
	ForEachShard(sh.Workers, ns, func(s, _ int) {
		ms := &sh.shards[s]
		ms.Reset()
		lo, hi := ShardRange(nItems, ns, s)
		sh.changed[s] = body(lo, hi, ms, sh.changed[s][:0])
	})
	var edges int64
	var dyn float64
	for s := 0; s < ns; s++ {
		sh.shards[s].MergeInto(work, in, out)
		edges += sh.shards[s].Edges
		dyn += sh.shards[s].Dyn
		dst = append(dst, sh.changed[s]...)
	}
	return dst, edges, dyn
}

// Scatter runs body over contiguous shards of an nItems-long change list,
// each shard with zeroed private Meters and its worker's activation bitmap.
// frontier is cleared, then the per-worker bitmaps OR-merge into it (and
// are cleared for the next superstep). Meters merge in shard order; returns
// the summed Edges counter.
func (sh *Sharder) Scatter(nItems int, work, in, out []float64, frontier Bitset,
	body func(lo, hi int, ms *Meters, nb Bitset)) int64 {
	frontier.Clear()
	ns := NumShards(nItems)
	ForEachShard(sh.Workers, ns, func(s, w int) {
		ms := &sh.shards[s]
		ms.Reset()
		nb := sh.next[w]
		if nb == nil {
			nb = NewBitset(sh.n)
			sh.next[w] = nb
		}
		lo, hi := ShardRange(nItems, ns, s)
		body(lo, hi, ms, nb)
	})
	var edges int64
	for s := 0; s < ns; s++ {
		sh.shards[s].MergeInto(work, in, out)
		edges += sh.shards[s].Edges
	}
	for _, nb := range sh.next {
		if nb != nil {
			frontier.MergeClear(nb)
		}
	}
	return edges
}
