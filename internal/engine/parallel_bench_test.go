package engine_test

import (
	"fmt"
	"testing"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// BenchmarkEngineParallel records sequential vs parallel superstep
// throughput on the two workload shapes the paper's experiments span: a
// high-diameter road network (many supersteps, small frontiers) and a
// skewed power-law graph (few supersteps, hub-heavy frontiers). On a
// multi-core host workers=all should beat workers=1 on the power-law graph;
// the road network bounds the sharding overhead in the regime parallelism
// cannot help.
func BenchmarkEngineParallel(b *testing.B) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"road-net", gen.RoadNet("bench-road", 250, 250, 1)},
		{"power-law", gen.PrefAttach("bench-plaw", 100000, 8, 1)},
	}
	for _, gr := range graphs {
		a, err := partition.Partition(gr.g, partition.Random{}, 9, 1)
		if err != nil {
			b.Fatal(err)
		}
		gr.g.EnsureCSR()
		for _, w := range []int{1, 0} {
			label := fmt.Sprintf("%s/workers=1", gr.name)
			if w == 0 {
				label = fmt.Sprintf("%s/workers=all", gr.name)
			}
			b.Run(label, func(b *testing.B) {
				var edges int64
				for i := 0; i < b.N; i++ {
					out, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{}, a,
						cluster.Local9, model, engine.Options{FixedIterations: 3, Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					edges += out.Stats.EdgesProcessed
				}
				b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
			})
		}
	}
}
