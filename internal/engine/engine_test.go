package engine_test

import (
	"testing"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/gen"
	"graphpart/internal/partition"
)

func assignmentFor(t *testing.T, strategy string) *partition.Assignment {
	t.Helper()
	g := gen.PrefAttach("engine-test", 3000, 6, 0x5)
	s := partition.MustNew(strategy, partition.Options{HybridThreshold: 30})
	a, err := partition.Partition(g, s, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

var model = cluster.DefaultModel()

func runPR(t *testing.T, mode engine.Mode, a *partition.Assignment) engine.Stats {
	t.Helper()
	out, err := engine.Run[float64, float64](mode, app.PageRank{}, a, cluster.Local9, model,
		engine.Options{FixedIterations: 10, HighDegreeThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	return out.Stats
}

// TestLyraSavesTrafficForNaturalApps pins §6.1's core mechanism: on the
// same Hybrid assignment, the hybrid engine uses less network than the
// PowerGraph engine for a natural application.
func TestLyraSavesTrafficForNaturalApps(t *testing.T) {
	a := assignmentFor(t, "Hybrid")
	pg := runPR(t, engine.ModePowerGraph, a)
	lyra := runPR(t, engine.ModePowerLyra, a)
	if lyra.AvgNetInGB >= pg.AvgNetInGB {
		t.Errorf("hybrid engine net %.5f ≥ PowerGraph net %.5f", lyra.AvgNetInGB, pg.AvgNetInGB)
	}
	if lyra.ComputeSeconds >= pg.ComputeSeconds {
		t.Errorf("hybrid engine compute %.5f ≥ PowerGraph %.5f", lyra.ComputeSeconds, pg.ComputeSeconds)
	}
}

// TestLyraSavingLargerWithHybridPartitioning: the engine saving should be
// larger when the partitioner colocated gather-edges with masters (Hybrid)
// than when it scattered them (Random).
func TestLyraSavingLargerWithHybridPartitioning(t *testing.T) {
	hybrid := assignmentFor(t, "Hybrid")
	random := assignmentFor(t, "Random")
	hybridSaving := runPR(t, engine.ModePowerGraph, hybrid).AvgNetInGB - runPR(t, engine.ModePowerLyra, hybrid).AvgNetInGB
	randomSaving := runPR(t, engine.ModePowerGraph, random).AvgNetInGB - runPR(t, engine.ModePowerLyra, random).AvgNetInGB
	relHybrid := hybridSaving / runPR(t, engine.ModePowerGraph, hybrid).AvgNetInGB
	relRandom := randomSaving / runPR(t, engine.ModePowerGraph, random).AvgNetInGB
	if relHybrid <= relRandom {
		t.Errorf("relative saving: hybrid %.3f ≤ random %.3f", relHybrid, relRandom)
	}
}

// TestSameResultsAcrossModes: engine mode affects accounting, never values.
func TestSameResultsAcrossModes(t *testing.T) {
	a := assignmentFor(t, "Grid")
	pg, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{}, a, cluster.Local9, model,
		engine.Options{FixedIterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	lyra, err := engine.Run[float64, float64](engine.ModePowerLyra, app.PageRank{}, a, cluster.Local9, model,
		engine.Options{FixedIterations: 7, HighDegreeThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	for v := range pg.Values {
		if pg.Values[v] != lyra.Values[v] {
			t.Fatalf("value[%d] differs across engine modes: %v vs %v", v, pg.Values[v], lyra.Values[v])
		}
	}
}

// TestNetworkScalesWithReplication pins Fig 5.3's mechanism at the engine
// level: same graph, same app, higher-RF assignment → more traffic.
func TestNetworkScalesWithReplication(t *testing.T) {
	random := assignmentFor(t, "Random")
	grid := assignmentFor(t, "Grid")
	if random.ReplicationFactor() <= grid.ReplicationFactor() {
		t.Skip("test premise (Random RF > Grid RF) does not hold on this graph")
	}
	netRandom := runPR(t, engine.ModePowerGraph, random).AvgNetInGB
	netGrid := runPR(t, engine.ModePowerGraph, grid).AvgNetInGB
	if netRandom <= netGrid {
		t.Errorf("Random (RF %.2f) net %.5f ≤ Grid (RF %.2f) net %.5f",
			random.ReplicationFactor(), netRandom, grid.ReplicationFactor(), netGrid)
	}
}

func TestMaxSuperstepsCap(t *testing.T) {
	a := assignmentFor(t, "Random")
	out, err := engine.Run[uint32, uint32](engine.ModePowerGraph, app.WCC{}, a, cluster.Local9, model,
		engine.Options{MaxSupersteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Supersteps > 2 {
		t.Errorf("ran %d supersteps with cap 2", out.Stats.Supersteps)
	}
	if out.Stats.Converged {
		t.Error("2-superstep WCC cannot have converged on this graph")
	}
}

func TestDirectionString(t *testing.T) {
	cases := map[engine.Direction]string{
		engine.DirNone: "none", engine.DirIn: "in",
		engine.DirOut: "out", engine.DirBoth: "both",
		engine.Direction(42): "?",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestSuperstepSecondsSumToCompute(t *testing.T) {
	a := assignmentFor(t, "HDRF")
	st := runPR(t, engine.ModePowerGraph, a)
	var sum float64
	for _, s := range st.SuperstepSeconds {
		sum += s
	}
	if diff := sum - st.ComputeSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("superstep seconds sum %v != compute %v", sum, st.ComputeSeconds)
	}
}
