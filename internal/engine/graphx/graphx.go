// Package graphx simulates GraphX's execution model (ch. 7): a Pregel-style
// iteration loop over Spark RDDs, with many edge partitions per machine,
// routing-table vertex-value shipping, a partitioning phase that is separate
// from ingress, per-iteration task-scheduling overhead, and an executor
// memory model reproducing the three memory-pressure cases of Fig 9.4.
package graphx

import (
	"fmt"
	"math"

	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// Config describes one GraphX job.
type Config struct {
	Cluster cluster.Config
	// ExecutorMemBytes is the per-executor (per-machine) memory budget —
	// the "executor-memory" parameter swept in Fig 9.4. 0 means ample
	// memory (no pressure).
	ExecutorMemBytes float64
	// Iterations caps the Pregel loop, as the paper's GraphX experiments
	// do (10 in ch. 7, 25 in ch. 9). 0 means run to convergence.
	Iterations int
	// Workers bounds the goroutines executing each iteration phase; ≤0
	// means GOMAXPROCS. As in engine.Run, the shard structure is
	// worker-count independent, so Stats and Values are byte-identical
	// for every value.
	Workers int
}

// Stats describes a GraphX run. GraphX separates the partitioning phase
// from ingress and computation (§7.3), so partitioning time is reported on
// its own.
type Stats struct {
	App      string
	Strategy string

	// PartitionSeconds is the separate partitioning phase.
	PartitionSeconds float64
	// ComputeSeconds is the Pregel loop (excludes partitioning).
	ComputeSeconds float64
	// IterSeconds/CumulativeSeconds give per-iteration timing; cumulative
	// includes PartitionSeconds, matching the y-axis of Figs 9.1/9.2
	// ("total time taken at the end of each iteration").
	IterSeconds       []float64
	CumulativeSeconds []float64
	Iterations        int
	Converged         bool

	// Memory-pressure outcome (Fig 9.4).
	Failed      bool    // case 1: cannot fit on the whole cluster
	FitAttempts int     // case 2: redistribution attempts before fitting
	GCOverhead  float64 // multiplier ≥1 applied to compute work

	AvgNetInGB float64
	PeakMemGB  float64
	CPUUtil    []float64
}

// Outcome bundles values and stats.
type Outcome[V any] struct {
	Values []V
	Stats  Stats
}

// Run executes prog under the GraphX model.
func Run[V, A any](prog engine.Program[V, A], a *partition.Assignment, cfg Config, model cluster.CostModel) (*Outcome[V], error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cluster.NumParts() != a.NumParts {
		return nil, fmt.Errorf("graphx: assignment has %d partitions, cluster provides %d", a.NumParts, cfg.Cluster.NumParts())
	}
	g := a.G
	g.EnsureCSR()
	n := g.NumVertices()
	machines := cfg.Cluster.Machines

	stats := Stats{App: prog.Name(), Strategy: a.Strategy}

	// ---- Memory model (Fig 9.4) ----
	// Working set per machine if partitions were spread evenly.
	spreadMem := make([]float64, machines)
	var totalMem float64
	for p := 0; p < a.NumParts; p++ {
		m := cfg.Cluster.MachineOf(p)
		w := float64(a.ReplicasOnPart(p))*float64(model.ReplicaBytes) +
			float64(a.EdgeCount[p])*float64(model.EdgeMemBytes)
		spreadMem[m] += w
		totalMem += w
	}
	gcMult := 1.0
	if cfg.ExecutorMemBytes > 0 {
		avail := cfg.ExecutorMemBytes - model.ExecutorBase
		if avail <= 0 {
			avail = 1
		}
		// Case 1: the graph cannot fit on the entire cluster.
		if totalMem > avail*float64(machines) {
			stats.Failed = true
			return &Outcome[V]{Stats: stats}, nil
		}
		// Spark first tries to co-locate the graph on 2 executors, then
		// doubles the executor count after each out-of-memory failure
		// (§9.2.4). Count the failed attempts; each costs RedistributeSec.
		need := int(math.Ceil(totalMem / avail))
		if need < 2 {
			need = 2
		}
		tryExec := 2
		for tryExec < need && tryExec < machines {
			stats.FitAttempts++
			tryExec *= 2
		}
		// GC overhead grows as the per-machine working set approaches the
		// executor budget.
		pressure := totalMem / float64(machines) / avail
		if pressure > model.GCKnee {
			headroom := 1 - pressure
			if headroom < 0.02 {
				headroom = 0.02
			}
			gcMult = 1 + model.GCSlope*(pressure-model.GCKnee)/headroom
		}
	}
	stats.GCOverhead = gcMult

	// ---- Partitioning phase (separate from ingress, §7.3) ----
	stats.PartitionSeconds = partitionPhaseSeconds(a, cfg.Cluster, model)

	// ---- Pregel loop ----
	// Iteration phases run on sharded workers exactly as in engine.Run:
	// contiguous shards of the active/changed lists, per-shard meters
	// merged in shard order, per-worker activation bitmaps merged by OR —
	// byte-identical results for every worker count.
	vals := make([]V, n)
	newVals := make([]V, n)
	active := make([]graph.VertexID, 0, n)
	nextActive := engine.NewBitset(n)
	for v := 0; v < n; v++ {
		vals[v] = prog.Init(g, graph.VertexID(v))
		if prog.InitiallyActive(g, graph.VertexID(v)) {
			active = append(active, graph.VertexID(v))
		}
	}

	run := cluster.NewRun(cfg.Cluster, model)
	gatherDir := prog.GatherDir()
	scatterDir := prog.ScatterDir()
	accB := float64(prog.AccBytes() + model.MsgOverheadBytes)
	valB := float64(prog.ValueBytes() + model.MsgOverheadBytes)

	work := make([]float64, a.NumParts)
	inBytes := make([]float64, a.NumParts)
	outBytes := make([]float64, a.NumParts)

	sh := engine.NewSharder(cfg.Workers, a.NumParts, n)
	changed := make([]graph.VertexID, 0, n)

	cum := stats.PartitionSeconds
	for iter := 0; cfg.Iterations == 0 || iter < cfg.Iterations; iter++ {
		if len(active) == 0 {
			stats.Converged = true
			break
		}
		for p := 0; p < a.NumParts; p++ {
			// Spark schedules one task per partition every iteration,
			// whether or not it has active work — GraphX's constant
			// per-iteration floor.
			work[p] = model.TaskOverheadNs
			inBytes[p], outBytes[p] = 0, 0
		}

		na := len(active)
		changed, _, _ = sh.Meter(na, work, inBytes, outBytes, changed[:0],
			func(lo, hi int, ms *engine.Meters, ch []graph.VertexID) []graph.VertexID {
				for _, v := range active[lo:hi] {
					var acc A
					hasAcc := false
					gather := func(src, dst graph.VertexID, eid int32) {
						c := prog.Gather(g, src, dst, vals[src], vals[dst], v)
						if hasAcc {
							acc = prog.Sum(acc, c)
						} else {
							acc, hasAcc = c, true
						}
						ms.Work[a.EdgeParts[eid]] += model.RDDEdgeNs
					}
					if gatherDir == engine.DirIn || gatherDir == engine.DirBoth {
						nbrs := g.InNeighbors(v)
						eids := g.InEdgeIDs(v)
						for i := range nbrs {
							gather(nbrs[i], v, eids[i])
						}
					}
					if gatherDir == engine.DirOut || gatherDir == engine.DirBoth {
						nbrs := g.OutNeighbors(v)
						eids := g.OutEdgeIDs(v)
						for i := range nbrs {
							gather(v, nbrs[i], eids[i])
						}
					}
					master := a.Master(v)
					if master < 0 {
						// Isolated vertex: evolves locally, no shuffle traffic.
						nv, ch2 := prog.Apply(g, v, vals[v], acc, hasAcc)
						newVals[v] = nv
						if ch2 {
							ch = append(ch, v)
						}
						continue
					}
					// aggregateMessages shuffle: each edge partition holding
					// gather-direction edges of v sends one combined message to
					// v's vertex partition (master).
					a.ForEachReplica(v, func(p int) {
						if p == master {
							return
						}
						holds := (gatherDir == engine.DirIn || gatherDir == engine.DirBoth) && a.HasInEdges(v, p) ||
							(gatherDir == engine.DirOut || gatherDir == engine.DirBoth) && a.HasOutEdges(v, p)
						if holds && cfg.Cluster.MachineOf(p) != cfg.Cluster.MachineOf(master) {
							ms.Out[p] += accB
							ms.In[master] += accB
						}
					})

					nv, ch2 := prog.Apply(g, v, vals[v], acc, hasAcc)
					newVals[v] = nv
					ms.Work[master] += model.ApplyVertexNs
					if ch2 {
						ch = append(ch, v)
					}
				}
				return ch
			})

		sh.Do(na, func(lo, hi int) {
			for _, v := range active[lo:hi] {
				vals[v] = newVals[v]
			}
		})

		// Vertex-value shipping: changed vertices broadcast their new
		// value to every edge partition holding their edges (GraphX's
		// routing tables) — the replication-factor-proportional cost.
		sh.Scatter(len(changed), work, inBytes, outBytes, nextActive,
			func(lo, hi int, ms *engine.Meters, nb engine.Bitset) {
				for _, v := range changed[lo:hi] {
					master := a.Master(v)
					a.ForEachReplica(v, func(p int) {
						if p == master {
							return
						}
						ms.Work[p] += model.ApplyVertexNs
						if cfg.Cluster.MachineOf(p) != cfg.Cluster.MachineOf(master) {
							ms.Out[master] += valB
							ms.In[p] += valB
						}
					})
					if scatterDir == engine.DirOut || scatterDir == engine.DirBoth {
						for _, u := range g.OutNeighbors(v) {
							nb.Set(int(u))
						}
					}
					if scatterDir == engine.DirIn || scatterDir == engine.DirBoth {
						for _, u := range g.InNeighbors(v) {
							nb.Set(int(u))
						}
					}
				}
			})

		// GC overhead inflates CPU work.
		if gcMult != 1 {
			for p := range work {
				work[p] *= gcMult
			}
		}
		before := run.SimSeconds
		run.StepPartitioned(work, inBytes, outBytes)
		d := run.SimSeconds - before
		stats.IterSeconds = append(stats.IterSeconds, d)
		cum += d
		stats.CumulativeSeconds = append(stats.CumulativeSeconds, cum)
		stats.Iterations++

		active = active[:0]
		nextActive.ForEach(func(i int) {
			active = append(active, graph.VertexID(i))
		})
	}
	if cfg.Iterations > 0 && len(active) == 0 {
		stats.Converged = true
	}

	// Case-2 redistribution attempts delay the start of computation.
	redisSec := float64(stats.FitAttempts) * model.RedistributeSec
	stats.ComputeSeconds = run.SimSeconds + redisSec
	for i := range stats.CumulativeSeconds {
		stats.CumulativeSeconds[i] += redisSec
	}
	stats.AvgNetInGB = run.AvgNetInGB()
	for m := 0; m < machines; m++ {
		run.SetPeakMem(m, spreadMem[m]*gcMultMemFactor(gcMult))
	}
	stats.PeakMemGB = run.MaxPeakMemGB()
	stats.CPUUtil = run.CPUUtilization()
	return &Outcome[V]{Values: vals, Stats: stats}, nil
}

// gcMultMemFactor nudges peak memory up under GC pressure (fragmentation,
// survivor copies).
func gcMultMemFactor(gcMult float64) float64 { return 1 + 0.1*(gcMult-1) }

// partitionPhaseSeconds models GraphX's standalone partitioning phase: a
// partitionBy over the edge RDD (assignment + shuffle), without the
// edge-list load (that is ingress) — which is why all of GraphX's
// hash-based strategies partition at similar speed (§7.4) while the ported
// greedy strategies are slower (ch. 9).
func partitionPhaseSeconds(a *partition.Assignment, cfg cluster.Config, model cluster.CostModel) float64 {
	edges := float64(a.G.NumEdges())
	perMachine := edges / float64(cfg.Machines)
	assignNs := model.HashAssignNs * float64(a.Passes)
	if a.Passes >= 3 || isGreedy(a.Strategy) {
		assignNs += model.HeuristicAssignNs * float64(a.NumParts)
	}
	assignSec := perMachine * assignNs / 1e9
	shuffleSec := perMachine * float64(model.EdgeWireBytes) / model.BandwidthBytesPerSec
	// Rebuilding the routing tables costs per replica, but GraphX routing
	// tables are plain id lists — far cheaper than PowerGraph's mirror
	// structures — so partitioning speed is dominated by the shuffle and
	// looks similar across the hash strategies (§7.4).
	const routingTableFactor = 0.1
	var reps float64
	for p := 0; p < a.NumParts; p++ {
		reps += float64(a.ReplicasOnPart(p))
	}
	finalizeSec := reps / float64(cfg.Machines) * model.FinalizeReplicaNs * routingTableFactor / 1e9
	return assignSec + shuffleSec + finalizeSec
}

func isGreedy(name string) bool {
	switch name {
	case "Oblivious", "HDRF", "H-Ginger":
		return true
	}
	return false
}
