package graphx_test

import (
	"math"
	"reflect"
	"testing"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

var model = cluster.DefaultModel()

func gxAssignment(t *testing.T, g *graph.Graph, strategy string, cc cluster.Config) *partition.Assignment {
	t.Helper()
	s := partition.MustNew(strategy, partition.Options{HybridThreshold: 30})
	a, err := partition.Partition(g, s, cc.NumParts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGraphXPageRankMatchesGAS(t *testing.T) {
	g := gen.PrefAttach("gx-test", 2000, 5, 0x9)
	cc := cluster.GraphXLocal9
	a := gxAssignment(t, g, "CanonicalRandom", cc)
	out, err := graphx.Run[float64, float64](app.PageRank{}, a, graphx.Config{Cluster: cc, Iterations: 10}, model)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: synchronous PageRank, 10 iterations.
	n := g.NumVertices()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	for it := 0; it < 10; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				sum += pr[u] / float64(g.OutDegree(u))
			}
			next[v] = 0.15 + 0.85*sum
		}
		pr, next = next, pr
	}
	for v := range pr {
		// Pregel activity semantics skip vertices whose neighbors stopped
		// changing (below the scatter tolerance), so allow the tolerance.
		if math.Abs(out.Values[v]-pr[v]) > math.Max(1e-3, pr[v]*1e-3) {
			t.Fatalf("pagerank[%d] = %v, ref %v", v, out.Values[v], pr[v])
		}
	}
	if out.Stats.Iterations != 10 {
		t.Errorf("Iterations = %d, want 10", out.Stats.Iterations)
	}
}

func TestGraphXCumulativeMonotone(t *testing.T) {
	g := gen.RoadNet("gx-road", 30, 30, 0x9)
	cc := cluster.GraphXLocal9
	a := gxAssignment(t, g, "2D", cc)
	out, err := graphx.Run[uint32, uint32](app.WCC{}, a, graphx.Config{Cluster: cc, Iterations: 25}, model)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats
	if len(st.CumulativeSeconds) != len(st.IterSeconds) {
		t.Fatalf("cumulative/iteration length mismatch")
	}
	prev := st.PartitionSeconds
	for i, c := range st.CumulativeSeconds {
		if c < prev {
			t.Fatalf("cumulative time decreased at iteration %d: %v < %v", i+1, c, prev)
		}
		prev = c
	}
	if st.PartitionSeconds <= 0 {
		t.Error("partitioning phase should have positive cost")
	}
}

func TestGraphXConvergenceStopsEarly(t *testing.T) {
	// A tiny two-vertex graph converges long before 25 iterations.
	g := graph.FromEdges("tiny", []graph.Edge{{Src: 0, Dst: 1}})
	cc := cluster.Config{Machines: 1, PartsPerMachine: 2}
	a := gxAssignment(t, g, "CanonicalRandom", cc)
	out, err := graphx.Run[float64, float64](app.SSSP{Source: 0}, a, graphx.Config{Cluster: cc, Iterations: 25}, model)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stats.Converged {
		t.Error("tiny SSSP did not converge")
	}
	if out.Stats.Iterations >= 25 {
		t.Errorf("ran all %d iterations", out.Stats.Iterations)
	}
	if out.Values[1] != 1 {
		t.Errorf("dist[1] = %v, want 1", out.Values[1])
	}
}

func TestGraphXMemoryCases(t *testing.T) {
	g := gen.PrefAttach("gx-mem", 3000, 6, 0xa)
	cc := cluster.GraphXLocal9
	a := gxAssignment(t, g, "CanonicalRandom", cc)

	var total float64
	for p := 0; p < a.NumParts; p++ {
		total += float64(a.ReplicasOnPart(p))*float64(model.ReplicaBytes) +
			float64(a.EdgeCount[p])*float64(model.EdgeMemBytes)
	}
	perMachine := total / float64(cc.Machines)

	run := func(mem float64) graphx.Stats {
		out, err := graphx.Run[float64, float64](app.PageRank{}, a,
			graphx.Config{Cluster: cc, Iterations: 5, ExecutorMemBytes: mem}, model)
		if err != nil {
			t.Fatal(err)
		}
		return out.Stats
	}

	// Case 1: can't fit anywhere.
	if st := run(model.ExecutorBase + perMachine/4); !st.Failed {
		t.Error("expected case-1 failure at tiny executor memory")
	}
	// Case 2: fits spread out, not in two executors.
	st2 := run(model.ExecutorBase + perMachine*1.5)
	if st2.Failed {
		t.Fatal("case 2 should not fail")
	}
	if st2.FitAttempts == 0 {
		t.Error("case 2 should need redistribution attempts")
	}
	// Case 3: fits in two executors on the first try.
	st3 := run(model.ExecutorBase + perMachine*float64(cc.Machines))
	if st3.Failed || st3.FitAttempts != 0 {
		t.Errorf("case 3: failed=%v attempts=%d", st3.Failed, st3.FitAttempts)
	}
	if st3.ComputeSeconds >= st2.ComputeSeconds {
		t.Errorf("ample memory (%.3fs) not faster than pressured (%.3fs)", st3.ComputeSeconds, st2.ComputeSeconds)
	}
	// GC overhead decreases with more memory.
	if st3.GCOverhead > st2.GCOverhead {
		t.Errorf("GC overhead grew with memory: %.2f > %.2f", st3.GCOverhead, st2.GCOverhead)
	}
	// No-pressure config reports GCOverhead 1.
	if st := run(0); st.GCOverhead != 1 {
		t.Errorf("unlimited memory GC overhead = %v, want 1", st.GCOverhead)
	}
}

func TestGraphXRejectsMismatchedCluster(t *testing.T) {
	g := gen.RoadNet("gx-bad", 10, 10, 1)
	a := gxAssignment(t, g, "CanonicalRandom", cluster.GraphXLocal9)
	_, err := graphx.Run[float64, float64](app.PageRank{}, a,
		graphx.Config{Cluster: cluster.GraphXLocal10, Iterations: 3}, model)
	if err == nil {
		t.Fatal("accepted mismatched cluster")
	}
}

func TestGraphXGreedyPartitioningSlower(t *testing.T) {
	// Ch. 9: ported greedy strategies partition more slowly than the
	// native hashes in GraphX.
	g := gen.PrefAttach("gx-greedy", 3000, 6, 0xb)
	cc := cluster.GraphXLocal9
	cr := gxAssignment(t, g, "CanonicalRandom", cc)
	hdrf := gxAssignment(t, g, "HDRF", cc)
	stCR, err := graphx.Run[float64, float64](app.PageRank{}, cr, graphx.Config{Cluster: cc, Iterations: 1}, model)
	if err != nil {
		t.Fatal(err)
	}
	stH, err := graphx.Run[float64, float64](app.PageRank{}, hdrf, graphx.Config{Cluster: cc, Iterations: 1}, model)
	if err != nil {
		t.Fatal(err)
	}
	if stH.Stats.PartitionSeconds <= stCR.Stats.PartitionSeconds {
		t.Errorf("HDRF partitioning %.4f ≤ CanonicalRandom %.4f",
			stH.Stats.PartitionSeconds, stCR.Stats.PartitionSeconds)
	}
}

// TestGraphXParallelDeterminism: the GraphX engine's sharded execution must
// be byte-identical to the sequential run for every worker count, exactly
// like the GAS engine's (see engine/determinism_test.go).
func TestGraphXParallelDeterminism(t *testing.T) {
	g := gen.PrefAttach("gx-det", 2200, 5, 0x9)
	cc := cluster.GraphXLocal9
	for _, strat := range []string{"CanonicalRandom", "2D", "HDRF"} {
		a := gxAssignment(t, g, strat, cc)
		for _, appName := range []string{"PageRank", "WCC", "SSSP"} {
			t.Run(strat+"/"+appName, func(t *testing.T) {
				run := func(workers int) (any, graphx.Stats) {
					gcfg := graphx.Config{Cluster: cc, Iterations: 15, Workers: workers}
					switch appName {
					case "PageRank":
						out, err := graphx.Run[float64, float64](app.PageRank{}, a, gcfg, model)
						if err != nil {
							t.Fatal(err)
						}
						return out.Values, out.Stats
					case "WCC":
						out, err := graphx.Run[uint32, uint32](app.WCC{}, a, gcfg, model)
						if err != nil {
							t.Fatal(err)
						}
						return out.Values, out.Stats
					default:
						out, err := graphx.Run[float64, float64](app.SSSP{Source: 0}, a, gcfg, model)
						if err != nil {
							t.Fatal(err)
						}
						return out.Values, out.Stats
					}
				}
				seqVals, seqStats := run(1)
				for _, w := range []int{2, 4, 7} {
					parVals, parStats := run(w)
					if !reflect.DeepEqual(seqVals, parVals) {
						t.Errorf("Workers=%d Values differ from Workers=1", w)
					}
					if !reflect.DeepEqual(seqStats, parStats) {
						t.Errorf("Workers=%d Stats differ from Workers=1:\nseq: %+v\npar: %+v", w, seqStats, parStats)
					}
				}
			})
		}
	}
}
