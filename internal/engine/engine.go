// Package engine defines the vertex-program abstraction shared by the three
// simulated computation engines (PowerGraph-style GAS, PowerLyra's hybrid
// engine, and the GraphX/Pregel engine) and implements the synchronous GAS
// executor the first two build on.
//
// The executor runs the *real* algorithm — vertex values are computed
// exactly, applications run to convergence — while every byte of
// master/mirror synchronization, every edge scanned, and every barrier is
// charged to the simulated cluster (internal/cluster) according to the
// placement decisions of a partition.Assignment. Performance metrics are
// therefore deterministic functions of partitioning quality, which is
// exactly the relationship the paper measures.
package engine

import (
	"fmt"

	"graphpart/internal/cluster"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// Direction selects which incident edges a stage of a vertex program reads
// or writes (§3.1, §6.1).
type Direction int

// Directions.
const (
	DirNone Direction = iota
	DirIn
	DirOut
	DirBoth
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirNone:
		return "none"
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirBoth:
		return "both"
	}
	return "?"
}

// Program is a GAS vertex program (§3.1) over vertex values V and gather
// accumulators A. Implementations must be pure: the engines own all state.
type Program[V, A any] interface {
	// Name returns the application name as used in the paper's figures.
	Name() string
	// GatherDir selects the edges gathered over.
	GatherDir() Direction
	// ScatterDir selects the edges along which changed vertices activate
	// neighbors.
	ScatterDir() Direction
	// Init returns v's initial value.
	Init(g *graph.Graph, v graph.VertexID) V
	// InitiallyActive reports whether v is active in the first superstep.
	InitiallyActive(g *graph.Graph, v graph.VertexID) bool
	// Gather returns the contribution of one gather-direction edge (src,
	// dst) to target's accumulator. target is either src or dst.
	Gather(g *graph.Graph, src, dst graph.VertexID, srcVal, dstVal V, target graph.VertexID) A
	// Sum combines two accumulator values (must be commutative and
	// associative, §3.1).
	Sum(a, b A) A
	// Apply computes v's new value from the aggregated accumulator.
	// hasAcc is false when v had no gather-direction edges. changed
	// triggers scatter activation.
	Apply(g *graph.Graph, v graph.VertexID, old V, acc A, hasAcc bool) (newVal V, changed bool)
	// AccBytes is the wire size of one accumulator message.
	AccBytes() int
	// ValueBytes is the wire size of one vertex-value sync message.
	ValueBytes() int
}

// Reactivator is an optional Program extension for bulk-iterative
// applications: vertices for which StayActive returns true remain in the
// frontier every superstep, and the run converges when a superstep produces
// no changed vertices (Pregel's halt-voting). K-core implements this — each
// peeling round re-examines every remaining vertex (§3.3.3).
type Reactivator[V any] interface {
	StayActive(g *graph.Graph, v graph.VertexID, val V) bool
}

// Natural reports whether p is a "natural application" in PowerLyra's sense
// (§6.1): it gathers along exactly one direction and scatters along the
// other.
func Natural[V, A any](p Program[V, A]) bool {
	g, s := p.GatherDir(), p.ScatterDir()
	return (g == DirIn && s == DirOut) || (g == DirOut && s == DirIn)
}

// Mode selects the engine semantics.
type Mode int

// Engine modes.
const (
	// ModePowerGraph: every mirror participates in gather and receives the
	// applied value — the sync engine of §5.1.2.
	ModePowerGraph Mode = iota
	// ModePowerLyra: differentiated processing (§6.1). Low-degree vertices
	// gather only from partitions actually holding gather-direction edges
	// (zero network when the partitioner colocated them with the master)
	// and push values only to partitions holding scatter-direction edges.
	// High-degree vertices behave as in PowerGraph.
	ModePowerLyra
)

// Options tunes one engine run.
type Options struct {
	// MaxSupersteps caps execution; 0 means run to convergence.
	MaxSupersteps int
	// FixedIterations, when >0, forces every vertex active for exactly
	// this many supersteps (the paper's "PageRank(10)" configuration).
	FixedIterations int
	// HighDegreeThreshold is PowerLyra's high/low-degree cutoff; 0 means
	// partition.DefaultHybridThreshold. Only used by ModePowerLyra.
	HighDegreeThreshold int
	// Workers bounds the goroutines executing each superstep phase. ≤0
	// means GOMAXPROCS; 1 runs every shard inline on the calling
	// goroutine. The shard decomposition is worker-count independent (see
	// shard.go), so Stats and Values are byte-identical for every value.
	Workers int
}

// Stats are the §4.3 metrics of one compute phase.
type Stats struct {
	App        string
	Strategy   string
	Mode       Mode
	Supersteps int
	Converged  bool

	// ComputeSeconds is the simulated computation time (always excluding
	// ingress, as the paper defines it).
	ComputeSeconds float64
	// AvgNetInGB is mean per-machine inbound traffic (Figs 5.3/6.1/8.3).
	AvgNetInGB float64
	// PeakMemGB is max per-machine peak memory (Figs 5.5/6.2), covering
	// the compute phase only; callers combine with ingress memory.
	PeakMemGB float64
	// CPUUtil is each machine's busy fraction (Fig 8.4).
	CPUUtil []float64
	// EdgesProcessed counts gather+scatter edge visits (work measure).
	EdgesProcessed int64
	// SuperstepSeconds records the simulated duration of each superstep.
	SuperstepSeconds []float64
}

// Outcome carries the computed vertex values along with run statistics.
type Outcome[V any] struct {
	Values []V
	Stats  Stats
}

// Run executes prog over the partitioned graph on the simulated cluster.
//
// Each superstep phase (gather+apply, value commit, scatter) executes on up
// to opts.Workers goroutines over contiguous frontier shards. The shard
// structure depends only on the frontier length and all floating-point
// meters merge in shard order, so every Workers value — including the
// sequential Workers=1 case, which is the same code path run inline —
// produces byte-identical Stats and Values.
func Run[V, A any](mode Mode, prog Program[V, A], a *partition.Assignment, cfg cluster.Config, model cluster.CostModel, opts Options) (*Outcome[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumParts() != a.NumParts {
		return nil, fmt.Errorf("engine: assignment has %d partitions but cluster has %d", a.NumParts, cfg.NumParts())
	}
	g := a.G
	g.EnsureCSR()
	n := g.NumVertices()

	threshold := opts.HighDegreeThreshold
	if threshold <= 0 {
		threshold = partition.DefaultHybridThreshold
	}

	vals := make([]V, n)
	newVals := make([]V, n)
	nextActive := NewBitset(n)
	frontier := make([]graph.VertexID, 0, n)
	for v := 0; v < n; v++ {
		vals[v] = prog.Init(g, graph.VertexID(v))
		if prog.InitiallyActive(g, graph.VertexID(v)) {
			frontier = append(frontier, graph.VertexID(v))
		}
	}

	run := cluster.NewRun(cfg, model)
	staticMem := staticMemPerMachine(a, cfg, model)
	var peakDyn float64

	work := make([]float64, a.NumParts)
	inBytes := make([]float64, a.NumParts)
	outBytes := make([]float64, a.NumParts)

	sh := NewSharder(opts.Workers, a.NumParts, n)
	changedList := make([]graph.VertexID, 0, n)

	gatherDir := prog.GatherDir()
	scatterDir := prog.ScatterDir()
	accB := float64(prog.AccBytes() + model.MsgOverheadBytes)
	valB := float64(prog.ValueBytes() + model.MsgOverheadBytes)
	sigB := float64(model.SignalBytes)

	reactivator, _ := any(prog).(Reactivator[V])

	// PowerLyra's differentiated processing keys on the degree in the
	// *gather* direction: hybrid-cut partitions by in-degree, and an
	// in-gathering vertex with few in-edges is "low-degree" no matter how
	// many out-edges it has (§6.1, §6.2.1).
	gatherDegree := func(v graph.VertexID) int {
		switch gatherDir {
		case DirIn:
			return g.InDegree(v)
		case DirOut:
			return g.OutDegree(v)
		default:
			return g.Degree(v)
		}
	}
	isLowDegree := func(v graph.VertexID) bool { return gatherDegree(v) <= threshold }

	stats := Stats{App: prog.Name(), Strategy: a.Strategy, Mode: mode}
	maxSteps := opts.MaxSupersteps
	if opts.FixedIterations > 0 {
		maxSteps = opts.FixedIterations
	}

	for step := 0; ; step++ {
		if maxSteps > 0 && step >= maxSteps {
			stats.Converged = len(frontier) == 0
			break
		}
		if opts.FixedIterations > 0 {
			// All vertices are active every iteration — including isolated
			// ones (Master < 0): they carry no replicas and no network, but
			// their value still evolves through Apply, exactly as in the
			// convergence-mode isolated-vertex branch below (e.g.
			// PageRank's (1−d) floor for degree-0 vertices).
			frontier = frontier[:0]
			for v := 0; v < n; v++ {
				frontier = append(frontier, graph.VertexID(v))
			}
		}
		if len(frontier) == 0 {
			stats.Converged = true
			break
		}

		for p := 0; p < a.NumParts; p++ {
			work[p], inBytes[p], outBytes[p] = 0, 0, 0
		}
		var dynBytes float64

		// ---- Gather + Apply ----
		// Embarrassingly parallel over the frontier: each shard reads vals
		// and writes newVals only at its own vertices' indexes, metering
		// into its private scratch. The merged change list is in frontier
		// order, exactly as the sequential loop produced it.
		nf := len(frontier)
		var gatherEdges int64
		changedList, gatherEdges, dynBytes = sh.Meter(nf, work, inBytes, outBytes, changedList[:0],
			func(lo, hi int, ms *Meters, ch []graph.VertexID) []graph.VertexID {
				for _, v := range frontier[lo:hi] {
					var acc A
					hasAcc := false
					if gatherDir == DirIn || gatherDir == DirBoth {
						nbrs := g.InNeighbors(v)
						eids := g.InEdgeIDs(v)
						for i, u := range nbrs {
							c := prog.Gather(g, u, v, vals[u], vals[v], v)
							if hasAcc {
								acc = prog.Sum(acc, c)
							} else {
								acc, hasAcc = c, true
							}
							ms.Work[a.EdgeParts[eids[i]]] += model.GatherEdgeNs
							ms.Edges++
						}
					}
					if gatherDir == DirOut || gatherDir == DirBoth {
						nbrs := g.OutNeighbors(v)
						eids := g.OutEdgeIDs(v)
						for i, u := range nbrs {
							c := prog.Gather(g, v, u, vals[v], vals[u], v)
							if hasAcc {
								acc = prog.Sum(acc, c)
							} else {
								acc, hasAcc = c, true
							}
							ms.Work[a.EdgeParts[eids[i]]] += model.GatherEdgeNs
							ms.Edges++
						}
					}

					master := a.Master(v)
					if master < 0 {
						// Isolated vertex: no replicas, no network — but its value
						// still evolves (e.g. PageRank's (1−d) floor, K-core
						// removal of degree-0 vertices).
						nv, changed := prog.Apply(g, v, vals[v], acc, hasAcc)
						newVals[v] = nv
						if changed {
							ch = append(ch, v)
						}
						continue
					}

					// Gather-stage network: partial accumulators flow from mirror
					// partitions to the master.
					low := isLowDegree(v)
					forEachGatherSource(mode, a, v, gatherDir, low, func(p int) {
						if p == master {
							return
						}
						if cfg.MachineOf(p) != cfg.MachineOf(master) {
							ms.Out[p] += accB
							ms.In[master] += accB
							ms.Dyn += accB
						}
					})

					// Apply at the master.
					nv, changed := prog.Apply(g, v, vals[v], acc, hasAcc)
					newVals[v] = nv
					ms.Work[master] += model.ApplyVertexNs
					if changed {
						ch = append(ch, v)
					}

					// Apply-stage network: the master pushes the updated value to
					// mirrors. PowerGraph syncs all mirrors of an active vertex
					// every superstep. PowerLyra processes low-degree vertices
					// GraphLab/Pregel-style (§6.1): their value travels as a
					// message, only when it changed, and only to partitions that
					// need it for scatter — the hybrid engine's synchronization
					// saving for natural applications.
					if mode == ModePowerLyra && low && !changed {
						continue
					}
					forEachSyncTarget(mode, a, v, scatterDir, low, func(p int) {
						if p == master {
							return
						}
						ms.Work[p] += model.ApplyVertexNs // mirror applies the update
						if cfg.MachineOf(p) != cfg.MachineOf(master) {
							ms.Out[master] += valB
							ms.In[p] += valB
							ms.Dyn += valB
						}
					})
				}
				return ch
			})
		stats.EdgesProcessed += gatherEdges

		// Commit applied values (disjoint indexes; no meters).
		sh.Do(nf, func(lo, hi int) {
			for _, v := range frontier[lo:hi] {
				vals[v] = newVals[v]
			}
		})

		// ---- Scatter: changed vertices activate neighbors ----
		// Meters stay per-shard; activation bits go to per-worker bitmaps
		// merged by OR (commutative and idempotent, so the merged frontier
		// is independent of shard→worker scheduling).
		stats.EdgesProcessed += sh.Scatter(len(changedList), work, inBytes, outBytes, nextActive,
			func(lo, hi int, ms *Meters, nb Bitset) {
				for _, v := range changedList[lo:hi] {
					if scatterDir == DirOut || scatterDir == DirBoth {
						nbrs := g.OutNeighbors(v)
						eids := g.OutEdgeIDs(v)
						for i, u := range nbrs {
							p := int(a.EdgeParts[eids[i]])
							ms.Work[p] += model.ScatterEdgeNs
							ms.Edges++
							um := a.Master(u)
							if um >= 0 && cfg.MachineOf(p) != cfg.MachineOf(um) {
								ms.Out[p] += sigB
								ms.In[um] += sigB
							}
							nb.Set(int(u))
						}
					}
					if scatterDir == DirIn || scatterDir == DirBoth {
						nbrs := g.InNeighbors(v)
						eids := g.InEdgeIDs(v)
						for i, u := range nbrs {
							p := int(a.EdgeParts[eids[i]])
							ms.Work[p] += model.ScatterEdgeNs
							ms.Edges++
							um := a.Master(u)
							if um >= 0 && cfg.MachineOf(p) != cfg.MachineOf(um) {
								ms.Out[p] += sigB
								ms.In[um] += sigB
							}
							nb.Set(int(u))
						}
					}
				}
			})

		before := run.SimSeconds
		run.StepPartitioned(work, inBytes, outBytes)
		stats.SuperstepSeconds = append(stats.SuperstepSeconds, run.SimSeconds-before)
		if dynBytes/float64(cfg.Machines) > peakDyn {
			peakDyn = dynBytes / float64(cfg.Machines)
		}

		// Programs with Pregel-style voting (Reactivator) keep vertices
		// active until the round produces no changes: bulk-iterative
		// applications like K-core re-examine the whole remaining
		// subgraph each round (§3.3.3). Shard boundaries fall on bitset
		// words, so concurrent Set calls never touch the same word.
		if reactivator != nil {
			if len(changedList) == 0 {
				stats.Supersteps++
				stats.Converged = true
				break
			}
			words := len(nextActive)
			ws := NumShards(words)
			ForEachShard(sh.Workers, ws, func(s, _ int) {
				wlo, whi := ShardRange(words, ws, s)
				vhi := whi * 64
				if vhi > n {
					vhi = n
				}
				for v := wlo * 64; v < vhi; v++ {
					if !nextActive.Get(v) && reactivator.StayActive(g, graph.VertexID(v), vals[v]) {
						nextActive.Set(v)
					}
				}
			})
		}

		// Next frontier.
		frontier = frontier[:0]
		nextActive.ForEach(func(i int) {
			frontier = append(frontier, graph.VertexID(i))
		})
		stats.Supersteps++
	}

	for m := 0; m < cfg.Machines; m++ {
		run.SetPeakMem(m, staticMem[m]+peakDyn)
	}
	stats.ComputeSeconds = run.SimSeconds
	stats.AvgNetInGB = run.AvgNetInGB()
	stats.PeakMemGB = run.MaxPeakMemGB()
	stats.CPUUtil = run.CPUUtilization()
	return &Outcome[V]{Values: vals, Stats: stats}, nil
}

// forEachGatherSource calls fn for each partition that sends a partial
// accumulator for v during gather, in ascending partition order.
func forEachGatherSource(mode Mode, a *partition.Assignment, v graph.VertexID, gatherDir Direction, lowDegree bool, fn func(p int)) {
	if mode == ModePowerGraph || !lowDegree {
		// Every mirror participates in the distributed gather.
		a.ForEachReplica(v, fn)
		return
	}
	// PowerLyra low-degree: only partitions actually holding
	// gather-direction edges contribute.
	switch gatherDir {
	case DirIn:
		a.ForEachReplica(v, func(p int) {
			if a.HasInEdges(v, p) {
				fn(p)
			}
		})
	case DirOut:
		a.ForEachReplica(v, func(p int) {
			if a.HasOutEdges(v, p) {
				fn(p)
			}
		})
	case DirBoth:
		a.ForEachReplica(v, func(p int) {
			if a.HasInEdges(v, p) || a.HasOutEdges(v, p) {
				fn(p)
			}
		})
	}
}

// forEachSyncTarget calls fn for each partition the master pushes v's new
// value to after apply, in ascending partition order.
func forEachSyncTarget(mode Mode, a *partition.Assignment, v graph.VertexID, scatterDir Direction, lowDegree bool, fn func(p int)) {
	if mode == ModePowerGraph || !lowDegree {
		a.ForEachReplica(v, fn)
		return
	}
	switch scatterDir {
	case DirOut:
		a.ForEachReplica(v, func(p int) {
			if a.HasOutEdges(v, p) {
				fn(p)
			}
		})
	case DirIn:
		a.ForEachReplica(v, func(p int) {
			if a.HasInEdges(v, p) {
				fn(p)
			}
		})
	default:
		a.ForEachReplica(v, fn)
	}
}

// staticMemPerMachine computes each machine's steady compute-phase memory.
func staticMemPerMachine(a *partition.Assignment, cfg cluster.Config, model cluster.CostModel) []float64 {
	mem := make([]float64, cfg.Machines)
	for p := 0; p < a.NumParts; p++ {
		m := cfg.MachineOf(p)
		mem[m] += float64(a.ReplicasOnPart(p))*float64(model.ReplicaBytes) +
			float64(a.EdgeCount[p])*float64(model.EdgeMemBytes)
	}
	return mem
}
