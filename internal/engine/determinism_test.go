package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// detCase is one application configuration of the determinism suite. Values
// are returned as `any` so every app shares one comparison path.
type detCase struct {
	name string
	run  func(mode engine.Mode, a *partition.Assignment, workers int) (any, engine.Stats, error)
}

func detOpts(workers int) engine.Options {
	return engine.Options{HighDegreeThreshold: 30, Workers: workers, MaxSupersteps: 4000}
}

func detCases() []detCase {
	return []detCase{
		{"PageRank(10)", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			opts := detOpts(w)
			opts.MaxSupersteps = 0
			opts.FixedIterations = 10
			out, err := engine.Run[float64, float64](mode, app.PageRank{}, a, cluster.Local9, model, opts)
			if err != nil {
				return nil, engine.Stats{}, err
			}
			return out.Values, out.Stats, nil
		}},
		{"PageRank(C)", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			out, err := engine.Run[float64, float64](mode, app.PageRank{Tolerance: 1e-2}, a, cluster.Local9, model, detOpts(w))
			if err != nil {
				return nil, engine.Stats{}, err
			}
			return out.Values, out.Stats, nil
		}},
		{"WCC", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			out, err := engine.Run[uint32, uint32](mode, app.WCC{}, a, cluster.Local9, model, detOpts(w))
			if err != nil {
				return nil, engine.Stats{}, err
			}
			return out.Values, out.Stats, nil
		}},
		{"SSSP", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			out, err := engine.Run[float64, float64](mode, app.SSSP{Source: 0}, a, cluster.Local9, model, detOpts(w))
			if err != nil {
				return nil, engine.Stats{}, err
			}
			return out.Values, out.Stats, nil
		}},
		{"K-Core", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			cores, stats, err := app.KCoreDecomposition(mode, 3, 6, a, cluster.Local9, model, detOpts(w))
			return cores, stats, err
		}},
		{"Coloring", func(mode engine.Mode, a *partition.Assignment, w int) (any, engine.Stats, error) {
			out, err := engine.Run[int32, app.ColorSet](mode, app.Coloring{}, a, cluster.Local9, model, detOpts(w))
			if err != nil {
				return nil, engine.Stats{}, err
			}
			return out.Values, out.Stats, nil
		}},
	}
}

// TestParallelEngineDeterminism pins the tentpole contract: for every
// application, engine mode, and representative strategy, a parallel run
// (Workers ≥ 2) produces byte-identical Stats and Values to the sequential
// run (Workers = 1). This is what lets the simulation keep its "metrics are
// deterministic functions of partitioning quality" claim while executing on
// however many cores the host has.
func TestParallelEngineDeterminism(t *testing.T) {
	graphs := map[string]*graph.Graph{
		// Skewed: a few shards carry hub vertices, stressing the dynamic
		// shard scheduler.
		"power-law": gen.PrefAttach("det-plaw", 2200, 5, 0x9),
	}
	strategies := []string{"Random", "Hybrid"}
	workerSet := []int{4}
	if !testing.Short() {
		strategies = append(strategies, "Grid", "HDRF")
		workerSet = append(workerSet, 2, 7)
		// High-diameter: thousands of small frontiers exercise the inline
		// (single-shard) path against the sharded one.
		graphs["road-net"] = gen.RoadNet("det-road", 45, 45, 0x9)
	}
	modes := []engine.Mode{engine.ModePowerGraph, engine.ModePowerLyra}

	for gname, g := range graphs {
		for _, strat := range strategies {
			s := partition.MustNew(strat, partition.Options{HybridThreshold: 30})
			a, err := partition.Partition(g, s, 9, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				for _, tc := range detCases() {
					t.Run(fmt.Sprintf("%s/%s/mode%d/%s", gname, strat, mode, tc.name), func(t *testing.T) {
						seqVals, seqStats, err := tc.run(mode, a, 1)
						if err != nil {
							t.Fatal(err)
						}
						for _, w := range workerSet {
							parVals, parStats, err := tc.run(mode, a, w)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(seqVals, parVals) {
								t.Errorf("Workers=%d Values differ from Workers=1", w)
							}
							if !reflect.DeepEqual(seqStats, parStats) {
								t.Errorf("Workers=%d Stats differ from Workers=1:\nseq: %+v\npar: %+v", w, seqStats, parStats)
							}
						}
					})
				}
			}
		}
	}
}

// TestFixedIterationsIncludesIsolatedVertices is the regression test for the
// frontier-rebuild bug: in FixedIterations mode, isolated vertices (Master <
// 0) were skipped by the all-active rebuild and never reached Apply, so
// PageRank(10) silently kept their init value instead of the (1−d) floor the
// convergence-mode isolated-vertex branch computes.
func TestFixedIterationsIncludesIsolatedVertices(t *testing.T) {
	// Vertices 3 and 4 are isolated: they carry no edges but sit below the
	// max vertex id, exactly how degree-0 vertices appear in edge-list
	// datasets.
	g := graph.FromEdges("isolated", []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 5, Dst: 6},
	})
	a, err := partition.Partition(g, partition.Random{}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.VertexID{3, 4} {
		if a.Master(v) >= 0 {
			t.Fatalf("test premise broken: vertex %d has a master", v)
		}
	}

	fixed, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{}, a, cluster.Local9, model,
		engine.Options{FixedIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := engine.Run[float64, float64](engine.ModePowerGraph, app.PageRank{}, a, cluster.Local9, model,
		engine.Options{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Compute the floor with the same runtime float64 arithmetic Apply
	// uses (1−0.85 is not exactly 0.15 in float64).
	d := float64(app.DefaultDamping)
	want := (1 - d) + d*0
	for _, v := range []graph.VertexID{3, 4} {
		if fixed.Values[v] != conv.Values[v] {
			t.Errorf("isolated vertex %d: PageRank(10) = %v, convergence mode = %v", v, fixed.Values[v], conv.Values[v])
		}
		if fixed.Values[v] != want {
			t.Errorf("isolated vertex %d: PageRank(10) = %v, want the (1−d) floor %v", v, fixed.Values[v], want)
		}
	}
}
