package cluster

import (
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/partition"
)

func TestConfigNumParts(t *testing.T) {
	if got := (Config{Machines: 9}).NumParts(); got != 9 {
		t.Errorf("NumParts = %d, want 9", got)
	}
	if got := GraphXLocal10.NumParts(); got != 40 {
		t.Errorf("GraphX NumParts = %d, want 40", got)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config validated")
	}
	if err := Local9.Validate(); err != nil {
		t.Errorf("Local9 invalid: %v", err)
	}
}

func TestMachineOfRoundRobin(t *testing.T) {
	cc := Config{Machines: 4, PartsPerMachine: 3}
	counts := make([]int, 4)
	for p := 0; p < cc.NumParts(); p++ {
		m := cc.MachineOf(p)
		if m < 0 || m >= 4 {
			t.Fatalf("MachineOf(%d) = %d", p, m)
		}
		counts[m]++
	}
	for m, c := range counts {
		if c != 3 {
			t.Errorf("machine %d hosts %d partitions, want 3", m, c)
		}
	}
}

func TestRunStepAccounting(t *testing.T) {
	model := DefaultModel()
	r := NewRun(Config{Machines: 2, PartsPerMachine: 1}, model)
	r.StepPartitioned([]float64{1e9, 2e9}, []float64{0, model.BandwidthBytesPerSec}, []float64{1, 2})
	// Step time = max work (2s) + max in (1s) + barrier.
	want := 2 + 1 + model.BarrierNs/1e9
	if diff := r.SimSeconds - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("SimSeconds = %v, want %v", r.SimSeconds, want)
	}
	if r.Machines[0].CPUBusyNs != 1e9 || r.Machines[1].CPUBusyNs != 2e9 {
		t.Errorf("busy = %v/%v", r.Machines[0].CPUBusyNs, r.Machines[1].CPUBusyNs)
	}
	if r.Machines[1].NetInBytes != model.BandwidthBytesPerSec {
		t.Errorf("net in = %v", r.Machines[1].NetInBytes)
	}
	util := r.CPUUtilization()
	if util[1] <= util[0] {
		t.Errorf("machine 1 (busier) should have higher utilization: %v", util)
	}
	for _, u := range util {
		if u < 0 || u > 1 {
			t.Errorf("utilization %v out of range", u)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	r := NewRun(Config{Machines: 2}, DefaultModel())
	r.StepPartitioned([]float64{0, 0}, []float64{1e9, 3e9}, nil)
	if got := r.AvgNetInGB(); got != 2 {
		t.Errorf("AvgNetInGB = %v, want 2", got)
	}
	r.SetPeakMem(0, 5e9)
	r.SetPeakMem(0, 4e9) // lower: must not overwrite
	r.SetPeakMem(1, 1e9)
	if got := r.MaxPeakMemGB(); got != 5 {
		t.Errorf("MaxPeakMemGB = %v, want 5", got)
	}
}

func TestUtilizationEmptyRun(t *testing.T) {
	r := NewRun(Local9, DefaultModel())
	for _, u := range r.CPUUtilization() {
		if u != 0 {
			t.Errorf("empty run utilization %v", u)
		}
	}
}

// ingressAssignment builds a small assignment for ingress-model tests.
func ingressAssignment(t *testing.T, strat partition.Strategy, parts int) *partition.Assignment {
	t.Helper()
	g := gen.PrefAttach("ingress-test", 3000, 6, 0x77)
	a, err := partition.Partition(g, strat, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIngressPhasesSumToTotal(t *testing.T) {
	a := ingressAssignment(t, partition.Random{}, 9)
	st := Ingress(a, partition.Random{}, Local9, DefaultModel())
	var sum float64
	for _, ph := range st.Phases {
		sum += ph.Seconds
	}
	if diff := st.Seconds - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("phases sum %v != total %v", sum, st.Seconds)
	}
	if st.Seconds <= 0 || st.PeakMemPerMachine <= 0 {
		t.Error("non-positive ingress stats")
	}
}

func TestIngressOrderings(t *testing.T) {
	model := DefaultModel()
	// The figure-level orderings (Grid fastest, greedy slower on skewed
	// graphs) are asserted by the fig5.7/fig6.4 experiments on the real
	// dataset stand-ins; here we verify the model's components: the
	// greedy family pays a strictly larger assignment phase, and Grid
	// beats Random because fewer replicas finalize faster (§5.4.4).
	random := Ingress(ingressAssignment(t, partition.Random{}, 25), partition.Random{}, EC2x25, model)
	grid := Ingress(ingressAssignment(t, partition.Grid{}, 25), partition.Grid{}, EC2x25, model)
	hdrf := Ingress(ingressAssignment(t, partition.HDRF{}, 25), partition.HDRF{}, EC2x25, model)
	hybrid := Ingress(ingressAssignment(t, partition.Hybrid{Threshold: 30}, 25), partition.Hybrid{Threshold: 30}, EC2x25, model)
	ginger := Ingress(ingressAssignment(t, partition.HybridGinger{Threshold: 30}, 25), partition.HybridGinger{Threshold: 30}, EC2x25, model)

	if grid.Seconds >= random.Seconds {
		t.Errorf("Grid ingress %.4f ≥ Random %.4f (lower-RF finalize should win, §5.4.4)", grid.Seconds, random.Seconds)
	}
	assignPhase := func(st IngressStats) float64 { return st.Phases[1].Seconds }
	if assignPhase(hdrf) <= assignPhase(random) {
		t.Errorf("HDRF assign phase %.4f ≤ Random %.4f", assignPhase(hdrf), assignPhase(random))
	}
	// H-Ginger is the slowest of all (§6.4.4).
	for name, st := range map[string]IngressStats{"Random": random, "HDRF": hdrf, "Hybrid": hybrid} {
		if ginger.Seconds <= st.Seconds {
			t.Errorf("H-Ginger ingress %.4f ≤ %s %.4f", ginger.Seconds, name, st.Seconds)
		}
	}
	// Multi-pass strategies carry the larger ingress memory footprint
	// (Fig 6.2).
	if hybrid.PeakMemPerMachine <= random.PeakMemPerMachine {
		t.Errorf("Hybrid ingress memory %.0f ≤ Random %.0f", hybrid.PeakMemPerMachine, random.PeakMemPerMachine)
	}
	if ginger.PeakMemPerMachine <= hybrid.PeakMemPerMachine {
		t.Errorf("H-Ginger ingress memory %.0f ≤ Hybrid %.0f", ginger.PeakMemPerMachine, hybrid.PeakMemPerMachine)
	}
}

func TestComputeMemPositive(t *testing.T) {
	a := ingressAssignment(t, partition.Random{}, 9)
	if m := ComputeMemPerMachine(a, Local9, DefaultModel()); m <= 0 {
		t.Errorf("ComputeMemPerMachine = %v", m)
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.BandwidthBytesPerSec <= 0 || m.BarrierNs <= 0 || m.GatherEdgeNs <= 0 {
		t.Fatal("default model has non-positive constants")
	}
	if m.ReplicaBytes <= 0 || m.EdgeMemBytes <= 0 {
		t.Fatal("default memory constants non-positive")
	}
}

// TestValidateRejectsNegativePartsPerMachine: 0 means "default to 1", but a
// negative count must be rejected before MachineOf misbehaves for callers
// that do not go through NumParts's clamp.
func TestValidateRejectsNegativePartsPerMachine(t *testing.T) {
	if err := (Config{Machines: 4, PartsPerMachine: -1}).Validate(); err == nil {
		t.Error("Validate accepted PartsPerMachine = -1")
	}
	if err := (Config{Machines: 4, PartsPerMachine: 0}).Validate(); err != nil {
		t.Errorf("Validate rejected PartsPerMachine = 0 (means default): %v", err)
	}
	if got := (Config{Machines: 4, PartsPerMachine: 0}).NumParts(); got != 4 {
		t.Errorf("NumParts with ppm=0 = %d, want 4", got)
	}
}
