package cluster

import (
	"graphpart/internal/partition"
)

// ChurnWindowStats is the simulated cost of absorbing one churn window
// incrementally: assign the additions, ship added + migrated edges to their
// partitions, and patch local structures (tombstone deletions, splice
// additions) — without reloading or repartitioning the live graph.
type ChurnWindowStats struct {
	Seconds         float64
	AssignSeconds   float64
	ShuffleSeconds  float64
	FinalizeSeconds float64
}

// ChurnWindow prices one incremental churn window on cluster cfg. added,
// deleted and migrated count the window's edge additions, deletions and
// rebalancer migrations. The model mirrors Ingress phase for phase, scaled
// to the delta instead of the whole edge list:
//
//   - assignment touches only added edges (hash strategies O(1)/edge, the
//     greedy family O(P)/edge via the shape's heuristic passes — a
//     persistent loader scores candidates exactly like one-shot ingress);
//   - added and migrated edges shuffle with the same (M−1)/M remote
//     fraction as one-shot ingress, assumed spread across machines;
//   - every touched edge (added, deleted, migrated) pays the finalize cost
//     to patch local structures, deletions as tombstones;
//   - one barrier closes the window.
//
// Deliberately absent: load from disk (churn arrives over the wire) and
// any full-scan term — which is precisely why incremental maintenance wins
// against per-window repartitioning (priced via Ingress) until migrations
// approach the live edge count.
func ChurnWindow(shape partition.IngressShape, numParts int, added, deleted, migrated int64, cfg Config, model CostModel) ChurnWindowStats {
	m := float64(cfg.Machines)

	assignPerEdge := model.HashAssignNs
	if shape.HeuristicPasses > 0 {
		assignPerEdge += model.HeuristicAssignNs * float64(numParts)
	}
	assignSec := float64(added) * assignPerEdge / 1e9

	remoteFrac := (m - 1) / m
	wire := float64(added+migrated) / m * remoteFrac * float64(model.EdgeWireBytes)
	shuffleSec := wire / model.BandwidthBytesPerSec

	touched := float64(added + deleted + 2*migrated) // a migration leaves one partition and enters another
	finalizeSec := touched / m * model.FinalizeEdgeNs / 1e9

	total := assignSec + shuffleSec + finalizeSec + model.BarrierNs/1e9
	return ChurnWindowStats{
		Seconds:         total,
		AssignSeconds:   assignSec,
		ShuffleSeconds:  shuffleSec,
		FinalizeSeconds: finalizeSec,
	}
}
