package cluster

import (
	"testing"

	"graphpart/internal/gen"
	"graphpart/internal/partition"
)

func TestChurnWindowCheaperThanRepartition(t *testing.T) {
	g := gen.PrefAttach("pa", 5000, 5, 1)
	cfg := Config{Machines: 8}
	model := DefaultModel()
	for _, name := range []string{"2D", "HDRF"} {
		s := partition.MustNew(name, partition.Options{})
		a, err := partition.Partition(g, s, cfg.NumParts(), 1)
		if err != nil {
			t.Fatal(err)
		}
		oneShot := Ingress(a, s, cfg, model).Seconds
		shape := partition.ShapeOf(s, cfg.NumParts())
		// A window touching 5% of the edges must be far cheaper than
		// repartitioning everything.
		win := ChurnWindow(shape, cfg.NumParts(), int64(g.NumEdges()/20), int64(g.NumEdges()/100), 0, cfg, model)
		if win.Seconds <= 0 {
			t.Fatalf("%s: non-positive window cost %v", name, win.Seconds)
		}
		if win.Seconds >= oneShot {
			t.Fatalf("%s: incremental window %vs not cheaper than one-shot ingress %vs", name, win.Seconds, oneShot)
		}
	}
}

func TestChurnWindowMonotoneInChurn(t *testing.T) {
	cfg := Config{Machines: 8}
	model := DefaultModel()
	shape := partition.ShapeOf(partition.MustNew("HDRF", partition.Options{}), 16)
	small := ChurnWindow(shape, 16, 1000, 100, 0, cfg, model)
	big := ChurnWindow(shape, 16, 10000, 1000, 500, cfg, model)
	if big.Seconds <= small.Seconds {
		t.Fatalf("10× churn not more expensive: %v vs %v", big.Seconds, small.Seconds)
	}
	if big.AssignSeconds <= small.AssignSeconds || big.ShuffleSeconds <= small.ShuffleSeconds {
		t.Fatal("phase costs not monotone in churn volume")
	}
}

func TestChurnWindowHeuristicCostsMore(t *testing.T) {
	cfg := Config{Machines: 8}
	model := DefaultModel()
	hashShape := partition.ShapeOf(partition.MustNew("2D", partition.Options{}), 16)
	greedyShape := partition.ShapeOf(partition.MustNew("Oblivious", partition.Options{}), 16)
	h := ChurnWindow(hashShape, 16, 5000, 0, 0, cfg, model)
	gr := ChurnWindow(greedyShape, 16, 5000, 0, 0, cfg, model)
	if gr.AssignSeconds <= h.AssignSeconds {
		t.Fatalf("greedy assignment %vs not dearer than hash %vs", gr.AssignSeconds, h.AssignSeconds)
	}
}
