package cluster

import (
	"graphpart/internal/partition"
)

// IngressStats describes the ingress (load + partition) phase of a job: the
// phase the paper times in Figs 5.7, 6.4 and 8.2 and whose memory footprint
// explains Figs 6.2/6.3.
type IngressStats struct {
	Strategy string
	// Seconds is the simulated ingress time: loading the edge list in
	// parallel, running the assignment logic (once per pass), shuffling
	// edges to their partitions, and finalizing local graph structures.
	Seconds float64
	// PeakMemPerMachine is the peak per-machine memory (bytes) reached
	// during ingress.
	PeakMemPerMachine float64
	// Phases breaks Seconds down for the memory timeline of Fig 6.3.
	Phases []IngressPhase
}

// IngressPhase is one segment of the ingress timeline.
type IngressPhase struct {
	Name    string
	Seconds float64
	// MemPerMachine is the per-machine memory level (bytes) while this
	// phase runs.
	MemPerMachine float64
}

// Ingress computes the simulated ingress phase for an assignment produced
// by strategy s on cluster cfg.
//
// The model: each machine loads |E|/M edges from disk, runs the assignment
// function over them (hash-based: O(1)/edge; greedy: O(P)/edge), shuffles
// every edge whose partition lives on another machine, and finalizes its
// local structures at a cost proportional to local edges and local vertex
// replicas. Multi-pass strategies (Hybrid: 2, H-Ginger: 3) repeat the scan
// and reshuffle, and hold larger buffers — reproducing both their slower
// ingress (Fig 6.4) and their above-trend peak memory (Fig 6.2).
//
// Pass structure, heuristic pricing and loader counts all come from the
// strategy's capability interfaces via partition.ShapeOf — the model knows
// no strategy names.
func Ingress(a *partition.Assignment, s partition.Strategy, cfg Config, model CostModel) IngressStats {
	m := float64(cfg.Machines)
	edges := float64(a.G.NumEdges())
	verts := float64(a.G.NumVertices())
	perLoader := edges / m

	// Phase 1: parallel load from disk.
	loadSec := perLoader * float64(model.EdgeWireBytes) / model.DiskBytesPerSec

	// Phase 2: assignment. Hash strategies pay HashAssignNs per edge; the
	// greedy family pays HeuristicAssignNs per candidate partition
	// (candidate set ≈ all partitions) per edge.
	shape := partition.ShapeOf(s, a.NumParts)
	passes := shape.Passes
	hp := shape.HeuristicPasses
	assignPerEdge := model.HashAssignNs * float64(passes)
	if hp > 0 {
		assignPerEdge += model.HeuristicAssignNs * float64(a.NumParts) * float64(hp)
	}
	assignSec := perLoader * assignPerEdge / 1e9

	// Phase 3: shuffle. An edge assigned to partition p by a loader on a
	// different machine crosses the network. With loaders striping the
	// edge list, a (M−1)/M fraction of each machine's inbound edges are
	// remote; inbound per machine is bounded by its own partition load.
	var maxInEdges float64
	inEdges := make([]float64, cfg.Machines)
	for p, c := range a.EdgeCount {
		inEdges[cfg.MachineOf(p)] += float64(c)
	}
	for _, c := range inEdges {
		if c > maxInEdges {
			maxInEdges = c
		}
	}
	remoteFrac := (m - 1) / m
	shuffleSec := maxInEdges * remoteFrac * float64(model.EdgeWireBytes) / model.BandwidthBytesPerSec
	// Multi-pass strategies reshuffle reassigned edges each extra pass; we
	// charge a partially-overlapped repeat of the shuffle per extra pass.
	shuffleSec *= 1 + model.IngressPassOverlap*float64(passes-1)

	// Phase 4: finalize local structures. This is where partition quality
	// pays off even during ingress: fewer replicas → cheaper finalization
	// (why Grid's ingress beats Random's despite both being hashes, §5.4.4).
	var maxFinalize float64
	replicas := make([]float64, cfg.Machines)
	for p := 0; p < a.NumParts; p++ {
		replicas[cfg.MachineOf(p)] += float64(a.ReplicasOnPart(p))
	}
	for mi := 0; mi < cfg.Machines; mi++ {
		f := (inEdges[mi]*model.FinalizeEdgeNs + replicas[mi]*model.FinalizeReplicaNs) / 1e9
		if f > maxFinalize {
			maxFinalize = f
		}
	}

	// Memory during ingress: raw edge buffers (larger for multi-pass
	// strategies, which hold the previous pass's assignment too), plus
	// per-vertex strategy state (degree counters, Ginger scores).
	var maxLocalEdges float64
	for _, c := range inEdges {
		if c > maxLocalEdges {
			maxLocalEdges = c
		}
	}
	bufFactor := model.IngressBufferFactor
	stateBytes := 0.0
	if shape.Streaming && shape.Loaders > 0 {
		// Greedy streaming strategies hold per-loader state: the placement
		// bit-matrix A(v), one bit per vertex per partition. Each machine
		// hosts ⌈loaders/M⌉ independent loader states during ingress
		// (§5.2.2). Degree counters stay governed by DegreeCounterBytes in
		// the multi-pass branch below; HDRF's partial degrees are small
		// next to A(v) and are not charged separately.
		perLoaderState := verts * float64(a.NumParts) / 8
		loadersPerMachine := float64((shape.Loaders + cfg.Machines - 1) / cfg.Machines)
		stateBytes += loadersPerMachine * perLoaderState
	}
	if passes >= 2 {
		bufFactor += 0.6 * float64(passes-1)
		stateBytes += verts * float64(model.DegreeCounterBytes)
	}
	if passes >= 3 {
		stateBytes += verts * float64(model.GingerStateBytes)
	}
	peakMem := maxLocalEdges*float64(model.EdgeMemBytes)*bufFactor +
		replicasMax(replicas)*float64(model.ReplicaBytes) + stateBytes

	phases := []IngressPhase{
		{Name: "load", Seconds: loadSec, MemPerMachine: maxLocalEdges * float64(model.EdgeMemBytes)},
		{Name: "assign+shuffle", Seconds: assignSec + shuffleSec, MemPerMachine: peakMem},
		{Name: "finalize", Seconds: maxFinalize, MemPerMachine: peakMem},
	}
	total := 0.0
	for _, ph := range phases {
		total += ph.Seconds
	}
	return IngressStats{
		Strategy:          a.Strategy,
		Seconds:           total,
		PeakMemPerMachine: peakMem,
		Phases:            phases,
	}
}

func replicasMax(rs []float64) float64 {
	var max float64
	for _, r := range rs {
		if r > max {
			max = r
		}
	}
	return max
}

// ComputeMemPerMachine returns the steady-state compute-phase memory of the
// most loaded machine: local replicas plus local edges.
func ComputeMemPerMachine(a *partition.Assignment, cfg Config, model CostModel) float64 {
	mem := make([]float64, cfg.Machines)
	for p := 0; p < a.NumParts; p++ {
		mi := cfg.MachineOf(p)
		mem[mi] += float64(a.ReplicasOnPart(p))*float64(model.ReplicaBytes) +
			float64(a.EdgeCount[p])*float64(model.EdgeMemBytes)
	}
	return replicasMax(mem)
}
