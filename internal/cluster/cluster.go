// Package cluster models the execution environment of the paper's
// experiments: a set of machines with CPUs, memory, and a network, plus a
// deterministic cost model that converts the exactly-counted work of a
// simulated run (edges gathered, bytes synchronized, barriers crossed) into
// simulated seconds, per-machine traffic, peak memory and CPU utilization —
// the four metrics of §4.3.
//
// All quantities are deterministic functions of (graph, assignment,
// application, cluster config), so experiments reproduce bit-for-bit.
package cluster

import "fmt"

// Config describes a cluster (§4.1, Table 4.1).
type Config struct {
	// Machines is the number of machines (9, 10, 16 or 25 in the paper).
	Machines int
	// PartsPerMachine is how many partitions each machine hosts.
	// PowerGraph/PowerLyra use 1; GraphX recommends one per core (§7.2) —
	// we default to 4 for the GraphX experiments, a scaled-down stand-in
	// for the paper's 16 cores that preserves the partitions≫machines
	// regime.
	PartsPerMachine int
}

// NumParts returns the total number of partitions.
func (c Config) NumParts() int {
	ppm := c.PartsPerMachine
	if ppm < 1 {
		ppm = 1
	}
	return c.Machines * ppm
}

// MachineOf maps a partition to its host machine (round-robin, as GraphX's
// block manager spreads partitions).
func (c Config) MachineOf(part int) int { return part % c.Machines }

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Machines < 1 {
		return fmt.Errorf("cluster: need ≥1 machine, got %d", c.Machines)
	}
	// 0 means "default to 1" (NumParts clamps it), but a negative value is
	// a configuration error: MachineOf would misbehave for callers that
	// index partitions without going through NumParts's clamp.
	if c.PartsPerMachine < 0 {
		return fmt.Errorf("cluster: PartsPerMachine must be ≥0, got %d", c.PartsPerMachine)
	}
	return nil
}

// Local9, Local10, EC2x16 and EC2x25 are the paper's four cluster shapes
// (Table 4.1).
var (
	Local9  = Config{Machines: 9, PartsPerMachine: 1}
	Local10 = Config{Machines: 10, PartsPerMachine: 1}
	EC2x16  = Config{Machines: 16, PartsPerMachine: 1}
	EC2x25  = Config{Machines: 25, PartsPerMachine: 1}
	// GraphXLocal10 is the 10-machine GraphX cluster with multiple
	// partitions per machine (§7.3).
	GraphXLocal10 = Config{Machines: 10, PartsPerMachine: 4}
	// GraphXLocal9 is the 9-machine cluster of the GraphX-all experiments
	// (§9.2).
	GraphXLocal9 = Config{Machines: 9, PartsPerMachine: 4}
)

// CostModel holds every constant of the simulation. Defaults are loosely
// calibrated to the paper's hardware (Table 4.1: 8–16 vCPUs, 10GbE-class
// networking) but only *ratios* matter for the reproduced shapes.
type CostModel struct {
	// Compute.
	GatherEdgeNs  float64 // CPU per gather-direction edge scanned
	ScatterEdgeNs float64 // CPU per scatter-direction edge scanned
	ApplyVertexNs float64 // CPU per vertex apply (per replica synchronized)

	// Network.
	BandwidthBytesPerSec float64 // per-machine NIC bandwidth
	BarrierNs            float64 // per minor-step barrier latency
	SignalBytes          int     // activation message size
	MsgOverheadBytes     int     // per-message framing/header bytes

	// Ingress.
	DiskBytesPerSec    float64 // edge-list read rate per machine
	EdgeWireBytes      int     // bytes per edge on disk / on the wire
	HashAssignNs       float64 // per-edge cost of a hash-based assignment
	HeuristicAssignNs  float64 // per-edge-per-partition cost of greedy scoring
	FinalizeEdgeNs     float64 // per local edge: building CSR etc.
	FinalizeReplicaNs  float64 // per local vertex replica: metadata setup
	IngressPassOverlap float64 // fraction of a repeat pass not overlapped

	// Memory.
	ReplicaBytes        int     // bytes per vertex replica during compute
	EdgeMemBytes        int     // bytes per local edge during compute
	IngressBufferFactor float64 // raw-edge-buffer multiplier during ingress
	DegreeCounterBytes  int     // per-vertex counter kept by multi-pass strategies
	GingerStateBytes    int     // additional per-vertex state for H-Ginger's phase

	// GraphX-specific.
	TaskOverheadNs  float64 // Spark task scheduling per partition per iteration
	RDDEdgeNs       float64 // per local edge per iteration (RDD scan/materialize)
	GCKnee          float64 // memory-pressure ratio where GC overhead takes off
	GCSlope         float64 // GC overhead multiplier slope past the knee
	ExecutorBase    float64 // fixed executor memory overhead (bytes)
	RedistributeSec float64 // cost of one failed fit + redistribution attempt
}

// DefaultModel returns the calibrated default cost model.
func DefaultModel() CostModel {
	return CostModel{
		GatherEdgeNs:  40,
		ScatterEdgeNs: 25,
		// Per-replica apply/synchronization CPU: deserialize, lock, update
		// vertex state, bookkeeping. Calibrated so that small-payload
		// applications (K-core's 4-byte counters) are CPU-bound while
		// float-valued all-active applications (PageRank) remain
		// network-bound — the regime split behind Fig 8.4.
		ApplyVertexNs: 600,

		// m4.2xlarge instances see ~1 Gbps per flow; network dominates
		// the compute phase, as in the paper's EC2 runs.
		BandwidthBytesPerSec: 1.25e8,
		BarrierNs:            1.2e6,
		SignalBytes:          8,
		MsgOverheadBytes:     48,

		DiskBytesPerSec:    1.0e8,
		EdgeWireBytes:      16,
		HashAssignNs:       55,
		HeuristicAssignNs:  25,
		FinalizeEdgeNs:     400,
		FinalizeReplicaNs:  2000,
		IngressPassOverlap: 0.8,

		ReplicaBytes:        96,
		EdgeMemBytes:        24,
		IngressBufferFactor: 2.4,
		DegreeCounterBytes:  8,
		GingerStateBytes:    24,

		TaskOverheadNs:  2.5e6,
		RDDEdgeNs:       55,
		GCKnee:          0.55,
		GCSlope:         2.2,
		ExecutorBase:    64 << 20,
		RedistributeSec: 35,
	}
}

// MachineStats accumulates one machine's meters over a run, mirroring what
// the paper's psutil monitors sample (§4.3).
type MachineStats struct {
	CPUBusyNs   float64 // time the machine spent doing useful work
	NetInBytes  float64 // inbound traffic (the paper reports inbound only)
	NetOutBytes float64
	PeakMem     float64 // peak bytes over the run (max−min, background-free)
}

// Run accumulates a simulated execution: a simulated clock plus per-machine
// meters. Engines report per-partition work and traffic for each
// (minor-)step; Run folds partitions onto machines and advances the clock
// by the slowest machine, modeling the synchronous engines' barriers.
type Run struct {
	Cfg   Config
	Model CostModel

	SimSeconds float64
	Machines   []MachineStats
	Steps      int

	// scratch, sized to Machines
	work, in, out []float64
}

// NewRun prepares an accumulator for a cluster.
func NewRun(cfg Config, model CostModel) *Run {
	return &Run{
		Cfg:      cfg,
		Model:    model,
		Machines: make([]MachineStats, cfg.Machines),
		work:     make([]float64, cfg.Machines),
		in:       make([]float64, cfg.Machines),
		out:      make([]float64, cfg.Machines),
	}
}

// StepPartitioned advances the clock by one synchronous step given
// per-partition CPU work (ns) and traffic (bytes). Partitions map onto
// machines via Cfg.MachineOf. The step costs
//
//	max_m(work) + max_m(inBytes)/bandwidth + barrier
//
// and every machine's meters advance by its own share.
func (r *Run) StepPartitioned(workNs, inBytes, outBytes []float64) {
	for m := range r.work {
		r.work[m], r.in[m], r.out[m] = 0, 0, 0
	}
	for p := range workNs {
		m := r.Cfg.MachineOf(p)
		r.work[m] += workNs[p]
		if inBytes != nil {
			r.in[m] += inBytes[p]
		}
		if outBytes != nil {
			r.out[m] += outBytes[p]
		}
	}
	var maxWork, maxIn float64
	for m := 0; m < r.Cfg.Machines; m++ {
		if r.work[m] > maxWork {
			maxWork = r.work[m]
		}
		if r.in[m] > maxIn {
			maxIn = r.in[m]
		}
		r.Machines[m].CPUBusyNs += r.work[m]
		r.Machines[m].NetInBytes += r.in[m]
		r.Machines[m].NetOutBytes += r.out[m]
	}
	r.SimSeconds += maxWork/1e9 + maxIn/r.Model.BandwidthBytesPerSec + r.Model.BarrierNs/1e9
	r.Steps++
}

// SetPeakMem records a machine's peak memory if larger than seen so far.
func (r *Run) SetPeakMem(machine int, bytes float64) {
	if bytes > r.Machines[machine].PeakMem {
		r.Machines[machine].PeakMem = bytes
	}
}

// CPUUtilization returns each machine's busy fraction of the simulated
// wall-clock — the quantity box-plotted in Fig 8.4.
func (r *Run) CPUUtilization() []float64 {
	out := make([]float64, r.Cfg.Machines)
	if r.SimSeconds <= 0 {
		return out
	}
	for m := range out {
		out[m] = (r.Machines[m].CPUBusyNs / 1e9) / r.SimSeconds
	}
	return out
}

// AvgNetInGB returns the mean per-machine inbound traffic in GB (the y-axis
// of Figs 5.3, 6.1 and 8.3).
func (r *Run) AvgNetInGB() float64 {
	var sum float64
	for _, m := range r.Machines {
		sum += m.NetInBytes
	}
	return sum / float64(len(r.Machines)) / 1e9
}

// MaxPeakMemGB returns the maximum per-machine peak memory in GB (the
// y-axis of Figs 5.5 and 6.2).
func (r *Run) MaxPeakMemGB() float64 {
	var max float64
	for _, m := range r.Machines {
		if m.PeakMem > max {
			max = m.PeakMem
		}
	}
	return max / 1e9
}
