package report

import (
	"strings"
	"testing"
)

func twoCellReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "benchrunner",
		Experiments: []Experiment{
			{
				ID: "e1", Title: "one",
				Cells: []Cell{
					{Dims: Dims{Dataset: "road-ca", Strategy: "HDRF"}, Metric: "rf", Value: 1.5, Unit: "ratio"},
					{Dims: Dims{Dataset: "road-ca", Strategy: "Grid"}, Metric: "rf", Value: 2.0, Unit: "ratio"},
				},
				Checks: []Check{
					{Claim: "HDRF beats Grid", Observed: "1.5 < 2.0 ✓", Pass: true},
					{Claim: "known deviation", Observed: "✗", Pass: false},
				},
			},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	if diffs := Compare(twoCellReport(), twoCellReport(), 0); len(diffs) != 0 {
		t.Fatalf("identical reports diff: %+v", diffs)
	}
}

func TestCompareToleranceAndRegression(t *testing.T) {
	base, cur := twoCellReport(), twoCellReport()
	// Inside tolerance: no diff.
	cur.Experiments[0].Cells[0].Value = 1.5 * (1 + 1e-9)
	if diffs := Compare(base, cur, 1e-6); len(diffs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %+v", diffs)
	}
	// Tolerance 0 demands exactness: the same tiny drift flags.
	if diffs := Compare(base, cur, 0); len(diffs) != 1 {
		t.Fatalf("exact compare missed a drift: %+v", diffs)
	}
	// Negative tolerance falls back to the default, which absorbs it.
	if diffs := Compare(base, cur, -1); len(diffs) != 0 {
		t.Fatalf("negative tolerance did not use the default: %+v", diffs)
	}
	// Beyond tolerance: one value diff, direction-agnostic.
	cur.Experiments[0].Cells[0].Value = 1.2
	diffs := Compare(base, cur, 1e-6)
	if len(diffs) != 1 || diffs[0].Kind != DiffValue {
		t.Fatalf("diffs = %+v, want one value diff", diffs)
	}
	if diffs[0].Base != 1.5 || diffs[0].Current != 1.2 {
		t.Errorf("diff values = %+v", diffs[0])
	}
	if !strings.Contains(diffs[0].String(), "e1") {
		t.Errorf("diff string %q missing experiment id", diffs[0].String())
	}
}

// TestCompareThroughputTolerance: rate cells ("…/s" units) get the wide
// ThroughputRelTol band instead of the exactness gate — they measure
// wall-clock, not the deterministic simulation — but a collapse beyond the
// band still flags, and non-rate units (including bare "s") stay tight.
func TestCompareThroughputTolerance(t *testing.T) {
	mk := func(edgesPerSec, seconds float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Tool:          "benchrunner",
			Experiments: []Experiment{{
				ID: "perf", Title: "perf",
				Cells: []Cell{
					{Dims: Dims{Dataset: "uk-web", Variant: "v2/stream"}, Metric: "throughput", Value: edgesPerSec, Unit: "edges/s"},
					{Dims: Dims{Dataset: "uk-web", Variant: "v2/stream"}, Metric: "elapsed", Value: seconds, Unit: "s"},
				},
			}},
		}
	}
	base := mk(1e6, 1.0)
	// 2× slower: well within ThroughputRelTol, no diff even at tolerance 0.
	if diffs := Compare(base, mk(5e5, 1.0), 0); len(diffs) != 0 {
		t.Fatalf("2x throughput swing flagged: %+v", diffs)
	}
	// 10× slower: beyond the band, flags.
	if diffs := Compare(base, mk(1e5, 1.0), 0); len(diffs) != 1 || diffs[0].Kind != DiffValue {
		t.Fatalf("10x throughput collapse not flagged: %+v", diffs)
	}
	// A bare "s" unit is not a rate: small drift flags at the tight default.
	if diffs := Compare(base, mk(1e6, 1.001), -1); len(diffs) != 1 {
		t.Fatalf("seconds drift not gated tightly: %+v", diffs)
	}
	// An explicit tolerance wider than ThroughputRelTol wins.
	if diffs := Compare(base, mk(1e5, 1.0), 0.95); len(diffs) != 0 {
		t.Fatalf("explicit wide tolerance ignored for rate cells: %+v", diffs)
	}
}

func TestCompareMissingCell(t *testing.T) {
	base, cur := twoCellReport(), twoCellReport()
	cur.Experiments[0].Cells = cur.Experiments[0].Cells[:1]
	diffs := Compare(base, cur, 0)
	if len(diffs) != 1 || diffs[0].Kind != DiffMissingCell {
		t.Fatalf("diffs = %+v, want one missing-cell", diffs)
	}
	if !strings.Contains(diffs[0].Key, "strategy=Grid") {
		t.Errorf("missing-cell key = %q", diffs[0].Key)
	}
	// New cells in cur are additions, not regressions.
	base2, cur2 := twoCellReport(), twoCellReport()
	cur2.Experiments[0].Cells = append(cur2.Experiments[0].Cells,
		Cell{Dims: Dims{Dataset: "new"}, Metric: "rf", Value: 3})
	if diffs := Compare(base2, cur2, 0); len(diffs) != 0 {
		t.Fatalf("added cell flagged: %+v", diffs)
	}
}

func TestCompareMissingExperimentAndError(t *testing.T) {
	base, cur := twoCellReport(), twoCellReport()
	cur.Experiments = nil
	diffs := Compare(base, cur, 0)
	if len(diffs) != 1 || diffs[0].Kind != DiffMissingExperiment {
		t.Fatalf("diffs = %+v, want one missing-experiment", diffs)
	}

	base2, cur2 := twoCellReport(), twoCellReport()
	cur2.Experiments[0].Error = "exploded"
	diffs = Compare(base2, cur2, 0)
	if len(diffs) != 1 || diffs[0].Kind != DiffError {
		t.Fatalf("diffs = %+v, want one error diff", diffs)
	}

	// A baseline experiment that itself errored gates nothing.
	base3, cur3 := twoCellReport(), twoCellReport()
	base3.Experiments[0].Error = "was broken"
	cur3.Experiments = nil
	if diffs := Compare(base3, cur3, 0); len(diffs) != 0 {
		t.Fatalf("errored baseline experiment gated: %+v", diffs)
	}
}

func TestCompareCheckRegression(t *testing.T) {
	// A passing baseline check that now fails regresses.
	base, cur := twoCellReport(), twoCellReport()
	cur.Experiments[0].Checks[0].Pass = false
	diffs := Compare(base, cur, 0)
	if len(diffs) != 1 || diffs[0].Kind != DiffCheck {
		t.Fatalf("diffs = %+v, want one check diff", diffs)
	}
	// A check that failed in the baseline may keep failing.
	base2, cur2 := twoCellReport(), twoCellReport()
	cur2.Experiments[0].Checks[1].Observed = "still failing"
	if diffs := Compare(base2, cur2, 0); len(diffs) != 0 {
		t.Fatalf("pre-existing failure flagged: %+v", diffs)
	}
	// A passing check that vanished regresses too.
	base3, cur3 := twoCellReport(), twoCellReport()
	cur3.Experiments[0].Checks = cur3.Experiments[0].Checks[1:]
	diffs = Compare(base3, cur3, 0)
	if len(diffs) != 1 || diffs[0].Kind != DiffCheck || !strings.Contains(diffs[0].Detail, "missing") {
		t.Fatalf("diffs = %+v, want one vanished-check diff", diffs)
	}
}

// TestScoped: scoping a full baseline to a partial/filtered run must drop
// unselected experiments and pruned cells so they don't read as
// regressions, while nil ids keeps everything.
func TestScoped(t *testing.T) {
	base := twoCellReport()
	base.Experiments = append(base.Experiments, Experiment{
		ID: "e2", Title: "two",
		Cells: []Cell{{Dims: Dims{Dataset: "twitter"}, Metric: "rf", Value: 4}},
	})

	scoped := base.Scoped([]string{"e1"}, nil)
	if len(scoped.Experiments) != 1 || scoped.Experiments[0].ID != "e1" {
		t.Fatalf("scoped experiments = %+v", scoped.Experiments)
	}
	if len(base.Experiments) != 2 {
		t.Fatal("Scoped mutated the original report")
	}

	f, _ := ParseFilter("strategy=HDRF")
	scoped = base.Scoped(nil, f)
	if len(scoped.Experiments) != 2 {
		t.Fatalf("nil ids dropped experiments: %+v", scoped.Experiments)
	}
	if got := len(scoped.Experiments[0].Cells); got != 1 {
		t.Fatalf("filter kept %d cells, want 1", got)
	}
	if scoped.Experiments[0].Cells[0].Dims.Strategy != "HDRF" {
		t.Errorf("wrong cell survived: %+v", scoped.Experiments[0].Cells[0])
	}

	// The composition Compare(base.Scoped(run, filter), filteredRun) is
	// regression-free when the run is simply a subset.
	cur := twoCellReport()
	cur.Experiments[0].Cells = cur.Experiments[0].Cells[:1] // "filtered" to HDRF
	if diffs := Compare(base.Scoped([]string{"e1"}, f), cur, 0); len(diffs) != 0 {
		t.Fatalf("scoped compare flagged a clean subset run: %+v", diffs)
	}
}

func TestRelDelta(t *testing.T) {
	if relDelta(0, 0) != 0 {
		t.Error("relDelta(0,0) != 0")
	}
	if d := relDelta(1, 2); d != 0.5 {
		t.Errorf("relDelta(1,2) = %v, want 0.5", d)
	}
	if relDelta(-1, 1) != 2 {
		t.Errorf("relDelta(-1,1) = %v, want 2", relDelta(-1, 1))
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("dataset=road, strategy=HDRF,dataset=twitter")
	if err != nil {
		t.Fatal(err)
	}
	if len(f["dataset"]) != 2 || len(f["strategy"]) != 1 {
		t.Fatalf("filter = %+v", f)
	}
	if f.String() != "dataset=road,dataset=twitter,strategy=HDRF" {
		t.Errorf("String = %q", f.String())
	}
	if nilF, err := ParseFilter("  "); err != nil || nilF != nil {
		t.Errorf("blank filter = %+v, %v", nilF, err)
	}
	for _, bad := range []string{"dataset", "=x", "dataset=", "bogus=1"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) accepted", bad)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	f, err := ParseFilter("dataset=road,strategy=hdrf")
	if err != nil {
		t.Fatal(err)
	}
	hit := Cell{Dims: Dims{Dataset: "road-usa", Strategy: "HDRF"}, Metric: "rf"}
	if !f.Match(hit) {
		t.Error("substring + case-insensitive match failed")
	}
	for _, miss := range []Cell{
		{Dims: Dims{Dataset: "twitter", Strategy: "HDRF"}}, // wrong dataset
		{Dims: Dims{Dataset: "road-ca", Strategy: "Grid"}}, // wrong strategy
		{Dims: Dims{Strategy: "HDRF"}},                     // dataset absent
	} {
		if f.Match(miss) {
			t.Errorf("filter matched %+v", miss)
		}
	}
	var nilF Filter
	if !nilF.Match(hit) {
		t.Error("nil filter must match everything")
	}
	mf, _ := ParseFilter("metric=rf")
	if !mf.Match(hit) || mf.Match(Cell{Metric: "balance"}) {
		t.Error("metric filter misbehaved")
	}
	// parts is numeric: exact match only, no substring semantics.
	pf, _ := ParseFilter("parts=2")
	if pf.Match(Cell{Dims: Dims{Parts: 25}}) {
		t.Error("parts=2 matched parts=25")
	}
	if !pf.Match(Cell{Dims: Dims{Parts: 2}}) {
		t.Error("parts=2 missed parts=2")
	}
}
