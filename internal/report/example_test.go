package report_test

import (
	"fmt"

	"graphpart/internal/report"
)

// ExampleCompare diffs a fresh report against a baseline: a drifted cell
// value and a check that stopped passing are both regressions; new cells are
// not. cmd/benchrunner -compare exits non-zero on exactly these diffs.
func ExampleCompare() {
	cell := func(strategy string, v float64) report.Cell {
		return report.Cell{
			Dims:   report.Dims{Dataset: "road-ca", Strategy: strategy, Parts: 9},
			Metric: "replication-factor", Value: v, Unit: "ratio",
		}
	}
	base := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Experiments: []report.Experiment{{
			ID:     "fig5.6",
			Cells:  []report.Cell{cell("HDRF", 1.19), cell("Random", 2.54)},
			Checks: []report.Check{{Claim: "greedy beats random", Pass: true}},
		}},
	}
	cur := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Experiments: []report.Experiment{{
			ID:     "fig5.6",
			Cells:  []report.Cell{cell("HDRF", 1.32), cell("Random", 2.54), cell("Grid", 2.05)},
			Checks: []report.Check{{Claim: "greedy beats random", Pass: false}},
		}},
	}

	diffs := report.Compare(base, cur, report.DefaultRelTol)
	for _, d := range diffs {
		fmt.Printf("%s: %s\n", d.Kind, d.Key)
	}
	// Output:
	// value: dataset=road-ca|strategy=HDRF|parts=9|metric=replication-factor
	// check: greedy beats random
}
