package report

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report")

// sampleReport is a small fixed report exercising every schema field.
func sampleReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "benchrunner",
		Manifest: Manifest{
			Config: ConfigInfo{Scale: 1, Seed: 1, HybridThreshold: 30, Workers: 2},
			Filter: "dataset=road",
			Experiments: []ManifestEntry{
				{ID: "fig5.6", Cells: 2, Checks: 1, Passed: 1, Seconds: 0.25},
				{ID: "tab5.1", Error: "synthetic failure"},
			},
			TotalSeconds: 0.25,
		},
		Experiments: []Experiment{
			{
				ID: "fig5.6", Title: "Replication factors", Paper: "Random always highest",
				Cells: []Cell{
					{Dims: Dims{Dataset: "road-ca", Strategy: "HDRF", Engine: "PowerGraph", Cluster: "EC2-25", Parts: 25},
						Metric: "replication-factor", Value: 1.234, Unit: "ratio"},
					{Dims: Dims{Dataset: "road-ca", Strategy: "Random", Engine: "PowerGraph", Cluster: "EC2-25", Parts: 25},
						Metric: "replication-factor", Value: 1.987, Unit: "ratio"},
				},
				Checks: []Check{
					{Claim: "Random has the highest RF", Observed: "Random 1.987 vs HDRF 1.234 ✓", Pass: true},
				},
				Seconds: 0.25,
			},
			{ID: "tab5.1", Title: "Grid vs HDRF", Cells: []Cell{}, Error: "synthetic failure"},
		},
	}
}

// TestGoldenSchema pins the JSON layout: consumers (CI diffs, the
// BENCH_*.json trajectory, external tooling) parse this exact shape.
func TestGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded report differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleReport()
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mutated the report:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong version", func(r *Report) { r.SchemaVersion = 99 }, "schema version"},
		{"empty id", func(r *Report) { r.Experiments[0].ID = "" }, "empty id"},
		{"duplicate id", func(r *Report) { r.Experiments[1].ID = "fig5.6" }, "duplicate"},
		{"empty metric", func(r *Report) { r.Experiments[0].Cells[0].Metric = "" }, "empty metric"},
		{"NaN value", func(r *Report) { r.Experiments[0].Cells[0].Value = math.NaN() }, "non-finite"},
		{"empty claim", func(r *Report) { r.Experiments[0].Checks[0].Claim = "" }, "empty claim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			tc.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad report")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
	if err := sampleReport().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestDimsKeyAndField(t *testing.T) {
	d := Dims{Dataset: "road-ca", Strategy: "HDRF", Parts: 25}
	if got := d.Key(); got != "dataset=road-ca|strategy=HDRF|parts=25" {
		t.Errorf("Key = %q", got)
	}
	c := Cell{Dims: d, Metric: "rf"}
	if got := c.Key(); got != "dataset=road-ca|strategy=HDRF|parts=25|metric=rf" {
		t.Errorf("cell Key = %q", got)
	}
	if got := (Cell{Metric: "rf"}).Key(); got != "metric=rf" {
		t.Errorf("dimensionless cell Key = %q", got)
	}
	if v, ok := d.Field("strategy"); !ok || v != "HDRF" {
		t.Errorf("Field(strategy) = %q, %v", v, ok)
	}
	if v, ok := d.Field("parts"); !ok || v != "25" {
		t.Errorf("Field(parts) = %q, %v", v, ok)
	}
	if _, ok := d.Field("nope"); ok {
		t.Error("unknown field accepted")
	}
}
