package report

import (
	"fmt"
	"math"
	"strings"
)

// DefaultRelTol is Compare's default relative tolerance. Experiment runs
// are deterministic, so the gate is tight; the slack absorbs float noise
// across toolchains, not real drift.
const DefaultRelTol = 1e-6

// ThroughputRelTol is the tolerance Compare applies to rate cells — any
// unit ending in "/s" (edges/s, B/s). Unlike the simulated-cluster metrics,
// these are wall-clock measurements and vary with the machine; the wide
// band still gates order-of-magnitude regressions (a symmetric relative
// delta of 0.75 flags anything ≥4× slower than baseline) without turning
// every CI run into noise. It widens, never tightens: an explicit -tolerance
// above it wins.
const ThroughputRelTol = 0.75

// Diff kinds reported by Compare.
const (
	DiffValue             = "value"              // cell present in both, value drifted
	DiffMissingCell       = "missing-cell"       // baseline cell absent from current
	DiffMissingExperiment = "missing-experiment" // baseline experiment absent from current
	DiffCheck             = "check"              // check passed in baseline, fails (or vanished) now
	DiffError             = "error"              // experiment errored in current run
)

// Diff is one regression Compare found against a baseline report.
type Diff struct {
	Experiment string  `json:"experiment"`
	Kind       string  `json:"kind"`
	Key        string  `json:"key"`
	Base       float64 `json:"base,omitempty"`
	Current    float64 `json:"current,omitempty"`
	RelDelta   float64 `json:"relDelta,omitempty"`
	Detail     string  `json:"detail"`
}

func (d Diff) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Experiment, d.Kind, d.Detail)
}

// Scoped returns a copy of the report restricted to the given experiment
// IDs (nil keeps every experiment) with f applied to cells. Scope a full
// baseline this way before Compare when the current run selected a subset
// of experiments (-run) or filtered its cells (-filter): otherwise every
// unselected experiment and pruned cell reads as a regression. A full
// (-all, unfiltered) run should compare against the unscoped baseline so
// genuinely vanished experiments still flag.
func (r *Report) Scoped(ids []string, f Filter) *Report {
	keep := map[string]bool{}
	for _, id := range ids {
		keep[id] = true
	}
	out := *r
	out.Experiments = nil
	for _, e := range r.Experiments {
		if ids != nil && !keep[e.ID] {
			continue
		}
		if f != nil {
			cells := make([]Cell, 0, len(e.Cells))
			for _, c := range e.Cells {
				if f.Match(c) {
					cells = append(cells, c)
				}
			}
			e.Cells = cells
		}
		out.Experiments = append(out.Experiments, e)
	}
	return &out
}

// relDelta is the symmetric relative difference |a-b| / max(|a|, |b|);
// zero when both values are zero.
func relDelta(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// Compare diffs cur against the baseline cell-by-cell with a relative
// tolerance (0 demands exact equality; negative means DefaultRelTol) and
// returns every regression: drifted values, baseline cells or experiments
// missing from cur, checks that passed in the baseline but not now, and
// experiments that errored. Cells and experiments that are new in cur are
// not regressions. Wall-clock Seconds are ignored, and rate cells (any
// unit ending in "/s") are gated at ThroughputRelTol when that is wider
// than relTol — throughput is machine-dependent in a way the simulated
// metrics are not.
func Compare(base, cur *Report, relTol float64) []Diff {
	if relTol < 0 {
		relTol = DefaultRelTol
	}
	curByID := map[string]*Experiment{}
	for i := range cur.Experiments {
		curByID[cur.Experiments[i].ID] = &cur.Experiments[i]
	}
	var diffs []Diff
	for bi := range base.Experiments {
		be := &base.Experiments[bi]
		if be.Error != "" {
			continue // a baseline failure gates nothing
		}
		ce, ok := curByID[be.ID]
		if !ok {
			diffs = append(diffs, Diff{
				Experiment: be.ID, Kind: DiffMissingExperiment, Key: be.ID,
				Detail: fmt.Sprintf("experiment %q in baseline but not in current report", be.ID),
			})
			continue
		}
		if ce.Error != "" {
			diffs = append(diffs, Diff{
				Experiment: be.ID, Kind: DiffError, Key: be.ID,
				Detail: fmt.Sprintf("experiment errored: %s", ce.Error),
			})
			continue
		}
		diffs = append(diffs, compareCells(be, ce, relTol)...)
		diffs = append(diffs, compareChecks(be, ce)...)
	}
	return diffs
}

// compareCells matches cells by key; duplicate keys within one experiment
// (e.g. repeated phases) are matched positionally.
func compareCells(base, cur *Experiment, relTol float64) []Diff {
	curByKey := map[string][]Cell{}
	for _, c := range cur.Cells {
		k := c.Key()
		curByKey[k] = append(curByKey[k], c)
	}
	seen := map[string]int{}
	var diffs []Diff
	for _, bc := range base.Cells {
		k := bc.Key()
		i := seen[k]
		seen[k]++
		matches := curByKey[k]
		if i >= len(matches) {
			diffs = append(diffs, Diff{
				Experiment: base.ID, Kind: DiffMissingCell, Key: k,
				Base:   bc.Value,
				Detail: fmt.Sprintf("cell %s (baseline %g %s) missing from current report", k, bc.Value, bc.Unit),
			})
			continue
		}
		cc := matches[i]
		tol := relTol
		if strings.HasSuffix(bc.Unit, "/s") && tol < ThroughputRelTol {
			tol = ThroughputRelTol
		}
		if rd := relDelta(bc.Value, cc.Value); rd > tol {
			diffs = append(diffs, Diff{
				Experiment: base.ID, Kind: DiffValue, Key: k,
				Base: bc.Value, Current: cc.Value, RelDelta: rd,
				Detail: fmt.Sprintf("%s: %g → %g (Δrel %.3g > tol %.3g)", k, bc.Value, cc.Value, rd, tol),
			})
		}
	}
	return diffs
}

// compareChecks flags checks that passed in the baseline but fail or are
// gone in cur. Checks match by claim, positionally among duplicates.
func compareChecks(base, cur *Experiment) []Diff {
	curByClaim := map[string][]Check{}
	for _, c := range cur.Checks {
		curByClaim[c.Claim] = append(curByClaim[c.Claim], c)
	}
	seen := map[string]int{}
	var diffs []Diff
	for _, bc := range base.Checks {
		i := seen[bc.Claim]
		seen[bc.Claim]++
		if !bc.Pass {
			continue
		}
		matches := curByClaim[bc.Claim]
		if i >= len(matches) {
			diffs = append(diffs, Diff{
				Experiment: base.ID, Kind: DiffCheck, Key: bc.Claim,
				Detail: fmt.Sprintf("check %q passed in baseline but is missing now", bc.Claim),
			})
			continue
		}
		if !matches[i].Pass {
			diffs = append(diffs, Diff{
				Experiment: base.ID, Kind: DiffCheck, Key: bc.Claim,
				Detail: fmt.Sprintf("check %q regressed: passed in baseline, fails now (%s)", bc.Claim, matches[i].Observed),
			})
		}
	}
	return diffs
}
