// Package report defines the machine-readable result schema shared by the
// experiment harness (internal/bench), cmd/benchrunner and cmd/partition:
// typed measurement cells keyed by the paper's dimensions (dataset ×
// strategy × app × engine), structured pass/fail checks, and a versioned
// JSON report with a run manifest. Rendering (plain tables, markdown) is a
// view over these records; this package is the data they are derived from,
// and what cross-run regression diffing (Compare) consumes.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// SchemaVersion identifies the report layout. Bump it on incompatible
// changes; Decode rejects reports from other versions.
const SchemaVersion = 1

// Dims identifies one cell of the paper's measurement matrix. Every field
// is optional: an experiment fills in the dimensions it varies. Parts is
// the partition count; Variant labels an ablation knob (λ, threshold,
// loader count, …) that is not one of the paper's primary dimensions.
type Dims struct {
	Dataset  string `json:"dataset,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	App      string `json:"app,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Cluster  string `json:"cluster,omitempty"`
	Parts    int    `json:"parts,omitempty"`
	Variant  string `json:"variant,omitempty"`
}

// Key returns the canonical string form of d, used to match cells across
// reports and to apply dimension filters.
func (d Dims) Key() string {
	var sb strings.Builder
	for _, kv := range [...]struct{ k, v string }{
		{"dataset", d.Dataset},
		{"strategy", d.Strategy},
		{"app", d.App},
		{"engine", d.Engine},
		{"cluster", d.Cluster},
		{"variant", d.Variant},
	} {
		if kv.v != "" {
			fmt.Fprintf(&sb, "%s=%s|", kv.k, kv.v)
		}
	}
	if d.Parts != 0 {
		fmt.Fprintf(&sb, "parts=%d|", d.Parts)
	}
	return strings.TrimSuffix(sb.String(), "|")
}

// Field returns the dimension value for a filter key ("dataset",
// "strategy", "app", "engine", "cluster", "variant", "parts").
func (d Dims) Field(key string) (string, bool) {
	switch key {
	case "dataset":
		return d.Dataset, true
	case "strategy":
		return d.Strategy, true
	case "app":
		return d.App, true
	case "engine":
		return d.Engine, true
	case "cluster":
		return d.Cluster, true
	case "variant":
		return d.Variant, true
	case "parts":
		if d.Parts == 0 {
			return "", true
		}
		return fmt.Sprintf("%d", d.Parts), true
	}
	return "", false
}

// Cell is one typed measurement: a metric value at one point of the
// dimension matrix.
type Cell struct {
	Dims   Dims    `json:"dims"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit,omitempty"`
}

// Key identifies the cell for cross-report matching: dims plus metric.
func (c Cell) Key() string {
	k := c.Dims.Key()
	if k == "" {
		return "metric=" + c.Metric
	}
	return k + "|metric=" + c.Metric
}

// Check is a structured verdict: one qualitative claim from the paper,
// the measured evidence, and whether this run reproduced it.
type Check struct {
	Claim    string `json:"claim"`
	Observed string `json:"observed,omitempty"`
	Pass     bool   `json:"pass"`
}

// Experiment is one experiment's typed output in a report.
type Experiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Paper  string  `json:"paper,omitempty"`
	Cells  []Cell  `json:"cells"`
	Checks []Check `json:"checks,omitempty"`
	// Seconds is wall-clock runtime; it varies run to run and is ignored
	// by Compare.
	Seconds float64 `json:"seconds"`
	// Error is set when the experiment failed to run; Cells is then empty.
	Error string `json:"error,omitempty"`
}

// ConfigInfo records the bench.Config a report was produced with.
type ConfigInfo struct {
	Scale           int    `json:"scale"`
	Seed            uint64 `json:"seed"`
	HybridThreshold int    `json:"hybridThreshold"`
	Workers         int    `json:"workers"`
}

// ManifestEntry summarizes one experiment in the manifest.
type ManifestEntry struct {
	ID      string  `json:"id"`
	Cells   int     `json:"cells"`
	Checks  int     `json:"checks"`
	Passed  int     `json:"passed"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// Manifest describes the run that produced a report.
type Manifest struct {
	Config       ConfigInfo      `json:"config"`
	Filter       string          `json:"filter,omitempty"`
	Experiments  []ManifestEntry `json:"experiments"`
	TotalSeconds float64         `json:"totalSeconds"`
}

// Report is the versioned top-level JSON document.
type Report struct {
	SchemaVersion int          `json:"schemaVersion"`
	Tool          string       `json:"tool"`
	Manifest      Manifest     `json:"manifest"`
	Experiments   []Experiment `json:"experiments"`
}

// WriteFile streams emit to the named file — or to stdout for "-" — and
// surfaces flush/close errors so a failed write never leaves truncated
// output behind a zero exit.
func WriteFile(path string, stdout io.Writer, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads and validates a report.
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the schema invariants: a supported version, non-empty
// experiment and metric names, and finite values.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("report: schema version %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	seen := map[string]bool{}
	for _, e := range r.Experiments {
		if e.ID == "" {
			return fmt.Errorf("report: experiment with empty id")
		}
		if seen[e.ID] {
			return fmt.Errorf("report: duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		for _, c := range e.Cells {
			if c.Metric == "" {
				return fmt.Errorf("report: %s: cell with empty metric (%s)", e.ID, c.Dims.Key())
			}
			if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
				return fmt.Errorf("report: %s: non-finite value for %s", e.ID, c.Key())
			}
		}
		for _, ch := range e.Checks {
			if ch.Claim == "" {
				return fmt.Errorf("report: %s: check with empty claim", e.ID)
			}
		}
	}
	return nil
}
