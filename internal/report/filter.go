package report

import (
	"fmt"
	"strings"
)

// Filter selects cells by dimension: each key maps to the accepted values
// (OR within a key, AND across keys). Matching is case-insensitive
// substring, so "dataset=road" selects both road-ca and road-usa.
type Filter map[string][]string

// filterKeys are the accepted filter dimensions; "metric" matches the
// cell's metric name rather than a Dims field.
var filterKeys = map[string]bool{
	"dataset": true, "strategy": true, "app": true, "engine": true,
	"cluster": true, "variant": true, "parts": true, "metric": true,
}

// ParseFilter parses "dataset=road,strategy=HDRF" into a Filter. Repeating
// a key ("dataset=road,dataset=twitter") ORs its values.
func ParseFilter(s string) (Filter, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	f := Filter{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("report: bad filter term %q (want key=value)", part)
		}
		if !filterKeys[k] {
			return nil, fmt.Errorf("report: unknown filter key %q (have dataset, strategy, app, engine, cluster, variant, parts, metric)", k)
		}
		f[k] = append(f[k], v)
	}
	if len(f) == 0 {
		return nil, nil
	}
	return f, nil
}

// Match reports whether the cell satisfies every filter key. A nil filter
// matches everything. Name-like keys match by case-insensitive substring;
// "parts" is numeric and compares exactly (parts=2 must not select 25).
func (f Filter) Match(c Cell) bool {
	//graphlint:unordered pure conjunction over all entries — order-independent
	for key, wants := range f {
		var have string
		if key == "metric" {
			have = c.Metric
		} else {
			have, _ = c.Dims.Field(key)
		}
		have = strings.ToLower(have)
		ok := false
		for _, w := range wants {
			if key == "parts" {
				if have == w {
					ok = true
					break
				}
				continue
			}
			if strings.Contains(have, strings.ToLower(w)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the filter back to its flag form (keys sorted by first
// use is not preserved; this is for the manifest, not round-tripping).
func (f Filter) String() string {
	var terms []string
	for _, k := range []string{"dataset", "strategy", "app", "engine", "cluster", "variant", "parts", "metric"} {
		for _, v := range f[k] {
			terms = append(terms, k+"="+v)
		}
	}
	return strings.Join(terms, ",")
}
