package bench

import (
	"runtime"
	"sync"
	"time"

	"graphpart/internal/report"
)

// RunResult pairs an experiment with its typed outcome.
type RunResult struct {
	Experiment Experiment
	Result     *Result // nil when Err != nil
	Seconds    float64
	Err        error
}

// Runner executes selected experiments concurrently and assembles the
// typed JSON report. Concurrency is safe because every experiment is
// deterministic and the shared caches (assignments, loaded datasets,
// per-config sweeps) are mutex-guarded with once-per-key computation:
// interleaving changes wall-clock only, never a cell value.
//
// Config.Workers bounds each layer independently — up to Workers
// experiments in flight, each running its engine supersteps and ingress
// on up to Workers goroutines. Goroutines beyond GOMAXPROCS time-slice
// rather than add OS-level parallelism, so the layers need no shared
// budget; the bound exists to keep memory in check, not the CPU.
type Runner struct {
	Config Config
	// Filter optionally restricts which cells make it into the report's
	// experiment entries. Checks and the manifest always cover the full
	// run: ManifestEntry.Cells counts every emitted cell, so coverage
	// stays auditable even when the filter prunes everything.
	Filter report.Filter
	// Progress, when set, is called as each experiment finishes — in
	// completion order, serialized — so long concurrent runs can report
	// liveness before the in-order rendering starts.
	Progress func(RunResult)
}

func (r Runner) workers() int {
	if w := r.Config.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes exps on Config.Workers goroutines (≤0 = GOMAXPROCS) and
// returns the results in input order.
func (r Runner) Run(exps []Experiment) []RunResult {
	out := make([]RunResult, len(exps))
	sem := make(chan struct{}, r.workers())
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := e.Run(r.Config)
			out[i] = RunResult{Experiment: e, Result: res, Seconds: time.Since(start).Seconds(), Err: err}
			if r.Progress != nil {
				progressMu.Lock()
				r.Progress(out[i])
				progressMu.Unlock()
			}
		}(i, e)
	}
	wg.Wait()
	return out
}

// Report assembles the machine-readable report: the run manifest (config,
// filter, per-experiment timings and cell counts) plus every experiment's
// cells (filtered) and checks. TotalSeconds sums per-experiment runtimes —
// compute time, not wall-clock, under concurrency.
func (r Runner) Report(results []RunResult) *report.Report {
	rep := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Tool:          "benchrunner",
		Experiments:   []report.Experiment{},
	}
	rep.Manifest.Config = r.Config.Info()
	rep.Manifest.Filter = r.Filter.String()
	for _, rr := range results {
		entry := report.ManifestEntry{ID: rr.Experiment.ID, Seconds: rr.Seconds}
		exp := report.Experiment{
			ID:      rr.Experiment.ID,
			Title:   rr.Experiment.Title,
			Paper:   rr.Experiment.Paper,
			Cells:   []report.Cell{},
			Seconds: rr.Seconds,
		}
		if rr.Err != nil {
			entry.Error = rr.Err.Error()
			exp.Error = rr.Err.Error()
		} else {
			for _, c := range rr.Result.Cells {
				if r.Filter.Match(c) {
					exp.Cells = append(exp.Cells, c)
				}
			}
			exp.Checks = rr.Result.Checks
			entry.Cells = len(rr.Result.Cells)
			entry.Checks = len(exp.Checks)
			for _, ch := range exp.Checks {
				if ch.Pass {
					entry.Passed++
				}
			}
		}
		rep.Manifest.Experiments = append(rep.Manifest.Experiments, entry)
		rep.Manifest.TotalSeconds += rr.Seconds
		rep.Experiments = append(rep.Experiments, exp)
	}
	return rep
}
