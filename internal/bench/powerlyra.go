package bench

// PowerLyra experiments: chapter 6 (Figs 6.1–6.6).

import (
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/metrics"
	"graphpart/internal/report"
)

// powerLyraStrategies are PowerLyra's measurable native strategies (§6.2;
// PDS excluded as in §5.2.3).
var powerLyraStrategies = []string{"Random", "Grid", "Oblivious", "Hybrid", "H-Ginger"}

// hybridFamily marks the strategies the Figs 6.1/6.2 regression lines
// intentionally exclude.
func hybridFamily(name string) bool { return name == "Hybrid" || name == "H-Ginger" }

type plPoint struct {
	strategy string
	rf       float64
	netGB    float64
	peakMem  float64
}

// plSweep runs one application over all PowerLyra strategies on uk-web,
// EC2-25, under the hybrid engine.
func plSweep(cfg Config, appName string) ([]plPoint, error) {
	model := cfg.model()
	cc := cluster.EC2x25
	var out []plPoint
	for _, strat := range powerLyraStrategies {
		a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
		if err != nil {
			return nil, err
		}
		s, err := strategyFor(cfg, strat)
		if err != nil {
			return nil, err
		}
		ing := cluster.Ingress(a, s, cc, model)
		for _, spec := range paperApps() {
			if spec.name != appName {
				continue
			}
			stats, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
			if err != nil {
				return nil, err
			}
			peak := stats.PeakMemGB
			if m := ing.PeakMemPerMachine / 1e9; m > peak {
				peak = m
			}
			out = append(out, plPoint{strat, a.ReplicationFactor(), stats.AvgNetInGB, peak})
		}
	}
	return out, nil
}

// plDims are the cell dimensions of the chapter-6 uk-web/EC2-25 sweeps.
func plDims(strategy, app string) report.Dims {
	return report.Dims{Dataset: "uk-web", Strategy: strategy, App: app,
		Engine: enginePowerLyra, Cluster: "EC2-25", Parts: cluster.EC2x25.NumParts()}
}

// fitExcludingHybrids fits the RF→metric line through the non-hybrid
// points, as the paper's Figs 6.1/6.2 do.
func fitExcludingHybrids(points []plPoint, pick func(plPoint) float64) (metrics.LinFit, error) {
	var xs, ys []float64
	for _, p := range points {
		if hybridFamily(p.strategy) {
			continue
		}
		xs = append(xs, p.rf)
		ys = append(ys, pick(p))
	}
	return metrics.Fit(xs, ys)
}

func init() {
	register(fig61())
	register(fig62())
	register(fig63())
	register(fig64())
	register(fig65())
	register(fig66())
}

func fig61() Experiment {
	return Experiment{
		ID:    "fig6.1",
		Title: "Network IO vs. replication factor under the hybrid engine (PowerLyra, EC2-25, UK-web, PageRank)",
		Paper: "Hybrid and Hybrid-Ginger use less network than their replication factor predicts when running natural applications (they sit below the regression line)",
		Run: func(cfg Config) (*Result, error) {
			points, err := plSweep(cfg, "PageRank(10)")
			if err != nil {
				return nil, err
			}
			fit, err := fitExcludingHybrids(points, func(p plPoint) float64 { return p.netGB })
			if err != nil {
				return nil, err
			}
			r := NewResult("fig6.1", "Net-in GB vs RF, PageRank under PowerLyra",
				"strategy", "replication-factor", "net-in-GB", "vs-trend")
			for _, p := range points {
				resid := fit.Residual(p.rf, p.netGB)
				pos := "below line"
				if resid > 0 {
					pos = "above line"
				}
				d := plDims(p.strategy, "PageRank(10)")
				r.Row(d).Col(p.strategy).
					Metric("replication-factor", p.rf, "ratio", 3).
					Metric("net-in-GB", p.netGB, "GB", 3).
					Col(pos).
					Value("trend-residual-GB", resid, "GB")
			}
			for _, p := range points {
				if !hybridFamily(p.strategy) {
					continue
				}
				pass := fit.Residual(p.rf, p.netGB) < 0
				r.Checkf(pass, p.strategy+" sits below the non-hybrid network trend for natural PageRank",
					"%s below the non-hybrid trend for natural PageRank: %s (residual %.4g GB)",
					p.strategy, Mark(pass), fit.Residual(p.rf, p.netGB))
			}
			r.Notef("non-hybrid trend: slope=%.4g R²=%.3f", fit.Slope, fit.R2)
			return r, nil
		},
	}
}

func fig62() Experiment {
	return Experiment{
		ID:    "fig6.2",
		Title: "Peak memory vs. replication factor (PowerLyra, EC2-25, UK-web)",
		Paper: "Hybrid and Hybrid-Ginger sit above the memory trend (multi-pass ingress overheads); H-Ginger higher than Hybrid",
		Run: func(cfg Config) (*Result, error) {
			points, err := plSweep(cfg, "PageRank(C)")
			if err != nil {
				return nil, err
			}
			fit, err := fitExcludingHybrids(points, func(p plPoint) float64 { return p.peakMem })
			if err != nil {
				return nil, err
			}
			r := NewResult("fig6.2", "Peak memory GB vs RF under PowerLyra",
				"strategy", "replication-factor", "peak-mem-GB", "vs-trend")
			var hybridMem, gingerMem float64
			for _, p := range points {
				resid := fit.Residual(p.rf, p.peakMem)
				pos := "below line"
				if resid > 0 {
					pos = "above line"
				}
				r.Row(plDims(p.strategy, "PageRank(C)")).Col(p.strategy).
					Metric("replication-factor", p.rf, "ratio", 3).
					Metric("peak-mem-GB", p.peakMem, "GB", 3).
					Col(pos)
				switch p.strategy {
				case "Hybrid":
					hybridMem = p.peakMem
				case "H-Ginger":
					gingerMem = p.peakMem
				}
			}
			for _, p := range points {
				if !hybridFamily(p.strategy) {
					continue
				}
				pass := fit.Residual(p.rf, p.peakMem) > 0
				r.Checkf(pass, p.strategy+" sits above the memory trend",
					"%s above the memory trend: %s", p.strategy, Mark(pass))
			}
			pass := gingerMem > hybridMem
			r.Checkf(pass, "H-Ginger peaks higher than Hybrid",
				"H-Ginger (%.3f GB) has higher peak memory than Hybrid (%.3f GB): %s", gingerMem, hybridMem, Mark(pass))
			return r, nil
		},
	}
}

func fig63() Experiment {
	return Experiment{
		ID:    "fig6.3",
		Title: "Memory utilization over time (PowerLyra, EC2-25, UK-web, PageRank)",
		Paper: "peak memory is reached during the ingress phase for every partitioning strategy; the black dot (end of ingress) comes after the peak",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			r := NewResult("fig6.3", "Memory timeline (per-machine GB)",
				"strategy", "phase", "t-start-s", "t-end-s", "mem-GB")
			for _, strat := range powerLyraStrategies {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				s, err := strategyFor(cfg, strat)
				if err != nil {
					return nil, err
				}
				ing := cluster.Ingress(a, s, cc, model)
				var stats engine.Stats
				for _, spec := range paperApps() {
					if spec.name == "PageRank(C)" {
						stats, err = spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
						if err != nil {
							return nil, err
						}
					}
				}
				t0 := 0.0
				ingressPeak := 0.0
				for _, ph := range ing.Phases {
					r.Row(report.Dims{Dataset: "uk-web", Strategy: strat, Engine: enginePowerLyra,
						Cluster: clusterName(cc), Parts: cc.NumParts(), Variant: "ingress:" + ph.Name}).
						Col(strat, "ingress:"+ph.Name).
						Metric("t-start-s", t0, "s", 3).
						Metric("t-end-s", t0+ph.Seconds, "s", 3).
						Metric("mem-GB", ph.MemPerMachine/1e9, "GB", 3)
					t0 += ph.Seconds
					if ph.MemPerMachine > ingressPeak {
						ingressPeak = ph.MemPerMachine
					}
				}
				r.Row(report.Dims{Dataset: "uk-web", Strategy: strat, App: "PageRank(C)",
					Engine: enginePowerLyra, Cluster: clusterName(cc), Parts: cc.NumParts(), Variant: "compute"}).
					Col(strat, "compute").
					Metric("t-start-s", t0, "s", 3).
					Metric("t-end-s", t0+stats.ComputeSeconds, "s", 3).
					Metric("mem-GB", stats.PeakMemGB, "GB", 3)
				pass := ingressPeak/1e9 >= stats.PeakMemGB
				r.Checkf(pass, "peak memory is reached during ingress for "+strat,
					"%s: peak reached during ingress (%.3f GB ≥ compute %.3f GB) %s",
					strat, ingressPeak/1e9, stats.PeakMemGB, Mark(pass))
			}
			return r, nil
		},
	}
}

func fig64() Experiment {
	return Experiment{
		ID:    "fig6.4",
		Title: "Ingress times for PowerLyra (all strategies × graphs × clusters)",
		Paper: "H-Ginger has significantly slower ingress than every other strategy; Hybrid is slower than the single-pass hashes",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			r := NewResult("fig6.4", "PowerLyra ingress times (s)",
				"graph", "cluster", "strategy", "ingress-seconds")
			times := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerLyraStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						st := cluster.Ingress(a, s, cc, model)
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("ingress-seconds", st.Seconds, "s", 3)
						times[ds+"/"+clusterName(cc)+"/"+strat] = st.Seconds
					}
				}
			}
			pass := true
			for _, ds := range pgDatasets {
				key := ds + "/EC2-25/"
				if times[key+"H-Ginger"] <= times[key+"Hybrid"] {
					pass = false
				}
			}
			r.Checkf(pass, "H-Ginger ingress slower than Hybrid on every graph",
				"H-Ginger slower than Hybrid on every graph (EC2-25): %s", Mark(pass))
			return r, nil
		},
	}
}

func fig65() Experiment {
	return Experiment{
		ID:    "fig6.5",
		Title: "Replication factors for PowerLyra",
		Paper: "Oblivious best on road networks and uk-web; Grid and Hybrid both low on LiveJournal/Twitter; H-Ginger only slightly better than Hybrid; Random worst",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("fig6.5", "PowerLyra replication factors",
				"graph", "cluster", "strategy", "replication-factor")
			rfs := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerLyraStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("replication-factor", a.ReplicationFactor(), "ratio", 3)
						rfs[ds+"/"+clusterName(cc)+"/"+strat] = a.ReplicationFactor()
					}
				}
			}
			obl := true
			for _, ds := range []string{"road-ca", "road-usa", "uk-web"} {
				key := ds + "/EC2-25/"
				if rfs[key+"Oblivious"] >= rfs[key+"Random"] || rfs[key+"Oblivious"] >= rfs[key+"Grid"] {
					obl = false
				}
			}
			r.Checkf(obl, "Oblivious has the lowest-family RF on road networks and uk-web",
				"Oblivious lowest-family RF on road networks and uk-web: %s", Mark(obl))
			gin := true
			for _, ds := range pgDatasets {
				key := ds + "/EC2-25/"
				if rfs[key+"H-Ginger"] > rfs[key+"Hybrid"]*1.05 {
					gin = false
				}
			}
			r.Checkf(gin, "H-Ginger RF at most marginally above Hybrid's everywhere",
				"H-Ginger ≤ ~Hybrid RF everywhere (only slight improvement): %s", Mark(gin))
			return r, nil
		},
	}
}

func fig66() Experiment {
	return Experiment{
		ID:    "fig6.6",
		Title: "PowerLyra decision tree validation (natural apps prefer Hybrid)",
		Paper: "pairing Hybrid with a natural application (PageRank) beats pairing it with a non-natural one relative to Oblivious; low-degree graphs still prefer Oblivious",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			r := NewResult("fig6.6", "Hybrid synergy with natural applications",
				"app", "natural", "strategy", "net-in-GB", "compute-s")
			type key struct{ app, strat string }
			net := map[key]float64{}
			for _, strat := range []string{"Oblivious", "Hybrid"} {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				for _, spec := range paperApps() {
					if spec.name != "PageRank(10)" && spec.name != "WCC" {
						continue
					}
					stats, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					nat := "no"
					if spec.natural {
						nat = "yes"
					}
					r.Row(plDims(strat, spec.name)).Col(spec.name, nat, strat).
						Metric("net-in-GB", stats.AvgNetInGB, "GB", 3).
						Metric("compute-s", stats.ComputeSeconds, "s", 3)
					net[key{spec.name, strat}] = stats.AvgNetInGB
				}
			}
			// Hybrid's network advantage over Oblivious should be larger
			// for the natural app than the non-natural one.
			prRatio := net[key{"PageRank(10)", "Hybrid"}] / net[key{"PageRank(10)", "Oblivious"}]
			wccRatio := net[key{"WCC", "Hybrid"}] / net[key{"WCC", "Oblivious"}]
			pass := prRatio < wccRatio
			r.Checkf(pass, "Hybrid's network advantage is larger for the natural app",
				"Hybrid/Oblivious net ratio: PageRank %.3f vs WCC %.3f (natural synergy) %s", prRatio, wccRatio, Mark(pass))
			return r, nil
		},
	}
}
