package bench

// PowerLyra experiments: chapter 6 (Figs 6.1–6.6).

import (
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/metrics"
)

// powerLyraStrategies are PowerLyra's measurable native strategies (§6.2;
// PDS excluded as in §5.2.3).
var powerLyraStrategies = []string{"Random", "Grid", "Oblivious", "Hybrid", "H-Ginger"}

// hybridFamily marks the strategies the Figs 6.1/6.2 regression lines
// intentionally exclude.
func hybridFamily(name string) bool { return name == "Hybrid" || name == "H-Ginger" }

type plPoint struct {
	strategy string
	rf       float64
	netGB    float64
	peakMem  float64
}

// plSweep runs one application over all PowerLyra strategies on uk-web,
// EC2-25, under the hybrid engine.
func plSweep(cfg Config, appName string) ([]plPoint, error) {
	model := cfg.model()
	cc := cluster.EC2x25
	var out []plPoint
	for _, strat := range powerLyraStrategies {
		a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
		if err != nil {
			return nil, err
		}
		s, err := strategyFor(cfg, strat)
		if err != nil {
			return nil, err
		}
		ing := cluster.Ingress(a, s, cc, model)
		for _, spec := range paperApps() {
			if spec.name != appName {
				continue
			}
			stats, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
			if err != nil {
				return nil, err
			}
			peak := stats.PeakMemGB
			if m := ing.PeakMemPerMachine / 1e9; m > peak {
				peak = m
			}
			out = append(out, plPoint{strat, a.ReplicationFactor(), stats.AvgNetInGB, peak})
		}
	}
	return out, nil
}

// fitExcludingHybrids fits the RF→metric line through the non-hybrid
// points, as the paper's Figs 6.1/6.2 do.
func fitExcludingHybrids(points []plPoint, pick func(plPoint) float64) (metrics.LinFit, error) {
	var xs, ys []float64
	for _, p := range points {
		if hybridFamily(p.strategy) {
			continue
		}
		xs = append(xs, p.rf)
		ys = append(ys, pick(p))
	}
	return metrics.Fit(xs, ys)
}

func init() {
	register(fig61())
	register(fig62())
	register(fig63())
	register(fig64())
	register(fig65())
	register(fig66())
}

func fig61() Experiment {
	return Experiment{
		ID:    "fig6.1",
		Title: "Network IO vs. replication factor under the hybrid engine (PowerLyra, EC2-25, UK-web, PageRank)",
		Paper: "Hybrid and Hybrid-Ginger use less network than their replication factor predicts when running natural applications (they sit below the regression line)",
		Run: func(cfg Config) (*Table, error) {
			points, err := plSweep(cfg, "PageRank(10)")
			if err != nil {
				return nil, err
			}
			fit, err := fitExcludingHybrids(points, func(p plPoint) float64 { return p.netGB })
			if err != nil {
				return nil, err
			}
			t := &Table{ID: "fig6.1", Title: "Net-in GB vs RF, PageRank under PowerLyra",
				Columns: []string{"strategy", "replication-factor", "net-in-GB", "vs-trend"}}
			for _, p := range points {
				resid := fit.Residual(p.rf, p.netGB)
				pos := "below line"
				if resid > 0 {
					pos = "above line"
				}
				t.AddRow(p.strategy, f3(p.rf), f3(p.netGB), pos)
			}
			for _, p := range points {
				if !hybridFamily(p.strategy) {
					continue
				}
				verdict := "✓"
				if fit.Residual(p.rf, p.netGB) >= 0 {
					verdict = "✗"
				}
				t.Notef("%s below the non-hybrid trend for natural PageRank: %s (residual %.4g GB)",
					p.strategy, verdict, fit.Residual(p.rf, p.netGB))
			}
			t.Notef("non-hybrid trend: slope=%.4g R²=%.3f", fit.Slope, fit.R2)
			return t, nil
		},
	}
}

func fig62() Experiment {
	return Experiment{
		ID:    "fig6.2",
		Title: "Peak memory vs. replication factor (PowerLyra, EC2-25, UK-web)",
		Paper: "Hybrid and Hybrid-Ginger sit above the memory trend (multi-pass ingress overheads); H-Ginger higher than Hybrid",
		Run: func(cfg Config) (*Table, error) {
			points, err := plSweep(cfg, "PageRank(C)")
			if err != nil {
				return nil, err
			}
			fit, err := fitExcludingHybrids(points, func(p plPoint) float64 { return p.peakMem })
			if err != nil {
				return nil, err
			}
			t := &Table{ID: "fig6.2", Title: "Peak memory GB vs RF under PowerLyra",
				Columns: []string{"strategy", "replication-factor", "peak-mem-GB", "vs-trend"}}
			var hybridMem, gingerMem float64
			for _, p := range points {
				resid := fit.Residual(p.rf, p.peakMem)
				pos := "below line"
				if resid > 0 {
					pos = "above line"
				}
				t.AddRow(p.strategy, f3(p.rf), f3(p.peakMem), pos)
				switch p.strategy {
				case "Hybrid":
					hybridMem = p.peakMem
				case "H-Ginger":
					gingerMem = p.peakMem
				}
			}
			for _, p := range points {
				if !hybridFamily(p.strategy) {
					continue
				}
				verdict := "✓"
				if fit.Residual(p.rf, p.peakMem) <= 0 {
					verdict = "✗"
				}
				t.Notef("%s above the memory trend: %s", p.strategy, verdict)
			}
			verdict := "✓"
			if gingerMem <= hybridMem {
				verdict = "✗"
			}
			t.Notef("H-Ginger (%.3f GB) has higher peak memory than Hybrid (%.3f GB): %s", gingerMem, hybridMem, verdict)
			return t, nil
		},
	}
}

func fig63() Experiment {
	return Experiment{
		ID:    "fig6.3",
		Title: "Memory utilization over time (PowerLyra, EC2-25, UK-web, PageRank)",
		Paper: "peak memory is reached during the ingress phase for every partitioning strategy; the black dot (end of ingress) comes after the peak",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			t := &Table{ID: "fig6.3", Title: "Memory timeline (per-machine GB)",
				Columns: []string{"strategy", "phase", "t-start-s", "t-end-s", "mem-GB"}}
			for _, strat := range powerLyraStrategies {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				s, err := strategyFor(cfg, strat)
				if err != nil {
					return nil, err
				}
				ing := cluster.Ingress(a, s, cc, model)
				var stats engine.Stats
				for _, spec := range paperApps() {
					if spec.name == "PageRank(C)" {
						stats, err = spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
						if err != nil {
							return nil, err
						}
					}
				}
				t0 := 0.0
				ingressPeak := 0.0
				for _, ph := range ing.Phases {
					t.AddRow(strat, "ingress:"+ph.Name, f3(t0), f3(t0+ph.Seconds), f3(ph.MemPerMachine/1e9))
					t0 += ph.Seconds
					if ph.MemPerMachine > ingressPeak {
						ingressPeak = ph.MemPerMachine
					}
				}
				t.AddRow(strat, "compute", f3(t0), f3(t0+stats.ComputeSeconds), f3(stats.PeakMemGB))
				verdict := "✓"
				if ingressPeak/1e9 < stats.PeakMemGB {
					verdict = "✗"
				}
				t.Notef("%s: peak reached during ingress (%.3f GB ≥ compute %.3f GB) %s",
					strat, ingressPeak/1e9, stats.PeakMemGB, verdict)
			}
			return t, nil
		},
	}
}

func fig64() Experiment {
	return Experiment{
		ID:    "fig6.4",
		Title: "Ingress times for PowerLyra (all strategies × graphs × clusters)",
		Paper: "H-Ginger has significantly slower ingress than every other strategy; Hybrid is slower than the single-pass hashes",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			t := &Table{ID: "fig6.4", Title: "PowerLyra ingress times (s)",
				Columns: []string{"graph", "cluster", "strategy", "ingress-seconds"}}
			times := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerLyraStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						st := cluster.Ingress(a, s, cc, model)
						t.AddRow(ds, clusterName(cc), strat, f3(st.Seconds))
						times[ds+"/"+clusterName(cc)+"/"+strat] = st.Seconds
					}
				}
			}
			ok := "✓"
			for _, ds := range pgDatasets {
				key := ds + "/EC2-25/"
				if times[key+"H-Ginger"] <= times[key+"Hybrid"] {
					ok = "✗"
				}
			}
			t.Notef("H-Ginger slower than Hybrid on every graph (EC2-25): %s", ok)
			return t, nil
		},
	}
}

func fig65() Experiment {
	return Experiment{
		ID:    "fig6.5",
		Title: "Replication factors for PowerLyra",
		Paper: "Oblivious best on road networks and uk-web; Grid and Hybrid both low on LiveJournal/Twitter; H-Ginger only slightly better than Hybrid; Random worst",
		Run: func(cfg Config) (*Table, error) {
			t := &Table{ID: "fig6.5", Title: "PowerLyra replication factors",
				Columns: []string{"graph", "cluster", "strategy", "replication-factor"}}
			rfs := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerLyraStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						t.AddRow(ds, clusterName(cc), strat, f3(a.ReplicationFactor()))
						rfs[ds+"/"+clusterName(cc)+"/"+strat] = a.ReplicationFactor()
					}
				}
			}
			obl := "✓"
			for _, ds := range []string{"road-ca", "road-usa", "uk-web"} {
				key := ds + "/EC2-25/"
				if rfs[key+"Oblivious"] >= rfs[key+"Random"] || rfs[key+"Oblivious"] >= rfs[key+"Grid"] {
					obl = "✗"
				}
			}
			t.Notef("Oblivious lowest-family RF on road networks and uk-web: %s", obl)
			gin := "✓"
			for _, ds := range pgDatasets {
				key := ds + "/EC2-25/"
				if rfs[key+"H-Ginger"] > rfs[key+"Hybrid"]*1.05 {
					gin = "✗"
				}
			}
			t.Notef("H-Ginger ≤ ~Hybrid RF everywhere (only slight improvement): %s", gin)
			return t, nil
		},
	}
}

func fig66() Experiment {
	return Experiment{
		ID:    "fig6.6",
		Title: "PowerLyra decision tree validation (natural apps prefer Hybrid)",
		Paper: "pairing Hybrid with a natural application (PageRank) beats pairing it with a non-natural one relative to Oblivious; low-degree graphs still prefer Oblivious",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			t := &Table{ID: "fig6.6", Title: "Hybrid synergy with natural applications",
				Columns: []string{"app", "natural", "strategy", "net-in-GB", "compute-s"}}
			type key struct{ app, strat string }
			net := map[key]float64{}
			for _, strat := range []string{"Oblivious", "Hybrid"} {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				for _, spec := range paperApps() {
					if spec.name != "PageRank(10)" && spec.name != "WCC" {
						continue
					}
					stats, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					nat := "no"
					if spec.natural {
						nat = "yes"
					}
					t.AddRow(spec.name, nat, strat, f3(stats.AvgNetInGB), f3(stats.ComputeSeconds))
					net[key{spec.name, strat}] = stats.AvgNetInGB
				}
			}
			// Hybrid's network advantage over Oblivious should be larger
			// for the natural app than the non-natural one.
			prRatio := net[key{"PageRank(10)", "Hybrid"}] / net[key{"PageRank(10)", "Oblivious"}]
			wccRatio := net[key{"WCC", "Hybrid"}] / net[key{"WCC", "Oblivious"}]
			verdict := "✓"
			if prRatio >= wccRatio {
				verdict = "✗"
			}
			t.Notef("Hybrid/Oblivious net ratio: PageRank %.3f vs WCC %.3f (natural synergy) %s", prRatio, wccRatio, verdict)
			return t, nil
		},
	}
}
