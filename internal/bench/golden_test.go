package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates testdata/golden/*.txt from the current renders.
var updateGolden = flag.Bool("update", false, "rewrite golden experiment renders")

// goldenSlow mirrors the root shape_test gating: the multi-second engine
// sweeps are only byte-checked in full (non -short) runs.
var goldenSlow = map[string]bool{
	"fig5.3":     true,
	"fig5.4":     true,
	"fig5.5":     true,
	"fig8.4":     true,
	"fig5.9":     true,
	"tab5.1":     true,
	"adv.regret": true,
	"dyn.drift":  true,
}

// TestGoldenTableRenders pins every experiment's plain-text table render
// byte-for-byte. The refactor from stringified rows to typed cell emission
// must not change a single rendered byte: the paper reproduction is the
// plain render, and this is the proof it is untouched.
func TestGoldenTableRenders(t *testing.T) {
	cfg := DefaultConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && goldenSlow[e.ID] {
				t.Skipf("%s takes multiple seconds; run without -short", e.ID)
			}
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", e.ID, err)
			}
			path := filepath.Join("testdata", "golden", e.ID+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: missing golden (run with -update): %v", e.ID, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: render differs from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					e.ID, path, buf.Bytes(), want)
			}
		})
	}
}
