package bench

// Ablations: design-choice experiments beyond the paper's figures. Each
// isolates one knob that the thesis (or the papers it builds on) calls out:
// HDRF's λ, Hybrid's degree threshold, the number of oblivious loaders, the
// web-graph locality our substitution relies on, and the engine mode.

import (
	"fmt"

	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/gen"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(ablHDRFLambda())
	register(ablHybridThreshold())
	register(ablLoaders())
	register(ablLocality())
	register(ablEngine())
}

func ablHDRFLambda() Experiment {
	return Experiment{
		ID:    "abl.lambda",
		Title: "HDRF λ sweep (replication vs balance)",
		Paper: "HDRF's λ trades replication factor against load balance; PowerGraph hardcodes λ=1, which the paper uses throughout (§5.2.4, Appendix B)",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			r := NewResult("abl.lambda", "HDRF λ ablation (uk-web, 25 parts)",
				"lambda", "replication-factor", "edge-balance")
			type res struct{ rf, bal float64 }
			results := map[float64]res{}
			for _, lambda := range []float64{0.25, 0.5, 1, 2, 4, 8} {
				a, err := partition.ParallelPartition(g, partition.HDRF{Lambda: lambda}, 25, cfg.Seed, 0)
				if err != nil {
					return nil, err
				}
				results[lambda] = res{a.ReplicationFactor(), a.EdgeBalance()}
				r.Row(report.Dims{Dataset: "uk-web", Strategy: "HDRF", Parts: 25,
					Variant: fmt.Sprintf("λ=%.2f", lambda)}).
					Colf("%.2f", lambda).
					Metric("replication-factor", a.ReplicationFactor(), "ratio", 3).
					Metric("edge-balance", a.EdgeBalance(), "max/mean", 3)
			}
			// Larger λ prioritizes balance: balance should not get worse,
			// replication should not get better.
			balOK := results[8].bal <= results[0.25].bal*1.05
			rfOK := results[8].rf >= results[0.25].rf*0.98
			r.Checkf(balOK, "raising λ improves or preserves edge balance",
				"raising λ improves (or preserves) balance: %s", Mark(balOK))
			r.Checkf(rfOK, "raising λ costs or preserves replication factor",
				"raising λ costs (or preserves) replication factor: %s", Mark(rfOK))
			return r, nil
		},
	}
}

func ablHybridThreshold() Experiment {
	return Experiment{
		ID:    "abl.threshold",
		Title: "Hybrid high-degree threshold sweep",
		Paper: "Hybrid's threshold (default 100, §6.2.1) splits edge-cut from vertex-cut treatment; too low degenerates toward 1D-source hashing of everything, too high toward pure destination hashing",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			r := NewResult("abl.threshold", "Hybrid threshold ablation (uk-web, 25 parts)",
				"threshold", "high-degree-vertices", "replication-factor", "edge-balance")
			for _, thr := range []int{5, 15, 30, 60, 120, 1 << 30} {
				a, err := partition.ParallelPartition(g, partition.Hybrid{Threshold: thr}, 25, cfg.Seed, 0)
				if err != nil {
					return nil, err
				}
				high := 0
				for v := 0; v < g.NumVertices(); v++ {
					if g.InDegree(uint32(v)) > thr {
						high++
					}
				}
				label := fmt.Sprintf("%d", thr)
				if thr == 1<<30 {
					label = "∞ (pure dst-hash)"
				}
				r.Row(report.Dims{Dataset: "uk-web", Strategy: "Hybrid", Parts: 25,
					Variant: "threshold=" + label}).
					Col(label).
					Metric("high-degree-vertices", float64(high), "vertices", 0).
					Metric("replication-factor", a.ReplicationFactor(), "ratio", 3).
					Metric("edge-balance", a.EdgeBalance(), "max/mean", 3)
			}
			r.Notef("the thesis-scale default (30 on the stand-ins, 100 in the paper) sits at the replication/balance knee")
			return r, nil
		},
	}
}

func ablLoaders() Experiment {
	return Experiment{
		ID:    "abl.loaders",
		Title: "Oblivious loader-count ablation (the cost of obliviousness)",
		Paper: "Oblivious keeps loaders ignorant of each other's placements to stay fast (§5.2.2); more independent loaders mean worse (higher) replication factors",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "road-usa")
			if err != nil {
				return nil, err
			}
			r := NewResult("abl.loaders", "Oblivious/HDRF loader count vs replication (road-usa, 16 parts)",
				"strategy", "loaders", "replication-factor")
			var first, last float64
			loaderCounts := []int{1, 2, 4, 16, 64}
			for _, name := range []string{"Oblivious", "HDRF"} {
				for _, l := range loaderCounts {
					s, err := partition.New(name, partition.Options{Loaders: l})
					if err != nil {
						return nil, err
					}
					a, err := partition.ParallelPartition(g, s, 16, cfg.Seed, 0)
					if err != nil {
						return nil, err
					}
					rf := a.ReplicationFactor()
					r.Row(report.Dims{Dataset: "road-usa", Strategy: name, Parts: 16,
						Variant: fmt.Sprintf("loaders=%d", l)}).
						Col(name).
						Colf("%d", l).
						Metric("replication-factor", rf, "ratio", 3)
					if name == "Oblivious" && l == loaderCounts[0] {
						first = rf
					}
					if name == "Oblivious" && l == loaderCounts[len(loaderCounts)-1] {
						last = rf
					}
				}
			}
			pass := last > first
			r.Checkf(pass, "a single global loader beats 64 oblivious loaders on replication factor",
				"a single global loader beats 64 oblivious loaders on RF (%0.3f vs %0.3f): %s", first, last, Mark(pass))
			return r, nil
		},
	}
}

func ablLocality() Experiment {
	return Experiment{
		ID:    "abl.locality",
		Title: "Web-graph edge-list locality ablation (substitution validity)",
		Paper: "the greedy strategies' uk-web advantage (§5.4.2) rests on real crawls' source-sorted, host-local edge order; destroying that locality should erase HDRF's edge over Grid",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("abl.locality", "HDRF vs Grid RF as a function of generator locality",
				"locality", "HDRF-RF", "Grid-RF", "HDRF wins?")
			wins := map[float64]bool{}
			for _, loc := range []float64{0.05, 0.4, 0.86} {
				g := gen.WebGraph("abl-web", gen.WebGraphConfig{
					N: 30000, Alpha: 1.62, MaxOutD: 3000,
					Locality: loc, Window: 64, Seed: 0x0b3b,
				})
				hdrf, err := partition.ParallelPartition(g, partition.HDRF{}, 25, cfg.Seed, 0)
				if err != nil {
					return nil, err
				}
				grid, err := partition.ParallelPartition(g, partition.Grid{}, 25, cfg.Seed, 0)
				if err != nil {
					return nil, err
				}
				win := hdrf.ReplicationFactor() < grid.ReplicationFactor()
				wins[loc] = win
				variant := fmt.Sprintf("locality=%.2f", loc)
				r.Row(report.Dims{Dataset: "abl-web", Parts: 25, Variant: variant}).
					Colf("%.2f", loc).
					MetricAt(report.Dims{Dataset: "abl-web", Strategy: "HDRF", Parts: 25, Variant: variant},
						"replication-factor", hdrf.ReplicationFactor(), "ratio", 3).
					MetricAt(report.Dims{Dataset: "abl-web", Strategy: "Grid", Parts: 25, Variant: variant},
						"replication-factor", grid.ReplicationFactor(), "ratio", 3).
					Colf("%v", win)
			}
			pass := !wins[0.05] && wins[0.86]
			r.Checkf(pass, "HDRF beats Grid only with crawl-like edge-list locality",
				"HDRF beats Grid only when the edge list has crawl-like locality: %s", Mark(pass))
			return r, nil
		},
	}
}

func ablEngine() Experiment {
	return Experiment{
		ID:    "abl.engine",
		Title: "Engine ablation: PowerGraph vs PowerLyra on identical assignments",
		Paper: "PowerLyra's differentiated processing (§6.1) should cut traffic most for natural applications on Hybrid partitions, least for non-natural applications on hash partitions",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			r := NewResult("abl.engine", "engine mode ablation (uk-web, EC2-25)",
				"strategy", "app", "PG-net-GB", "Lyra-net-GB", "saving")
			type key struct{ strat, app string }
			saving := map[key]float64{}
			for _, strat := range []string{"Hybrid", "Random"} {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				for _, spec := range paperApps() {
					if spec.name != "PageRank(10)" && spec.name != "WCC" {
						continue
					}
					pg, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					lyra, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					s := 1 - lyra.AvgNetInGB/pg.AvgNetInGB
					saving[key{strat, spec.name}] = s
					base := report.Dims{Dataset: "uk-web", Strategy: strat, App: spec.name,
						Cluster: clusterName(cc), Parts: cc.NumParts()}
					pgDims, lyraDims := base, base
					pgDims.Engine, lyraDims.Engine = enginePowerGraph, enginePowerLyra
					r.Row(base).Col(strat, spec.name).
						MetricAt(pgDims, "net-in-GB", pg.AvgNetInGB, "GB", 3).
						MetricAt(lyraDims, "net-in-GB", lyra.AvgNetInGB, "GB", 3).
						Colf("%.1f%%", 100*s).
						Value("lyra-net-saving", s, "fraction")
				}
			}
			pass := saving[key{"Hybrid", "PageRank(10)"}] > saving[key{"Random", "WCC"}]
			r.Checkf(pass, "PowerLyra saves most for the natural app on Hybrid partitions",
				"largest saving for natural app on Hybrid partitions, smallest for non-natural on Random: %s", Mark(pass))
			return r, nil
		},
	}
}
