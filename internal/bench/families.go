package bench

// Added-family experiment: fam.compare places the three strategy families
// added beyond the paper's 13 — HEP, JaBeJaSwap, Multilevel — against the
// paper's own quality anchors: pure-streaming HDRF (one loader, one pass)
// and the multi-pass Hybrid. Like the dyn.* family, its cells carry no
// Engine dimension: they benchmark the partitioners themselves, not a
// modeled system, and therefore stay invisible to the advisor's
// engine-keyed observation mining.

import (
	"fmt"

	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(famCompare())
}

// familyStrategies are the three families added beyond the paper's 13;
// fig5.6/fig5.7 and fig8.1/fig8.2 append rows for them after the paper's
// own sweeps.
var familyStrategies = []string{"HEP", "JaBeJaSwap", "Multilevel"}

// famDatasets covers one dataset per ingress regime chapter 5 measures: a
// heavy-tailed social graph, the power-law web graph, and a road network.
var famDatasets = []string{"livejournal", "uk-web", "road-ca"}

// famBudgets is the HEP memory-budget dial swept on the power-law graph.
var famBudgets = []float64{0.1, 0.5, 0.9}

func famCompare() Experiment {
	return Experiment{
		ID:    "fam.compare",
		Title: "Added partitioner families vs the paper's baselines (HEP, JaBeJaSwap, Multilevel)",
		Paper: "no counterpart — the paper stops at 13 strategies; this measures the added families against its streaming (HDRF) and multi-pass (Hybrid) quality anchors, with HEP's memory budget dialing between the pure-streaming and in-memory regimes and JaBeJaSwap's swap telemetry quantifying refinement over its base",
		Run: func(cfg Config) (*Result, error) {
			const parts = 16
			r := NewResult("fam.compare", "Added families vs baselines (16 parts, one-shot ingress)",
				"graph", "strategy", "replication-factor", "edge-balance")
			specs := []struct {
				name string
				opt  partition.Options
			}{
				{"HDRF", partition.Options{Loaders: 1}}, // pure streaming: one loader, one pass
				{"Hybrid", partition.Options{HybridThreshold: cfg.HybridThreshold}},
				{"HEP", partition.Options{}}, // DefaultMemBudget core
				{"JaBeJaSwap", partition.Options{}},
				{"Multilevel", partition.Options{}},
				{"Random", partition.Options{}}, // JaBeJaSwap's base, for the refinement delta
			}
			type q struct{ rf, bal float64 }
			measured := map[string]q{}
			swaps := map[string]partition.SwapStats{}
			for _, ds := range famDatasets {
				g, err := loadGraph(cfg, ds)
				if err != nil {
					return nil, err
				}
				for _, sp := range specs {
					s, err := partition.New(sp.name, sp.opt)
					if err != nil {
						return nil, err
					}
					a, err := partition.ParallelPartition(g, s, parts, cfg.Seed, cfg.Workers)
					if err != nil {
						return nil, err
					}
					measured[ds+"/"+sp.name] = q{a.ReplicationFactor(), a.EdgeBalance()}
					r.Row(report.Dims{Dataset: ds, Strategy: sp.name, Parts: parts}).
						Col(ds, sp.name).
						Metric("replication-factor", a.ReplicationFactor(), "ratio", 3).
						Metric("edge-balance", a.EdgeBalance(), "max/mean", 3)
				}
				// JaBeJaSwap's refinement telemetry: rounds, proposal and
				// acceptance counts, and the RF it started from and reached.
				_, st, err := partition.JaBeJaSwap{}.PartitionStats(g, parts, cfg.Seed)
				if err != nil {
					return nil, err
				}
				swaps[ds] = st
				d := report.Dims{Dataset: ds, Strategy: "JaBeJaSwap", Parts: parts, Variant: "swap-stats"}
				r.Cell(d, "swap-rounds", float64(st.Rounds), "rounds")
				r.Cell(d, "swap-proposed", float64(st.Proposed), "swaps")
				r.Cell(d, "swap-accepted", float64(st.Accepted), "swaps")
				r.Cell(d, "rf-before-swap", st.RFBefore, "ratio")
				r.Cell(d, "rf-after-swap", st.RFAfter, "ratio")
			}

			// HEP's budget dial on the power-law graph: budget→0 degrades to
			// single-loader HDRF, budget→1 is fully in-memory NE.
			ukWeb, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			dial := map[float64]float64{}
			for _, b := range famBudgets {
				a, err := partition.ParallelPartition(ukWeb, partition.HEP{MemBudget: b}, parts, cfg.Seed, cfg.Workers)
				if err != nil {
					return nil, err
				}
				dial[b] = a.ReplicationFactor()
				r.Row(report.Dims{Dataset: "uk-web", Strategy: "HEP", Parts: parts,
					Variant: fmt.Sprintf("budget=%.2f", b)}).
					Col("uk-web", fmt.Sprintf("HEP budget=%.2f", b)).
					Metric("replication-factor", a.ReplicationFactor(), "ratio", 3).
					Metric("edge-balance", a.EdgeBalance(), "max/mean", 3)
			}

			// --- verdicts ---------------------------------------------
			lj := func(name string) q { return measured["livejournal/"+name] }
			between := lj("HDRF").rf <= lj("HEP").rf && lj("HEP").rf <= lj("Hybrid").rf &&
				lj("HDRF").bal <= 1.05 && lj("HEP").bal <= 1.05
			r.Checkf(between, "HEP RF between pure-streaming HDRF and Hybrid at equal balance",
				"livejournal: HDRF %.3f ≤ HEP %.3f ≤ Hybrid %.3f at balance %.3f/%.3f: %s",
				lj("HDRF").rf, lj("HEP").rf, lj("Hybrid").rf, lj("HDRF").bal, lj("HEP").bal, Mark(between))
			mono := dial[0.9] <= dial[0.5] && dial[0.5] <= dial[0.1] &&
				dial[0.1] <= measured["uk-web/HDRF"].rf
			r.Checkf(mono, "HEP's memory budget dials RF monotonically from streaming toward in-memory quality",
				"uk-web RF by budget: 0.9→%.3f ≤ 0.5→%.3f ≤ 0.1→%.3f ≤ streaming HDRF %.3f: %s",
				dial[0.9], dial[0.5], dial[0.1], measured["uk-web/HDRF"].rf, Mark(mono))
			uk := swaps["uk-web"]
			improves := uk.RFAfter < uk.RFBefore && uk.Accepted > 0
			r.Checkf(improves, "JaBeJaSwap strictly improves RF over its base assignment on the power-law dataset",
				"uk-web: swap refinement %.3f → %.3f over %d rounds (%d/%d swaps accepted): %s",
				uk.RFBefore, uk.RFAfter, uk.Rounds, uk.Accepted, uk.Proposed, Mark(improves))
			balKept := true
			for _, ds := range famDatasets {
				if measured[ds+"/JaBeJaSwap"].bal != measured[ds+"/Random"].bal {
					balKept = false
				}
			}
			r.Checkf(balKept, "JaBeJaSwap preserves its base assignment's edge balance exactly",
				"whole-edge swaps keep per-partition loads identical to the Random base on every graph: %s", Mark(balKept))
			mlBeats := true
			for _, ds := range famDatasets {
				if measured[ds+"/Multilevel"].rf >= measured[ds+"/Random"].rf {
					mlBeats = false
				}
			}
			r.Checkf(mlBeats, "the offline Multilevel baseline beats Random's RF on every graph",
				"coarsen/partition/uncoarsen under-cuts hashed placement on all three regimes: %s", Mark(mlBeats))
			r.Notef("cells carry no Engine dimension (like dyn.*): these measure the partitioners themselves, outside the advisor's engine-keyed mining; HDRF runs Loaders:1 as the pure-streaming anchor")
			return r, nil
		},
	}
}
