package bench

import (
	"strings"
	"testing"

	"graphpart/internal/cluster"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x.1", Title: "test table", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Notef("note %d", 7)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"x.1", "test table", "long-column", "333", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 1 || cfg.HybridThreshold != 30 {
		t.Errorf("unexpected default config %+v", cfg)
	}
	if cfg.model().BandwidthBytesPerSec <= 0 {
		t.Error("default model invalid")
	}
	if (Config{Scale: -3}).scale() != 1 {
		t.Error("negative scale not clamped")
	}
}

func TestAssignmentCacheSharing(t *testing.T) {
	cfg := DefaultConfig()
	a1, err := assignment(cfg, "road-ca", "Random", 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := assignment(cfg, "road-ca", "Random", 9)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("assignment cache miss for identical keys")
	}
	a3, err := assignment(cfg, "road-ca", "Random", 16)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a3 {
		t.Error("different part counts shared an assignment")
	}
	if _, err := assignment(cfg, "no-such-dataset", "Random", 9); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := assignment(cfg, "road-ca", "NoSuchStrategy", 9); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestExperimentIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig5.3", "fig5.4", "fig5.5", "fig5.6", "fig5.7", "fig5.8", "tab5.1",
		"fig6.1", "fig6.2", "fig6.3", "fig6.4", "fig6.5", "fig6.6",
		"fig7.1", "tab7.1",
		"fig8.1", "fig8.2", "fig8.3", "fig8.4",
		"fig9.1", "fig9.2", "fig9.3", "fig9.4",
		"fig5.9",
		"tab1.1",
		"abl.lambda", "abl.threshold", "abl.loaders", "abl.locality", "abl.engine",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRankingRowFormatting(t *testing.T) {
	row := rankingRow(map[string]float64{
		"CanonicalRandom": 1.00,
		"1D":              1.02, // within 5% of CR → parenthesized group
		"2D":              1.50,
		"AsymRandom":      1.52, // within 5% of 2D
	})
	if row != "(CR,1D),(2D,R)" {
		t.Errorf("rankingRow = %q, want (CR,1D),(2D,R)", row)
	}
	single := rankingRow(map[string]float64{"1D": 1, "2D": 2})
	if single != "1D,2D" {
		t.Errorf("rankingRow = %q, want 1D,2D", single)
	}
}

func TestSlowdownRatio(t *testing.T) {
	r := slowdownRatio(map[string]float64{"a": 1, "b": 1.9})
	if r < 1.89 || r > 1.91 {
		t.Errorf("slowdownRatio = %v, want 1.9", r)
	}
	if slowdownRatio(nil) != 0 {
		t.Error("empty map should yield 0")
	}
}

func TestClusterNames(t *testing.T) {
	if clusterName(cluster.Config{Machines: 9, PartsPerMachine: 1}) != "Local-9" {
		t.Error("Local-9 name")
	}
	if clusterName(cluster.Config{Machines: 25, PartsPerMachine: 1}) != "EC2-25" {
		t.Error("EC2-25 name")
	}
	if clusterName(cluster.Config{Machines: 10, PartsPerMachine: 4}) != "GraphX-Local-10" {
		t.Error("GraphX-Local-10 name")
	}
}

func TestSSSPSourcePicksHub(t *testing.T) {
	cfg := DefaultConfig()
	g, err := loadGraph(cfg, "twitter")
	if err != nil {
		t.Fatal(err)
	}
	src := ssspSource(g)
	if g.Degree(src) < g.MaxDegree() {
		t.Errorf("source degree %d < max %d", g.Degree(src), g.MaxDegree())
	}
}

func TestPaperAppsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range paperApps() {
		names[s.name] = true
	}
	for _, want := range []string{"PageRank(10)", "PageRank(C)", "WCC", "SSSP", "K-Core", "Coloring"} {
		if !names[want] {
			t.Errorf("paperApps missing %s", want)
		}
	}
	// Exactly the natural ones are flagged natural.
	for _, s := range paperApps() {
		wantNatural := strings.HasPrefix(s.name, "PageRank")
		if s.natural != wantNatural {
			t.Errorf("%s natural=%v, want %v", s.name, s.natural, wantNatural)
		}
	}
}

// TestTableRenderRulerWidth: the dash ruler must be exactly as wide as the
// table — column widths plus the two-space separators — not one character
// longer (the old off-by-one double-counted a separator).
func TestTableRenderRulerWidth(t *testing.T) {
	cases := []*Table{
		// Widths driven by the headers.
		func() *Table {
			tab := &Table{ID: "r.1", Title: "headers widest", Columns: []string{"aaa", "bb", "cccc"}}
			tab.AddRow("1", "2", "3")
			return tab
		}(),
		// Widths driven by a row: the rendered header line is then shorter
		// than the full table width, but the ruler must still span it.
		func() *Table {
			tab := &Table{ID: "r.2", Title: "rows widest", Columns: []string{"a", "b"}}
			tab.AddRow("333", "4444")
			return tab
		}(),
	}
	for _, tab := range cases {
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(sb.String(), "\n")
		// lines[0] = "## id — title", lines[1] = header, lines[2] = ruler.
		ruler := lines[2]
		if strings.Trim(ruler, "-") != "" {
			t.Fatalf("%s: line 2 is not the ruler: %q", tab.ID, ruler)
		}
		width := 0
		for _, line := range lines[1:] {
			if line == "" || strings.HasPrefix(line, "-") {
				continue
			}
			if len(line) > width {
				width = len(line)
			}
		}
		if len(ruler) != width {
			t.Errorf("%s: ruler width %d != table width %d:\n%s", tab.ID, len(ruler), width, sb.String())
		}
	}
}
