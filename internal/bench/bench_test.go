package bench

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"graphpart/internal/cluster"
	"graphpart/internal/report"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x.1", Title: "test table", Columns: []string{"a", "long-column"},
		Rows:  [][]string{{"1", "2"}, {"333", "4"}},
		Notes: []string{"note 7"}}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"x.1", "test table", "long-column", "333", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 1 || cfg.HybridThreshold != 30 {
		t.Errorf("unexpected default config %+v", cfg)
	}
	if cfg.model().BandwidthBytesPerSec <= 0 {
		t.Error("default model invalid")
	}
	if (Config{Scale: -3}).scale() != 1 {
		t.Error("negative scale not clamped")
	}
	info := (Config{Scale: -3, Seed: 7, HybridThreshold: 30, Workers: 2}).Info()
	if info.Scale != 1 || info.Seed != 7 || info.Workers != 2 {
		t.Errorf("unexpected config info %+v", info)
	}
}

// TestResultBuilder covers the typed-result API: rows emit presentation
// columns and cells together, checks carry structured verdicts, and the
// Table view derives from the same record.
func TestResultBuilder(t *testing.T) {
	r := NewResult("x.2", "builder", "graph", "strategy", "rf", "verdict")
	d := report.Dims{Dataset: "road-ca", Strategy: "HDRF", Parts: 9}
	r.Row(d).Col("road-ca", "HDRF").
		Metric("replication-factor", 1.2345, "ratio", 3).
		Col("fine").
		Value("hidden-metric", 42, "x")
	r.Cell(report.Dims{Dataset: "road-ca"}, "fit-slope", 0.5, "")
	r.Notef("info %d", 1)
	r.Checkf(true, "the claim", "measured %.1f ok %s", 3.5, Mark(true))

	if len(r.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(r.Cells))
	}
	if got := r.Cells[0]; got.Metric != "replication-factor" || got.Value != 1.2345 || got.Dims != d {
		t.Errorf("unexpected first cell %+v", got)
	}
	if r.Cells[1].Metric != "hidden-metric" || r.Cells[1].Dims != d {
		t.Errorf("Value cell lost row dims: %+v", r.Cells[1])
	}
	if len(r.Checks) != 1 || !r.Checks[0].Pass || r.Checks[0].Claim != "the claim" {
		t.Fatalf("unexpected checks %+v", r.Checks)
	}
	if r.Checks[0].Observed != "measured 3.5 ok ✓" {
		t.Errorf("observed = %q", r.Checks[0].Observed)
	}

	tab := r.Table()
	if len(tab.Rows) != 1 {
		t.Fatalf("table rows = %d, want 1 (cells without columns must not add rows)", len(tab.Rows))
	}
	wantRow := []string{"road-ca", "HDRF", "1.234", "fine"}
	for i, c := range wantRow {
		if tab.Rows[0][i] != c {
			t.Errorf("row[%d] = %q, want %q", i, tab.Rows[0][i], c)
		}
	}
	if len(tab.Notes) != 2 || tab.Notes[0] != "info 1" || tab.Notes[1] != "measured 3.5 ok ✓" {
		t.Errorf("notes = %q", tab.Notes)
	}
}

// TestMetricRenderingMatchesSprintf pins the column formatting contract:
// Metric with prec n renders exactly like fmt.Sprintf("%.nf", v), which is
// what keeps the refactored tables byte-identical to the seed renders.
func TestMetricRenderingMatchesSprintf(t *testing.T) {
	r := NewResult("x.3", "fmt", "a", "b", "c")
	r.Row(report.Dims{}).
		Metric("m3", 1.0005, "", 3).
		Metric("m2", 2.675, "", 2).
		Metric("m0", 7, "", 0)
	row := r.Table().Rows[0]
	want := []string{f3(1.0005), f2(2.675), "7"}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("col %d = %q, want %q", i, row[i], want[i])
		}
	}
}

func TestResultCSV(t *testing.T) {
	r := NewResult("x.4", "csv")
	r.Cell(report.Dims{Dataset: "road-ca", Strategy: "Grid", Parts: 9}, "rf", 1.5, "ratio")
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(CSVHeader); err != nil {
		t.Fatal(err)
	}
	if err := CellsCSV(w, r.ID, r.Cells); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	if lines[1] != "x.4,road-ca,Grid,,,,,9,rf,1.5,ratio" {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestAssignmentCacheSharing(t *testing.T) {
	cfg := DefaultConfig()
	a1, err := assignment(cfg, "road-ca", "Random", 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := assignment(cfg, "road-ca", "Random", 9)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("assignment cache miss for identical keys")
	}
	a3, err := assignment(cfg, "road-ca", "Random", 16)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a3 {
		t.Error("different part counts shared an assignment")
	}
	if _, err := assignment(cfg, "no-such-dataset", "Random", 9); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := assignment(cfg, "road-ca", "NoSuchStrategy", 9); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestExperimentIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig5.3", "fig5.4", "fig5.5", "fig5.6", "fig5.7", "fig5.8", "tab5.1",
		"fig6.1", "fig6.2", "fig6.3", "fig6.4", "fig6.5", "fig6.6",
		"fig7.1", "tab7.1",
		"fig8.1", "fig8.2", "fig8.3", "fig8.4",
		"fig9.1", "fig9.2", "fig9.3", "fig9.4",
		"fig5.9",
		"tab1.1",
		"abl.lambda", "abl.threshold", "abl.loaders", "abl.locality", "abl.engine",
		"load.speed", "ing.scale",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

// TestRegistryDuplicatePanic: registering the same ID twice must panic and
// name both registrants (title and registration site).
func TestRegistryDuplicatePanic(t *testing.T) {
	rs := newRegistrySet()
	rs.add(Experiment{ID: "dup.1", Title: "first"}, "a.go:1")
	if got, ok := rs.get("dup.1"); !ok || got.Title != "first" {
		t.Fatalf("get after add = %+v, %v", got, ok)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		msg, _ := r.(string)
		for _, want := range []string{"dup.1", "first", "second", "a.go:1", "b.go:2"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message missing %q: %s", want, msg)
			}
		}
	}()
	rs.add(Experiment{ID: "dup.1", Title: "second"}, "b.go:2")
}

// TestRegistrySortedOnce: all() returns ID-sorted copies and reflects
// later registrations.
func TestRegistrySortedOnce(t *testing.T) {
	rs := newRegistrySet()
	rs.add(Experiment{ID: "b"}, "x")
	rs.add(Experiment{ID: "a"}, "x")
	got := rs.all()
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("all() = %+v", got)
	}
	got[0].ID = "mutated"
	if rs.all()[0].ID != "a" {
		t.Error("all() exposed internal slice to mutation")
	}
	rs.add(Experiment{ID: "0"}, "x")
	if rs.all()[0].ID != "0" {
		t.Error("all() stale after registration")
	}
}

func TestRankingRowFormatting(t *testing.T) {
	row := rankingRow(map[string]float64{
		"CanonicalRandom": 1.00,
		"1D":              1.02, // within 5% of CR → parenthesized group
		"2D":              1.50,
		"AsymRandom":      1.52, // within 5% of 2D
	})
	if row != "(CR,1D),(2D,R)" {
		t.Errorf("rankingRow = %q, want (CR,1D),(2D,R)", row)
	}
	single := rankingRow(map[string]float64{"1D": 1, "2D": 2})
	if single != "1D,2D" {
		t.Errorf("rankingRow = %q, want 1D,2D", single)
	}
}

func TestSlowdownRatio(t *testing.T) {
	r := slowdownRatio(map[string]float64{"a": 1, "b": 1.9})
	if r < 1.89 || r > 1.91 {
		t.Errorf("slowdownRatio = %v, want 1.9", r)
	}
	if slowdownRatio(nil) != 0 {
		t.Error("empty map should yield 0")
	}
}

func TestClusterNames(t *testing.T) {
	if clusterName(cluster.Config{Machines: 9, PartsPerMachine: 1}) != "Local-9" {
		t.Error("Local-9 name")
	}
	if clusterName(cluster.Config{Machines: 25, PartsPerMachine: 1}) != "EC2-25" {
		t.Error("EC2-25 name")
	}
	if clusterName(cluster.Config{Machines: 10, PartsPerMachine: 4}) != "GraphX-Local-10" {
		t.Error("GraphX-Local-10 name")
	}
}

func TestSSSPSourcePicksHub(t *testing.T) {
	cfg := DefaultConfig()
	g, err := loadGraph(cfg, "twitter")
	if err != nil {
		t.Fatal(err)
	}
	src := ssspSource(g)
	if g.Degree(src) < g.MaxDegree() {
		t.Errorf("source degree %d < max %d", g.Degree(src), g.MaxDegree())
	}
}

func TestPaperAppsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range paperApps() {
		names[s.name] = true
	}
	for _, want := range []string{"PageRank(10)", "PageRank(C)", "WCC", "SSSP", "K-Core", "Coloring"} {
		if !names[want] {
			t.Errorf("paperApps missing %s", want)
		}
	}
	// Exactly the natural ones are flagged natural.
	for _, s := range paperApps() {
		wantNatural := strings.HasPrefix(s.name, "PageRank")
		if s.natural != wantNatural {
			t.Errorf("%s natural=%v, want %v", s.name, s.natural, wantNatural)
		}
	}
}

// TestTableRenderRulerWidth: the dash ruler must be exactly as wide as the
// table — column widths plus the two-space separators — not one character
// longer (the old off-by-one double-counted a separator).
func TestTableRenderRulerWidth(t *testing.T) {
	cases := []*Table{
		// Widths driven by the headers.
		{ID: "r.1", Title: "headers widest", Columns: []string{"aaa", "bb", "cccc"},
			Rows: [][]string{{"1", "2", "3"}}},
		// Widths driven by a row: the rendered header line is then shorter
		// than the full table width, but the ruler must still span it.
		{ID: "r.2", Title: "rows widest", Columns: []string{"a", "b"},
			Rows: [][]string{{"333", "4444"}}},
	}
	for _, tab := range cases {
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(sb.String(), "\n")
		// lines[0] = "## id — title", lines[1] = header, lines[2] = ruler.
		ruler := lines[2]
		if strings.Trim(ruler, "-") != "" {
			t.Fatalf("%s: line 2 is not the ruler: %q", tab.ID, ruler)
		}
		width := 0
		for _, line := range lines[1:] {
			if line == "" || strings.HasPrefix(line, "-") {
				continue
			}
			if len(line) > width {
				width = len(line)
			}
		}
		if len(ruler) != width {
			t.Errorf("%s: ruler width %d != table width %d:\n%s", tab.ID, len(ruler), width, sb.String())
		}
	}
}

// --- Runner -----------------------------------------------------------

func fakeExperiment(id string, cells int, fail bool) Experiment {
	return Experiment{
		ID: id, Title: "fake " + id, Paper: "n/a",
		Run: func(Config) (*Result, error) {
			if fail {
				return nil, errors.New(id + " exploded")
			}
			r := NewResult(id, "fake "+id, "dataset", "v")
			for i := 0; i < cells; i++ {
				ds := []string{"road-ca", "twitter"}[i%2]
				r.Row(report.Dims{Dataset: ds, Strategy: "HDRF"}).
					Col(ds).Metric("m", float64(i), "x", 0)
			}
			r.Checkf(true, id+" claim", "ok %s", Mark(true))
			return r, nil
		},
	}
}

// TestRunnerOrderAndErrors: concurrent execution must preserve input order
// and capture per-experiment failures without aborting the rest.
func TestRunnerOrderAndErrors(t *testing.T) {
	exps := []Experiment{
		fakeExperiment("z.3", 2, false),
		fakeExperiment("a.1", 1, true),
		fakeExperiment("m.2", 4, false),
	}
	progressed := map[string]bool{}
	runner := Runner{Config: Config{Workers: 4}, Progress: func(rr RunResult) {
		progressed[rr.Experiment.ID] = true // serialized by the Runner
	}}
	results := runner.Run(exps)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if len(progressed) != 3 {
		t.Errorf("progress callback saw %d experiments, want 3", len(progressed))
	}
	for i, rr := range results {
		if rr.Experiment.ID != exps[i].ID {
			t.Errorf("result %d = %s, want %s (order not preserved)", i, rr.Experiment.ID, exps[i].ID)
		}
	}
	if results[1].Err == nil || results[1].Result != nil {
		t.Error("failing experiment not captured as error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy experiments affected by the failure")
	}

	rep := runner.Report(results)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if len(rep.Experiments) != 3 || len(rep.Manifest.Experiments) != 3 {
		t.Fatalf("report sizes: %d experiments, %d manifest entries", len(rep.Experiments), len(rep.Manifest.Experiments))
	}
	if rep.Experiments[1].Error == "" || rep.Manifest.Experiments[1].Error == "" {
		t.Error("experiment error missing from report/manifest")
	}
	if got := rep.Manifest.Experiments[2].Cells; got != 4 {
		t.Errorf("manifest cell count = %d, want 4", got)
	}
	if rep.Manifest.Experiments[0].Passed != 1 || rep.Manifest.Experiments[0].Checks != 1 {
		t.Errorf("manifest check counts = %+v", rep.Manifest.Experiments[0])
	}
}

// TestRunnerFilter: the dimension filter prunes report cells but leaves
// checks and rendering untouched.
func TestRunnerFilter(t *testing.T) {
	f, err := report.ParseFilter("dataset=road")
	if err != nil {
		t.Fatal(err)
	}
	runner := Runner{Config: Config{Workers: 1}, Filter: f}
	results := runner.Run([]Experiment{fakeExperiment("f.1", 4, false)})
	rep := runner.Report(results)
	if got := len(rep.Experiments[0].Cells); got != 2 {
		t.Fatalf("filtered cells = %d, want 2 (road-ca only)", got)
	}
	for _, c := range rep.Experiments[0].Cells {
		if c.Dims.Dataset != "road-ca" {
			t.Errorf("filter leaked %s", c.Dims.Dataset)
		}
	}
	if len(rep.Experiments[0].Checks) != 1 {
		t.Error("filter must not drop checks")
	}
	if rep.Manifest.Filter != "dataset=road" {
		t.Errorf("manifest filter = %q", rep.Manifest.Filter)
	}
	// The manifest audits the full run: its cell count is pre-filter.
	if got := rep.Manifest.Experiments[0].Cells; got != 4 {
		t.Errorf("manifest cells = %d, want 4 (unfiltered)", got)
	}
}

// TestRunnerDeterministicAcrossWorkers: the same experiments produce
// cell-identical reports at any concurrency.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"tab1.1", "fig5.8", "abl.lambda"}
	var exps []Experiment
	for _, id := range ids {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		exps = append(exps, e)
	}
	cfg := DefaultConfig()
	var reports []*report.Report
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		runner := Runner{Config: c}
		reports = append(reports, runner.Report(runner.Run(exps)))
	}
	for i := range reports[0].Experiments {
		a, b := reports[0].Experiments[i], reports[1].Experiments[i]
		if a.Error != "" || b.Error != "" {
			t.Fatalf("%s errored: %q / %q", a.ID, a.Error, b.Error)
		}
		if len(a.Cells) != len(b.Cells) {
			t.Fatalf("%s: cell counts differ: %d vs %d", a.ID, len(a.Cells), len(b.Cells))
		}
		for j := range a.Cells {
			if a.Cells[j] != b.Cells[j] {
				t.Errorf("%s: cell %d differs across worker counts: %+v vs %+v", a.ID, j, a.Cells[j], b.Cells[j])
			}
		}
	}
}
