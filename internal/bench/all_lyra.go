package bench

// PowerLyra-all-strategies experiments: chapter 8 (Figs 8.1–8.4).

import (
	"strings"

	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/metrics"
	"graphpart/internal/partition"
	"graphpart/internal/plot"
	"graphpart/internal/report"
)

// lyraAllStrategies are the ten strategies of §8.1/§8.2 (PowerLyra's six
// measurable natives plus the ported 1D, 2D, AsymRandom, HDRF and the
// thesis's 1D-Target).
func lyraAllStrategies() []string {
	names, _ := partition.SystemStrategies(partition.PowerLyraAll)
	return names
}

// lyraAllClusters: §8.2 runs on Local-9 and EC2-25.
var lyraAllClusters = []cluster.Config{cluster.Local9, cluster.EC2x25}

func init() {
	register(fig81())
	register(fig82())
	register(fig83())
	register(fig84())
	register(tab11())
}

func fig81() Experiment {
	return Experiment{
		ID:    "fig8.1",
		Title: "Replication factors for PowerLyra with all strategies",
		Paper: "non-native strategies almost never beat the best pre-existing PowerLyra strategy (HDRF ≈ Oblivious is the exception); AsymRandom worse than Random",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("fig8.1", "Replication factors, all strategies in PowerLyra",
				"graph", "cluster", "strategy", "replication-factor")
			rfs := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range lyraAllClusters {
					for _, strat := range lyraAllStrategies() {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("replication-factor", a.ReplicationFactor(), "ratio", 3)
						rfs[ds+"/"+clusterName(cc)+"/"+strat] = a.ReplicationFactor()
					}
				}
			}
			// The added families ride along as extra rows; the paper's
			// verdicts stay restricted to its own strategies.
			for _, ds := range pgDatasets {
				for _, cc := range lyraAllClusters {
					for _, strat := range familyStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("replication-factor", a.ReplicationFactor(), "ratio", 3)
					}
				}
			}
			asym := true
			for _, ds := range pgDatasets {
				for _, cc := range lyraAllClusters {
					key := ds + "/" + clusterName(cc) + "/"
					// Tolerance: on graphs with few symmetric edge pairs the
					// two hashes coincide up to noise.
					if rfs[key+"AsymRandom"] < rfs[key+"Random"]*0.98 {
						asym = false
					}
				}
			}
			r.Checkf(asym, "AsymRandom RF at least Random's on every graph and cluster",
				"AsymRandom ≥ Random RF on every graph/cluster (§8.2.2): %s", Mark(asym))
			hdrf := true
			for _, ds := range pgDatasets {
				key := ds + "/EC2-25/"
				if rfs[key+"HDRF"] > rfs[key+"Oblivious"]*1.1 {
					hdrf = false
				}
			}
			r.Checkf(hdrf, "HDRF replication within 10% of Oblivious",
				"HDRF performs like Oblivious (within 10%%): %s", Mark(hdrf))
			return r, nil
		},
	}
}

func fig82() Experiment {
	return Experiment{
		ID:    "fig8.2",
		Title: "Ingress times for PowerLyra with all strategies",
		Paper: "H-Ginger slowest; greedy strategies slower than hashes on skewed graphs; hash strategies cluster together",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			r := NewResult("fig8.2", "Ingress times (s), all strategies in PowerLyra",
				"graph", "cluster", "strategy", "ingress-seconds")
			times := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range lyraAllClusters {
					for _, strat := range lyraAllStrategies() {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						st := cluster.Ingress(a, s, cc, model)
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("ingress-seconds", st.Seconds, "s", 3)
						times[ds+"/"+clusterName(cc)+"/"+strat] = st.Seconds
					}
				}
			}
			// The added families ride along as extra rows; the paper's
			// verdicts stay restricted to its own strategies.
			for _, ds := range pgDatasets {
				for _, cc := range lyraAllClusters {
					for _, strat := range familyStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerLyra, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("ingress-seconds", cluster.Ingress(a, s, cc, model).Seconds, "s", 3)
					}
				}
			}
			pass := true
			for _, ds := range []string{"livejournal", "twitter", "uk-web"} {
				key := ds + "/EC2-25/"
				for _, strat := range []string{"Random", "Grid", "1D", "2D", "Hybrid", "Oblivious", "HDRF"} {
					if times[key+"H-Ginger"] <= times[key+strat] {
						pass = false
					}
				}
			}
			r.Checkf(pass, "H-Ginger has the slowest ingress on all skewed graphs",
				"H-Ginger slowest ingress on all skewed graphs (EC2-25): %s", Mark(pass))
			return r, nil
		},
	}
}

func fig83() Experiment {
	return Experiment{
		ID:    "fig8.3",
		Title: "Network IO vs. RF with all strategies (Local-9, Twitter, hybrid engine): 1D vs 1D-Target",
		Paper: "1D (source hash, colocates out-edges) sits above the interpolation line for PageRank; 1D-Target and 2D sit below it — the hybrid engine favors gather-edge colocation (§8.2.3)",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.Local9
			r := NewResult("fig8.3", "Net-in GB vs RF, PageRank, all strategies (Local-9, Twitter)",
				"strategy", "replication-factor", "net-in-GB", "vs-trend")
			var xs, ys []float64
			type point struct {
				strat   string
				rf, net float64
			}
			var points []point
			for _, strat := range lyraAllStrategies() {
				a, err := assignment(cfg, "twitter", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				var stats engine.Stats
				for _, spec := range paperApps() {
					if spec.name == "PageRank(10)" {
						stats, err = spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
						if err != nil {
							return nil, err
						}
					}
				}
				p := point{strat, a.ReplicationFactor(), stats.AvgNetInGB}
				points = append(points, p)
				xs = append(xs, p.rf)
				ys = append(ys, p.net)
			}
			fit, err := metrics.Fit(xs, ys)
			if err != nil {
				return nil, err
			}
			resid := map[string]float64{}
			for _, p := range points {
				rr := fit.Residual(p.rf, p.net)
				resid[p.strat] = rr
				pos := "below line"
				if rr > 0 {
					pos = "above line"
				}
				r.Row(report.Dims{Dataset: "twitter", Strategy: p.strat, App: "PageRank(10)",
					Engine: enginePowerLyra, Cluster: clusterName(cc), Parts: cc.NumParts()}).
					Col(p.strat).
					Metric("replication-factor", p.rf, "ratio", 3).
					Metric("net-in-GB", p.net, "GB", 3).
					Col(pos).
					Value("trend-residual-GB", rr, "GB")
			}
			var fig strings.Builder
			var pps []plot.Point
			for _, p := range points {
				pps = append(pps, plot.Point{X: p.rf, Y: p.net, Label: p.strat})
			}
			trend := [2]float64{fit.Slope, fit.Intercept}
			sc := plot.Scatter{Title: "PageRank(10) net-in GB vs RF (Local-9, Twitter)",
				XLabel: "replication factor", YLabel: "net-in GB",
				Points: pps, Trend: &trend}
			if err := sc.Render(&fig); err == nil {
				r.Figure = fig.String()
			}
			oneD := resid["1D"] > 0
			r.Checkf(oneD, "1D sits above the interpolation line for PageRank",
				"1D above the interpolation line for PageRank: %s", Mark(oneD))
			target := resid["1D-Target"] < 0
			r.Checkf(target, "1D-Target sits below the interpolation line",
				"1D-Target below the line (gather-edge colocation pays off): %s", Mark(target))
			// The paper reads 2D as "slightly better than the trend"
			// (§8.2.3); accept on-line placement within a 7% band of the
			// prediction.
			var twoDRF, twoDNet float64
			for _, p := range points {
				if p.strat == "2D" {
					twoDRF, twoDNet = p.rf, p.net
				}
			}
			twoD := resid["2D"] < 0.07*fit.Predict(twoDRF)
			r.Checkf(twoD, "2D sits at or below the interpolation line",
				"2D at/below the line (√P bound on gather-edge spread; net %.4f vs predicted %.4f): %s",
				twoDNet, fit.Predict(twoDRF), Mark(twoD))
			better := resid["1D-Target"] < resid["1D"]
			r.Checkf(better, "1D-Target positioned strictly better than 1D",
				"1D-Target strictly better positioned than 1D: %s", Mark(better))
			return r, nil
		},
	}
}

func fig84() Experiment {
	return Experiment{
		ID:    "fig8.4",
		Title: "CPU utilization vs. compute time (Local-9, UK-web): PageRank vs K-core",
		Paper: "the CPU-utilization/compute-time correlation flips between applications (decreasing for PageRank, increasing for K-core) — CPU utilization is not a reliable performance indicator",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.Local9
			r := NewResult("fig8.4", "CPU utilization box plots vs compute time",
				"app", "strategy", "compute-s", "util-median", "util-q1", "util-q3", "util-min", "util-max")
			for _, appName := range []string{"PageRank(10)", "K-Core"} {
				var compTimes, medUtils []float64
				for _, strat := range lyraAllStrategies() {
					a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
					if err != nil {
						return nil, err
					}
					var stats engine.Stats
					for _, spec := range paperApps() {
						if spec.name == appName {
							stats, err = spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
							if err != nil {
								return nil, err
							}
						}
					}
					utils := append([]float64(nil), stats.CPUUtil...)
					for i := range utils {
						utils[i] *= 100
					}
					bp := metrics.NewBoxPlot(utils)
					r.Row(report.Dims{Dataset: "uk-web", Strategy: strat, App: appName,
						Engine: enginePowerLyra, Cluster: clusterName(cc), Parts: cc.NumParts()}).
						Col(appName, strat).
						Metric("compute-s", stats.ComputeSeconds, "s", 3).
						Metric("util-median", bp.Median, "%", 2).
						Metric("util-q1", bp.Q1, "%", 2).
						Metric("util-q3", bp.Q3, "%", 2).
						Metric("util-min", bp.Min, "%", 2).
						Metric("util-max", bp.Max, "%", 2)
					compTimes = append(compTimes, stats.ComputeSeconds)
					medUtils = append(medUtils, bp.Median)
				}
				pearson, err := metrics.Pearson(compTimes, medUtils)
				if err != nil {
					return nil, err
				}
				dir := "increasing"
				if pearson < 0 {
					dir = "decreasing"
				}
				paperDir := "increasing"
				if appName == "PageRank(10)" {
					paperDir = "decreasing"
				}
				pass := dir == paperDir
				mark := "✓"
				if !pass {
					mark = "✗ (documented deviation: our synchronous model lacks PowerGraph's delta caching, whose traffic elision drives the paper's increasing branch — see EXPERIMENTS.md)"
				}
				r.Cell(report.Dims{Dataset: "uk-web", App: appName, Engine: enginePowerLyra, Cluster: clusterName(cc)},
					"util-compute-correlation", pearson, "r")
				r.Checkf(pass, appName+": utilization-vs-compute correlation direction matches the paper",
					"%s: utilization-vs-compute correlation r=%.3f (%s; paper: %s) %s", appName, pearson, dir, paperDir, mark)
			}
			r.Notef("paper's conclusion — CPU utilization is not a reliable performance indicator — holds: the correlation magnitude and per-machine spread vary widely across strategies")
			return r, nil
		},
	}
}

func tab11() Experiment {
	return Experiment{
		ID:    "tab1.1",
		Title: "Systems and their partitioning strategies (Table 1.1)",
		Paper: "PowerGraph: Random, Grid, Oblivious, HDRF, PDS; PowerLyra: + Hybrid, Hybrid-Ginger; GraphX: Random, Canonical Random, 1D, 2D",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("tab1.1", "Systems × strategies inventory",
				"system", "strategies")
			for _, sys := range []partition.System{
				partition.PowerGraph, partition.PowerLyra, partition.GraphX,
				partition.PowerLyraAll, partition.GraphXAll,
			} {
				names, err := partition.SystemStrategies(sys)
				if err != nil {
					return nil, err
				}
				row := ""
				for i, n := range names {
					if i > 0 {
						row += ", "
					}
					row += n
				}
				r.Row(report.Dims{Engine: string(sys)}).Col(string(sys), row).
					Value("strategy-count", float64(len(names)), "strategies")
			}
			r.Notef("every listed strategy is implemented and constructible (verified by unit tests)")
			return r, nil
		},
	}
}
