package bench

// Advisor validation: fit the empirical recommender (internal/advisor) on
// this run's own measurements and score it against the paper's decision
// trees. For every end-to-end workload the advisor's pick must land within
// tolerance of the measured-best strategy (regret), and on average it must
// do no worse than the trees it is meant to supersede (agreement is
// reported per workload, not required: where the measurements disagree
// with the paper's rules of thumb, the advisor should follow the
// measurements).

import (
	"fmt"

	"graphpart/internal/advisor"
	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/engine"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(advRegret())
}

// advisorRegretTol is the per-workload bound on the advisor's regret: the
// chosen strategy's measured total may exceed the best strategy's by at
// most this fraction. It is looser than fig5.9's 10% because the
// all-strategies leaves pool workloads across cluster shapes.
const advisorRegretTol = 0.20

// lyraTotalSeconds measures ingress + compute for one strategy/app on the
// PowerLyra engine (the differentiated-engine counterpart of
// totalJobSeconds).
func lyraTotalSeconds(cfg Config, ds, strat, appName string, cc cluster.Config) (float64, error) {
	model := cfg.model()
	a, err := assignment(cfg, ds, strat, cc.NumParts())
	if err != nil {
		return 0, err
	}
	s, err := strategyFor(cfg, strat)
	if err != nil {
		return 0, err
	}
	ing := cluster.Ingress(a, s, cc, model)
	for _, spec := range paperApps() {
		if spec.name != appName {
			continue
		}
		stats, err := spec.run(engine.ModePowerLyra, a, cc, model, cfg.engineOpts())
		if err != nil {
			return 0, err
		}
		return ing.Seconds + stats.ComputeSeconds, nil
	}
	return 0, fmt.Errorf("bench: unknown app %q", appName)
}

// advCase is one end-to-end workload the advisor is graded on.
type advCase struct {
	engine  string
	sys     partition.System
	ds      string
	app     string
	variant string
	cc      cluster.Config
}

func (c advCase) job() string {
	if c.variant != "" {
		return c.app + " " + c.variant
	}
	return c.app
}

func advRegret() Experiment {
	return Experiment{
		ID:    "adv.regret",
		Title: "Empirical advisor vs paper trees (agreement and regret)",
		Paper: "a recommender fitted on the measured cells should pick a strategy within 20% of the measured best for every (dataset, app, engine) workload, and its mean regret should not exceed the paper trees'",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			pgCC, gxCC, plCC := cluster.EC2x25, cluster.GraphXLocal9, cluster.EC2x25
			// The measurable strategy sets per engine. PowerLyra keeps the
			// engine sweep affordable with its four headline strategies.
			pgStrats := powerGraphStrategies
			gxStrats := graphxAllStrategies()
			plStrats := []string{"Random", "Grid", "Oblivious", "Hybrid"}

			cases := []advCase{
				{enginePowerGraph, partition.PowerGraph, "road-ca", "PageRank(C)", "", pgCC},
				{enginePowerGraph, partition.PowerGraph, "road-usa", "PageRank(C)", "", pgCC},
				{enginePowerGraph, partition.PowerGraph, "livejournal", "PageRank(C)", "", pgCC},
				{enginePowerGraph, partition.PowerGraph, "uk-web", "PageRank(C)", "", pgCC},
				{enginePowerGraph, partition.PowerGraph, "uk-web", "K-Core", "", pgCC},
				{engineGraphX, partition.GraphXAll, "road-ca", "PageRank", "iters=2", gxCC},
				{engineGraphX, partition.GraphXAll, "road-ca", "PageRank", "iters=25", gxCC},
				{engineGraphX, partition.GraphXAll, "livejournal", "PageRank", "iters=2", gxCC},
				{engineGraphX, partition.GraphXAll, "livejournal", "PageRank", "iters=25", gxCC},
				{enginePowerLyra, partition.PowerLyra, "uk-web", "PageRank(10)", "", plCC},
				{enginePowerLyra, partition.PowerLyra, "uk-web", "WCC", "", plCC},
			}

			// --- measure: training cells for the advisor ---------------
			var train []report.Cell
			cell := func(d report.Dims, metric string, v float64, unit string) {
				train = append(train, report.Cell{Dims: d, Metric: metric, Value: v, Unit: unit})
			}
			totals := map[advCase]map[string]float64{}
			measure := func(c advCase, strat string) (float64, error) {
				switch c.engine {
				case enginePowerGraph:
					return totalJobSeconds(cfg, c.ds, strat, c.app, c.cc)
				case enginePowerLyra:
					return lyraTotalSeconds(cfg, c.ds, strat, c.app, c.cc)
				default:
					var iters int
					fmt.Sscanf(c.variant, "iters=%d", &iters)
					a, err := assignment(cfg, c.ds, strat, c.cc.NumParts())
					if err != nil {
						return 0, err
					}
					st, err := runGraphXApp(c.app, a, cfg.graphxConfig(c.cc, iters), model)
					if err != nil {
						return 0, err
					}
					return st.PartitionSeconds + st.ComputeSeconds, nil
				}
			}
			stratsFor := func(c advCase) []string {
				switch c.engine {
				case enginePowerGraph:
					return pgStrats
				case enginePowerLyra:
					return plStrats
				default:
					return gxStrats
				}
			}
			for _, c := range cases {
				totals[c] = map[string]float64{}
				for _, strat := range stratsFor(c) {
					tt, err := measure(c, strat)
					if err != nil {
						return nil, err
					}
					totals[c][strat] = tt
					cell(report.Dims{Dataset: c.ds, Strategy: strat, App: c.app,
						Engine: c.engine, Cluster: clusterName(c.cc), Parts: c.cc.NumParts(),
						Variant: c.variant}, "total-s", tt, "s")
				}
			}
			// Ingress and replication sweeps give the learner its
			// short-job/long-job structure and cover datasets the
			// end-to-end cases don't reach.
			sweepDatasets := []string{"road-ca", "road-usa", "livejournal", "twitter", "uk-web"}
			for _, engineName := range []string{enginePowerGraph, enginePowerLyra} {
				strats := pgStrats
				if engineName == enginePowerLyra {
					strats = plStrats
				}
				for _, ds := range sweepDatasets {
					for _, strat := range strats {
						a, err := assignment(cfg, ds, strat, pgCC.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						d := sweepDims(engineName, ds, strat, pgCC)
						cell(d, "ingress-seconds", cluster.Ingress(a, s, pgCC, model).Seconds, "s")
						cell(d, "replication-factor", a.ReplicationFactor(), "ratio")
					}
				}
			}

			// --- fit ----------------------------------------------------
			trainRep := &report.Report{
				SchemaVersion: report.SchemaVersion,
				Tool:          "bench/adv.regret",
				Experiments:   []report.Experiment{{ID: "train", Title: "advisor training cells", Cells: train}},
			}
			var mans []datasets.Manifest
			for _, ds := range sweepDatasets {
				m, err := datasets.BuildManifest(ds, cfg.scale())
				if err != nil {
					return nil, err
				}
				mans = append(mans, m)
			}
			mdl, err := advisor.Fit(trainRep, mans)
			if err != nil {
				return nil, err
			}

			// --- grade --------------------------------------------------
			r := NewResult("adv.regret", "advisor vs paper tree on measured workloads",
				"engine", "graph", "job", "advisor", "tree", "best",
				"adv-regret", "tree-regret", "agree")
			trees := decision.PaperTrees()
			regretOf := func(scores map[string]float64, best float64, strat string) (float64, error) {
				s, ok := scores[strat]
				if !ok {
					return 0, fmt.Errorf("bench: recommended strategy %q was not measured", strat)
				}
				return s/best - 1, nil
			}
			allWithin, agreeCount := true, 0
			var advSum, treeSum float64
			for _, c := range cases {
				// The advisor's own observation for this workload carries
				// the measured feature vector (ratio included); replaying
				// it is the regret the ISSUE gates on.
				var w decision.Workload
				found := false
				for _, o := range mdl.Observations(c.engine) {
					if o.Kind == advisor.KindTotal && o.Dataset == c.ds && o.App == c.app && o.Variant == c.variant {
						w, found = o.W, true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("bench: advisor extracted no observation for %s/%s/%s", c.engine, c.ds, c.job())
				}
				adv, err := mdl.Recommend(c.sys, w)
				if err != nil {
					return nil, err
				}
				tree, err := trees.Recommend(c.sys, w)
				if err != nil {
					return nil, err
				}
				best, bestT := "", -1.0
				//graphlint:unordered argmin with a total tie-break on name — order-independent
				for strat, tt := range totals[c] {
					if bestT < 0 || tt < bestT || (tt == bestT && strat < best) {
						best, bestT = strat, tt
					}
				}
				advRegret, err := regretOf(totals[c], bestT, adv.Strategy)
				if err != nil {
					return nil, err
				}
				treeRegret, err := regretOf(totals[c], bestT, tree.Strategy)
				if err != nil {
					return nil, err
				}
				agree := adv.Strategy == tree.Strategy
				if agree {
					agreeCount++
				}
				if advRegret > advisorRegretTol {
					allWithin = false
				}
				advSum += advRegret
				treeSum += treeRegret
				d := report.Dims{Dataset: c.ds, App: c.app, Engine: c.engine,
					Cluster: clusterName(c.cc), Parts: c.cc.NumParts(), Variant: c.variant}
				r.Row(d).
					Col(c.engine, c.ds, c.job(), adv.Strategy, tree.Strategy, best).
					Metric("advisor-regret", advRegret, "ratio", 3).
					MetricAt(d, "tree-regret", treeRegret, "ratio", 3).
					Colf("%v", agree)
				r.Cell(d, "advisor-confidence", adv.Confidence, "ratio")
				r.Cell(d, "agree", boolCell(agree), "")
			}
			n := float64(len(cases))
			r.Cell(report.Dims{}, "agreement-rate", float64(agreeCount)/n, "ratio")
			r.Cell(report.Dims{}, "mean-advisor-regret", advSum/n, "ratio")
			r.Cell(report.Dims{}, "mean-tree-regret", treeSum/n, "ratio")
			r.Checkf(allWithin, "advisor recommendation within 20% of the measured best everywhere",
				"advisor recommendation within 20%% of the measured best everywhere: %s", Mark(allWithin))
			noWorse := advSum <= treeSum+1e-9
			r.Checkf(noWorse, "advisor mean regret no worse than the paper trees'",
				"mean regret: advisor %.3f vs trees %.3f %s", advSum/n, treeSum/n, Mark(noWorse))
			r.Notef("agreement with the paper trees: %d/%d workloads (disagreements are where the measurements beat the rules of thumb)", agreeCount, len(cases))
			return r, nil
		},
	}
}

func boolCell(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
