package bench

// GraphX-all-strategies experiments: chapter 9 (Figs 9.1–9.4).

import (
	"fmt"
	"strings"

	"graphpart/internal/cluster"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/partition"
	"graphpart/internal/plot"
	"graphpart/internal/report"
)

// graphxAllStrategies are the nine strategies of §9.1.
func graphxAllStrategies() []string {
	names, _ := partition.SystemStrategies(partition.GraphXAll)
	return names
}

// gx9Iterations: chapter 9 runs everything to 25 iterations (§9.2).
const gx9Iterations = 25

// iterCheckpoints are the iteration counts reported in the cumulative-time
// tables (the x-axis samples of Figs 9.1/9.2).
var iterCheckpoints = []int{1, 5, 10, 15, 20, 25}

func init() {
	register(fig91())
	register(fig92())
	register(fig94())
}

// cumulativeAt returns the cumulative time at iteration i (1-based),
// flattening after convergence, as the paper's per-iteration curves do.
func cumulativeAt(st graphx.Stats, iter int) float64 {
	if len(st.CumulativeSeconds) == 0 {
		return st.PartitionSeconds
	}
	if iter > len(st.CumulativeSeconds) {
		iter = len(st.CumulativeSeconds)
	}
	return st.CumulativeSeconds[iter-1]
}

// gxIterationExperiment builds a Fig 9.1/9.2-style experiment.
func gxIterationExperiment(id, dataset, paper string, check func(r *Result, cum map[string]map[string][]float64)) Experiment {
	return Experiment{
		ID:    id,
		Title: fmt.Sprintf("GraphX-all cumulative per-iteration times (%s, Local-9, 25 iterations)", dataset),
		Paper: paper,
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal9
			cols := []string{"app", "strategy"}
			for _, ic := range iterCheckpoints {
				cols = append(cols, fmt.Sprintf("t@%d", ic))
			}
			r := NewResult(id, "cumulative seconds at iteration checkpoints (includes partitioning)", cols...)
			// cum[app][strategy] = cumulative seconds at each checkpoint.
			cum := map[string]map[string][]float64{}
			for _, appName := range []string{"SSSP", "WCC", "PageRank"} {
				cum[appName] = map[string][]float64{}
				for _, strat := range graphxAllStrategies() {
					a, err := assignment(cfg, dataset, strat, cc.NumParts())
					if err != nil {
						return nil, err
					}
					st, err := runGraphXApp(appName, a, cfg.graphxConfig(cc, gx9Iterations), model)
					if err != nil {
						return nil, err
					}
					row := r.Row(gxDims(cc, dataset, strat, appName)).Col(appName, strat)
					var series []float64
					for _, ic := range iterCheckpoints {
						v := cumulativeAt(st, ic)
						series = append(series, v)
						row.Metric(fmt.Sprintf("t@%d", ic), v, "s", 3)
					}
					cum[appName][strat] = series
				}
			}
			// Draw the PageRank panel as the figure.
			var xs []float64
			for _, ic := range iterCheckpoints {
				xs = append(xs, float64(ic))
			}
			var series []plot.Series
			for _, strat := range graphxAllStrategies() {
				series = append(series, plot.Series{Name: strat, Y: cum["PageRank"][strat]})
			}
			var fig strings.Builder
			ln := plot.Lines{Title: "PageRank cumulative time at iteration i (" + dataset + ")",
				XLabel: "iterations", YLabel: "seconds", X: xs, Series: series}
			if err := ln.Render(&fig); err == nil {
				r.Figure = fig.String()
			}
			check(r, cum)
			return r, nil
		},
	}
}

func fig91() Experiment {
	return gxIterationExperiment("fig9.1", "road-ca",
		"on the low-degree road network, (Canonical) Random is fastest for few iterations; the greedy strategies (HDRF/Oblivious) have lower per-iteration slopes and catch up as iterations grow; the crossover appears earliest for PageRank (all vertices active), later for WCC, and not at all for SSSP",
		func(r *Result, cum map[string]map[string][]float64) {
			last := len(iterCheckpoints) - 1
			// CR starts ahead (cheap partitioning).
			early := cum["PageRank"]["CanonicalRandom"][0] <= cum["PageRank"]["HDRF"][0]
			r.Checkf(early, "Canonical Random ahead of HDRF at iteration 1 for PageRank",
				"Canonical Random ahead of HDRF at iteration 1 (PageRank): %s", Mark(early))
			// Greedy slopes are lower for the all-active app.
			slope := func(app, strat string) float64 {
				s := cum[app][strat]
				return s[last] - s[0]
			}
			slopeOK := slope("PageRank", "HDRF") < slope("PageRank", "CanonicalRandom")
			r.Checkf(slopeOK, "HDRF's per-iteration slope is lower than Canonical Random's for PageRank",
				"HDRF per-iteration slope lower than Canonical Random's (PageRank): %s", Mark(slopeOK))
			// Crossover order: PageRank crosses by 25; SSSP does not cross.
			crossed := func(app string) bool {
				return cum[app]["HDRF"][last] < cum[app]["CanonicalRandom"][last]
			}
			pr, sssp := crossed("PageRank"), !crossed("SSSP")
			r.Checkf(pr && sssp, "PageRank crosses over by iteration 25, SSSP never does",
				"PageRank crossover (HDRF beats CR by iter 25): %s; SSSP no crossover: %s", Mark(pr), Mark(sssp))
		})
}

func fig92() Experiment {
	return gxIterationExperiment("fig9.2", "livejournal",
		"on the heavy-tailed graph, 2D is always the best or among the best strategies; Grid follows 2D closely",
		func(r *Result, cum map[string]map[string][]float64) {
			last := len(iterCheckpoints) - 1
			ok := true
			for _, appName := range []string{"SSSP", "WCC", "PageRank"} {
				best := -1.0
				for _, strat := range graphxAllStrategies() {
					v := cum[appName][strat][last]
					if best < 0 || v < best {
						best = v
					}
				}
				if cum[appName]["2D"][last] > best*1.15 {
					ok = false
					r.Notef("%s: 2D (%.3fs) not within 15%% of best (%.3fs) ✗", appName, cum[appName]["2D"][last], best)
				}
			}
			r.Checkf(ok, "2D best or among the best on the heavy-tailed graph for all apps",
				"2D best or among the best on the heavy-tailed graph (all apps): %s", Mark(ok))
			grid := cum["PageRank"]["ResilientGrid"][last] <= cum["PageRank"]["2D"][last]*1.3
			r.Checkf(grid, "Grid follows 2D closely for PageRank",
				"Grid follows 2D closely (PageRank): %s", Mark(grid))
		})
}

func fig94() Experiment {
	return Experiment{
		ID:    "fig9.4",
		Title: "Effect of executor memory on execution time (GraphX-all, road-ca, Local-9)",
		Paper: "three regimes: (1) too little memory → the job fails; (2) fits cluster-wide but not in few executors → unpredictable redistribution attempts inflate time; (3) fits in a few executors → fast, and execution time keeps decreasing as added memory shrinks GC overhead",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal9
			a, err := assignment(cfg, "road-ca", "CanonicalRandom", cc.NumParts())
			if err != nil {
				return nil, err
			}
			// Scale the sweep to the graph's working set so the three
			// regimes appear at any dataset scale.
			var totalMem float64
			for p := 0; p < a.NumParts; p++ {
				totalMem += float64(a.ReplicasOnPart(p))*float64(model.ReplicaBytes) +
					float64(a.EdgeCount[p])*float64(model.EdgeMemBytes)
			}
			perMachine := totalMem / float64(cc.Machines)
			r := NewResult("fig9.4", "execution time vs executor memory",
				"executor-mem", "outcome", "fit-attempts", "gc-overhead", "exec-seconds")
			type sample struct {
				frac    float64
				failed  bool
				fits    int
				seconds float64
			}
			var samples []sample
			for _, frac := range []float64{0.5, 0.8, 1.05, 1.3, 1.8, 2.5, 4, 8, 16} {
				mem := perMachine*frac + model.ExecutorBase
				gcfg := cfg.graphxConfig(cc, gx9Iterations)
				gcfg.ExecutorMemBytes = mem
				st, err := runGraphXApp("PageRank", a, gcfg, model)
				if err != nil {
					return nil, err
				}
				outcome := "ok"
				if st.Failed {
					outcome = "FAILED (case 1)"
				} else if st.FitAttempts > 0 {
					outcome = "redistributed (case 2)"
				} else {
					outcome = "first-attempt fit (case 3)"
				}
				r.Row(report.Dims{Dataset: "road-ca", Strategy: "CanonicalRandom", App: "PageRank",
					Engine: engineGraphX, Cluster: clusterName(cc), Parts: cc.NumParts(),
					Variant: fmt.Sprintf("%.2f×workingset", frac)}).
					Colf("%.2f×workingset", frac).
					Col(outcome).
					Metric("fit-attempts", float64(st.FitAttempts), "attempts", 0).
					Metric("gc-overhead", st.GCOverhead, "ratio", 2).
					Metric("exec-seconds", st.ComputeSeconds, "s", 2)
				samples = append(samples, sample{frac, st.Failed, st.FitAttempts, st.ComputeSeconds})
			}
			// Verdicts.
			c1, c2, c3, dec := false, false, false, true
			var lastOK float64 = -1
			for _, s := range samples {
				if s.failed {
					c1 = true
				}
				if !s.failed && s.fits > 0 {
					c2 = true
				}
				if !s.failed && s.fits == 0 {
					c3 = true
					if lastOK >= 0 && s.seconds > lastOK*1.001 {
						dec = false
					}
					lastOK = s.seconds
				}
			}
			r.Checkf(c1, "case 1: the job fails at low memory",
				"case 1 (failure at low memory) observed: %s", Mark(c1))
			r.Checkf(c2, "case 2: redistribution attempts at middling memory",
				"case 2 (redistribution attempts) observed: %s", Mark(c2))
			r.Checkf(c3, "case 3: first-attempt fit at ample memory",
				"case 3 (first-attempt fit) observed: %s", Mark(c3))
			r.Checkf(dec, "execution time decreases with more memory in case 3",
				"execution time decreases with more memory in case 3 (GC overhead shrinks): %s", Mark(dec))
			return r, nil
		},
	}
}
