package bench

// PowerGraph experiments: chapter 5 (Figs 5.3–5.9, Table 5.1).

import (
	"math"
	"strings"
	"sync"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/metrics"
	"graphpart/internal/plot"
	"graphpart/internal/report"
)

// Engine dimension labels for result cells.
const (
	enginePowerGraph = "PowerGraph"
	enginePowerLyra  = "PowerLyra"
	engineGraphX     = "GraphX"
)

// sweepDims are the cell dimensions of one (dataset × cluster × strategy)
// sweep row under the given engine — the layout shared by every
// all-strategies table (figs 5.6/5.7, 6.4/6.5, 8.1/8.2).
func sweepDims(engine, ds, strat string, cc cluster.Config) report.Dims {
	return report.Dims{Dataset: ds, Cluster: clusterName(cc), Strategy: strat,
		Engine: engine, Parts: cc.NumParts()}
}

// powerGraphStrategies are the measurable PowerGraph strategies (PDS is in
// Table 1.1 but excluded from measurements for cluster-size reasons,
// §5.2.3).
var powerGraphStrategies = []string{"Random", "Grid", "Oblivious", "HDRF"}

// pgCorrelation runs the Figs 5.3–5.5 sweep (PowerGraph engine, uk-web,
// EC2-25) and returns per-(app, strategy) stats.
type pgPoint struct {
	app      string
	strategy string
	rf       float64
	netGB    float64
	compute  float64
	peakMem  float64
}

// pgPointsEntry shares one sweep among concurrent callers (figs 5.3–5.5
// run in parallel under the Runner; the sweep costs multiple seconds).
type pgPointsEntry struct {
	once   sync.Once
	points []pgPoint
	err    error
}

var (
	pgPointsMu    sync.Mutex
	pgPointsCache = map[Config]*pgPointsEntry{}
)

func pgCorrelationPoints(cfg Config) ([]pgPoint, error) {
	pgPointsMu.Lock()
	e, ok := pgPointsCache[cfg]
	if !ok {
		e = &pgPointsEntry{}
		pgPointsCache[cfg] = e
	}
	pgPointsMu.Unlock()
	e.once.Do(func() {
		e.points, e.err = pgCorrelationPointsUncached(cfg)
	})
	return e.points, e.err
}

func pgCorrelationPointsUncached(cfg Config) ([]pgPoint, error) {
	model := cfg.model()
	cc := cluster.EC2x25
	var points []pgPoint
	for _, strat := range powerGraphStrategies {
		a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
		if err != nil {
			return nil, err
		}
		s, err := strategyFor(cfg, strat)
		if err != nil {
			return nil, err
		}
		ing := cluster.Ingress(a, s, cc, model)
		for _, spec := range paperApps() {
			stats, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
			if err != nil {
				return nil, err
			}
			peak := stats.PeakMemGB
			if m := ing.PeakMemPerMachine / 1e9; m > peak {
				peak = m
			}
			points = append(points, pgPoint{
				app:      spec.name,
				strategy: strat,
				rf:       a.ReplicationFactor(),
				netGB:    stats.AvgNetInGB,
				compute:  stats.ComputeSeconds,
				peakMem:  peak,
			})
		}
	}
	return points, nil
}

// correlationTable builds a Fig 5.3/5.4/5.5-style result for one metric
// and appends the per-application linear-fit checks.
func correlationTable(id, title, metricName, unit string, pick func(pgPoint) float64) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: metricName + " is an increasing linear function of replication factor for every application (PowerGraph, EC2-25, UK-web)",
		Run: func(cfg Config) (*Result, error) {
			points, err := pgCorrelationPoints(cfg)
			if err != nil {
				return nil, err
			}
			cc := cluster.EC2x25
			r := NewResult(id, title, "app", "strategy", "replication-factor", metricName)
			byApp := map[string][]pgPoint{}
			var apps []string
			for _, p := range points {
				if _, ok := byApp[p.app]; !ok {
					apps = append(apps, p.app)
				}
				byApp[p.app] = append(byApp[p.app], p)
			}
			for _, a := range apps {
				for _, p := range byApp[a] {
					r.Row(report.Dims{Dataset: "uk-web", Strategy: p.strategy, App: p.app,
						Engine: enginePowerGraph, Cluster: clusterName(cc), Parts: cc.NumParts()}).
						Col(p.app, p.strategy).
						Metric("replication-factor", p.rf, "ratio", 3).
						Metric(metricName, pick(p), unit, 3)
				}
			}
			for _, a := range apps {
				pts := byApp[a]
				xs := make([]float64, len(pts))
				ys := make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.rf
					ys[i] = pick(p)
				}
				fit, err := metrics.Fit(xs, ys)
				if err != nil {
					continue
				}
				fd := report.Dims{Dataset: "uk-web", App: a, Engine: enginePowerGraph, Cluster: clusterName(cc)}
				r.Cell(fd, "fit-slope", fit.Slope, "")
				r.Cell(fd, "fit-r2", fit.R2, "")
				pass := fit.Slope > 0 && fit.R2 >= 0.7
				verdict := "LINEAR-INCREASING ✓"
				if !pass {
					verdict = "correlation weak ✗"
				}
				r.Checkf(pass, metricName+" increases linearly with replication factor for "+a,
					"%s: slope=%.4g R²=%.3f → %s", a, fit.Slope, fit.R2, verdict)
			}
			// Draw the PageRank(10) panel as the figure.
			var fig strings.Builder
			var figPts []plot.Point
			var xs, ys []float64
			for _, p := range byApp["PageRank(10)"] {
				figPts = append(figPts, plot.Point{X: p.rf, Y: pick(p), Label: p.strategy})
				xs = append(xs, p.rf)
				ys = append(ys, pick(p))
			}
			if fit, err := metrics.Fit(xs, ys); err == nil {
				trend := [2]float64{fit.Slope, fit.Intercept}
				sc := plot.Scatter{Title: "PageRank(10): " + metricName + " vs replication factor",
					XLabel: "replication factor", YLabel: metricName,
					Points: figPts, Trend: &trend}
				if err := sc.Render(&fig); err == nil {
					r.Figure = fig.String()
				}
			}
			return r, nil
		},
	}
}

func init() {
	register(correlationTable("fig5.3",
		"Incoming network IO vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"net-in-GB/machine", "GB", func(p pgPoint) float64 { return p.netGB }))
	register(correlationTable("fig5.4",
		"Computation time vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"compute-seconds", "s", func(p pgPoint) float64 { return p.compute }))
	register(correlationTable("fig5.5",
		"Peak memory vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"peak-mem-GB/machine", "GB", func(p pgPoint) float64 { return p.peakMem }))
	register(fig56())
	register(fig57())
	register(fig58())
	register(tab51())
}

// pgClusters are the three PowerGraph/PowerLyra cluster sizes (§4.1).
var pgClusters = []cluster.Config{cluster.Local9, cluster.EC2x16, cluster.EC2x25}

// pgDatasets are the five datasets chapter 5 measures (§5.3).
var pgDatasets = []string{"road-ca", "road-usa", "livejournal", "twitter", "uk-web"}

func fig56() Experiment {
	return Experiment{
		ID:    "fig5.6",
		Title: "Replication factors in PowerGraph (all strategies × graphs × cluster sizes)",
		Paper: "HDRF/Oblivious lowest on road networks and uk-web; Grid lowest on LiveJournal/Twitter; Random always highest",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("fig5.6", "Replication factors in PowerGraph",
				"graph", "cluster", "strategy", "replication-factor")
			type best struct {
				strat string
				rf    float64
			}
			bests := map[string]best{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerGraphStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						rf := a.ReplicationFactor()
						r.Row(sweepDims(enginePowerGraph, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("replication-factor", rf, "ratio", 3)
						key := ds + "/" + clusterName(cc)
						if b, ok := bests[key]; !ok || rf < b.rf {
							bests[key] = best{strat, rf}
						}
					}
				}
			}
			// The added families ride along as extra rows; the paper's
			// best-strategy notes stay restricted to its own strategies.
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range familyStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerGraph, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("replication-factor", a.ReplicationFactor(), "ratio", 3)
					}
				}
			}
			for _, ds := range pgDatasets {
				b := bests[ds+"/"+clusterName(cluster.EC2x25)]
				r.Notef("%s (EC2-25): best strategy %s (RF %.2f)", ds, b.strat, b.rf)
			}
			return r, nil
		},
	}
}

func fig57() Experiment {
	return Experiment{
		ID:    "fig5.7",
		Title: "Ingress time in PowerGraph (all strategies × graphs × cluster sizes)",
		Paper: "hash-based partitioners are faster on power-law graphs; Grid usually fastest, then Random; all strategies similar on road networks",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			r := NewResult("fig5.7", "Ingress time (s) in PowerGraph",
				"graph", "cluster", "strategy", "ingress-seconds")
			ing := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerGraphStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						st := cluster.Ingress(a, s, cc, model)
						r.Row(sweepDims(enginePowerGraph, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("ingress-seconds", st.Seconds, "s", 3)
						ing[ds+"/"+clusterName(cc)+"/"+strat] = st.Seconds
					}
				}
			}
			// The added families ride along as extra rows; the paper's
			// verdicts stay restricted to its own strategies.
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range familyStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						r.Row(sweepDims(enginePowerGraph, ds, strat, cc)).
							Col(ds, clusterName(cc), strat).
							Metric("ingress-seconds", cluster.Ingress(a, s, cc, model).Seconds, "s", 3)
					}
				}
			}
			// Verdicts on the EC2-25 cluster.
			for _, ds := range []string{"twitter", "uk-web"} {
				grid := ing[ds+"/EC2-25/Grid"]
				hdrf := ing[ds+"/EC2-25/HDRF"]
				pass := grid < hdrf
				r.Checkf(pass, "hash-based ingress faster than greedy on the skewed graph "+ds,
					"%s: Grid ingress %.2fs vs HDRF %.2fs (hash faster on skewed graphs %s)", ds, grid, hdrf, Mark(pass))
			}
			return r, nil
		},
	}
}

func fig58() Experiment {
	return Experiment{
		ID:    "fig5.8",
		Title: "In-degree distributions of the three skewed graphs",
		Paper: "LiveJournal and Twitter sit below the power-law regression line at low degrees (deficit); uk-web tracks the line",
		Run: func(cfg Config) (*Result, error) {
			r := NewResult("fig5.8", "In-degree distribution + power-law fit",
				"graph", "alpha", "R2", "low-degree-ratio", "max-in-degree")
			for _, ds := range []string{"livejournal", "twitter", "uk-web"} {
				g, err := loadGraph(cfg, ds)
				if err != nil {
					return nil, err
				}
				// The figure plots in-degrees; classification evidence uses
				// total degree (see graph.Classify), reported via the
				// dataset class check below.
				fit := graph.FitPowerLaw(g.InDegreeHistogram())
				r.Row(report.Dims{Dataset: ds}).
					Col(ds).
					Metric("alpha", fit.Alpha, "", 3).
					Metric("R2", fit.R2, "", 3).
					Metric("low-degree-ratio", fit.LowDegreeRatio, "ratio", 3).
					Metric("max-in-degree", float64(g.MaxInDegree()), "edges", 3)
				info, _ := datasets.Describe(ds)
				cls := graph.Classify(g)
				pass := cls.Class == info.Class
				r.Checkf(pass, "degree classification of "+ds+" matches the paper",
					"%s: classified %s (paper: %s) %s", ds, cls.Class, info.Class, Mark(pass))
			}
			return r, nil
		},
	}
}

func tab51() Experiment {
	return Experiment{
		ID:    "tab5.1",
		Title: "Grid vs HDRF: ingress and compute for PageRank(C) and K-core (PowerGraph, EC2-25, UK-web)",
		Paper: "Grid wins total time for short-running PageRank (faster ingress); HDRF wins for long-running K-core (faster compute)",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			r := NewResult("tab5.1", "Grid vs HDRF, ingress vs compute",
				"strategy", "app", "ingress-s", "compute-s", "total-s")
			totals := map[string]float64{}
			for _, strat := range []string{"Grid", "HDRF"} {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				s, err := strategyFor(cfg, strat)
				if err != nil {
					return nil, err
				}
				ing := cluster.Ingress(a, s, cc, model).Seconds
				for _, spec := range paperApps() {
					if spec.name != "PageRank(C)" && spec.name != "K-Core" {
						continue
					}
					stats, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					total := ing + stats.ComputeSeconds
					r.Row(report.Dims{Dataset: "uk-web", Strategy: strat, App: spec.name,
						Engine: enginePowerGraph, Cluster: clusterName(cc), Parts: cc.NumParts()}).
						Col(strat, spec.name).
						Metric("ingress-s", ing, "s", 2).
						Metric("compute-s", stats.ComputeSeconds, "s", 2).
						Metric("total-s", total, "s", 2)
					totals[strat+"/"+spec.name] = total
				}
			}
			prPass := totals["Grid/PageRank(C)"] < totals["HDRF/PageRank(C)"]
			kcPass := totals["HDRF/K-Core"] < totals["Grid/K-Core"]
			r.Checkf(prPass, "Grid wins total time for the short PageRank job",
				"short job (PageRank): Grid total %.2fs vs HDRF %.2fs — Grid wins %s",
				totals["Grid/PageRank(C)"], totals["HDRF/PageRank(C)"], Mark(prPass))
			r.Checkf(kcPass, "HDRF wins total time for the long K-core job",
				"long job (K-core): HDRF total %.2fs vs Grid %.2fs — HDRF wins %s",
				totals["HDRF/K-Core"], totals["Grid/K-Core"], Mark(kcPass))
			return r, nil
		},
	}
}

// clusterName labels a cluster the way the paper does.
func clusterName(cc cluster.Config) string {
	switch {
	case cc.Machines == 9 && cc.PartsPerMachine <= 1:
		return "Local-9"
	case cc.Machines == 10 && cc.PartsPerMachine <= 1:
		return "Local-10"
	case cc.Machines == 16:
		return "EC2-16"
	case cc.Machines == 25:
		return "EC2-25"
	case cc.Machines == 10:
		return "GraphX-Local-10"
	case cc.Machines == 9:
		return "GraphX-Local-9"
	}
	return "custom"
}

// slowdownRatio is used by tests: worst/best total-time ratio across
// strategies for an app (the paper's "up to 1.9× overall slowdown").
func slowdownRatio(totals map[string]float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	//graphlint:unordered min/max reduction — commutative, order-independent
	for _, v := range totals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo <= 0 || math.IsInf(lo, 1) {
		return 0
	}
	return hi / lo
}
