package bench

// PowerGraph experiments: chapter 5 (Figs 5.3–5.9, Table 5.1).

import (
	"math"
	"strings"
	"sync"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/metrics"
	"graphpart/internal/plot"
)

// powerGraphStrategies are the measurable PowerGraph strategies (PDS is in
// Table 1.1 but excluded from measurements for cluster-size reasons,
// §5.2.3).
var powerGraphStrategies = []string{"Random", "Grid", "Oblivious", "HDRF"}

// pgCorrelation runs the Figs 5.3–5.5 sweep (PowerGraph engine, uk-web,
// EC2-25) and returns per-(app, strategy) stats.
type pgPoint struct {
	app      string
	strategy string
	rf       float64
	netGB    float64
	compute  float64
	peakMem  float64
}

var (
	pgPointsMu    sync.Mutex
	pgPointsCache = map[Config][]pgPoint{}
)

func pgCorrelationPoints(cfg Config) ([]pgPoint, error) {
	pgPointsMu.Lock()
	cached, ok := pgPointsCache[cfg]
	pgPointsMu.Unlock()
	if ok {
		return cached, nil
	}
	points, err := pgCorrelationPointsUncached(cfg)
	if err != nil {
		return nil, err
	}
	pgPointsMu.Lock()
	pgPointsCache[cfg] = points
	pgPointsMu.Unlock()
	return points, nil
}

func pgCorrelationPointsUncached(cfg Config) ([]pgPoint, error) {
	model := cfg.model()
	cc := cluster.EC2x25
	var points []pgPoint
	for _, strat := range powerGraphStrategies {
		a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
		if err != nil {
			return nil, err
		}
		s, err := strategyFor(cfg, strat)
		if err != nil {
			return nil, err
		}
		ing := cluster.Ingress(a, s, cc, model)
		for _, spec := range paperApps() {
			stats, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
			if err != nil {
				return nil, err
			}
			peak := stats.PeakMemGB
			if m := ing.PeakMemPerMachine / 1e9; m > peak {
				peak = m
			}
			points = append(points, pgPoint{
				app:      spec.name,
				strategy: strat,
				rf:       a.ReplicationFactor(),
				netGB:    stats.AvgNetInGB,
				compute:  stats.ComputeSeconds,
				peakMem:  peak,
			})
		}
	}
	return points, nil
}

// correlationTable builds a Fig 5.3/5.4/5.5-style table for one metric and
// appends the per-application linear-fit verdicts.
func correlationTable(id, title, metricName string, pick func(pgPoint) float64) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: metricName + " is an increasing linear function of replication factor for every application (PowerGraph, EC2-25, UK-web)",
		Run: func(cfg Config) (*Table, error) {
			points, err := pgCorrelationPoints(cfg)
			if err != nil {
				return nil, err
			}
			t := &Table{ID: id, Title: title,
				Columns: []string{"app", "strategy", "replication-factor", metricName}}
			byApp := map[string][]pgPoint{}
			var apps []string
			for _, p := range points {
				if _, ok := byApp[p.app]; !ok {
					apps = append(apps, p.app)
				}
				byApp[p.app] = append(byApp[p.app], p)
			}
			for _, a := range apps {
				for _, p := range byApp[a] {
					t.AddRow(p.app, p.strategy, f3(p.rf), f3(pick(p)))
				}
			}
			for _, a := range apps {
				pts := byApp[a]
				xs := make([]float64, len(pts))
				ys := make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.rf
					ys[i] = pick(p)
				}
				fit, err := metrics.Fit(xs, ys)
				if err != nil {
					continue
				}
				verdict := "LINEAR-INCREASING ✓"
				if fit.Slope <= 0 || fit.R2 < 0.7 {
					verdict = "correlation weak ✗"
				}
				t.Notef("%s: slope=%.4g R²=%.3f → %s", a, fit.Slope, fit.R2, verdict)
			}
			// Draw the PageRank(10) panel as the figure.
			var fig strings.Builder
			var figPts []plot.Point
			var xs, ys []float64
			for _, p := range byApp["PageRank(10)"] {
				figPts = append(figPts, plot.Point{X: p.rf, Y: pick(p), Label: p.strategy})
				xs = append(xs, p.rf)
				ys = append(ys, pick(p))
			}
			if fit, err := metrics.Fit(xs, ys); err == nil {
				trend := [2]float64{fit.Slope, fit.Intercept}
				sc := plot.Scatter{Title: "PageRank(10): " + metricName + " vs replication factor",
					XLabel: "replication factor", YLabel: metricName,
					Points: figPts, Trend: &trend}
				if err := sc.Render(&fig); err == nil {
					t.Figure = fig.String()
				}
			}
			return t, nil
		},
	}
}

func init() {
	register(correlationTable("fig5.3",
		"Incoming network IO vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"net-in-GB/machine", func(p pgPoint) float64 { return p.netGB }))
	register(correlationTable("fig5.4",
		"Computation time vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"compute-seconds", func(p pgPoint) float64 { return p.compute }))
	register(correlationTable("fig5.5",
		"Peak memory vs. replication factor (PowerGraph, EC2-25, UK-web)",
		"peak-mem-GB/machine", func(p pgPoint) float64 { return p.peakMem }))
	register(fig56())
	register(fig57())
	register(fig58())
	register(tab51())
}

// pgClusters are the three PowerGraph/PowerLyra cluster sizes (§4.1).
var pgClusters = []cluster.Config{cluster.Local9, cluster.EC2x16, cluster.EC2x25}

// pgDatasets are the five datasets chapter 5 measures (§5.3).
var pgDatasets = []string{"road-ca", "road-usa", "livejournal", "twitter", "uk-web"}

func fig56() Experiment {
	return Experiment{
		ID:    "fig5.6",
		Title: "Replication factors in PowerGraph (all strategies × graphs × cluster sizes)",
		Paper: "HDRF/Oblivious lowest on road networks and uk-web; Grid lowest on LiveJournal/Twitter; Random always highest",
		Run: func(cfg Config) (*Table, error) {
			t := &Table{ID: "fig5.6", Title: "Replication factors in PowerGraph",
				Columns: []string{"graph", "cluster", "strategy", "replication-factor"}}
			type best struct {
				strat string
				rf    float64
			}
			bests := map[string]best{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerGraphStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						rf := a.ReplicationFactor()
						t.AddRow(ds, clusterName(cc), strat, f3(rf))
						key := ds + "/" + clusterName(cc)
						if b, ok := bests[key]; !ok || rf < b.rf {
							bests[key] = best{strat, rf}
						}
					}
				}
			}
			for _, ds := range pgDatasets {
				b := bests[ds+"/"+clusterName(cluster.EC2x25)]
				t.Notef("%s (EC2-25): best strategy %s (RF %.2f)", ds, b.strat, b.rf)
			}
			return t, nil
		},
	}
}

func fig57() Experiment {
	return Experiment{
		ID:    "fig5.7",
		Title: "Ingress time in PowerGraph (all strategies × graphs × cluster sizes)",
		Paper: "hash-based partitioners are faster on power-law graphs; Grid usually fastest, then Random; all strategies similar on road networks",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			t := &Table{ID: "fig5.7", Title: "Ingress time (s) in PowerGraph",
				Columns: []string{"graph", "cluster", "strategy", "ingress-seconds"}}
			ing := map[string]float64{}
			for _, ds := range pgDatasets {
				for _, cc := range pgClusters {
					for _, strat := range powerGraphStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						s, err := strategyFor(cfg, strat)
						if err != nil {
							return nil, err
						}
						st := cluster.Ingress(a, s, cc, model)
						t.AddRow(ds, clusterName(cc), strat, f3(st.Seconds))
						ing[ds+"/"+clusterName(cc)+"/"+strat] = st.Seconds
					}
				}
			}
			// Verdicts on the EC2-25 cluster.
			for _, ds := range []string{"twitter", "uk-web"} {
				grid := ing[ds+"/EC2-25/Grid"]
				hdrf := ing[ds+"/EC2-25/HDRF"]
				verdict := "✓"
				if grid >= hdrf {
					verdict = "✗"
				}
				t.Notef("%s: Grid ingress %.2fs vs HDRF %.2fs (hash faster on skewed graphs %s)", ds, grid, hdrf, verdict)
			}
			return t, nil
		},
	}
}

func fig58() Experiment {
	return Experiment{
		ID:    "fig5.8",
		Title: "In-degree distributions of the three skewed graphs",
		Paper: "LiveJournal and Twitter sit below the power-law regression line at low degrees (deficit); uk-web tracks the line",
		Run: func(cfg Config) (*Table, error) {
			t := &Table{ID: "fig5.8", Title: "In-degree distribution + power-law fit",
				Columns: []string{"graph", "alpha", "R2", "low-degree-ratio", "max-in-degree"}}
			for _, ds := range []string{"livejournal", "twitter", "uk-web"} {
				g, err := loadGraph(cfg, ds)
				if err != nil {
					return nil, err
				}
				// The figure plots in-degrees; classification evidence uses
				// total degree (see graph.Classify), reported via the
				// dataset class check below.
				fit := graph.FitPowerLaw(g.InDegreeHistogram())
				t.AddRow(ds, f3(fit.Alpha), f3(fit.R2), f3(fit.LowDegreeRatio), f3(float64(g.MaxInDegree())))
				info, _ := datasets.Describe(ds)
				cls := graph.Classify(g)
				mark := "✓"
				if cls.Class != info.Class {
					mark = "✗"
				}
				t.Notef("%s: classified %s (paper: %s) %s", ds, cls.Class, info.Class, mark)
			}
			return t, nil
		},
	}
}

func tab51() Experiment {
	return Experiment{
		ID:    "tab5.1",
		Title: "Grid vs HDRF: ingress and compute for PageRank(C) and K-core (PowerGraph, EC2-25, UK-web)",
		Paper: "Grid wins total time for short-running PageRank (faster ingress); HDRF wins for long-running K-core (faster compute)",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			cc := cluster.EC2x25
			t := &Table{ID: "tab5.1", Title: "Grid vs HDRF, ingress vs compute",
				Columns: []string{"strategy", "app", "ingress-s", "compute-s", "total-s"}}
			totals := map[string]float64{}
			for _, strat := range []string{"Grid", "HDRF"} {
				a, err := assignment(cfg, "uk-web", strat, cc.NumParts())
				if err != nil {
					return nil, err
				}
				s, err := strategyFor(cfg, strat)
				if err != nil {
					return nil, err
				}
				ing := cluster.Ingress(a, s, cc, model).Seconds
				for _, spec := range paperApps() {
					if spec.name != "PageRank(C)" && spec.name != "K-Core" {
						continue
					}
					stats, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
					if err != nil {
						return nil, err
					}
					total := ing + stats.ComputeSeconds
					t.AddRow(strat, spec.name, f2(ing), f2(stats.ComputeSeconds), f2(total))
					totals[strat+"/"+spec.name] = total
				}
			}
			prVerdict, kcVerdict := "✓", "✓"
			if !(totals["Grid/PageRank(C)"] < totals["HDRF/PageRank(C)"]) {
				prVerdict = "✗"
			}
			if !(totals["HDRF/K-Core"] < totals["Grid/K-Core"]) {
				kcVerdict = "✗"
			}
			t.Notef("short job (PageRank): Grid total %.2fs vs HDRF %.2fs — Grid wins %s",
				totals["Grid/PageRank(C)"], totals["HDRF/PageRank(C)"], prVerdict)
			t.Notef("long job (K-core): HDRF total %.2fs vs Grid %.2fs — HDRF wins %s",
				totals["HDRF/K-Core"], totals["Grid/K-Core"], kcVerdict)
			return t, nil
		},
	}
}

// clusterName labels a cluster the way the paper does.
func clusterName(cc cluster.Config) string {
	switch {
	case cc.Machines == 9 && cc.PartsPerMachine <= 1:
		return "Local-9"
	case cc.Machines == 10 && cc.PartsPerMachine <= 1:
		return "Local-10"
	case cc.Machines == 16:
		return "EC2-16"
	case cc.Machines == 25:
		return "EC2-25"
	case cc.Machines == 10:
		return "GraphX-Local-10"
	case cc.Machines == 9:
		return "GraphX-Local-9"
	}
	return "custom"
}

// slowdownRatio is used by tests: worst/best total-time ratio across
// strategies for an app (the paper's "up to 1.9× overall slowdown").
func slowdownRatio(totals map[string]float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range totals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo <= 0 || math.IsInf(lo, 1) {
		return 0
	}
	return hi / lo
}
