package bench

// GraphX experiments: chapter 7 (Fig 7.1, Table 7.1).

import (
	"fmt"
	"sort"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// graphxStrategies are GraphX's native strategies (§7.2) in the paper's
// naming.
var graphxStrategies = []string{"1D", "2D", "CanonicalRandom", "AsymRandom"}

// graphxDatasets are the four graphs GraphX could load (§7.3: Twitter and
// uk-web ran out of memory, so enwiki replaces them).
var graphxDatasets = []string{"road-ca", "road-usa", "livejournal", "enwiki"}

// graphxApps are the chapter-7 applications, run for 10 iterations (§7.3).
var graphxApps = []string{"PageRank", "SSSP", "WCC"}

// runGraphXApp executes one application under the GraphX engine.
func runGraphXApp(appName string, a *partition.Assignment, gcfg graphx.Config, model cluster.CostModel) (graphx.Stats, error) {
	switch appName {
	case "PageRank":
		out, err := graphx.Run[float64, float64](app.PageRank{}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	case "SSSP":
		out, err := graphx.Run[float64, float64](app.SSSP{Source: ssspSource(a.G)}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	case "WCC":
		out, err := graphx.Run[uint32, uint32](app.WCC{}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	}
	return graphx.Stats{}, fmt.Errorf("bench: unknown GraphX app %q", appName)
}

// gxDims are the cell dimensions of a GraphX measurement.
func gxDims(cc cluster.Config, ds, strat, appName string) report.Dims {
	return report.Dims{Dataset: ds, Strategy: strat, App: appName,
		Engine: engineGraphX, Cluster: clusterName(cc), Parts: cc.NumParts()}
}

func init() {
	register(fig71())
	register(tab71())
}

func fig71() Experiment {
	return Experiment{
		ID:    "fig7.1",
		Title: "PageRank computation times on GraphX (native strategies × graphs, 10 iterations, Local-10)",
		Paper: "partitioning time is similar for all (stateless hash) strategies and much smaller than computation; Canonical Random competitive on road networks, 2D on skewed graphs",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal10
			r := NewResult("fig7.1", "GraphX PageRank compute times",
				"graph", "strategy", "partition-s", "compute-s")
			partTimes := map[string][]float64{}
			for _, ds := range graphxDatasets {
				for _, strat := range graphxStrategies {
					a, err := assignment(cfg, ds, strat, cc.NumParts())
					if err != nil {
						return nil, err
					}
					st, err := runGraphXApp("PageRank", a, cfg.graphxConfig(cc, 10), model)
					if err != nil {
						return nil, err
					}
					r.Row(gxDims(cc, ds, strat, "PageRank")).Col(ds, strat).
						Metric("partition-s", st.PartitionSeconds, "s", 3).
						Metric("compute-s", st.ComputeSeconds, "s", 3)
					partTimes[ds] = append(partTimes[ds], st.PartitionSeconds)
					// The table only calls this out on failure, but the
					// check is recorded either way so a future regression
					// has a passing baseline to diff against.
					claim := "partitioning time much smaller than compute for " + ds + "/" + strat
					if st.PartitionSeconds >= st.ComputeSeconds {
						r.Checkf(false, claim,
							"%s/%s: partitioning (%.3fs) not ≪ compute (%.3fs) ✗", ds, strat, st.PartitionSeconds, st.ComputeSeconds)
					} else {
						r.Check(true, claim, fmt.Sprintf("%s/%s: partitioning (%.3fs) ≪ compute (%.3fs) ✓",
							ds, strat, st.PartitionSeconds, st.ComputeSeconds))
					}
				}
			}
			// All native strategies partition at similar speed (§7.4).
			pass := true
			for _, ds := range sortedKeys(partTimes) {
				times := partTimes[ds]
				lo, hi := times[0], times[0]
				for _, v := range times {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				if hi > lo*1.5 {
					pass = false
					r.Notef("%s: partition times spread %.3f–%.3fs exceeds 1.5×", ds, lo, hi)
				}
			}
			r.Checkf(pass, "all native strategies partition at similar speed",
				"all native strategies partition at similar speed: %s", Mark(pass))
			return r, nil
		},
	}
}

// rankingRow formats Table 7.1's ascending-compute-time ranking with
// parentheses around near-ties (within 5%).
func rankingRow(times map[string]float64) string {
	type st struct {
		name string
		sec  float64
	}
	var list []st
	for n, s := range times {
		list = append(list, st{n, s})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].sec != list[j].sec {
			return list[i].sec < list[j].sec
		}
		return list[i].name < list[j].name // tie-break: map order must not leak
	})
	short := map[string]string{"1D": "1D", "2D": "2D", "CanonicalRandom": "CR", "AsymRandom": "R"}
	out := ""
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && list[j].sec <= list[i].sec*1.05 {
			j++
		}
		group := ""
		for k := i; k < j; k++ {
			if group != "" {
				group += ","
			}
			group += short[list[k].name]
		}
		if j-i > 1 {
			group = "(" + group + ")"
		}
		if out != "" {
			out += ","
		}
		out += group
		i = j
	}
	return out
}

func tab71() Experiment {
	return Experiment{
		ID:    "tab7.1",
		Title: "Computation-time rankings for GraphX (Table 7.1)",
		Paper: "Canonical Random fastest or near-fastest on road networks; 2D fastest or near-fastest on skewed graphs; Random (asymmetric) generally last",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal10
			r := NewResult("tab7.1", "GraphX strategy rankings (ascending compute time)",
				"app", "graph", "ranking", "best")
			roadOK, skewOK := true, true
			for _, appName := range graphxApps {
				for _, ds := range graphxDatasets {
					times := map[string]float64{}
					for _, strat := range graphxStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						st, err := runGraphXApp(appName, a, cfg.graphxConfig(cc, 10), model)
						if err != nil {
							return nil, err
						}
						times[strat] = st.ComputeSeconds
						// The rendered row is the ranking; the underlying
						// measurements go out as cells.
						r.Cell(gxDims(cc, ds, strat, appName), "compute-s", st.ComputeSeconds, "s")
					}
					// Sorted iteration makes the argmin's tie-break (first
					// name in ascending order) deterministic.
					best, bestT := "", -1.0
					for _, n := range sortedKeys(times) {
						if s := times[n]; bestT < 0 || s < bestT {
							best, bestT = n, s
						}
					}
					r.Row(report.Dims{Dataset: ds, App: appName, Engine: engineGraphX,
						Cluster: clusterName(cc), Parts: cc.NumParts()}).
						Col(appName, ds, rankingRow(times), best)
					isRoad := ds == "road-ca" || ds == "road-usa"
					if isRoad {
						// CR must be within 10% of the best.
						if times["CanonicalRandom"] > bestT*1.25 {
							roadOK = false
						}
					} else {
						if times["2D"] > bestT*1.25 {
							skewOK = false
						}
					}
				}
			}
			r.Checkf(roadOK, "Canonical Random fastest or near-fastest on road networks",
				"Canonical Random fastest/near-fastest on road networks: %s", Mark(roadOK))
			r.Checkf(skewOK, "2D fastest or near-fastest on heavy-tailed graphs",
				"2D fastest/near-fastest on heavy-tailed graphs: %s", Mark(skewOK))
			return r, nil
		},
	}
}
