package bench

// GraphX experiments: chapter 7 (Fig 7.1, Table 7.1).

import (
	"fmt"
	"sort"

	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/partition"
)

// graphxStrategies are GraphX's native strategies (§7.2) in the paper's
// naming.
var graphxStrategies = []string{"1D", "2D", "CanonicalRandom", "AsymRandom"}

// graphxDatasets are the four graphs GraphX could load (§7.3: Twitter and
// uk-web ran out of memory, so enwiki replaces them).
var graphxDatasets = []string{"road-ca", "road-usa", "livejournal", "enwiki"}

// graphxApps are the chapter-7 applications, run for 10 iterations (§7.3).
var graphxApps = []string{"PageRank", "SSSP", "WCC"}

// runGraphXApp executes one application under the GraphX engine.
func runGraphXApp(appName string, a *partition.Assignment, gcfg graphx.Config, model cluster.CostModel) (graphx.Stats, error) {
	switch appName {
	case "PageRank":
		out, err := graphx.Run[float64, float64](app.PageRank{}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	case "SSSP":
		out, err := graphx.Run[float64, float64](app.SSSP{Source: ssspSource(a.G)}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	case "WCC":
		out, err := graphx.Run[uint32, uint32](app.WCC{}, a, gcfg, model)
		if err != nil {
			return graphx.Stats{}, err
		}
		return out.Stats, nil
	}
	return graphx.Stats{}, fmt.Errorf("bench: unknown GraphX app %q", appName)
}

func init() {
	register(fig71())
	register(tab71())
}

func fig71() Experiment {
	return Experiment{
		ID:    "fig7.1",
		Title: "PageRank computation times on GraphX (native strategies × graphs, 10 iterations, Local-10)",
		Paper: "partitioning time is similar for all (stateless hash) strategies and much smaller than computation; Canonical Random competitive on road networks, 2D on skewed graphs",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal10
			t := &Table{ID: "fig7.1", Title: "GraphX PageRank compute times",
				Columns: []string{"graph", "strategy", "partition-s", "compute-s"}}
			partTimes := map[string][]float64{}
			for _, ds := range graphxDatasets {
				for _, strat := range graphxStrategies {
					a, err := assignment(cfg, ds, strat, cc.NumParts())
					if err != nil {
						return nil, err
					}
					st, err := runGraphXApp("PageRank", a, cfg.graphxConfig(cc, 10), model)
					if err != nil {
						return nil, err
					}
					t.AddRow(ds, strat, f3(st.PartitionSeconds), f3(st.ComputeSeconds))
					partTimes[ds] = append(partTimes[ds], st.PartitionSeconds)
					if st.PartitionSeconds >= st.ComputeSeconds {
						t.Notef("%s/%s: partitioning (%.3fs) not ≪ compute (%.3fs) ✗", ds, strat, st.PartitionSeconds, st.ComputeSeconds)
					}
				}
			}
			// All native strategies partition at similar speed (§7.4).
			ok := "✓"
			for ds, times := range partTimes {
				lo, hi := times[0], times[0]
				for _, v := range times {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				if hi > lo*1.5 {
					ok = "✗"
					t.Notef("%s: partition times spread %.3f–%.3fs exceeds 1.5×", ds, lo, hi)
				}
			}
			t.Notef("all native strategies partition at similar speed: %s", ok)
			return t, nil
		},
	}
}

// rankingRow formats Table 7.1's ascending-compute-time ranking with
// parentheses around near-ties (within 5%).
func rankingRow(times map[string]float64) string {
	type st struct {
		name string
		sec  float64
	}
	var list []st
	for n, s := range times {
		list = append(list, st{n, s})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].sec < list[j].sec })
	short := map[string]string{"1D": "1D", "2D": "2D", "CanonicalRandom": "CR", "AsymRandom": "R"}
	out := ""
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && list[j].sec <= list[i].sec*1.05 {
			j++
		}
		group := ""
		for k := i; k < j; k++ {
			if group != "" {
				group += ","
			}
			group += short[list[k].name]
		}
		if j-i > 1 {
			group = "(" + group + ")"
		}
		if out != "" {
			out += ","
		}
		out += group
		i = j
	}
	return out
}

func tab71() Experiment {
	return Experiment{
		ID:    "tab7.1",
		Title: "Computation-time rankings for GraphX (Table 7.1)",
		Paper: "Canonical Random fastest or near-fastest on road networks; 2D fastest or near-fastest on skewed graphs; Random (asymmetric) generally last",
		Run: func(cfg Config) (*Table, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal10
			t := &Table{ID: "tab7.1", Title: "GraphX strategy rankings (ascending compute time)",
				Columns: []string{"app", "graph", "ranking", "best"}}
			roadOK, skewOK := "✓", "✓"
			for _, appName := range graphxApps {
				for _, ds := range graphxDatasets {
					times := map[string]float64{}
					for _, strat := range graphxStrategies {
						a, err := assignment(cfg, ds, strat, cc.NumParts())
						if err != nil {
							return nil, err
						}
						st, err := runGraphXApp(appName, a, cfg.graphxConfig(cc, 10), model)
						if err != nil {
							return nil, err
						}
						times[strat] = st.ComputeSeconds
					}
					best, bestT := "", -1.0
					for n, s := range times {
						if bestT < 0 || s < bestT {
							best, bestT = n, s
						}
					}
					t.AddRow(appName, ds, rankingRow(times), best)
					isRoad := ds == "road-ca" || ds == "road-usa"
					if isRoad {
						// CR must be within 10% of the best.
						if times["CanonicalRandom"] > bestT*1.25 {
							roadOK = "✗"
						}
					} else {
						if times["2D"] > bestT*1.25 {
							skewOK = "✗"
						}
					}
				}
			}
			t.Notef("Canonical Random fastest/near-fastest on road networks: %s", roadOK)
			t.Notef("2D fastest/near-fastest on heavy-tailed graphs: %s", skewOK)
			return t, nil
		},
	}
}
