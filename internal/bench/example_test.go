package bench_test

import (
	"fmt"

	"graphpart/internal/bench"
	"graphpart/internal/report"
)

// ExampleRunner executes an ad-hoc experiment through the concurrent Runner
// and assembles the machine-readable report. Registered experiments
// (bench.All) run the same way; the Result builder turns measurements into
// typed cells and structured checks that every rendering derives from.
func ExampleRunner() {
	exp := bench.Experiment{
		ID:    "demo",
		Title: "Demo experiment",
		Run: func(cfg bench.Config) (*bench.Result, error) {
			r := bench.NewResult("demo", "Demo experiment", "strategy", "rf")
			r.Row(report.Dims{Strategy: "Random", Parts: 9}).
				Col("Random").
				Metric("replication-factor", 2.54, "ratio", 2)
			r.Checkf(true, "replication stays bounded", "rf=%.2f %s", 2.54, bench.Mark(true))
			return r, nil
		},
	}

	runner := bench.Runner{Config: bench.DefaultConfig()}
	results := runner.Run([]bench.Experiment{exp})
	rep := runner.Report(results)

	e := rep.Experiments[0]
	fmt.Printf("experiment %s: %d cell(s), %d check(s)\n", e.ID, len(e.Cells), len(e.Checks))
	fmt.Printf("cell %s = %.2f %s\n", e.Cells[0].Key(), e.Cells[0].Value, e.Cells[0].Unit)
	fmt.Printf("check passed: %v\n", e.Checks[0].Pass)
	// Output:
	// experiment demo: 1 cell(s), 1 check(s)
	// cell strategy=Random|parts=9|metric=replication-factor = 2.54 ratio
	// check passed: true
}
