package bench

import (
	"graphpart/internal/app"
	"graphpart/internal/cluster"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// K-core bounds for the scaled datasets. The paper uses kmin=10, kmax=20 on
// graphs three orders of magnitude larger (§5.3); 3..16 puts the peeling
// frontier in the same relative position on the stand-ins.
const (
	kcoreMin = 3
	kcoreMax = 16
)

// maxSupersteps bounds convergent runs defensively.
const maxSupersteps = 4000

// prConvTolerance is the convergence tolerance of the "PageRank(C)"
// benchmark configuration; it sets convergence after a few tens of
// supersteps, giving PageRank(C) the paper's "short job" character
// relative to K-core (Table 5.1).
const prConvTolerance = 1e-2

// appSpec is one benchmark application in the configuration the paper runs.
type appSpec struct {
	name    string
	natural bool
	run     func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error)
}

// ssspSource picks a deterministic well-connected source: the max-degree
// vertex.
func ssspSource(g *graph.Graph) graph.VertexID {
	best := graph.VertexID(0)
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(graph.VertexID(v)); d > bestDeg {
			best, bestDeg = graph.VertexID(v), d
		}
	}
	return best
}

// paperApps returns the six application configurations of Figs 5.3–5.5:
// PageRank for 10 iterations, convergent PageRank, WCC, undirected SSSP,
// K-core decomposition, and Simple Coloring.
func paperApps() []appSpec {
	return []appSpec{
		{
			name: "PageRank(10)", natural: true,
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.FixedIterations = 10
				out, err := engine.Run[float64, float64](mode, app.PageRank{}, a, cc, model, opts)
				if err != nil {
					return engine.Stats{}, err
				}
				out.Stats.App = "PageRank(10)"
				return out.Stats, nil
			},
		},
		{
			name: "PageRank(C)", natural: true,
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.MaxSupersteps = maxSupersteps
				out, err := engine.Run[float64, float64](mode, app.PageRank{Tolerance: prConvTolerance}, a, cc, model, opts)
				if err != nil {
					return engine.Stats{}, err
				}
				out.Stats.App = "PageRank(C)"
				return out.Stats, nil
			},
		},
		{
			name: "WCC", natural: false,
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.MaxSupersteps = maxSupersteps
				out, err := engine.Run[uint32, uint32](mode, app.WCC{}, a, cc, model, opts)
				if err != nil {
					return engine.Stats{}, err
				}
				return out.Stats, nil
			},
		},
		{
			name: "SSSP", natural: false, // undirected variant, as in §6.4.1
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.MaxSupersteps = maxSupersteps
				out, err := engine.Run[float64, float64](mode, app.SSSP{Source: ssspSource(a.G)}, a, cc, model, opts)
				if err != nil {
					return engine.Stats{}, err
				}
				return out.Stats, nil
			},
		},
		{
			name: "K-Core", natural: false,
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.MaxSupersteps = maxSupersteps
				_, stats, err := app.KCoreDecomposition(mode, kcoreMin, kcoreMax, a, cc, model, opts)
				return stats, err
			},
		},
		{
			name: "Coloring", natural: false,
			run: func(mode engine.Mode, a *partition.Assignment, cc cluster.Config, model cluster.CostModel, opts engine.Options) (engine.Stats, error) {
				opts.MaxSupersteps = maxSupersteps
				out, err := engine.Run[int32, app.ColorSet](mode, app.Coloring{}, a, cc, model, opts)
				if err != nil {
					return engine.Stats{}, err
				}
				return out.Stats, nil
			},
		},
	}
}
