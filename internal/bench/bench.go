// Package bench contains the experiment harness: one registered experiment
// per table and figure in the paper's evaluation chapters, each regenerating
// the corresponding rows/series on the simulated cluster.
//
// Run them via cmd/benchrunner or the root-level Go benchmarks
// (bench_test.go). Every experiment is deterministic.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/engine"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1 = test-sized).
	Scale int
	// Model is the cluster cost model; zero value means DefaultModel.
	Model *cluster.CostModel
	// HybridThreshold is the high-degree cutoff used by Hybrid/H-Ginger
	// and the PowerLyra engine. The scaled datasets use 30 (the paper's
	// 100 assumes million-vertex graphs).
	HybridThreshold int
	// Seed for all partitioners.
	Seed uint64
	// Workers bounds the engines' per-superstep worker goroutines (and
	// the partitioners' ingress workers); ≤0 means GOMAXPROCS. Results
	// are byte-identical for every value — parallelism only changes
	// wall-clock, which is what makes -scale ≥2 runs tractable.
	Workers int
}

// DefaultConfig returns the configuration used by tests and the default
// benchrunner invocation.
func DefaultConfig() Config {
	return Config{Scale: 1, HybridThreshold: 30, Seed: 1}
}

func (c Config) model() cluster.CostModel {
	if c.Model != nil {
		return *c.Model
	}
	return cluster.DefaultModel()
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

// engineOpts is the base engine.Options every experiment starts from; app
// specs fill in their own iteration caps.
func (c Config) engineOpts() engine.Options {
	return engine.Options{HighDegreeThreshold: c.HybridThreshold, Workers: c.Workers}
}

// graphxConfig is the base graphx.Config every GraphX experiment starts
// from; building it here (rather than at each call site) makes forgetting
// Workers impossible.
func (c Config) graphxConfig(cc cluster.Config, iterations int) graphx.Config {
	return graphx.Config{Cluster: cc, Iterations: iterations, Workers: c.Workers}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the experiment's own verdicts: the qualitative shape
	// the paper reports and whether this run reproduced it.
	Notes []string
	// Figure optionally carries an ASCII rendering of the paper's figure
	// (scatter with trend line, or cumulative curves).
	Figure string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	fmt.Fprintln(w, line(t.Columns))
	// Ruler width = column widths plus the two-space separators between
	// them.
	total := 2 * (len(t.Columns) - 1)
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	if t.Figure != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, t.Figure)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string // e.g. "fig5.3", "tab5.1"
	Title string
	// Paper summarizes the shape the paper reports for this artifact.
	Paper string
	Run   func(Config) (*Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- assignment cache -------------------------------------------------

type asgKey struct {
	dataset  string
	scale    int
	strategy string
	parts    int
	thr      int
	seed     uint64
}

var (
	asgMu    sync.Mutex
	asgCache = map[asgKey]*partition.Assignment{}
)

// assignment partitions a named dataset with a named strategy, caching the
// result (experiments share many assignments). It runs the parallel
// streaming pipeline, which is placement-identical to the sequential path
// for every strategy.
func assignment(cfg Config, dataset, strategy string, parts int) (*partition.Assignment, error) {
	key := asgKey{dataset, cfg.scale(), strategy, parts, cfg.HybridThreshold, cfg.Seed}
	asgMu.Lock()
	if a, ok := asgCache[key]; ok {
		asgMu.Unlock()
		return a, nil
	}
	asgMu.Unlock()

	g, err := datasets.Load(dataset, cfg.scale())
	if err != nil {
		return nil, err
	}
	s, err := partition.New(strategy, partition.Options{HybridThreshold: cfg.HybridThreshold})
	if err != nil {
		return nil, err
	}
	a, err := partition.ParallelPartition(g, s, parts, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	asgMu.Lock()
	asgCache[key] = a
	asgMu.Unlock()
	return a, nil
}

// strategyFor returns the constructed strategy (for ingress modeling).
func strategyFor(cfg Config, name string) (partition.Strategy, error) {
	return partition.New(name, partition.Options{HybridThreshold: cfg.HybridThreshold})
}

// loadGraph is a thin wrapper over datasets.Load at the config's scale.
func loadGraph(cfg Config, name string) (*graph.Graph, error) {
	return datasets.Load(name, cfg.scale())
}

// f2, f3 format floats compactly for table cells.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
