// Package bench contains the experiment harness: one registered experiment
// per table and figure in the paper's evaluation chapters, each regenerating
// the corresponding rows/series on the simulated cluster.
//
// Experiments produce a typed Result — measurement Cells keyed by the
// paper's dimensions plus structured Checks — and every rendering (the
// plain tables, markdown, CSV, the JSON report) is a view derived from it.
//
// Run them via cmd/benchrunner or the root-level Go benchmarks
// (bench_test.go). Every experiment is deterministic.
//
// docs/EXPERIMENTS.md is a generated catalog of this registry; regenerate it
// after adding or changing experiments (CI fails when it is stale).
//
//go:generate go run ./gendocs -o ../../docs/EXPERIMENTS.md
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"graphpart/internal/cluster"
	"graphpart/internal/datasets"
	"graphpart/internal/engine"
	"graphpart/internal/engine/graphx"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1 = test-sized).
	Scale int
	// Model is the cluster cost model; zero value means DefaultModel.
	Model *cluster.CostModel
	// HybridThreshold is the high-degree cutoff used by Hybrid/H-Ginger
	// and the PowerLyra engine. The scaled datasets use 30 (the paper's
	// 100 assumes million-vertex graphs).
	HybridThreshold int
	// Seed for all partitioners.
	Seed uint64
	// Workers bounds the engines' per-superstep worker goroutines, the
	// partitioners' ingress workers, and the Runner's concurrent
	// experiments; ≤0 means GOMAXPROCS. Results are byte-identical for
	// every value — parallelism only changes wall-clock, which is what
	// makes -scale ≥2 runs tractable.
	Workers int
}

// DefaultConfig returns the configuration used by tests and the default
// benchrunner invocation.
func DefaultConfig() Config {
	return Config{Scale: 1, HybridThreshold: 30, Seed: 1}
}

func (c Config) model() cluster.CostModel {
	if c.Model != nil {
		return *c.Model
	}
	return cluster.DefaultModel()
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

// Info returns the manifest form of the configuration.
func (c Config) Info() report.ConfigInfo {
	return report.ConfigInfo{
		Scale:           c.scale(),
		Seed:            c.Seed,
		HybridThreshold: c.HybridThreshold,
		Workers:         c.Workers,
	}
}

// engineOpts is the base engine.Options every experiment starts from; app
// specs fill in their own iteration caps.
func (c Config) engineOpts() engine.Options {
	return engine.Options{HighDegreeThreshold: c.HybridThreshold, Workers: c.Workers}
}

// graphxConfig is the base graphx.Config every GraphX experiment starts
// from; building it here (rather than at each call site) makes forgetting
// Workers impossible.
func (c Config) graphxConfig(cc cluster.Config, iterations int) graphx.Config {
	return graphx.Config{Cluster: cc, Iterations: iterations, Workers: c.Workers}
}

// --- typed results ----------------------------------------------------

// Result is the typed outcome of one experiment run: measurement cells and
// structured checks first, presentation (column layout, note text, ASCII
// figure) alongside so every rendering derives from the same record.
type Result struct {
	ID    string
	Title string
	// Cells are the typed measurements, in emission order.
	Cells []report.Cell
	// Checks are the structured verdicts, in emission order.
	Checks []report.Check
	// Figure optionally carries an ASCII rendering of the paper's figure
	// (scatter with trend line, or cumulative curves).
	Figure string

	columns []string
	rows    []*Row
	notes   []string
}

// NewResult starts a result with the table's column headers.
func NewResult(id, title string, columns ...string) *Result {
	return &Result{ID: id, Title: title, columns: columns}
}

// Row opens a presentation row whose metric cells inherit d. Columns are
// appended through the returned builder.
func (r *Result) Row(d report.Dims) *Row {
	row := &Row{res: r, dims: d}
	r.rows = append(r.rows, row)
	return row
}

// Cell appends a typed cell with no presentation column — for tables whose
// rendered rows aggregate the underlying measurements (rankings, trend
// fits) rather than listing them.
func (r *Result) Cell(d report.Dims, metric string, v float64, unit string) {
	r.Cells = append(r.Cells, report.Cell{Dims: d, Metric: metric, Value: v, Unit: unit})
}

// Notef appends an informational note (no verdict).
func (r *Result) Notef(format string, args ...any) {
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
}

// Checkf appends a structured check and its table note. The note renders
// exactly as fmt.Sprintf(format, args...) — call sites place the ✓/✗ mark
// (or a longer verdict string) themselves, typically via Mark(pass). The
// rendered note doubles as the check's Observed evidence.
func (r *Result) Checkf(pass bool, claim, format string, args ...any) {
	note := fmt.Sprintf(format, args...)
	r.Checks = append(r.Checks, report.Check{Claim: claim, Observed: note, Pass: pass})
	r.notes = append(r.notes, note)
}

// Check appends a structured check without a table note — for verdicts the
// rendered table only mentions when they fail. Recording the passing case
// keeps the check visible to -compare, which gates only checks that passed
// in the baseline.
func (r *Result) Check(pass bool, claim, observed string) {
	r.Checks = append(r.Checks, report.Check{Claim: claim, Observed: observed, Pass: pass})
}

// Mark renders a pass/fail verdict the way the paper tables do.
func Mark(pass bool) string {
	if pass {
		return "✓"
	}
	return "✗"
}

// Row builds one presentation row and the typed cells behind it.
type Row struct {
	res  *Result
	dims report.Dims
	cols []string
}

// Col appends presentation-only columns (dimension labels, qualitative
// text); they carry no typed value.
func (w *Row) Col(cells ...string) *Row {
	w.cols = append(w.cols, cells...)
	return w
}

// Colf appends one formatted presentation-only column.
func (w *Row) Colf(format string, args ...any) *Row {
	w.cols = append(w.cols, fmt.Sprintf(format, args...))
	return w
}

// Metric appends a typed cell under the row's dims and renders it as the
// next column with prec decimal places.
func (w *Row) Metric(metric string, v float64, unit string, prec int) *Row {
	return w.MetricAt(w.dims, metric, v, unit, prec)
}

// MetricAt is Metric with explicit dims, for rows whose columns measure
// different points of the matrix (e.g. two strategies side by side).
func (w *Row) MetricAt(d report.Dims, metric string, v float64, unit string, prec int) *Row {
	w.res.Cell(d, metric, v, unit)
	w.cols = append(w.cols, strconv.FormatFloat(v, 'f', prec, 64))
	return w
}

// Value appends a typed cell under the row's dims without a presentation
// column.
func (w *Row) Value(metric string, v float64, unit string) *Row {
	w.res.Cell(w.dims, metric, v, unit)
	return w
}

// --- reporters --------------------------------------------------------

// Table is the plain-text presentation of a Result (the paper artifact
// view). It is derived — see Result.Table — never built by experiments.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the experiment's own verdicts: the qualitative shape
	// the paper reports and whether this run reproduced it.
	Notes []string
	// Figure optionally carries an ASCII rendering of the paper's figure
	// (scatter with trend line, or cumulative curves).
	Figure string
}

// Table derives the presentation table from the result.
func (r *Result) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title, Columns: r.columns, Figure: r.Figure}
	for _, row := range r.rows {
		t.Rows = append(t.Rows, row.cols)
	}
	t.Notes = append(t.Notes, r.notes...)
	return t
}

// Render writes the plain-text table view of the result.
func (r *Result) Render(w io.Writer) error { return r.Table().Render(w) }

// CellsCSV writes one CSV row per cell in the CSVHeader layout, tagged
// with the owning experiment id (one line per cell; the id column makes
// multi-experiment CSVs concatenable). The benchrunner -csv reporter
// feeds it the report's filtered cells.
func CellsCSV(w *csv.Writer, id string, cells []report.Cell) error {
	for _, c := range cells {
		rec := []string{
			id, c.Dims.Dataset, c.Dims.Strategy, c.Dims.App, c.Dims.Engine,
			c.Dims.Cluster, c.Dims.Variant, "", c.Metric,
			strconv.FormatFloat(c.Value, 'g', -1, 64), c.Unit,
		}
		if c.Dims.Parts != 0 {
			rec[7] = strconv.Itoa(c.Dims.Parts)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// CSVHeader is the column header matching RenderCSV's rows.
var CSVHeader = []string{"experiment", "dataset", "strategy", "app", "engine", "cluster", "variant", "parts", "metric", "value", "unit"}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	fmt.Fprintln(w, line(t.Columns))
	// Ruler width = column widths plus the two-space separators between
	// them.
	total := 2 * (len(t.Columns) - 1)
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	if t.Figure != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, t.Figure)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// --- registry ---------------------------------------------------------

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string // e.g. "fig5.3", "tab5.1"
	Title string
	// Paper summarizes the shape the paper reports for this artifact.
	Paper string
	Run   func(Config) (*Result, error)
}

// registrySet is a name-keyed experiment index: O(1) lookups, one sort per
// registration epoch, and duplicate-ID detection at registration time.
type registrySet struct {
	mu     sync.Mutex
	byID   map[string]Experiment
	site   map[string]string
	sorted []Experiment // built on first all(), invalidated by add
}

func newRegistrySet() *registrySet {
	return &registrySet{byID: map[string]Experiment{}, site: map[string]string{}}
}

// add registers an experiment. Duplicate IDs are a programming error: the
// panic names both registrants so the offending init is obvious.
func (rs *registrySet) add(e Experiment, site string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if prev, ok := rs.byID[e.ID]; ok {
		panic(fmt.Sprintf("bench: duplicate experiment ID %q: %q registered at %s, %q at %s",
			e.ID, prev.Title, rs.site[e.ID], e.Title, site))
	}
	rs.byID[e.ID] = e
	rs.site[e.ID] = site
	rs.sorted = nil
}

func (rs *registrySet) all() []Experiment {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.sorted == nil {
		rs.sorted = make([]Experiment, 0, len(rs.byID))
		for _, e := range rs.byID {
			rs.sorted = append(rs.sorted, e)
		}
		sort.Slice(rs.sorted, func(i, j int) bool { return rs.sorted[i].ID < rs.sorted[j].ID })
	}
	out := make([]Experiment, len(rs.sorted))
	copy(out, rs.sorted)
	return out
}

func (rs *registrySet) get(id string) (Experiment, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e, ok := rs.byID[id]
	return e, ok
}

var reg = newRegistrySet()

// register adds an experiment to the package registry at init time.
func register(e Experiment) {
	site := "unknown"
	if _, file, line, ok := runtime.Caller(1); ok {
		site = fmt.Sprintf("%s:%d", filepath.Base(file), line)
	}
	reg.add(e, site)
}

// All returns every registered experiment sorted by ID.
func All() []Experiment { return reg.all() }

// Get looks an experiment up by ID in the registry map.
func Get(id string) (Experiment, bool) { return reg.get(id) }

// --- assignment cache -------------------------------------------------

type asgKey struct {
	dataset  string
	scale    int
	strategy string
	parts    int
	thr      int
	seed     uint64
}

// asgEntry is a once-per-key cache slot: under the concurrent Runner,
// experiments racing for the same assignment share one computation
// instead of each recomputing it (a classic cache stampede — the uk-web
// partitionings cost seconds each).
type asgEntry struct {
	once sync.Once
	a    *partition.Assignment
	err  error
}

var (
	asgMu    sync.Mutex
	asgCache = map[asgKey]*asgEntry{}
)

// assignment partitions a named dataset with a named strategy, caching the
// result (experiments share many assignments; concurrent callers of the
// same key block on one computation). It runs the parallel streaming
// pipeline, which is placement-identical to the sequential path for every
// strategy.
func assignment(cfg Config, dataset, strategy string, parts int) (*partition.Assignment, error) {
	key := asgKey{dataset, cfg.scale(), strategy, parts, cfg.HybridThreshold, cfg.Seed}
	asgMu.Lock()
	e, ok := asgCache[key]
	if !ok {
		e = &asgEntry{}
		asgCache[key] = e
	}
	asgMu.Unlock()
	e.once.Do(func() {
		g, err := datasets.Load(dataset, cfg.scale())
		if err != nil {
			e.err = err
			return
		}
		s, err := partition.New(strategy, partition.Options{HybridThreshold: cfg.HybridThreshold})
		if err != nil {
			e.err = err
			return
		}
		e.a, e.err = partition.ParallelPartition(g, s, parts, cfg.Seed, cfg.Workers)
	})
	return e.a, e.err
}

// strategyFor returns the constructed strategy (for ingress modeling).
func strategyFor(cfg Config, name string) (partition.Strategy, error) {
	return partition.New(name, partition.Options{HybridThreshold: cfg.HybridThreshold})
}

// loadGraph is a thin wrapper over datasets.Load at the config's scale.
func loadGraph(cfg Config, name string) (*graph.Graph, error) {
	return datasets.Load(name, cfg.scale())
}

// f2, f3 format floats compactly for table cells.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// sortedKeys returns m's keys in ascending order: map iteration order is
// deliberately randomized by the runtime, so every loop that feeds report
// cells, notes, or float accumulations iterates via this helper instead.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
