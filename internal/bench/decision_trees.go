package bench

// Decision-tree validation experiments: Figs 5.9 and 9.3 as *measured*
// checks — for each dataset and job length, the tree's recommendation must
// land on (or within 10% of) the strategy with the best measured total
// time. The trees' branch-by-branch logic is unit-tested in
// internal/decision; here we validate them against the simulator.

import (
	"fmt"

	"graphpart/internal/cluster"
	"graphpart/internal/decision"
	"graphpart/internal/engine"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(fig59())
	register(fig93())
}

// totalJobSeconds measures ingress + compute for one strategy/app.
func totalJobSeconds(cfg Config, ds, strat, appName string, cc cluster.Config) (float64, error) {
	model := cfg.model()
	a, err := assignment(cfg, ds, strat, cc.NumParts())
	if err != nil {
		return 0, err
	}
	s, err := strategyFor(cfg, strat)
	if err != nil {
		return 0, err
	}
	ing := cluster.Ingress(a, s, cc, model)
	for _, spec := range paperApps() {
		if spec.name != appName {
			continue
		}
		stats, err := spec.run(engine.ModePowerGraph, a, cc, model, cfg.engineOpts())
		if err != nil {
			return 0, err
		}
		return ing.Seconds + stats.ComputeSeconds, nil
	}
	return 0, fmt.Errorf("bench: unknown app %q", appName)
}

func fig59() Experiment {
	return Experiment{
		ID:    "fig5.9",
		Title: "PowerGraph decision tree validated against measured totals",
		Paper: "the Fig 5.9 tree picks the strategy with the best (or near-best) total job time for every graph class and job length",
		Run: func(cfg Config) (*Result, error) {
			cc := cluster.EC2x25
			r := NewResult("fig5.9", "tree recommendation vs measured best (PowerGraph, EC2-25)",
				"graph", "job", "recommended", "rec-total-s", "best", "best-total-s", "within-10%")
			ok := true
			cases := []struct {
				ds    string
				app   string
				ratio float64
			}{
				{"road-ca", "PageRank(C)", 0.5},
				{"road-usa", "PageRank(C)", 0.5},
				{"livejournal", "PageRank(C)", 0.5},
				{"uk-web", "PageRank(C)", 0.5}, // short job on power-law → Grid branch
				{"uk-web", "K-Core", 5},        // long job on power-law → HDRF branch
			}
			for _, tc := range cases {
				g, err := loadGraph(cfg, tc.ds)
				if err != nil {
					return nil, err
				}
				rec := decision.PowerGraph(decision.Workload{
					Class:               graph.Classify(g).Class,
					Machines:            cc.Machines,
					ComputeIngressRatio: tc.ratio,
				})
				best, bestT := "", -1.0
				totals := map[string]float64{}
				for _, strat := range powerGraphStrategies {
					tt, err := totalJobSeconds(cfg, tc.ds, strat, tc.app, cc)
					if err != nil {
						return nil, err
					}
					totals[strat] = tt
					// The rendered row keeps only the recommended and best
					// totals; every strategy's total goes out as a cell.
					r.Cell(report.Dims{Dataset: tc.ds, Strategy: strat, App: tc.app,
						Engine: enginePowerGraph, Cluster: clusterName(cc), Parts: cc.NumParts()},
						"total-s", tt, "s")
					if bestT < 0 || tt < bestT {
						best, bestT = strat, tt
					}
				}
				within := totals[rec] <= bestT*1.10
				if !within {
					ok = false
				}
				r.Row(report.Dims{Dataset: tc.ds, App: tc.app, Engine: enginePowerGraph,
					Cluster: clusterName(cc), Parts: cc.NumParts()}).
					Col(tc.ds, tc.app, rec).
					Colf("%.3f", totals[rec]).
					Col(best).
					Colf("%.3f", bestT).
					Colf("%v", within)
			}
			r.Checkf(ok, "tree recommendation within 10% of the measured best everywhere",
				"tree recommendation within 10%% of the measured best everywhere: %s", Mark(ok))
			return r, nil
		},
	}
}

func fig93() Experiment {
	return Experiment{
		ID:    "fig9.3",
		Title: "GraphX-all decision tree validated against measured totals",
		Paper: "the Fig 9.3 tree (CR for short low-degree jobs, HDRF/Oblivious for long ones, 2D for skewed graphs) picks the measured best or near-best",
		Run: func(cfg Config) (*Result, error) {
			model := cfg.model()
			cc := cluster.GraphXLocal9
			r := NewResult("fig9.3", "tree recommendation vs measured best (GraphX-all, Local-9)",
				"graph", "iterations", "recommended", "rec-total-s", "best", "best-total-s", "within-15%")
			ok := true
			cases := []struct {
				ds    string
				iters int
				ratio float64
			}{
				{"road-ca", 2, 0.5},
				{"road-ca", 25, 5},
				{"livejournal", 2, 0.5},
				{"livejournal", 25, 5},
			}
			for _, tc := range cases {
				g, err := loadGraph(cfg, tc.ds)
				if err != nil {
					return nil, err
				}
				rec := decision.GraphXAll(decision.Workload{
					Class:               graph.Classify(g).Class,
					Machines:            cc.Machines,
					ComputeIngressRatio: tc.ratio,
				})
				best, bestT := "", -1.0
				totals := map[string]float64{}
				for _, strat := range graphxAllStrategies() {
					a, err := assignment(cfg, tc.ds, strat, cc.NumParts())
					if err != nil {
						return nil, err
					}
					st, err := runGraphXApp("PageRank", a, cfg.graphxConfig(cc, tc.iters), model)
					if err != nil {
						return nil, err
					}
					total := st.PartitionSeconds + st.ComputeSeconds
					totals[strat] = total
					r.Cell(report.Dims{Dataset: tc.ds, Strategy: strat, App: "PageRank",
						Engine: engineGraphX, Cluster: clusterName(cc), Parts: cc.NumParts(),
						Variant: fmt.Sprintf("iters=%d", tc.iters)},
						"total-s", total, "s")
					if bestT < 0 || total < bestT {
						best, bestT = strat, total
					}
				}
				// The tree's HDRF branch groups HDRF/Oblivious (§9.2.3),
				// and "near-best" is 15% here: our scaled crossover sits a
				// little earlier than the paper's, so CR at 2 iterations is
				// marginally behind the greedy pair on road-ca.
				recTotal := totals[rec]
				if rec == "HDRF" && totals["Oblivious"] < recTotal {
					recTotal = totals["Oblivious"]
				}
				within := recTotal <= bestT*1.15
				if !within {
					ok = false
				}
				r.Row(report.Dims{Dataset: tc.ds, App: "PageRank", Engine: engineGraphX,
					Cluster: clusterName(cc), Parts: cc.NumParts(),
					Variant: fmt.Sprintf("iters=%d", tc.iters)}).
					Col(tc.ds).
					Colf("%d", tc.iters).
					Col(rec).
					Colf("%.3f", totals[rec]).
					Col(best).
					Colf("%.3f", bestT).
					Colf("%v", within)
			}
			r.Checkf(ok, "tree recommendation within 15% of the measured best everywhere",
				"tree recommendation within 15%% of the measured best everywhere: %s", Mark(ok))
			r.Notef("short jobs are 2 iterations at this scale: the CR-vs-greedy crossover of Fig 9.1 falls around iteration 3 on the scaled road network")
			return r, nil
		},
	}
}

var _ = partition.AllNames // keep the import if the strategy list moves
