package bench

// Dynamic-graph experiments: the dyn.* family measures what the paper never
// did — partition quality and ingest cost under edge churn. dyn.drift
// compares incremental maintenance against one-shot repartitioning of the
// surviving edges across deletion rates; dyn.rebalance exercises the
// migration pass and hot-vertex replication on a skew-loaded strategy;
// dyn.cost prices incremental windows against per-window repartitioning on
// the simulated cluster. Rendered cells are deterministic (quality metrics
// and modeled seconds); measured edges/sec lands in non-presentation cells
// gated at the wide throughput tolerance.

import (
	"fmt"

	"graphpart/internal/cluster"
	"graphpart/internal/gen"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(dynDrift())
	register(dynRebalance())
	register(dynCost())
}

// churnRates are the deletion fractions every dyn.* sweep covers.
var churnRates = []float64{0.10, 0.25, 0.40}

const dynWindows = 6

// dynStrategy builds a strategy for the dynamic experiments. Greedy
// strategies pin Loaders:1 so their one-shot baseline streams the same
// single persistent loader state the incremental path maintains.
func dynStrategy(cfg Config, name string) (partition.Strategy, error) {
	return partition.New(name, partition.Options{HybridThreshold: cfg.HybridThreshold, Loaders: 1})
}

// runTrace drives a fresh PartitionState through a churn trace over g,
// invoking perWindow (if non-nil) after each absorbed window, and returns
// the state, the surviving edges, and the wall-clock seconds spent inside
// ApplyBatch.
func runTrace(cfg Config, st *partition.PartitionState, g *graph.Graph, delFrac float64,
	perWindow func(w gen.ChurnWindow, stats partition.BatchStats) error) ([]graph.Edge, float64, error) {
	var applySec float64
	survivors, err := gen.ChurnTrace(g.Edges, gen.ChurnConfig{Windows: dynWindows, DelFrac: delFrac, Seed: cfg.Seed},
		func(w gen.ChurnWindow) error {
			var stats partition.BatchStats
			d, err := timeOp(func() error {
				var err error
				stats, err = st.ApplyBatch(gen.Edges(w.Adds), gen.Edges(w.Dels))
				return err
			})
			if err != nil {
				return err
			}
			applySec += d.Seconds()
			if perWindow != nil {
				return perWindow(w, stats)
			}
			return nil
		})
	return survivors, applySec, err
}

func dynDrift() Experiment {
	return Experiment{
		ID:    "dyn.drift",
		Title: "Incremental quality drift vs one-shot repartitioning by churn rate",
		Paper: "no counterpart — the paper partitions frozen edge lists only; this measures how far incrementally maintained state drifts from a from-scratch partitioning of the same surviving edges as deletion pressure grows",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			const parts = 16
			r := NewResult("dyn.drift", "Incremental vs one-shot quality (uk-web, 16 parts, 6 windows)",
				"strategy", "del-frac", "rf-incr", "rf-oneshot", "drift", "balance-incr")
			statelessExact := true
			hdrfWorst := 1.0
			for _, name := range []string{"2D", "Grid", "HDRF"} {
				s, err := dynStrategy(cfg, name)
				if err != nil {
					return nil, err
				}
				for _, rate := range churnRates {
					st, err := partition.NewPartitionState(s, parts, cfg.Seed, cfg.Workers)
					if err != nil {
						return nil, err
					}
					d := report.Dims{Dataset: "uk-web", Strategy: name, Parts: parts,
						Variant: fmt.Sprintf("del=%.2f", rate)}
					wi := 0
					survivors, applySec, err := runTrace(cfg, st, g, rate,
						func(w gen.ChurnWindow, stats partition.BatchStats) error {
							// Per-window drift trajectory (deterministic).
							wd := d
							wd.Variant = fmt.Sprintf("del=%.2f/w%d", rate, wi)
							r.Cell(wd, "rf-window", st.ReplicationFactor(), "ratio")
							wi++
							return nil
						})
					if err != nil {
						return nil, err
					}
					lg := graph.FromEdges("uk-web-live", survivors)
					a, err := partition.ParallelPartition(lg, s, parts, cfg.Seed, cfg.Workers)
					if err != nil {
						return nil, err
					}
					drift := st.ReplicationFactor() / a.ReplicationFactor()
					if _, ok := s.(partition.StatelessStrategy); ok {
						if drift != 1 || st.EdgeBalance() != a.EdgeBalance() {
							statelessExact = false
						}
					} else if drift > hdrfWorst {
						hdrfWorst = drift
					}
					r.Row(d).
						Col(name).
						Colf("%.2f", rate).
						Metric("rf-incremental", st.ReplicationFactor(), "ratio", 3).
						MetricAt(d, "rf-oneshot", a.ReplicationFactor(), "ratio", 3).
						Metric("rf-drift", drift, "ratio", 4).
						Metric("edge-balance", st.EdgeBalance(), "max/mean", 3).
						Value("churn-throughput", rate2(st.NumEdges(), applySec), "edges/s")
				}
			}
			r.Checkf(statelessExact, "stateless incremental state is exactly the one-shot partitioning at every churn rate",
				"stateless strategies drift 1.0000 exactly (2D, Grid at all rates): %s", Mark(statelessExact))
			hdrfOK := hdrfWorst < 1.25
			r.Checkf(hdrfOK, "HDRF's persistent loader drifts <25% above from-scratch RF under churn",
				"HDRF worst RF drift %.4f (want <1.25): %s", hdrfWorst, Mark(hdrfOK))
			r.Notef("drift = incremental RF / one-shot RF over the same surviving edges; per-window trajectories and edges/s are recorded as report cells")
			return r, nil
		},
	}
}

func dynRebalance() Experiment {
	return Experiment{
		ID:    "dyn.rebalance",
		Title: "Rebalancer and hot-vertex replication under skewed churn",
		Paper: "no counterpart — 1D hashes by source, so a power-law out-degree stream steadily overloads the hub partitions; this measures migration repairing balance drift and top-degree replication absorbing hub edges",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			const parts = 16
			const maxBalance = 1.15
			const hotK = 64
			type variant struct {
				name      string
				rebalance bool
				hot       int
			}
			variants := []variant{
				{"baseline", false, 0},
				{"rebalance", true, 0},
				{"rebalance+hot", true, hotK},
			}
			r := NewResult("dyn.rebalance",
				fmt.Sprintf("1D under churn (uk-web, %d parts, threshold %.2f, hot %d)", parts, maxBalance, hotK),
				"variant", "balance", "rf", "moved")
			s, err := dynStrategy(cfg, "1D")
			if err != nil {
				return nil, err
			}
			rcfg := partition.RebalanceConfig{MaxBalance: maxBalance}
			balances := map[string]float64{}
			moves := map[string]int{}
			for _, v := range variants {
				st, err := partition.NewPartitionState(s, parts, cfg.Seed, cfg.Workers)
				if err != nil {
					return nil, err
				}
				if v.hot > 0 {
					st.SetHotReplication(v.hot)
				}
				moved := 0
				_, _, err = runTrace(cfg, st, g, 0.25,
					func(w gen.ChurnWindow, stats partition.BatchStats) error {
						if v.rebalance && st.NeedsRebalance(rcfg) {
							moved += st.Rebalance(rcfg).Moved
						}
						return nil
					})
				if err != nil {
					return nil, err
				}
				balances[v.name] = st.EdgeBalance()
				moves[v.name] = moved
				r.Row(report.Dims{Dataset: "uk-web", Strategy: "1D", Parts: parts, Variant: v.name}).
					Col(v.name).
					Metric("edge-balance", st.EdgeBalance(), "max/mean", 3).
					Metric("replication-factor", st.ReplicationFactor(), "ratio", 3).
					Metric("edges-moved", float64(moved), "edges", 0)
			}
			drifted := balances["baseline"] > maxBalance
			r.Checkf(drifted, "1D balance drifts past the threshold without intervention",
				"baseline 1D balance %.3f exceeds the %.2f threshold: %s", balances["baseline"], maxBalance, Mark(drifted))
			repaired := balances["rebalance"] <= maxBalance && moves["rebalance"] > 0
			r.Checkf(repaired, "the rebalancer holds balance at or under the threshold",
				"rebalanced 1D ends at %.3f (≤%.2f) after migrating %d edges: %s",
				balances["rebalance"], maxBalance, moves["rebalance"], Mark(repaired))
			lighter := moves["rebalance+hot"] <= moves["rebalance"] && balances["rebalance+hot"] <= maxBalance
			r.Checkf(lighter, "hot-vertex replication reduces the migration the rebalancer must do",
				"hot routing cuts migrations %d → %d at balance %.3f: %s",
				moves["rebalance"], moves["rebalance+hot"], balances["rebalance+hot"], Mark(lighter))
			return r, nil
		},
	}
}

func dynCost() Experiment {
	return Experiment{
		ID:    "dyn.cost",
		Title: "Incremental window cost vs per-window repartitioning (simulated cluster)",
		Paper: "no counterpart — prices the alternative the paper's systems force (repartition everything per change) against incremental maintenance on the same cost model that reproduces Fig 6.4's ingress times",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "twitter")
			if err != nil {
				return nil, err
			}
			const parts = 16
			cc := cluster.Config{Machines: 8, PartsPerMachine: 2}
			model := cfg.model()
			r := NewResult("dyn.cost", "Incremental vs repartition cost per churn trace (twitter, 16 parts, 8 machines)",
				"strategy", "del-frac", "incr-s", "repart-s", "speedup")
			allCheaper := true
			for _, name := range []string{"2D", "HDRF"} {
				s, err := dynStrategy(cfg, name)
				if err != nil {
					return nil, err
				}
				shape := partition.ShapeOf(s, parts)
				for _, rate := range churnRates {
					st, err := partition.NewPartitionState(s, parts, cfg.Seed, cfg.Workers)
					if err != nil {
						return nil, err
					}
					var incrSec, repartSec float64
					_, _, err = runTrace(cfg, st, g, rate,
						func(w gen.ChurnWindow, stats partition.BatchStats) error {
							incrSec += cluster.ChurnWindow(shape, parts,
								int64(stats.Added), int64(stats.Deleted), 0, cc, model).Seconds
							// The alternative: repartition the live set from
							// scratch at every window.
							lg := graph.FromEdges("twitter-live", st.LiveEdges())
							a, err := partition.ParallelPartition(lg, s, parts, cfg.Seed, cfg.Workers)
							if err != nil {
								return err
							}
							repartSec += cluster.Ingress(a, s, cc, model).Seconds
							return nil
						})
					if err != nil {
						return nil, err
					}
					if incrSec >= repartSec {
						allCheaper = false
					}
					r.Row(report.Dims{Dataset: "twitter", Strategy: name, Parts: parts,
						Variant: fmt.Sprintf("del=%.2f", rate)}).
						Col(name).
						Colf("%.2f", rate).
						Metric("incremental-seconds", incrSec, "s", 4).
						Metric("repartition-seconds", repartSec, "s", 4).
						Metric("cost-ratio", repartSec/incrSec, "x", 1)
				}
			}
			r.Checkf(allCheaper, "incremental windows are cheaper than per-window repartitioning at every churn rate",
				"modeled incremental cost beats repartitioning for 2D and HDRF at all rates: %s", Mark(allCheaper))
			r.Notef("seconds are modeled on the simulated cluster (deterministic): incremental windows pay assignment+shuffle+patch on the delta; repartitioning pays full load+assign+shuffle+finalize per window")
			return r, nil
		},
	}
}

// rate2 converts a count over wall-clock seconds into a per-second rate,
// floored like timeOp to stay finite at test scales.
func rate2(count int64, sec float64) float64 {
	if sec <= 0 {
		sec = 1e-6
	}
	return float64(count) / sec
}
