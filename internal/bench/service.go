package bench

// svc.qps load-tests the resident partition service: four clients drive a
// fixed script of mixed assignment/churn/advise traffic (plus async
// partition jobs) against an in-process service.Server, then the final
// churn-stream state is compared byte-for-byte against a sequential
// replay of the same batches on a fresh server. The rendered table
// carries only the deterministic script counts; measured request and edge
// rates land in non-presentation "/s" cells gated at the throughput
// tolerance, like load.speed and the dyn.* family.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphpart/internal/report"
	"graphpart/internal/service"
)

func init() {
	register(svcQPS())
}

const (
	svcClients = 4
	svcIters   = 25
	svcStream  = "qps"
	svcParts   = 16
	// svcJobParts must be a perfect square (Grid rejects non-square part
	// counts) and differ from svcParts so the job keys are disjoint from
	// the assignment-read keys.
	svcJobParts = 4
)

// svcReadStrategies rotate through the assignment lookups; svcJobStrategies
// are submitted as async jobs, one per client. Together they make exactly
// 7 distinct (dataset, strategy, parts) keys — the singleflight build
// count the experiment pins.
var (
	svcReadStrategies = []string{"2D", "Grid", "HDRF"}
	svcJobStrategies  = []string{"Random", "Grid", "HDRF", "2D"}
)

// svcDo dispatches one request straight into the handler stack — the
// traffic is in-process by design, so the measured rates are service
// cost, not kernel socket cost.
func svcDo(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// svcEdges is client g's deterministic edge block for iteration i;
// blocks are disjoint so clients only delete their own prior adds (the
// same construction the service test battery uses).
func svcEdges(g, i int) [][2]uint32 {
	base := uint32(g*2_000 + i*40)
	out := make([][2]uint32, 4)
	for k := range out {
		src := base + uint32(k)*2
		out[k] = [2]uint32{src, src + 1}
	}
	return out
}

func svcChurnBody(adds, dels [][2]uint32) string {
	enc := func(pairs [][2]uint32) string {
		var b strings.Builder
		b.WriteByte('[')
		for i, p := range pairs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "[%d,%d]", p[0], p[1])
		}
		b.WriteByte(']')
		return b.String()
	}
	return fmt.Sprintf(`{"stream":%q,"strategy":"2D","parts":%d,"adds":%s,"dels":%s}`,
		svcStream, svcParts, enc(adds), enc(dels))
}

// svcClientChurn returns client g's full churn-body sequence in order.
func svcClientChurn(g int) []string {
	out := make([]string, 0, svcIters)
	for i := 0; i < svcIters; i++ {
		var dels [][2]uint32
		if i >= 2 {
			dels = svcEdges(g, i-2)[:2]
		}
		out = append(out, svcChurnBody(svcEdges(g, i), dels))
	}
	return out
}

// svcFitBody is the report the advisor is warmed from: one measured group
// on road-ca so /v1/advise answers during the load phase.
func svcFitBody() (string, error) {
	rep := report.Report{
		SchemaVersion: report.SchemaVersion,
		Tool:          "svc.qps",
		Experiments: []report.Experiment{{
			ID: "svc.fit", Title: "advisor warmup fixture",
			Cells: []report.Cell{
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "Random", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 12, Unit: "s"},
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "Grid", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 9, Unit: "s"},
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "HDRF", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 10, Unit: "s"},
			},
		}},
	}
	b, err := json.Marshal(rep)
	return string(b), err
}

const svcAdviseURL = "/v1/advise?dataset=road-ca&system=PowerGraph&machines=16&ratio=4&app=PageRank"
const svcStateURL = "/v1/churn?stream=" + svcStream + "&strategy=2D&parts=16"

func svcConfig(cfg Config) service.Config {
	return service.Config{
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		HybridThreshold: cfg.HybridThreshold,
		Workers:         cfg.Workers,
		DefaultParts:    svcParts,
		// The queue holds every scripted job comfortably: a 429 here would
		// be a nondeterministic script, not load shedding.
		JobQueue:   svcClients * 4,
		JobWorkers: 2,
	}
}

func svcShutdown(s *service.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func svcQPS() Experiment {
	return Experiment{
		ID:    "svc.qps",
		Title: "Partition service under mixed concurrent load",
		Paper: "no counterpart — the paper partitions frozen edge lists once per job; this drives the resident service with concurrent assignment/churn/advise traffic plus async partition jobs and proves the racing state equals sequential replay",
		Run: func(cfg Config) (*Result, error) {
			fitBody, err := svcFitBody()
			if err != nil {
				return nil, err
			}
			live := service.New(svcConfig(cfg))
			defer svcShutdown(live) //nolint:errcheck // jobs are polled to completion below
			h := live.Handler()

			if rec := svcDo(h, http.MethodPost, "/v1/advisor/fit", fitBody); rec.Code != http.StatusOK {
				return nil, fmt.Errorf("svc.qps: fit: %d (%s)", rec.Code, rec.Body)
			}

			// --- concurrent load phase ---------------------------------
			var httpErrs atomic.Int64
			jobIDs := make([]string, svcClients)
			adviseBodies := make([]string, svcClients)
			start := time.Now()
			var wg sync.WaitGroup
			for g := 0; g < svcClients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					jb := fmt.Sprintf(`{"dataset":"road-ca","strategy":%q,"parts":%d}`, svcJobStrategies[g], svcJobParts)
					if rec := svcDo(h, http.MethodPost, "/v1/jobs", jb); rec.Code == http.StatusAccepted {
						var j service.Job
						if json.Unmarshal(rec.Body.Bytes(), &j) == nil {
							jobIDs[g] = j.ID
						}
					} else {
						httpErrs.Add(1)
					}
					churn := svcClientChurn(g)
					for i := 0; i < svcIters; i++ {
						strat := svcReadStrategies[(g+i)%len(svcReadStrategies)]
						if rec := svcDo(h, http.MethodGet, "/v1/assignment/road-ca/"+strat+"?parts=16", ""); rec.Code != http.StatusOK {
							httpErrs.Add(1)
						}
						if rec := svcDo(h, http.MethodPost, "/v1/churn", churn[i]); rec.Code != http.StatusOK {
							httpErrs.Add(1)
						}
						rec := svcDo(h, http.MethodGet, svcAdviseURL, "")
						if rec.Code != http.StatusOK {
							httpErrs.Add(1)
						} else if i == 0 {
							adviseBodies[g] = rec.Body.String()
						}
					}
				}(g)
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()

			// --- drain the async jobs ----------------------------------
			jobs := make([]service.Job, svcClients)
			deadline := time.Now().Add(120 * time.Second)
			for g, id := range jobIDs {
				if id == "" {
					continue
				}
				for {
					rec := svcDo(h, http.MethodGet, "/v1/jobs/"+id, "")
					if rec.Code != http.StatusOK {
						return nil, fmt.Errorf("svc.qps: poll %s: %d", id, rec.Code)
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &jobs[g]); err != nil {
						return nil, err
					}
					if jobs[g].Status == service.JobDone || jobs[g].Status == service.JobFailed {
						break
					}
					if time.Now().After(deadline) {
						return nil, fmt.Errorf("svc.qps: job %s stuck in %s", id, jobs[g].Status)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}

			liveState := svcDo(h, http.MethodGet, svcStateURL, "")
			if liveState.Code != http.StatusOK {
				return nil, fmt.Errorf("svc.qps: live state: %d (%s)", liveState.Code, liveState.Body)
			}

			// --- sequential replay on a fresh server -------------------
			replay := service.New(svcConfig(cfg))
			defer svcShutdown(replay) //nolint:errcheck // the replay server runs no jobs
			rh := replay.Handler()
			if rec := svcDo(rh, http.MethodPost, "/v1/advisor/fit", fitBody); rec.Code != http.StatusOK {
				return nil, fmt.Errorf("svc.qps: replay fit: %d (%s)", rec.Code, rec.Body)
			}
			for g := 0; g < svcClients; g++ {
				for _, body := range svcClientChurn(g) {
					if rec := svcDo(rh, http.MethodPost, "/v1/churn", body); rec.Code != http.StatusOK {
						return nil, fmt.Errorf("svc.qps: replay churn: %d (%s)", rec.Code, rec.Body)
					}
				}
			}
			replayState := svcDo(rh, http.MethodGet, svcStateURL, "")
			replayAdvise := svcDo(rh, http.MethodGet, svcAdviseURL, "")

			// --- assemble ----------------------------------------------
			adds := svcClients * svcIters * 4
			dels := svcClients * (svcIters - 2) * 2
			liveEdges := adds - dels
			reads := svcClients * svcIters

			r := NewResult("svc.qps",
				fmt.Sprintf("Partition service under mixed load (%d clients × %d iters, road-ca)", svcClients, svcIters),
				"op", "requests", "errors", "notes")
			tbl := []struct {
				op       string
				requests int
				notes    string
			}{
				{"advisor-fit", 1, "report upload refits the warm model"},
				{"jobs", svcClients, fmt.Sprintf("async %v at %d parts", svcJobStrategies, svcJobParts)},
				{"assignment", reads, fmt.Sprintf("road-ca × %v at %d parts", svcReadStrategies, svcParts)},
				{"churn", reads + 1, fmt.Sprintf("stream %s, 2D/%d: %d adds, %d dels", svcStream, svcParts, adds, dels)},
				{"advise", reads, "PowerGraph on road-ca from the warm model"},
			}
			totalReq := 0
			for _, e := range tbl {
				totalReq += e.requests
				r.Row(report.Dims{Dataset: "road-ca", Variant: e.op}).
					Col(e.op).
					Colf("%d", e.requests).
					Colf("%d", 0).
					Col(e.notes).
					Value("requests", float64(e.requests), "req")
			}

			// Wall-clock rates: non-presentation cells at the throughput
			// tolerance, never rendered into the golden table.
			qps := rate2(int64(totalReq), elapsed)
			eps := rate2(int64(adds+dels), elapsed)
			r.Cell(report.Dims{Dataset: "road-ca", Variant: "total"}, "throughput", qps, "req/s")
			r.Cell(report.Dims{Dataset: "road-ca", Variant: "churn"}, "edge-throughput", eps, "edges/s")

			// --- checks ------------------------------------------------
			clean := httpErrs.Load() == 0
			r.Checkf(clean, "every scripted request succeeds under concurrent load",
				"%d of %d requests returned non-2xx: %s", httpErrs.Load(), totalReq, Mark(clean))

			replayOK := replayState.Code == http.StatusOK &&
				liveState.Body.String() == replayState.Body.String()
			r.Checkf(replayOK, "the concurrently mutated churn stream is byte-identical to sequential replay",
				"racing %d batches from %d clients converges to the replayed state (%d live edges): %s",
				reads, svcClients, liveEdges, Mark(replayOK))

			wantBuilds := int64(len(svcReadStrategies) + len(svcJobStrategies))
			builds := live.AssignmentBuilds()
			sfOK := builds == wantBuilds
			r.Checkf(sfOK, "the singleflight cache computes each distinct partitioning exactly once",
				"%d requests triggered %d builds for %d distinct keys: %s", totalReq, builds, wantBuilds, Mark(sfOK))

			jobsOK := true
			for g := range jobs {
				if jobIDs[g] == "" || jobs[g].Status != service.JobDone ||
					jobs[g].ReplicationFactor < 1 || jobs[g].Edges == 0 {
					jobsOK = false
				}
			}
			r.Checkf(jobsOK, "every async partition job completes with quality metrics during the load",
				"%d jobs done across %v: %s", svcClients, svcJobStrategies, Mark(jobsOK))

			adviseOK := replayAdvise.Code == http.StatusOK
			for _, b := range adviseBodies {
				if b != replayAdvise.Body.String() {
					adviseOK = false
				}
			}
			r.Checkf(adviseOK, "advisor answers are identical across racing clients and equal the replay server's",
				"%d clients, one recommendation: %s", svcClients, Mark(adviseOK))

			countersOK := svcCountersMatch(live, tbl[2].requests, tbl[3].requests, tbl[4].requests)
			r.Checkf(countersOK, "the metrics endpoint accounts for every scripted request",
				"per-op request counters match the script: %s", Mark(countersOK))

			r.Notef("requests dispatch in-process (no sockets); rates land in req/s / edges/s cells at the throughput tolerance; job-status polling is excluded from the scripted counts")
			return r, nil
		},
	}
}

// svcCountersMatch verifies the server's own metrics counters agree with
// the deterministic script for the three load-bearing operations.
func svcCountersMatch(s *service.Server, assignment, churn, advise int) bool {
	got := map[string]float64{}
	for _, c := range s.MetricsCells() {
		if c.Metric == "requests" && c.Dims.Variant != "" {
			got[c.Dims.Variant] = c.Value
		}
	}
	return got["assignment"] == float64(assignment) &&
		got["churn"] == float64(churn) &&
		got["advise"] == float64(advise)
}
