package bench

// Load/ingress throughput experiments: the hot paths the thesis's loading
// phase leans on. load.speed measures every on-disk format × load path the
// repo supports; ing.scale measures sharded stateless ingress by worker
// count. The rendered tables carry only deterministic facts (file sizes,
// replication metrics) so the goldens stay byte-stable; the wall-clock
// throughput lands in non-presentation cells, which -compare gates at the
// wide report.ThroughputRelTol band. The strict speed assertions only fire
// at scales and core counts where they are meaningful, so scale-1 baseline
// runs never record a machine-dependent verdict.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

func init() {
	register(loadSpeed())
	register(ingScale())
}

// timeOp times one run of f, flooring the result so derived rates stay
// finite at test scales.
func timeOp(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	if elapsed < time.Microsecond {
		elapsed = time.Microsecond
	}
	return elapsed, err
}

// rate converts a count over a duration into a per-second rate.
func rate(count int64, d time.Duration) float64 {
	return float64(count) / d.Seconds()
}

func loadSpeed() Experiment {
	return Experiment{
		ID:    "load.speed",
		Title: "Load-path throughput by format (text, csrg-v1, csrg-v2)",
		Paper: "the paper's ingestion phase reads the edge list once per run (§4.1); its cost is format-bound — parse-bound for text, I/O-bound for binary — so the loader formats are a first-order term in total time-to-solution",
		Run: func(cfg Config) (*Result, error) {
			// Power-law graphs are where delta+varint compression pays
			// (locality-heavy edge order → small deltas); road-ca is the
			// low-skew contrast.
			powerLaw := []string{"uk-web", "twitter"}
			names := append([]string{"road-ca"}, powerLaw...)

			dir, err := os.MkdirTemp("", "loadspeed-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)

			r := NewResult("load.speed", "On-disk formats: size and load paths",
				"dataset", "format", "file-bytes", "bytes/edge")
			sizes := map[[2]string]float64{} // (dataset, format) → bytes
			for _, ds := range names {
				g, err := loadGraph(cfg, ds)
				if err != nil {
					return nil, err
				}
				edges := int64(g.NumEdges())
				byteSize := func(path string) (int64, error) {
					fi, err := os.Stat(path)
					if err != nil {
						return 0, err
					}
					return fi.Size(), nil
				}

				type format struct {
					name  string
					path  string
					write func(string) error
				}
				formats := []format{
					{"text", filepath.Join(dir, ds+".txt"), func(p string) error { return graph.SaveEdgeList(g, p) }},
					{"csrg-v1", filepath.Join(dir, ds+".v1.csrg"), func(p string) error { return graph.SaveCSRVersion(g, p, graph.CSRVersion1) }},
					{"csrg-v2", filepath.Join(dir, ds+".v2.csrg"), func(p string) error { return graph.SaveCSRVersion(g, p, graph.CSRVersion2) }},
				}
				for _, f := range formats {
					if err := f.write(f.path); err != nil {
						return nil, err
					}
					bytes, err := byteSize(f.path)
					if err != nil {
						return nil, err
					}
					sizes[[2]string{ds, f.name}] = float64(bytes)
					r.Row(report.Dims{Dataset: ds, Variant: f.name}).
						Col(ds, f.name).
						Metric("file-bytes", float64(bytes), "B", 0).
						Metric("bytes-per-edge", float64(bytes)/float64(edges), "B/edge", 2)
				}

				// The materialized loaders: full-file parse/decode into a
				// Graph. v1 is measured through both the mmap path and the
				// portable read fallback so the baseline records the gap.
				type loader struct {
					variant string
					load    func() error
				}
				v1 := formats[1].path
				loaders := []loader{
					{"text/load", func() error { _, err := graph.LoadFile(formats[0].path); return err }},
					{"csrg-v1/mmap", func() error { _, err := graph.LoadCSR(v1); return err }},
					{"csrg-v1/read", func() error {
						_, err := graph.LoadCSRWith(v1, graph.CSRLoadOptions{DisableMmap: true, Workers: cfg.Workers})
						return err
					}},
					{"csrg-v2/load", func() error { _, err := graph.LoadCSR(formats[2].path); return err }},
					{"text/stream", streamer(formats[0].path)},
					{"csrg-v1/stream", streamer(v1)},
					{"csrg-v2/stream", streamer(formats[2].path)},
				}
				elapsed := map[string]time.Duration{}
				for _, l := range loaders {
					d, err := timeOp(l.load)
					if err != nil {
						return nil, fmt.Errorf("%s %s: %w", ds, l.variant, err)
					}
					elapsed[l.variant] = d
					fileBytes := sizes[[2]string{ds, formatOf(l.variant)}]
					dims := report.Dims{Dataset: ds, Variant: l.variant}
					r.Cell(dims, "throughput", rate(edges, d), "edges/s")
					r.Cell(dims, "bandwidth", rate(int64(fileBytes), d), "B/s")
				}
				// The mmap-vs-read speed claim needs real file sizes to rise
				// above noise; assert it only at scale 10+, where the v1 file
				// is tens of MB. (BenchmarkLoadCSRMmap and the non-short
				// TestCSRLoadSpeedupAt1MEdges pin the same claim in-tree.)
				if ds == "uk-web" && cfg.scale() >= 10 {
					speedup := elapsed["csrg-v1/read"].Seconds() / elapsed["csrg-v1/mmap"].Seconds()
					r.Checkf(speedup >= 1.5, "mmap loads ≥1.5× faster than the v1 read path at scale 10",
						"mmap v1 load is %.2f× the read path (want ≥1.5×): %s", speedup, Mark(speedup >= 1.5))
				}
			}

			// Compression is deterministic, so this check is golden-safe.
			pass := true
			worst := 0.0
			for _, ds := range powerLaw {
				ratio := sizes[[2]string{ds, "csrg-v2"}] / sizes[[2]string{ds, "csrg-v1"}]
				if ratio > worst {
					worst = ratio
				}
				if ratio > 0.75 {
					pass = false
				}
			}
			r.Checkf(pass, "csrg-v2 is ≥25% smaller than csrg-v1 on power-law datasets",
				"csrg-v2 is ≥25%% smaller than v1 on power-law datasets (worst ratio %.3f): %s", worst, Mark(pass))
			r.Notef("throughput (edges/s, B/s) is recorded as report cells per dataset×path; -compare gates them at the wide rate tolerance")
			return r, nil
		},
	}
}

// streamer returns a closure that streams path's edges through the
// bounded-memory path, discarding the batches.
func streamer(path string) func() error {
	return func() error {
		_, _, err := graph.StreamFile(path, 0, func(int64, []graph.Edge) error { return nil })
		return err
	}
}

// formatOf maps a loader variant ("csrg-v1/mmap") back to its file format
// ("csrg-v1") for size lookups.
func formatOf(variant string) string {
	for i := range variant {
		if variant[i] == '/' {
			return variant[:i]
		}
	}
	return variant
}

func ingScale() Experiment {
	return Experiment{
		ID:    "ing.scale",
		Title: "Sharded stateless ingress scaling by worker count",
		Paper: "stateless strategies place each edge independently, so ingress should parallelize near-linearly (§5.2.1) — the whole point of hash-family partitioners is that loaders need no coordination",
		Run: func(cfg Config) (*Result, error) {
			g, err := loadGraph(cfg, "uk-web")
			if err != nil {
				return nil, err
			}
			s, err := partition.New("2D", partition.Options{HybridThreshold: cfg.HybridThreshold})
			if err != nil {
				return nil, err
			}
			ss, ok := s.(partition.StatelessStrategy)
			if !ok {
				return nil, fmt.Errorf("2D is not stateless")
			}
			const parts = 16

			ingest := func(workers int) (*partition.StreamSummary, time.Duration, error) {
				sb, err := partition.NewShardedStreamBuilder(ss, parts, workers, cfg.Seed)
				if err != nil {
					return nil, 0, err
				}
				var sum *partition.StreamSummary
				d, err := timeOp(func() error {
					for lo := 0; lo < len(g.Edges); lo += graph.DefaultBatchSize {
						hi := lo + graph.DefaultBatchSize
						if hi > len(g.Edges) {
							hi = len(g.Edges)
						}
						if err := sb.Feed(partition.EdgeBatch{Offset: int64(lo), Edges: g.Edges[lo:hi]}); err != nil {
							return err
						}
					}
					sum, err = sb.Finish()
					return err
				})
				return sum, d, err
			}

			r := NewResult("ing.scale", "Sharded ingress (uk-web, 2D, 16 parts) by worker count",
				"workers", "replication-factor", "edge-balance")
			if _, _, err := ingest(4); err != nil { // warm pools and caches
				return nil, err
			}
			var base *partition.StreamSummary
			elapsed := map[int]time.Duration{}
			identical := true
			for _, workers := range []int{1, 2, 4, 8} {
				sum, d, err := ingest(workers)
				if err != nil {
					return nil, err
				}
				elapsed[workers] = d
				if base == nil {
					base = sum
				} else if sum.ReplicationFactor() != base.ReplicationFactor() ||
					sum.EdgeBalance() != base.EdgeBalance() ||
					!mastersEqual(sum.Masters, base.Masters) {
					identical = false
				}
				r.Row(report.Dims{Dataset: "uk-web", Strategy: "2D", Parts: parts,
					Variant: fmt.Sprintf("workers=%d", workers)}).
					Colf("%d", workers).
					Metric("replication-factor", sum.ReplicationFactor(), "ratio", 3).
					Metric("edge-balance", sum.EdgeBalance(), "max/mean", 3).
					Value("throughput", rate(int64(g.NumEdges()), d), "edges/s")
			}
			r.Checkf(identical, "sharded ingress summaries are identical at every worker count",
				"masters, RF and balance are identical at 1/2/4/8 workers: %s", Mark(identical))
			// The scaling claim is only observable with ≥4 real cores and
			// enough edges per run; TestShardedIngressScales asserts it
			// non-short at test scale, the experiment at -scale 4+.
			if runtime.NumCPU() >= 4 && cfg.scale() >= 4 {
				speedup := elapsed[1].Seconds() / elapsed[4].Seconds()
				r.Checkf(speedup >= 2, "streamed ingress scales ≥2× from 1→4 workers",
					"ingress speedup 1→4 workers is %.2f× (want ≥2×): %s", speedup, Mark(speedup >= 2))
			}
			return r, nil
		},
	}
}

// mastersEqual compares two master arrays.
func mastersEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
