package service

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphpart/internal/report"
)

// endpointStats is one operation's counters. Everything is atomic so the
// hot request path never takes a lock.
type endpointStats struct {
	requests   atomic.Int64
	clientErrs atomic.Int64 // 4xx responses
	serverErrs atomic.Int64 // 5xx responses
	inflight   atomic.Int64
	latencyNs  atomic.Int64 // summed across requests
	maxNs      atomic.Int64
}

func (e *endpointStats) observe(status int, d time.Duration) {
	e.requests.Add(1)
	switch {
	case status >= 500:
		e.serverErrs.Add(1)
	case status >= 400:
		e.clientErrs.Add(1)
	}
	ns := d.Nanoseconds()
	e.latencyNs.Add(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// metricsRegistry holds per-endpoint counters. Operations are registered
// up front (at route time), so the exported cell set is fixed and sorted
// — the map is never mutated under traffic.
type metricsRegistry struct {
	mu    sync.Mutex
	eps   map[string]*endpointStats
	start time.Time
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{eps: map[string]*endpointStats{}, start: time.Now()}
}

// register creates the named operation's counters; idempotent.
func (m *metricsRegistry) register(op string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.eps[op]; ok {
		return e
	}
	e := &endpointStats{}
	m.eps[op] = e
	return e
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the op's inflight gauge, request
// counters and latency accounting, plus the per-request timeout context.
func (s *Server) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	e := s.met.register(op)
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
		defer cancel()
		sw := &statusWriter{ResponseWriter: w}
		e.inflight.Add(1)
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		e.inflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		e.observe(sw.status, elapsed)
	}
}

// MetricsCells exports every operation's counters in the report.Cell
// schema: the operation name in Dims.Variant, one cell per metric, plus
// server-wide totals. Operations are emitted in sorted order so the
// output is stable for a given traffic history.
func (s *Server) MetricsCells() []report.Cell {
	m := s.met
	m.mu.Lock()
	ops := make([]string, 0, len(m.eps))
	for op := range m.eps {
		ops = append(ops, op)
	}
	m.mu.Unlock()
	sort.Strings(ops)

	uptime := time.Since(m.start).Seconds()
	if uptime <= 0 {
		uptime = 1e-9
	}
	var cells []report.Cell
	cell := func(op, metric string, v float64, unit string) {
		cells = append(cells, report.Cell{Dims: report.Dims{Variant: op}, Metric: metric, Value: v, Unit: unit})
	}
	var totalReq, totalErr int64
	for _, op := range ops {
		m.mu.Lock()
		e := m.eps[op]
		m.mu.Unlock()
		req := e.requests.Load()
		ce, se := e.clientErrs.Load(), e.serverErrs.Load()
		totalReq += req
		totalErr += ce + se
		meanMs := 0.0
		if req > 0 {
			meanMs = float64(e.latencyNs.Load()) / float64(req) / 1e6
		}
		maxMs := float64(e.maxNs.Load()) / 1e6
		qps := float64(req) / uptime
		cell(op, "requests", float64(req), "req")
		cell(op, "client-errors", float64(ce), "req")
		cell(op, "server-errors", float64(se), "req")
		cell(op, "inflight", float64(e.inflight.Load()), "req")
		cell(op, "latency-mean-ms", meanMs, "ms")
		cell(op, "latency-max-ms", maxMs, "ms")
		cell(op, "throughput", qps, "req/s")
	}
	totalQPS := float64(totalReq) / uptime
	cell("", "uptime", uptime, "s")
	cell("", "requests", float64(totalReq), "req")
	cell("", "errors", float64(totalErr), "req")
	cell("", "throughput", totalQPS, "req/s")
	return cells
}
