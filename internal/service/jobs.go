package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Named job lifecycle errors. Handlers map them to status codes (429 for
// ErrQueueFull, 503 for ErrDraining); ErrShutdown lands in the Error
// field of every job the drain rejected.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the server sheds load instead of growing goroutines.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submissions made after Shutdown began.
	ErrDraining = errors.New("service: server draining; not accepting jobs")
	// ErrShutdown marks queued jobs the drain rejected before they ran.
	ErrShutdown = errors.New("service: shutdown rejected queued job")
)

// JobStatus is a partition job's lifecycle state.
type JobStatus string

// Job lifecycle: queued → running → done|failed; queued jobs become
// rejected when the server drains before they start.
const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobRejected JobStatus = "rejected"
)

// Job is one asynchronous partitioning: submitted with POST /v1/jobs,
// polled at GET /v1/jobs/{id}. Quality fields are set once Status is
// done.
type Job struct {
	ID       string    `json:"id"`
	Dataset  string    `json:"dataset"`
	Strategy string    `json:"strategy"`
	Parts    int       `json:"parts"`
	Status   JobStatus `json:"status"`
	Error    string    `json:"error,omitempty"`

	Edges             int64   `json:"edges,omitempty"`
	Vertices          int     `json:"vertices,omitempty"`
	ReplicationFactor float64 `json:"replicationFactor,omitempty"`
	EdgeBalance       float64 `json:"edgeBalance,omitempty"`
	Seconds           float64 `json:"seconds,omitempty"`
}

// jobRunner is the bounded asynchronous executor: a fixed worker pool
// pulls from a capacity-capped pending list. No goroutine is created per
// job, so a submission burst can only ever fill the queue (and then be
// 429'd), never exhaust the process.
type jobRunner struct {
	srv      *Server
	capacity int

	mu       sync.Mutex
	cond     *sync.Cond
	byID     map[string]*Job
	order    []string // submission order, for GET /v1/jobs
	pending  []*Job
	seq      int
	draining bool

	workers sync.WaitGroup
}

func newJobRunner(srv *Server, capacity, workers int) *jobRunner {
	r := &jobRunner{srv: srv, capacity: capacity, byID: map[string]*Job{}}
	r.cond = sync.NewCond(&r.mu)
	r.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// submit validates capacity and enqueues; the caller has already
// validated dataset/strategy/parts so queue rejections are the only
// failure mode here.
func (r *jobRunner) submit(dataset, strategy string, parts int) (Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return Job{}, ErrDraining
	}
	if len(r.pending) >= r.capacity {
		return Job{}, ErrQueueFull
	}
	r.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%d", r.seq),
		Dataset:  dataset,
		Strategy: strategy,
		Parts:    parts,
		Status:   JobQueued,
	}
	r.byID[j.ID] = j
	r.order = append(r.order, j.ID)
	r.pending = append(r.pending, j)
	r.cond.Signal()
	return *j, nil
}

// get returns a snapshot of one job.
func (r *jobRunner) get(id string) (Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// list returns snapshots of every job in submission order.
func (r *jobRunner) list() []Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *r.byID[id])
	}
	return out
}

// worker pulls pending jobs until the drain starts. A worker mid-job
// finishes it (run happens outside the lock) and only then observes
// draining and exits.
func (r *jobRunner) worker() {
	defer r.workers.Done()
	for {
		r.mu.Lock()
		for len(r.pending) == 0 && !r.draining {
			r.cond.Wait()
		}
		if r.draining {
			r.mu.Unlock()
			return
		}
		j := r.pending[0]
		r.pending = r.pending[1:]
		j.Status = JobRunning
		r.mu.Unlock()
		r.run(j)
	}
}

// run executes one job through the server's singleflight assignment
// cache, so a completed job warms the assignment endpoint for free.
func (r *jobRunner) run(j *Job) {
	start := time.Now()
	a, err := r.srv.assignment(context.Background(), j.Dataset, j.Strategy, j.Parts)
	elapsed := time.Since(start)
	r.mu.Lock()
	defer r.mu.Unlock()
	j.Seconds = elapsed.Seconds()
	if err != nil {
		j.Status = JobFailed
		j.Error = err.Error()
		return
	}
	j.Status = JobDone
	j.Edges = int64(a.G.NumEdges())
	j.Vertices = a.G.NumVertices()
	j.ReplicationFactor = a.ReplicationFactor()
	j.EdgeBalance = a.EdgeBalance()
}

// shutdown starts the drain: queued jobs are rejected with ErrShutdown,
// running jobs complete, and workers exit. Returns ctx.Err() if the
// inflight jobs outlive the context.
func (r *jobRunner) shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	for _, j := range r.pending {
		j.Status = JobRejected
		j.Error = ErrShutdown.Error()
	}
	r.pending = nil
	r.cond.Broadcast()
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain incomplete: %w", ctx.Err())
	}
}
