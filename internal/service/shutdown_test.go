package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphpart/internal/datasets"
	"graphpart/internal/graph"
)

// registerGatedDataset registers a dataset whose builder blocks until the
// returned gate is closed, counting builds. Registration is global and
// permanent, so every test uses a unique name.
func registerGatedDataset(t *testing.T, name string) (gate chan struct{}, builds *atomic.Int32) {
	t.Helper()
	gate = make(chan struct{})
	builds = &atomic.Int32{}
	err := datasets.Register(datasets.Info{Name: name, Kind: datasets.SyntheticRoad, Class: graph.LowDegree},
		func(int) (*graph.Graph, error) {
			builds.Add(1)
			<-gate
			return graph.FromEdges(name, []graph.Edge{
				{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
			}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return gate, builds
}

// TestSingleflightAssignment is the regression test for the cache
// contract: two concurrent requests for the same (dataset, strategy,
// parts) trigger exactly one dataset build and one partitioning.
func TestSingleflightAssignment(t *testing.T) {
	gate, builds := registerGatedDataset(t, "svc-singleflight")
	srv := newTestServer(t, Config{})

	const url = "/v1/assignment/svc-singleflight/Random?parts=2"
	var wg sync.WaitGroup
	bodies := make([]string, 2)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(srv, http.MethodGet, url, "")
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: %d (%s)", i, rec.Code, rec.Body)
				return
			}
			bodies[i] = rec.Body.String()
		}(i)
	}
	// Let both requests reach the singleflight entry before the build can
	// finish; the second must join the first's computation, not start its
	// own.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if t.Failed() {
		return
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("concurrent requests disagree:\n%s\n%s", bodies[0], bodies[1])
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("dataset builder ran %d times, want 1", n)
	}
	if n := srv.AssignmentBuilds(); n != 1 {
		t.Fatalf("server computed %d partitionings, want 1", n)
	}
	// A later request for the same key is a pure cache hit.
	if rec := do(srv, http.MethodGet, url, ""); rec.Code != http.StatusOK || rec.Body.String() != bodies[0] {
		t.Fatalf("cache hit diverged: %d (%s)", rec.Code, rec.Body)
	}
	if n := srv.AssignmentBuilds(); n != 1 {
		t.Fatalf("cache hit triggered a rebuild: %d builds", n)
	}
}

// TestGracefulShutdown drives the full drain contract: the running job
// completes, queued jobs are rejected with the named ErrShutdown, new
// submissions get 503 ErrDraining, and the drain finishes within its
// deadline.
func TestGracefulShutdown(t *testing.T) {
	gate, _ := registerGatedDataset(t, "svc-drain")
	srv := New(Config{JobWorkers: 1, JobQueue: 2})

	submit := func(parts int) (*Job, int, string) {
		body := fmt.Sprintf(`{"dataset":"svc-drain","strategy":"Random","parts":%d}`, parts)
		rec := do(srv, http.MethodPost, "/v1/jobs", body)
		if rec.Code != http.StatusAccepted {
			return nil, rec.Code, rec.Body.String()
		}
		var j Job
		if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		return &j, rec.Code, ""
	}
	status := func(id string) Job {
		rec := do(srv, http.MethodGet, "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s: %d", id, rec.Code)
		}
		var j Job
		decodeBodyJSON(t, rec, &j)
		return j
	}

	running, _, _ := submit(2)
	if running == nil {
		t.Fatal("first submission rejected")
	}
	deadline := time.Now().Add(10 * time.Second)
	for status(running.ID).Status != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fill the bounded queue, then overflow it.
	q1, _, _ := submit(3)
	q2, _, _ := submit(4)
	if q1 == nil || q2 == nil {
		t.Fatal("queue submissions rejected early")
	}
	if _, code, body := submit(5); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %d (%s), want 429", code, body)
	}

	// Start the drain while the first job is still blocked inside its
	// dataset build.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)

	if _, code, body := submit(6); code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %d (%s), want 503", code, body)
	}

	close(gate) // let the inflight job finish
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	if j := status(running.ID); j.Status != JobDone {
		t.Fatalf("inflight job = %s (%s), want done", j.Status, j.Error)
	}
	for _, q := range []*Job{q1, q2} {
		j := status(q.ID)
		if j.Status != JobRejected {
			t.Fatalf("queued job %s = %s, want rejected", q.ID, j.Status)
		}
		if j.Error != ErrShutdown.Error() {
			t.Fatalf("rejected job error = %q, want %q", j.Error, ErrShutdown)
		}
	}
	if _, code, _ := submit(7); code != http.StatusServiceUnavailable {
		t.Fatalf("submission after drain: %d, want 503", code)
	}
}

// TestShutdownDeadline pins the timeout path: a drain whose inflight job
// never finishes returns the context error instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	gate, _ := registerGatedDataset(t, "svc-drain-deadline")
	srv := New(Config{JobWorkers: 1})
	defer close(gate) // unblock the worker goroutine at test end

	j, code, body := submit1(t, srv, "svc-drain-deadline")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	// The drain only waits on jobs a worker has already picked up; a
	// still-queued job would be rejected instantly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(srv, http.MethodGet, "/v1/jobs/"+j.ID, "")
		var cur Job
		decodeBodyJSON(t, rec, &cur)
		if cur.Status == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("drain of a stuck job returned nil before its deadline")
	}
}

func submit1(t *testing.T, srv *Server, dataset string) (*Job, int, string) {
	t.Helper()
	rec := do(srv, http.MethodPost, "/v1/jobs", fmt.Sprintf(`{"dataset":%q,"strategy":"Random","parts":2}`, dataset))
	if rec.Code != http.StatusAccepted {
		return nil, rec.Code, rec.Body.String()
	}
	var j Job
	decodeBodyJSON(t, rec, &j)
	return &j, rec.Code, ""
}
