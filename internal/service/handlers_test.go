package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphpart/internal/report"
)

// newTestServer builds a Server whose jobs drain at test end.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// do runs one request through the handler stack without a network.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// wantError asserts the error JSON envelope: correct status code in the
// body, application/json content type, non-empty message.
func wantError(t *testing.T, rec *httptest.ResponseRecorder, status int) apiError {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, status, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v (%s)", err, rec.Body)
	}
	if e.Status != status {
		t.Fatalf("body status = %d, want %d", e.Status, status)
	}
	if e.Error == "" {
		t.Fatal("error envelope has empty message")
	}
	return e
}

func decodeBodyJSON(t *testing.T, rec *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
		t.Fatalf("decode response: %v (%s)", err, rec.Body)
	}
}

// fitReportJSON is a minimal benchrunner report the advisor can fit: one
// measurement group on road-ca with two strategies.
func fitReportJSON() string {
	rep := report.Report{
		SchemaVersion: report.SchemaVersion,
		Tool:          "handlers_test",
		Experiments: []report.Experiment{{
			ID: "fit.test", Title: "fit fixture",
			Cells: []report.Cell{
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "Random", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 12, Unit: "s"},
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "Grid", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 9, Unit: "s"},
				{Dims: report.Dims{Engine: "PowerGraph", Dataset: "road-ca", Strategy: "HDRF", App: "PageRank", Parts: 16}, Metric: "total-s", Value: 10, Unit: "s"},
			},
		}},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func TestEndpointTable(t *testing.T) {
	srv := newTestServer(t, Config{DefaultParts: 4})
	fitBody := fitReportJSON()

	// Sequenced sub-tests: later cases depend on state earlier ones create
	// (a churn stream, a fitted model), which is itself part of the API
	// surface under test.
	tests := []struct {
		name         string
		method, path string
		body         string
		status       int
		check        func(t *testing.T, rec *httptest.ResponseRecorder)
	}{
		{name: "healthz ok", method: http.MethodGet, path: "/v1/healthz", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got struct {
					Status   string `json:"status"`
					Datasets int    `json:"datasets"`
				}
				decodeBodyJSON(t, rec, &got)
				if got.Status != "ok" || got.Datasets < 6 {
					t.Fatalf("healthz = %+v", got)
				}
			}},
		{name: "healthz method not allowed", method: http.MethodPost, path: "/v1/healthz", status: http.StatusMethodNotAllowed,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
					t.Fatalf("Allow = %q, want GET", allow)
				}
			}},
		{name: "datasets list", method: http.MethodGet, path: "/v1/datasets", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got struct {
					Datasets []datasetInfo `json:"datasets"`
				}
				decodeBodyJSON(t, rec, &got)
				names := map[string]bool{}
				for _, d := range got.Datasets {
					names[d.Name] = true
				}
				if !names["road-ca"] || !names["uk-web"] {
					t.Fatalf("dataset list missing builtins: %v", got.Datasets)
				}
			}},
		{name: "manifest ok", method: http.MethodGet, path: "/v1/datasets/road-ca", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got struct {
					Name  string `json:"name"`
					Edges int64  `json:"edges"`
				}
				decodeBodyJSON(t, rec, &got)
				if got.Name != "road-ca" || got.Edges == 0 {
					t.Fatalf("manifest = %+v", got)
				}
			}},
		{name: "manifest unknown dataset", method: http.MethodGet, path: "/v1/datasets/no-such-graph", status: http.StatusNotFound},
		{name: "assignment ok", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=4", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got assignmentResponse
				decodeBodyJSON(t, rec, &got)
				if got.Edges == 0 || got.Vertices == 0 || got.ReplicationFactor < 1 {
					t.Fatalf("assignment = %+v", got)
				}
			}},
		{name: "assignment vertex lookup", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=4&vertex=7", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got assignmentResponse
				decodeBodyJSON(t, rec, &got)
				if got.Vertex == nil || got.Vertex.ID != 7 || got.Vertex.Replicas < 1 {
					t.Fatalf("vertex lookup = %+v", got.Vertex)
				}
				if got.Vertex.Master < 0 || got.Vertex.Master >= 4 {
					t.Fatalf("master %d out of range", got.Vertex.Master)
				}
			}},
		{name: "assignment unknown dataset", method: http.MethodGet, path: "/v1/assignment/no-such-graph/Grid", status: http.StatusNotFound},
		{name: "assignment unknown strategy", method: http.MethodGet, path: "/v1/assignment/road-ca/NoSuchCut", status: http.StatusNotFound},
		{name: "assignment bad parts", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=0", status: http.StatusBadRequest},
		{name: "assignment non-numeric parts", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=many", status: http.StatusBadRequest},
		{name: "assignment absurd parts", method: http.MethodGet, path: fmt.Sprintf("/v1/assignment/road-ca/Grid?parts=%d", maxParts+1), status: http.StatusBadRequest},
		{name: "assignment bad vertex", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=4&vertex=x", status: http.StatusBadRequest},
		{name: "assignment vertex out of range", method: http.MethodGet, path: "/v1/assignment/road-ca/Grid?parts=4&vertex=4000000000", status: http.StatusNotFound},
		{name: "assignment method not allowed", method: http.MethodDelete, path: "/v1/assignment/road-ca/Grid", status: http.StatusMethodNotAllowed},
		{name: "churn first batch", method: http.MethodPost, path: "/v1/churn",
			body:   `{"stream":"t1","strategy":"2D","parts":4,"adds":[[0,1],[1,2],[2,3]]}`,
			status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got churnResponse
				decodeBodyJSON(t, rec, &got)
				if got.Added != 3 || got.LiveEdges != 3 {
					t.Fatalf("churn = %+v", got)
				}
			}},
		{name: "churn delete live edge", method: http.MethodPost, path: "/v1/churn",
			body:   `{"stream":"t1","strategy":"2D","parts":4,"dels":[[0,1]]}`,
			status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got churnResponse
				decodeBodyJSON(t, rec, &got)
				if got.Deleted != 1 || got.LiveEdges != 2 {
					t.Fatalf("churn = %+v", got)
				}
			}},
		{name: "churn delete non-live edge conflicts", method: http.MethodPost, path: "/v1/churn",
			body:   `{"stream":"t1","strategy":"2D","parts":4,"dels":[[7,8]]}`,
			status: http.StatusConflict},
		{name: "churn state readback", method: http.MethodGet, path: "/v1/churn?stream=t1&strategy=2D&parts=4", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got churnResponse
				decodeBodyJSON(t, rec, &got)
				if got.LiveEdges != 2 {
					t.Fatalf("live edges = %d, want 2", got.LiveEdges)
				}
			}},
		{name: "churn unknown stream", method: http.MethodGet, path: "/v1/churn?stream=nope&strategy=2D&parts=4", status: http.StatusNotFound},
		{name: "churn unknown strategy", method: http.MethodPost, path: "/v1/churn",
			body: `{"stream":"t2","strategy":"NoSuchCut","adds":[[0,1]]}`, status: http.StatusNotFound},
		{name: "churn malformed json", method: http.MethodPost, path: "/v1/churn", body: `{"adds":`, status: http.StatusBadRequest},
		{name: "jobs malformed json", method: http.MethodPost, path: "/v1/jobs", body: `not json`, status: http.StatusBadRequest},
		{name: "jobs unknown dataset", method: http.MethodPost, path: "/v1/jobs",
			body: `{"dataset":"no-such-graph","strategy":"Grid"}`, status: http.StatusNotFound},
		{name: "jobs unknown job id", method: http.MethodGet, path: "/v1/jobs/job-999", status: http.StatusNotFound},
		{name: "advise before fit conflicts", method: http.MethodGet, path: "/v1/advise?dataset=road-ca", status: http.StatusConflict},
		{name: "advisor fit malformed", method: http.MethodPost, path: "/v1/advisor/fit", body: `{"schemaVersion":99}`, status: http.StatusBadRequest},
		{name: "advisor fit ok", method: http.MethodPost, path: "/v1/advisor/fit", body: fitBody, status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got fitResponse
				decodeBodyJSON(t, rec, &got)
				if len(got.Engines) == 0 || got.Observations == 0 {
					t.Fatalf("fit = %+v", got)
				}
			}},
		{name: "advise ok", method: http.MethodGet,
			path:   "/v1/advise?dataset=road-ca&system=PowerGraph&machines=16&ratio=4&app=PageRank",
			status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got struct {
					System   string `json:"system"`
					Strategy string `json:"strategy"`
				}
				decodeBodyJSON(t, rec, &got)
				if got.System != "PowerGraph" || got.Strategy == "" {
					t.Fatalf("advise = %+v", got)
				}
			}},
		{name: "advise missing dataset", method: http.MethodGet, path: "/v1/advise", status: http.StatusBadRequest},
		{name: "advise unknown dataset", method: http.MethodGet, path: "/v1/advise?dataset=no-such-graph", status: http.StatusNotFound},
		{name: "advise bad ratio", method: http.MethodGet, path: "/v1/advise?dataset=road-ca&ratio=tall", status: http.StatusBadRequest},
		{name: "advisor fit method not allowed", method: http.MethodGet, path: "/v1/advisor/fit", status: http.StatusMethodNotAllowed},
		{name: "metrics ok", method: http.MethodGet, path: "/v1/metrics", status: http.StatusOK,
			check: func(t *testing.T, rec *httptest.ResponseRecorder) {
				var got struct {
					Cells []report.Cell `json:"cells"`
				}
				decodeBodyJSON(t, rec, &got)
				if len(got.Cells) == 0 {
					t.Fatal("metrics returned no cells")
				}
				byKey := map[string]float64{}
				for _, c := range got.Cells {
					byKey[c.Dims.Variant+"/"+c.Metric] = c.Value
				}
				if byKey["healthz/requests"] < 1 {
					t.Fatalf("healthz requests cell = %v", byKey["healthz/requests"])
				}
				if byKey["churn/client-errors"] < 1 {
					t.Fatalf("churn 4xx traffic not counted: %v", byKey)
				}
			}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(srv, tc.method, tc.path, tc.body)
			if tc.status >= 400 {
				wantError(t, rec, tc.status)
			} else if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if tc.check != nil {
				tc.check(t, rec)
			}
		})
	}
}

// TestOversizedBodies pins the 413 path on every body-accepting endpoint.
func TestOversizedBodies(t *testing.T) {
	srv := newTestServer(t, Config{MaxBody: 64})
	big := `{"dataset":"road-ca","strategy":"Grid","padding":"` + strings.Repeat("x", 256) + `"}`
	for _, path := range []string{"/v1/jobs", "/v1/churn", "/v1/advisor/fit"} {
		rec := do(srv, http.MethodPost, path, big)
		wantError(t, rec, http.StatusRequestEntityTooLarge)
	}
}

// TestJobLifecycle submits a partition job and polls it to completion.
func TestJobLifecycle(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := do(srv, http.MethodPost, "/v1/jobs", `{"dataset":"road-ca","strategy":"Random","parts":4}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d (%s)", rec.Code, rec.Body)
	}
	var j Job
	decodeBodyJSON(t, rec, &j)
	if j.ID == "" || j.Status != JobQueued {
		t.Fatalf("submitted job = %+v", j)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		rec = do(srv, http.MethodGet, "/v1/jobs/"+j.ID, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("poll status = %d (%s)", rec.Code, rec.Body)
		}
		decodeBodyJSON(t, rec, &j)
		if j.Status == JobDone || j.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.Status != JobDone {
		t.Fatalf("job failed: %s", j.Error)
	}
	if j.Edges == 0 || j.Vertices == 0 || j.ReplicationFactor < 1 || j.Seconds <= 0 {
		t.Fatalf("done job missing quality fields: %+v", j)
	}

	// The completed job warmed the assignment cache: the lookup endpoint
	// answers without a second build.
	before := srv.AssignmentBuilds()
	rec = do(srv, http.MethodGet, "/v1/assignment/road-ca/Random?parts=4", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("assignment after job = %d", rec.Code)
	}
	if got := srv.AssignmentBuilds(); got != before {
		t.Fatalf("assignment lookup rebuilt a job-warmed key: %d → %d builds", before, got)
	}

	// And the list endpoint shows it.
	rec = do(srv, http.MethodGet, "/v1/jobs", "")
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	decodeBodyJSON(t, rec, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}
}

// TestRequestTimeout pins the 504 path: a request whose handler work
// outlives the per-request deadline gets a gateway-timeout envelope.
func TestRequestTimeout(t *testing.T) {
	srv := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	rec := do(srv, http.MethodGet, "/v1/datasets/uk-web", "")
	wantError(t, rec, http.StatusGatewayTimeout)
}
