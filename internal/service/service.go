// Package service is the resident partition-as-a-service layer: an
// HTTP/JSON server that keeps registered datasets loaded through the
// two-level .csrg cache, serves assignment lookups and manifest stats,
// executes partition jobs asynchronously on a bounded queue, applies churn
// batches to live partition.PartitionState streams, and answers advisor
// queries from a warm in-memory advisor.Model refittable from uploaded
// benchrunner reports.
//
// Everything the one-shot CLIs do once per process, the service does
// concurrently and repeatedly: dataset builds and partitionings are
// deduplicated by singleflight caches (two concurrent requests for the
// same assignment share one computation), churn streams serialize behind
// per-state locks, and every endpoint exports latency/throughput/inflight
// counters through the report.Cell schema at GET /v1/metrics. Shutdown is
// graceful: inflight partition jobs complete, queued jobs are rejected
// with ErrShutdown, and new submissions get ErrDraining.
//
// The API is documented in docs/SERVICE.md; cmd/partitiond is the daemon
// binary and the svc.qps experiment load-tests an in-process instance.
package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"graphpart/internal/advisor"
	"graphpart/internal/datasets"
	"graphpart/internal/partition"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for test-scale datasets.
type Config struct {
	// Scale is the dataset scale factor every load/build uses (≤0 = 1).
	Scale int
	// Seed is the partitioner hash seed (the same seed the bench uses).
	Seed uint64
	// HybridThreshold is the Hybrid/H-Ginger high-degree cutoff (0 keeps
	// the strategy default).
	HybridThreshold int
	// Workers bounds partitioning/ingress goroutines (≤0 = GOMAXPROCS).
	Workers int
	// DefaultParts is the partition count used when a request names none
	// (≤0 = 16).
	DefaultParts int
	// JobQueue caps queued-but-not-running partition jobs; submissions
	// beyond it are rejected with ErrQueueFull → 429 (≤0 = 16).
	JobQueue int
	// JobWorkers is the number of job executor goroutines (≤0 = 2).
	JobWorkers int
	// RequestTimeout bounds each request's handler work; expired requests
	// get 504 while the underlying computation keeps warming the cache
	// (≤0 = 30s).
	RequestTimeout time.Duration
	// MaxBody caps request body bytes; larger bodies get 413 (≤0 = 8 MiB).
	MaxBody int64
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) defaultParts() int {
	if c.DefaultParts < 1 {
		return 16
	}
	return c.DefaultParts
}

func (c Config) jobQueue() int {
	if c.JobQueue < 1 {
		return 16
	}
	return c.JobQueue
}

func (c Config) jobWorkers() int {
	if c.JobWorkers < 1 {
		return 2
	}
	return c.JobWorkers
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 30 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) maxBody() int64 {
	if c.MaxBody <= 0 {
		return 8 << 20
	}
	return c.MaxBody
}

// maxParts bounds requested partition counts; the bit-matrix bookkeeping
// is O(|V|·parts/8) bytes, so an absurd count is a request error, not an
// allocation.
const maxParts = 1024

// Server is one resident service instance. Create it with New, mount
// Handler on an http.Server (or httptest), and Shutdown when done.
type Server struct {
	cfg Config
	mux *http.ServeMux
	met *metricsRegistry

	asgMu  sync.Mutex
	asg    map[asgKey]*asgEntry
	builds atomic.Int64 // completed assignment builds (singleflight audit)

	stMu   sync.Mutex
	states map[streamKey]*liveState

	manMu     sync.Mutex
	manifests map[string]datasets.Manifest

	advMu sync.RWMutex
	model *advisor.Model

	jobs *jobRunner
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		met:       newMetricsRegistry(),
		asg:       map[asgKey]*asgEntry{},
		states:    map[streamKey]*liveState{},
		manifests: map[string]datasets.Manifest{},
	}
	s.jobs = newJobRunner(s, cfg.jobQueue(), cfg.jobWorkers())
	s.routes()
	return s
}

// Handler returns the instrumented HTTP handler for the whole API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: running partition jobs complete, queued
// jobs are rejected with ErrShutdown, and later submissions fail with
// ErrDraining. It returns ctx.Err() when the drain outlives the context.
// The HTTP listener is the caller's to close (http.Server.Shutdown);
// handlers for already-accepted requests keep working during and after
// the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.shutdown(ctx)
}

// SetModel installs a pre-fitted advisor model (the daemon's -report flag
// warms one at boot); POST /v1/advisor/fit replaces it.
func (s *Server) SetModel(m *advisor.Model) {
	s.advMu.Lock()
	s.model = m
	s.advMu.Unlock()
}

// AssignmentBuilds reports how many partitionings the server has actually
// computed — the singleflight regression tests pin this against the
// number of distinct (dataset, strategy, parts) keys requested.
func (s *Server) AssignmentBuilds() int64 { return s.builds.Load() }

// --- assignment singleflight cache -------------------------------------

type asgKey struct {
	dataset  string
	strategy string
	parts    int
}

// asgEntry is one in-flight or completed partitioning. The first
// requester spawns the build goroutine; everyone else (and every later
// request) waits on done — or gives up at its own deadline while the
// build keeps running and lands in the cache.
type asgEntry struct {
	done chan struct{}
	a    *partition.Assignment
	err  error
}

// assignment returns the cached partitioning for the key, computing it at
// most once per key across all concurrent requesters. On ctx expiry the
// caller gets ctx.Err() but the computation is not abandoned.
func (s *Server) assignment(ctx context.Context, dataset, strategy string, parts int) (*partition.Assignment, error) {
	key := asgKey{dataset, strategy, parts}
	s.asgMu.Lock()
	e, ok := s.asg[key]
	if !ok {
		e = &asgEntry{done: make(chan struct{})}
		s.asg[key] = e
		go s.buildAssignment(key, e)
	}
	s.asgMu.Unlock()
	select {
	case <-e.done:
		return e.a, e.err
	case <-ctx.Done():
		return nil, fmt.Errorf("service: partitioning %s/%s/%d: %w", dataset, strategy, parts, ctx.Err())
	}
}

// buildAssignment computes one cache entry. Failed entries are removed
// before waiters wake so the next request can retry (the datasets layer
// makes the same choice for transient external-file failures).
func (s *Server) buildAssignment(key asgKey, e *asgEntry) {
	defer close(e.done)
	g, err := datasets.Load(key.dataset, s.cfg.scale())
	if err == nil {
		var st partition.Strategy
		st, err = partition.New(key.strategy, partition.Options{HybridThreshold: s.cfg.HybridThreshold})
		if err == nil {
			e.a, err = partition.ParallelPartition(g, st, key.parts, s.cfg.Seed, s.cfg.Workers)
		}
	}
	if err != nil {
		e.err = err
		s.asgMu.Lock()
		if s.asg[key] == e {
			delete(s.asg, key)
		}
		s.asgMu.Unlock()
		return
	}
	s.builds.Add(1)
}

// --- live churn streams -------------------------------------------------

type streamKey struct {
	stream   string
	strategy string
	parts    int
}

// liveState is one mutable partitioning under churn. The PartitionState
// is single-goroutine by contract; mu serializes the service's
// concurrently arriving batches in arrival order.
type liveState struct {
	mu sync.Mutex
	st *partition.PartitionState
}

// state returns (creating on first use) the live state for a stream.
// Greedy strategies pin Loaders:1, matching the incremental contract the
// dyn.* experiments established.
func (s *Server) state(stream, strategy string, parts int) (*liveState, error) {
	key := streamKey{stream, strategy, parts}
	s.stMu.Lock()
	defer s.stMu.Unlock()
	if ls, ok := s.states[key]; ok {
		return ls, nil
	}
	st, err := partition.New(strategy, partition.Options{HybridThreshold: s.cfg.HybridThreshold, Loaders: 1})
	if err != nil {
		return nil, err
	}
	ps, err := partition.NewPartitionState(st, parts, s.cfg.Seed, s.cfg.Workers)
	if err != nil {
		return nil, err
	}
	ls := &liveState{st: ps}
	s.states[key] = ls
	return ls, nil
}

// lookupState returns the stream's live state without creating one.
func (s *Server) lookupState(stream, strategy string, parts int) (*liveState, bool) {
	s.stMu.Lock()
	defer s.stMu.Unlock()
	ls, ok := s.states[streamKey{stream, strategy, parts}]
	return ls, ok
}

// --- manifests ----------------------------------------------------------

// manifest measures (once per dataset at the server's scale) the manifest
// the advisor features come from.
func (s *Server) manifest(name string) (datasets.Manifest, error) {
	s.manMu.Lock()
	m, ok := s.manifests[name]
	s.manMu.Unlock()
	if ok {
		return m, nil
	}
	m, err := datasets.BuildManifest(name, s.cfg.scale())
	if err != nil {
		return datasets.Manifest{}, err
	}
	s.manMu.Lock()
	s.manifests[name] = m
	s.manMu.Unlock()
	return m, nil
}

// withinTimeout runs fn in its own goroutine and waits for the result or
// the request deadline, whichever is first. Abandoned work finishes in
// the background and keeps warming the server's caches — the next request
// for the same thing hits the cache instead of restarting it.
func withinTimeout[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type out struct {
		v   T
		err error
	}
	ch := make(chan out, 1)
	go func() {
		v, err := fn()
		ch <- out{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}
