package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"graphpart/internal/advisor"
	"graphpart/internal/datasets"
	"graphpart/internal/decision"
	"graphpart/internal/graph"
	"graphpart/internal/partition"
	"graphpart/internal/report"
)

// ErrNoModel answers advisor queries before any report has been fitted.
var ErrNoModel = errors.New("service: no advisor model fitted; POST a benchrunner report to /v1/advisor/fit")

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func (s *Server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

// routes mounts every endpoint. Method checks happen inside the handler
// (not in the mux pattern) so 405 responses carry the same JSON error
// envelope as every other failure.
func (s *Server) routes() {
	s.handle("/v1/healthz", "healthz", s.handleHealthz, http.MethodGet)
	s.handle("/v1/datasets", "datasets", s.handleDatasets, http.MethodGet)
	s.handle("/v1/datasets/{name}", "dataset-manifest", s.handleManifest, http.MethodGet)
	s.handle("/v1/assignment/{dataset}/{strategy}", "assignment", s.handleAssignment, http.MethodGet)
	s.handle("/v1/jobs", "jobs", s.handleJobs, http.MethodGet, http.MethodPost)
	s.handle("/v1/jobs/{id}", "job-status", s.handleJobStatus, http.MethodGet)
	s.handle("/v1/churn", "churn", s.handleChurn, http.MethodGet, http.MethodPost)
	s.handle("/v1/advisor/fit", "advisor-fit", s.handleAdvisorFit, http.MethodPost)
	s.handle("/v1/advise", "advise", s.handleAdvise, http.MethodGet)
	s.handle("/v1/metrics", "metrics", s.handleMetrics, http.MethodGet)
}

// handle wires one path: method filtering, then the instrumented handler.
func (s *Server) handle(pattern, op string, h http.HandlerFunc, methods ...string) {
	wrapped := s.instrument(op, h)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		for _, m := range methods {
			if r.Method == m {
				wrapped(w, r)
				return
			}
		}
		w.Header().Set("Allow", strings.Join(methods, ", "))
		// Not instrumented on purpose: a method probe is not endpoint
		// traffic, and instrument would need the op before the check.
		s.errorf(w, http.StatusMethodNotAllowed, "service: %s does not allow %s (allow: %s)",
			r.URL.Path, r.Method, strings.Join(methods, ", "))
	})
}

// decodeBody decodes a JSON request body bounded at MaxBody, writing the
// appropriate error (413 oversized, 400 malformed) itself. Returns false
// when the response is already written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.errorf(w, http.StatusRequestEntityTooLarge, "service: request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.errorf(w, http.StatusBadRequest, "service: malformed JSON body: %v", err)
		return false
	}
	return true
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("service: query param %s=%q is not an integer", name, v)
	}
	return n, nil
}

// checkParts validates a requested partition count.
func (s *Server) checkParts(w http.ResponseWriter, parts int) bool {
	if parts < 1 || parts > maxParts {
		s.errorf(w, http.StatusBadRequest, "service: parts must be in [1, %d], got %d", maxParts, parts)
		return false
	}
	return true
}

// checkDataset 404s unknown dataset names.
func (s *Server) checkDataset(w http.ResponseWriter, name string) bool {
	if _, err := datasets.Describe(name); err != nil {
		s.errorf(w, http.StatusNotFound, "%v", err)
		return false
	}
	return true
}

// checkStrategy 404s unknown strategy names.
func (s *Server) checkStrategy(w http.ResponseWriter, name string) bool {
	if _, err := partition.New(name, partition.Options{}); err != nil {
		s.errorf(w, http.StatusNotFound, "%v", err)
		return false
	}
	return true
}

// --- health + datasets --------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"datasets": len(datasets.Names()),
		"scale":    s.cfg.scale(),
	})
}

// datasetInfo is one row of GET /v1/datasets.
type datasetInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Class      string `json:"class"`
	Provenance string `json:"provenance,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	names := datasets.Names()
	out := make([]datasetInfo, 0, len(names))
	for _, n := range names {
		info, err := datasets.Describe(n)
		if err != nil {
			continue // unregistered between Names and Describe; skip
		}
		out = append(out, datasetInfo{
			Name: info.Name, Kind: string(info.Kind),
			Class: info.Class.String(), Provenance: info.Provenance,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.checkDataset(w, name) {
		return
	}
	m, err := withinTimeout(r.Context(), func() (datasets.Manifest, error) {
		return s.manifest(name)
	})
	if err != nil {
		s.respondError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// --- assignment ---------------------------------------------------------

// vertexLookup is the per-vertex part of an assignment response.
type vertexLookup struct {
	ID       uint32 `json:"id"`
	Master   int    `json:"master"`
	Replicas int    `json:"replicas"`
}

// assignmentResponse summarizes a cached partitioning, with an optional
// vertex lookup.
type assignmentResponse struct {
	Dataset           string        `json:"dataset"`
	Strategy          string        `json:"strategy"`
	Parts             int           `json:"parts"`
	Edges             int64         `json:"edges"`
	Vertices          int           `json:"vertices"`
	ReplicationFactor float64       `json:"replicationFactor"`
	EdgeBalance       float64       `json:"edgeBalance"`
	Vertex            *vertexLookup `json:"vertex,omitempty"`
}

func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	ds, strat := r.PathValue("dataset"), r.PathValue("strategy")
	if !s.checkDataset(w, ds) || !s.checkStrategy(w, strat) {
		return
	}
	parts, err := queryInt(r, "parts", s.cfg.defaultParts())
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkParts(w, parts) {
		return
	}
	a, err := s.assignment(r.Context(), ds, strat, parts)
	if err != nil {
		s.respondError(w, err)
		return
	}
	resp := assignmentResponse{
		Dataset: ds, Strategy: strat, Parts: parts,
		Edges:             int64(a.G.NumEdges()),
		Vertices:          a.G.NumVertices(),
		ReplicationFactor: a.ReplicationFactor(),
		EdgeBalance:       a.EdgeBalance(),
	}
	if vq := r.URL.Query().Get("vertex"); vq != "" {
		v64, err := strconv.ParseUint(vq, 10, 32)
		if err != nil {
			s.errorf(w, http.StatusBadRequest, "service: query param vertex=%q is not a vertex id", vq)
			return
		}
		v := graph.VertexID(v64)
		if int(v) >= a.G.NumVertices() {
			s.errorf(w, http.StatusNotFound, "service: vertex %d outside %s (%d vertices)", v, ds, a.G.NumVertices())
			return
		}
		resp.Vertex = &vertexLookup{ID: v, Master: a.Master(v), Replicas: a.Replicas(v)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// respondError maps computation errors to status codes: deadline → 504,
// everything else → 500.
func (s *Server) respondError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.errorf(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	s.errorf(w, http.StatusInternalServerError, "%v", err)
}

// --- jobs ---------------------------------------------------------------

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Dataset  string `json:"dataset"`
	Strategy string `json:"strategy"`
	Parts    int    `json:"parts"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
		return
	}
	var req jobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Parts == 0 {
		req.Parts = s.cfg.defaultParts()
	}
	if !s.checkDataset(w, req.Dataset) || !s.checkStrategy(w, req.Strategy) || !s.checkParts(w, req.Parts) {
		return
	}
	j, err := s.jobs.submit(req.Dataset, req.Strategy, req.Parts)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.errorf(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		s.errorf(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		s.respondError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		s.errorf(w, http.StatusNotFound, "service: unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// --- churn --------------------------------------------------------------

// churnRequest is the POST /v1/churn body: one batch of edge additions
// and deletions for a named live stream. Edges are [src, dst] pairs.
type churnRequest struct {
	Stream   string      `json:"stream"`
	Strategy string      `json:"strategy"`
	Parts    int         `json:"parts"`
	Adds     [][2]uint32 `json:"adds"`
	Dels     [][2]uint32 `json:"dels"`
}

// churnResponse reports the batch outcome and the stream's live quality.
type churnResponse struct {
	Stream            string  `json:"stream"`
	Strategy          string  `json:"strategy"`
	Parts             int     `json:"parts"`
	Added             int     `json:"added"`
	Deleted           int     `json:"deleted"`
	Rebuilt           bool    `json:"rebuilt"`
	LiveEdges         int64   `json:"liveEdges"`
	Vertices          int     `json:"vertices"`
	ReplicationFactor float64 `json:"replicationFactor"`
	EdgeBalance       float64 `json:"edgeBalance"`
	Incremental       bool    `json:"incremental"`
}

func edgesOf(pairs [][2]uint32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{Src: p[0], Dst: p[1]}
	}
	return out
}

func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.handleChurnState(w, r)
		return
	}
	var req churnRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Stream == "" {
		req.Stream = "default"
	}
	if req.Parts == 0 {
		req.Parts = s.cfg.defaultParts()
	}
	if !s.checkStrategy(w, req.Strategy) || !s.checkParts(w, req.Parts) {
		return
	}
	ls, err := s.state(req.Stream, req.Strategy, req.Parts)
	if err != nil {
		s.respondError(w, err)
		return
	}
	ls.mu.Lock()
	stats, err := ls.st.ApplyBatch(edgesOf(req.Adds), edgesOf(req.Dels))
	resp := churnResponse{
		Stream: req.Stream, Strategy: req.Strategy, Parts: req.Parts,
		Added: stats.Added, Deleted: stats.Deleted, Rebuilt: stats.Rebuilt,
		LiveEdges: ls.st.NumEdges(), Vertices: ls.st.NumVertices(),
		ReplicationFactor: ls.st.ReplicationFactor(),
		EdgeBalance:       ls.st.EdgeBalance(),
		Incremental:       ls.st.Incremental(),
	}
	ls.mu.Unlock()
	if err != nil {
		// A delete of a non-live edge aborts the batch mid-way; the state
		// keeps the prefix that applied. 409 tells the client its view of
		// the stream diverged from the server's.
		s.errorf(w, http.StatusConflict, "service: churn batch aborted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleChurnState answers GET /v1/churn?stream=&strategy=&parts= with
// the live quality summary of an existing stream.
func (s *Server) handleChurnState(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream")
	if stream == "" {
		stream = "default"
	}
	strat := r.URL.Query().Get("strategy")
	if !s.checkStrategy(w, strat) {
		return
	}
	parts, err := queryInt(r, "parts", s.cfg.defaultParts())
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkParts(w, parts) {
		return
	}
	ls, ok := s.lookupState(stream, strat, parts)
	if !ok {
		s.errorf(w, http.StatusNotFound, "service: no live stream %q for %s/%d", stream, strat, parts)
		return
	}
	ls.mu.Lock()
	resp := churnResponse{
		Stream: stream, Strategy: strat, Parts: parts,
		LiveEdges: ls.st.NumEdges(), Vertices: ls.st.NumVertices(),
		ReplicationFactor: ls.st.ReplicationFactor(),
		EdgeBalance:       ls.st.EdgeBalance(),
		Incremental:       ls.st.Incremental(),
	}
	ls.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// --- advisor ------------------------------------------------------------

// fitResponse summarizes a model fitted from an uploaded report.
type fitResponse struct {
	Engines      []string `json:"engines"`
	Observations int      `json:"observations"`
	Skipped      int      `json:"skipped"`
	Manifests    int      `json:"manifests"`
}

func (s *Server) handleAdvisorFit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	rep, err := report.Decode(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.errorf(w, http.StatusRequestEntityTooLarge, "service: request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.errorf(w, http.StatusBadRequest, "service: report body: %v", err)
		return
	}
	resp, err := withinTimeout(r.Context(), func() (fitResponse, error) {
		return s.refit(rep)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.respondError(w, err)
		} else {
			s.errorf(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// refit builds manifests for the registered datasets the report measures
// and swaps in a freshly fitted model.
func (s *Server) refit(rep *report.Report) (fitResponse, error) {
	seen := map[string]bool{}
	var mans []datasets.Manifest
	for _, e := range rep.Experiments {
		for _, c := range e.Cells {
			name := c.Dims.Dataset
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			if _, err := datasets.Describe(name); err != nil {
				continue // unregistered dataset: no manifest, advisor skips it
			}
			m, err := s.manifest(name)
			if err != nil {
				return fitResponse{}, err
			}
			mans = append(mans, m)
		}
	}
	model, err := advisor.Fit(rep, mans)
	if err != nil {
		return fitResponse{}, err
	}
	s.advMu.Lock()
	s.model = model
	s.advMu.Unlock()
	resp := fitResponse{Engines: model.Engines(), Skipped: model.Skipped, Manifests: len(mans)}
	for _, e := range resp.Engines {
		resp.Observations += len(model.Observations(e))
	}
	return resp, nil
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.advMu.RLock()
	model := s.model
	s.advMu.RUnlock()
	if model == nil {
		s.errorf(w, http.StatusConflict, "%v", ErrNoModel)
		return
	}
	q := r.URL.Query()
	ds := q.Get("dataset")
	if ds == "" {
		s.errorf(w, http.StatusBadRequest, "service: advise needs a dataset query param")
		return
	}
	if !s.checkDataset(w, ds) {
		return
	}
	sys := partition.System(q.Get("system"))
	if sys == "" {
		sys = partition.PowerGraph
	}
	machines, err := queryInt(r, "machines", s.cfg.defaultParts())
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	ratio := 4.0 // long-job default: partitions are held resident here
	if rq := q.Get("ratio"); rq != "" {
		ratio, err = strconv.ParseFloat(rq, 64)
		if err != nil {
			s.errorf(w, http.StatusBadRequest, "service: query param ratio=%q is not a number", rq)
			return
		}
	}
	app := q.Get("app")
	rec, err := withinTimeout(r.Context(), func() (decision.Recommendation, error) {
		m, err := s.manifest(ds)
		if err != nil {
			return decision.Recommendation{}, err
		}
		wl, err := advisor.WorkloadFor(m, machines, ratio, app)
		if err != nil {
			return decision.Recommendation{}, err
		}
		return model.Recommend(sys, wl)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.respondError(w, err)
		} else {
			s.errorf(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// --- metrics ------------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"cells": s.MetricsCells()})
}
