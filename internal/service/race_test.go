package service

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"graphpart/internal/partition"
)

// churnOp is one recorded churn request body, replayed verbatim during
// the sequential pass.
type churnOp struct {
	client int
	body   string
}

// batteryEdges returns the deterministic edge block client g adds at
// iteration i. Blocks are disjoint across (g, i), so a client only ever
// deletes edges it added itself — the precondition that makes the final
// live-edge multiset independent of interleaving. The ID space is kept
// compact: PartitionState sizes its bookkeeping by max vertex ID, so
// sparse IDs would turn every batch into a giant array grow.
func batteryEdges(g, i int) [][2]uint32 {
	base := uint32(g*2_000 + i*100)
	out := make([][2]uint32, 4)
	for k := range out {
		src := base + uint32(k)*2
		out[k] = [2]uint32{src, src + 1}
	}
	return out
}

func churnBody(stream string, adds, dels [][2]uint32) string {
	enc := func(pairs [][2]uint32) string {
		s := "["
		for i, p := range pairs {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("[%d,%d]", p[0], p[1])
		}
		return s + "]"
	}
	return fmt.Sprintf(`{"stream":%q,"strategy":"2D","parts":8,"adds":%s,"dels":%s}`,
		stream, enc(adds), enc(dels))
}

// TestConcurrentBattery is the service-layer extension of the partition
// package's TestStatelessChurnEquivalence: N clients hammer one server
// with a mix of assignment lookups, churn batches, and advisor queries
// under -race, and the final churn-stream state must be byte-identical
// to a sequential replay of the same batches on a fresh server.
func TestConcurrentBattery(t *testing.T) {
	const (
		clients = 8
		iters   = 12
	)
	live := newTestServer(t, Config{DefaultParts: 4})

	// Warm the advisor so the battery's advise calls hit a fitted model.
	if rec := do(live, http.MethodPost, "/v1/advisor/fit", fitReportJSON()); rec.Code != http.StatusOK {
		t.Fatalf("fit: %d (%s)", rec.Code, rec.Body)
	}

	strategies := []string{"Grid", "Random", "2D"}
	ops := make([][]churnOp, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Assignment lookup: same small key set from every client,
				// so the singleflight cache is contended for real.
				strat := strategies[(g+i)%len(strategies)]
				if rec := do(live, http.MethodGet, "/v1/assignment/road-ca/"+strat+"?parts=4", ""); rec.Code != http.StatusOK {
					t.Errorf("client %d: assignment %s: %d (%s)", g, strat, rec.Code, rec.Body)
					return
				}

				// Churn: add this iteration's block, delete the block from
				// two iterations ago.
				adds := batteryEdges(g, i)
				var dels [][2]uint32
				if i >= 2 {
					dels = batteryEdges(g, i-2)[:2]
				}
				body := churnBody("battery", adds, dels)
				if rec := do(live, http.MethodPost, "/v1/churn", body); rec.Code != http.StatusOK {
					t.Errorf("client %d: churn: %d (%s)", g, rec.Code, rec.Body)
					return
				}
				ops[g] = append(ops[g], churnOp{client: g, body: body})

				// Advisor read.
				if rec := do(live, http.MethodGet, "/v1/advise?dataset=road-ca&machines=16&app=PageRank", ""); rec.Code != http.StatusOK {
					t.Errorf("client %d: advise: %d (%s)", g, rec.Code, rec.Body)
					return
				}
				// Metrics read races the counters' atomics.
				if rec := do(live, http.MethodGet, "/v1/metrics", ""); rec.Code != http.StatusOK {
					t.Errorf("client %d: metrics: %d", g, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	const stateURL = "/v1/churn?stream=battery&strategy=2D&parts=8"
	liveState := do(live, http.MethodGet, stateURL, "")
	if liveState.Code != http.StatusOK {
		t.Fatalf("live state: %d (%s)", liveState.Code, liveState.Body)
	}

	// Sequential replay on a fresh server: each client's batches in its
	// own order, clients one after another.
	replay := newTestServer(t, Config{DefaultParts: 4})
	for _, clientOps := range ops {
		for _, op := range clientOps {
			if rec := do(replay, http.MethodPost, "/v1/churn", op.body); rec.Code != http.StatusOK {
				t.Fatalf("replay: %d (%s)", rec.Code, rec.Body)
			}
		}
	}
	replayState := do(replay, http.MethodGet, stateURL, "")
	if replayState.Code != http.StatusOK {
		t.Fatalf("replay state: %d (%s)", replayState.Code, replayState.Body)
	}

	if liveState.Body.String() != replayState.Body.String() {
		t.Fatalf("concurrent state diverged from sequential replay:\nconcurrent: %s\nsequential: %s",
			liveState.Body, replayState.Body)
	}

	// And both match a direct PartitionState replay below the HTTP layer,
	// tying the service contract back to the partition package's own
	// equivalence guarantee.
	st, err := partition.New("2D", partition.Options{Loaders: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := partition.NewPartitionState(st, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < clients; g++ {
		for i := 0; i < iters; i++ {
			adds := edgesOf(batteryEdges(g, i))
			var dels [][2]uint32
			if i >= 2 {
				dels = batteryEdges(g, i-2)[:2]
			}
			if _, err := ps.ApplyBatch(adds, edgesOf(dels)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var got churnResponse
	decodeBodyJSON(t, liveState, &got)
	if got.LiveEdges != ps.NumEdges() || got.Vertices != ps.NumVertices() {
		t.Fatalf("service state (edges=%d verts=%d) != direct replay (edges=%d verts=%d)",
			got.LiveEdges, got.Vertices, ps.NumEdges(), ps.NumVertices())
	}
	if got.ReplicationFactor != ps.ReplicationFactor() || got.EdgeBalance != ps.EdgeBalance() {
		t.Fatalf("service quality (rf=%v bal=%v) != direct replay (rf=%v bal=%v)",
			got.ReplicationFactor, got.EdgeBalance, ps.ReplicationFactor(), ps.EdgeBalance())
	}
}
