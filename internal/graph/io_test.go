package graph

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStreamEdgeListBatches(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# header\n")
	want := make([]Edge, 0, 10)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
		want = append(want, Edge{VertexID(i), VertexID(i + 1)})
	}
	for _, batchSize := range []int{1, 3, 10, 100} {
		var got []Edge
		var offsets []int64
		total, maxID, err := StreamEdgeList("t", strings.NewReader(sb.String()), batchSize,
			func(offset int64, edges []Edge) error {
				offsets = append(offsets, offset)
				got = append(got, edges...) // copy: the batch slice is reused
				return nil
			})
		if err != nil {
			t.Fatalf("batch=%d: %v", batchSize, err)
		}
		if total != 10 || maxID != 10 {
			t.Fatalf("batch=%d: total=%d maxID=%d, want 10/10", batchSize, total, maxID)
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d edges, want %d", batchSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: edge %d = %v, want %v", batchSize, i, got[i], want[i])
			}
		}
		// Offsets are the global index of each batch's first edge.
		var next int64
		for i, off := range offsets {
			if off != next {
				t.Fatalf("batch=%d: batch %d offset %d, want %d", batchSize, i, off, next)
			}
			size := int64(batchSize)
			if rem := total - next; size > rem {
				size = rem
			}
			next += size
		}
	}
}

func TestStreamEdgeListPropagatesCallbackError(t *testing.T) {
	sentinel := errors.New("stop")
	_, _, err := StreamEdgeList("t", strings.NewReader("1 2\n3 4\n"), 1,
		func(int64, []Edge) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestStreamEdgeListBadInput(t *testing.T) {
	for _, bad := range []string{"1\n", "x y\n", "1 z\n"} {
		if _, _, err := StreamEdgeList("bad", strings.NewReader(bad), 0, func(int64, []Edge) error { return nil }); err == nil {
			t.Errorf("StreamEdgeList(%q): want error, got nil", bad)
		}
	}
}

func TestWriteEdgeBatchRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {2, 3}, {4, 0}}
	var buf bytes.Buffer
	buf.WriteString("# streamed\n")
	if err := WriteEdgeBatch(&buf, edges[:2]); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeBatch(&buf, edges[2:]); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeList("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != len(edges) {
		t.Fatalf("%d edges, want %d", g.NumEdges(), len(edges))
	}
	for i, e := range edges {
		if g.Edges[i] != e {
			t.Fatalf("edge %d = %v, want %v", i, g.Edges[i], e)
		}
	}
}
