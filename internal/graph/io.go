package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// DefaultBatchSize is the edge-batch granularity used by the streaming
// readers when callers pass batchSize ≤ 0.
const DefaultBatchSize = 1 << 16

// StreamEdgeList parses a plain-text edge list — one "src dst" pair per
// line, whitespace separated, '#'/'%' comment lines (SNAP and DIMACS
// conventions) — in batches of batchSize edges, calling fn with each
// batch's offset (global index of its first edge) and edges. The batch
// slice is reused between calls; fn must copy anything it retains. Memory
// stays O(batchSize) regardless of file size, which is what lets stateless
// strategies partition edge lists that never fit in memory.
//
// It returns the total edge count and the maximum vertex id seen (0 when
// the stream held no edges).
func StreamEdgeList(name string, r io.Reader, batchSize int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	batchp := getEdgeBuf(batchSize)
	defer putEdgeBuf(batchp)
	batch := (*batchp)[:0]
	var total int64
	var maxID VertexID
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := fn(total, batch); err != nil {
			return err
		}
		total += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return total, maxID, fmt.Errorf("edge list %s line %d: want at least 2 fields, got %q", name, lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return total, maxID, fmt.Errorf("edge list %s line %d: bad src: %w", name, lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return total, maxID, fmt.Errorf("edge list %s line %d: bad dst: %w", name, lineNo, err)
		}
		if VertexID(src) > maxID {
			maxID = VertexID(src)
		}
		if VertexID(dst) > maxID {
			maxID = VertexID(dst)
		}
		batch = append(batch, Edge{VertexID(src), VertexID(dst)})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return total, maxID, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return total, maxID, fmt.Errorf("edge list %s: %w", name, err)
	}
	if err := flush(); err != nil {
		return total, maxID, err
	}
	return total, maxID, nil
}

// ReadEdgeList parses a plain-text edge list into a materialized Graph.
// This is the storage format the paper uses for all datasets (§4.2); it is
// StreamEdgeList with the batches collected.
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	var edges []Edge
	if _, _, err := StreamEdgeList(name, r, 0, func(_ int64, batch []Edge) error {
		edges = append(edges, batch...)
		return nil
	}); err != nil {
		return nil, err
	}
	return FromEdges(name, edges), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(path, f)
}

// WriteEdgeList writes the graph as a plain-text edge list with a header
// comment, in the same format ReadEdgeList accepts.
func WriteEdgeList(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s: %d vertices, %d edges\n", g.Name, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	if err := WriteEdgeBatch(bw, g.Edges); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEdgeBatch appends a batch of edges in edge-list format to w, the
// producer side of StreamEdgeList. Callers own any buffering and headers.
func WriteEdgeBatch(w io.Writer, edges []Edge) error {
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "%d %d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return nil
}

// SaveEdgeList writes the graph to a file at path.
func SaveEdgeList(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(g, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
