package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a plain-text edge list: one "src dst" pair per line,
// whitespace separated. Lines starting with '#' or '%' are comments (SNAP
// and DIMACS conventions respectively). This is the storage format the
// paper uses for all datasets (§4.2).
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	var edges []Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("edge list %s line %d: want at least 2 fields, got %q", name, lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edge list %s line %d: bad src: %w", name, lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edge list %s line %d: bad dst: %w", name, lineNo, err)
		}
		edges = append(edges, Edge{VertexID(src), VertexID(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edge list %s: %w", name, err)
	}
	return FromEdges(name, edges), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(path, f)
}

// WriteEdgeList writes the graph as a plain-text edge list with a header
// comment, in the same format ReadEdgeList accepts.
func WriteEdgeList(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s: %d vertices, %d edges\n", g.Name, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file at path.
func SaveEdgeList(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(g, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
