package graph

import "sync"

// The streaming readers cycle through one batch worth of bytes and edges
// per read. These pools let back-to-back streams — and the per-block
// read-ahead of the parallel v2 decoder — reuse those buffers instead of
// re-allocating them, keeping the steady-state ingress loop allocation-free.
// Buffers hand out with length 0 and at least the requested capacity;
// callers reslice. Putting a buffer back while any slice of it is still
// referenced is the usual pool bug; the loaders only recycle after fn (or
// the decoder) has returned, which is the documented "batch is reused,
// copy what you retain" contract.

var edgeBufPool = sync.Pool{
	New: func() any { s := make([]Edge, 0, DefaultBatchSize); return &s },
}

func getEdgeBuf(n int) *[]Edge {
	p := edgeBufPool.Get().(*[]Edge)
	if cap(*p) < n {
		*p = make([]Edge, 0, n)
	}
	return p
}

func putEdgeBuf(p *[]Edge) {
	*p = (*p)[:0]
	edgeBufPool.Put(p)
}

var byteBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 8*DefaultBatchSize); return &b },
}

func getByteBuf(n int) *[]byte {
	p := byteBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, 0, n)
	}
	return p
}

func putByteBuf(p *[]byte) {
	*p = (*p)[:0]
	byteBufPool.Put(p)
}
