package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
)

// The .csrg binary graph format.
//
// Text edge lists (the storage format of the paper's datasets, §4.2) cost a
// line scan plus two integer parses per edge on every load. The .csrg format
// stores the same graph in little-endian binary so loading is I/O-bound. A
// file carries the edge list in its original stream order — partitioning
// strategies assign by edge index, so order is part of graph identity.
//
// Two payload layouts share one header:
//
//   - version 1 stores fixed-width records: every section is a flat array
//     whose length is known from the header, so a reader can mmap the file
//     and slice the sections at fixed offsets without copying (LoadCSR does
//     exactly that where the platform allows). Optionally the prebuilt CSR
//     adjacency sections follow the edges, making EnsureCSR free after load.
//   - version 2 stores the edge list as delta+varint-compressed blocks
//     (see csr_v2.go): files are several times smaller and the per-block
//     headers let independent blocks decode on parallel workers. v2 files
//     carry no adjacency sections; readers rebuild adjacency lazily.
//
// Layout (all integers little-endian):
//
//	header:
//	  [0:4)   magic "CSRG"
//	  [4:6)   uint16 format version (1 or 2)
//	  [6:8)   uint16 flags (v1 bit 0: CSR adjacency sections present; v2: none)
//	  [8:16)  uint64 numVertices
//	  [16:24) uint64 numEdges
//	  [24:28) uint32 graph-name length
//	  [28:..) graph name (UTF-8; writers pad with NUL bytes so the payload
//	          starts 8-byte aligned — readers strip trailing NULs, and files
//	          written before the padding existed still decode byte-identically)
//	v1 payload:
//	  edges     2·numEdges   × uint32 (src,dst interleaved, stream order)
//	  — when flags bit 0 is set —
//	  outIndex  numVertices+1 × uint32
//	  outAdj    numEdges      × uint32
//	  outEdge   numEdges      × uint32 (edge id parallel to outAdj)
//	  inIndex   numVertices+1 × uint32
//	  inAdj     numEdges      × uint32
//	  inEdge    numEdges      × uint32
//	v2 payload:
//	  uint32 numBlocks, then numBlocks compressed edge blocks (csr_v2.go)
//	footer:
//	  [0:4) uint32 CRC-32C (Castagnoli) of the payload
//
// For v2 the checksum covers the payload *after* the 4-byte block count:
// the streaming writer only learns the count at Close and patches it in
// place, which must not invalidate the already-streamed CRC. The count is
// protected structurally instead — the blocks must fill the payload exactly
// and their edge counts must sum to the header's numEdges.
//
// The trailing checksum detects bit rot and torn writes; a wrong header
// length detects truncation before any decode happens.

// CSRMagic is the 4-byte signature at the start of every .csrg file.
const CSRMagic = "CSRG"

// The .csrg format versions this package reads and writes. Version 1 is the
// fixed-width mmap-able layout; version 2 compresses the edge section into
// independently decodable delta+varint blocks. Readers reject anything else
// by name, so a future v3 fails loudly instead of misparsing.
const (
	CSRVersion1 = 1
	CSRVersion2 = 2
)

// CSRVersion is the default version written by WriteCSR and SaveCSR — the
// fixed-width v1 layout, which keeps the zero-copy mmap load path available.
const CSRVersion = CSRVersion1

// CSRExt is the conventional file extension for the binary graph format.
const CSRExt = ".csrg"

const (
	csrFlagHasCSR   = 1 << 0 // CSR adjacency sections follow the edge section
	csrHeaderFixed  = 28     // header bytes before the graph name
	csrMaxNameLen   = 1 << 16
	csrMaxEdges     = 1<<31 - 1 // edge ids are int32 throughout the repo
	csrMaxVertices  = 1 << 32
	csrChunkEntries = 1 << 15 // uint32s per encode chunk (128 KiB)
)

// castagnoli is the checksum polynomial: CRC-32C has hardware support on
// amd64/arm64, so verifying an 8 MB payload costs single-digit milliseconds.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// --- writing ----------------------------------------------------------

// WriteCSR writes g in .csrg v1 form, including the CSR adjacency sections
// so a later LoadCSR returns a graph whose EnsureCSR is a no-op. The edge
// section preserves g.Edges order exactly.
func WriteCSR(g *Graph, w io.Writer) error {
	m := g.NumEdges()
	if m > csrMaxEdges {
		return fmt.Errorf("csrg %s: %d edges exceed the int32 edge-id space", g.Name, m)
	}
	g.EnsureCSR()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := writeCSRHeader(bw, g.Name, CSRVersion1, csrFlagHasCSR, uint64(g.NumVertices()), uint64(m)); err != nil {
		return err
	}
	crc := uint32(0)
	sink := func(chunk []byte) error {
		crc = crc32.Update(crc, castagnoli, chunk)
		_, err := bw.Write(chunk)
		return err
	}
	if err := encodeEdges(g.Edges, sink); err != nil {
		return err
	}
	for _, sec := range []struct {
		u []uint32
		i []int32
	}{
		{i: g.outIndex}, {u: g.outAdj}, {i: g.outEdge},
		{i: g.inIndex}, {u: g.inAdj}, {i: g.inEdge},
	} {
		var err error
		if sec.u != nil {
			err = encode32s(sec.u, sink)
		} else {
			err = encode32s(sec.i, sink)
		}
		if err != nil {
			return err
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc)
	if _, err := bw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSRVersion writes g in the requested .csrg format version: 1 for the
// fixed-width mmap-able layout (with prebuilt adjacency sections), 2 for the
// compressed block layout (smaller files, parallel decode, no adjacency).
func WriteCSRVersion(g *Graph, w io.Writer, version int) error {
	switch version {
	case CSRVersion1:
		return WriteCSR(g, w)
	case CSRVersion2:
		return WriteCSR2(g, w)
	default:
		return fmt.Errorf("csrg %s: unknown writer version %d (have %d and %d)", g.Name, version, CSRVersion1, CSRVersion2)
	}
}

// SaveCSR writes g to a .csrg v1 file at path.
func SaveCSR(g *Graph, path string) error {
	return SaveCSRVersion(g, path, CSRVersion1)
}

// SaveCSRVersion writes g to a .csrg file at path in the given format version.
func SaveCSRVersion(g *Graph, path string, version int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSRVersion(g, f, version); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSRHeader emits the fixed header plus the (NUL-padded) name and
// returns the total header length — the file offset where the payload
// starts. The padding rounds that offset up to a multiple of 8 so the v1
// edge section can be reinterpreted in place by the mmap load path.
func writeCSRHeader(w io.Writer, name string, version, flags uint16, numVertices, numEdges uint64) (int, error) {
	if len(name) > csrMaxNameLen-8 {
		name = name[:csrMaxNameLen-8]
	}
	padded := len(name)
	if rem := (csrHeaderFixed + padded) % 8; rem != 0 {
		padded += 8 - rem
	}
	hdr := make([]byte, csrHeaderFixed+padded)
	copy(hdr[0:4], CSRMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], numVertices)
	binary.LittleEndian.PutUint64(hdr[16:24], numEdges)
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(padded))
	copy(hdr[csrHeaderFixed:], name)
	_, err := w.Write(hdr)
	return len(hdr), err
}

// encode32s streams a 32-bit section through a reused chunk buffer into
// sink, keeping encode memory O(chunk) no matter how large the section is.
// int32 index values are non-negative, so their uint32 cast is
// value-preserving.
func encode32s[T int32 | uint32](vals []T, sink func([]byte) error) error {
	buf := make([]byte, 0, 4*csrChunkEntries)
	for len(vals) > 0 {
		n := len(vals)
		if n > csrChunkEntries {
			n = csrChunkEntries
		}
		buf = buf[:4*n]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		if err := sink(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// encodeEdges is encode32s for the interleaved (src,dst) edge section.
func encodeEdges(edges []Edge, sink func([]byte) error) error {
	buf := make([]byte, 0, 8*(csrChunkEntries/2))
	for len(edges) > 0 {
		n := len(edges)
		if n > csrChunkEntries/2 {
			n = csrChunkEntries / 2
		}
		buf = buf[:8*n]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[8*i:], edges[i].Src)
			binary.LittleEndian.PutUint32(buf[8*i+4:], edges[i].Dst)
		}
		if err := sink(buf); err != nil {
			return err
		}
		edges = edges[n:]
	}
	return nil
}

// --- reading ----------------------------------------------------------

// csrHeader is the decoded fixed header plus name.
type csrHeader struct {
	version     uint16
	flags       uint16
	numVertices uint64
	numEdges    uint64
	name        string
}

func (h csrHeader) hasCSR() bool { return h.flags&csrFlagHasCSR != 0 }

// payloadLen returns the byte length of the payload the header announces.
// Only v1 payloads have a header-derivable length; v2 block sections are
// walked block by block.
func (h csrHeader) payloadLen() int64 {
	n := 8 * int64(h.numEdges)
	if h.hasCSR() {
		n += 4 * (2*(int64(h.numVertices)+1) + 4*int64(h.numEdges))
	}
	return n
}

func decodeCSRHeader(src string, b []byte) (csrHeader, int, error) {
	var h csrHeader
	if len(b) < csrHeaderFixed {
		return h, 0, fmt.Errorf("csrg %s: truncated header (%d bytes)", src, len(b))
	}
	if string(b[0:4]) != CSRMagic {
		return h, 0, fmt.Errorf("csrg %s: bad magic %q (not a .csrg file)", src, b[0:4])
	}
	h.version = binary.LittleEndian.Uint16(b[4:6])
	if h.version < CSRVersion1 || h.version > CSRVersion2 {
		return h, 0, fmt.Errorf("csrg %s: unsupported format version %d (reader supports %d–%d)", src, h.version, CSRVersion1, CSRVersion2)
	}
	h.flags = binary.LittleEndian.Uint16(b[6:8])
	switch {
	case h.version == CSRVersion2 && h.flags != 0:
		return h, 0, fmt.Errorf("csrg %s: version 2 carries no flags, got %#x", src, h.flags)
	case h.flags&^uint16(csrFlagHasCSR) != 0:
		return h, 0, fmt.Errorf("csrg %s: unknown flags %#x", src, h.flags)
	}
	h.numVertices = binary.LittleEndian.Uint64(b[8:16])
	h.numEdges = binary.LittleEndian.Uint64(b[16:24])
	if h.numEdges > csrMaxEdges {
		return h, 0, fmt.Errorf("csrg %s: %d edges exceed the int32 edge-id space", src, h.numEdges)
	}
	if h.numVertices >= csrMaxVertices {
		return h, 0, fmt.Errorf("csrg %s: %d vertices exceed the uint32 id space", src, h.numVertices)
	}
	nameLen := binary.LittleEndian.Uint32(b[24:28])
	if nameLen > csrMaxNameLen {
		return h, 0, fmt.Errorf("csrg %s: implausible name length %d", src, nameLen)
	}
	end := csrHeaderFixed + int(nameLen)
	if len(b) < end {
		return h, 0, fmt.Errorf("csrg %s: truncated header name (want %d bytes, have %d)", src, end, len(b))
	}
	// Writers pad the name with NULs to align the payload; the padding is
	// not part of the graph's identity.
	h.name = strings.TrimRight(string(b[csrHeaderFixed:end]), "\x00")
	return h, end, nil
}

// CSRLoadOptions tunes LoadCSRWith.
type CSRLoadOptions struct {
	// DisableMmap forces the portable read-everything path even where the
	// zero-copy memory-mapped path is available.
	DisableMmap bool
	// Workers bounds the goroutines decoding v2 edge blocks (≤0 means
	// GOMAXPROCS). v1 decoding is a bulk copy (or a zero-copy alias) and
	// ignores it.
	Workers int
}

// LoadCSR reads a .csrg file through the fastest path the platform offers:
// on little-endian unix the file is memory-mapped and the v1 sections are
// sliced in place without copying (the payload checksum is still verified);
// elsewhere — or when the mapping fails — the whole file is read in one call
// and decoded with bulk fixed-width conversions. v2 files decode their
// compressed edge blocks on parallel workers either way.
func LoadCSR(path string) (*Graph, error) {
	return LoadCSRWith(path, CSRLoadOptions{})
}

// LoadCSRWith is LoadCSR with explicit path selection — benchmarks use it to
// pin the portable read path against the mmap path.
func LoadCSRWith(path string, o CSRLoadOptions) (*Graph, error) {
	if !o.DisableMmap && MmapSupported() {
		if g, err, handled := loadCSRMmap(path, o); handled {
			return g, err
		}
		// The mapping did not engage (empty file, mmap failure): fall
		// through to the portable path, which reports precise errors.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCSRData(path, data, o, nil)
}

// loadCSRMmap maps the file and decodes from the mapping. handled is false
// when mmap could not engage and the caller should fall back; when true, g
// and err are the final result. A graph that aliases the mapping pins it via
// g.mmap (unmapped by finalizer); otherwise the mapping is released here.
func loadCSRMmap(path string, o CSRLoadOptions) (g *Graph, err error, handled bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err, true
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err, true
	}
	if fi.Size() < csrHeaderFixed || int64(int(fi.Size())) != fi.Size() {
		return nil, nil, false
	}
	ref, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, nil, false
	}
	g, err = decodeCSRData(path, ref.data, o, ref)
	if err != nil || g.mmap == nil {
		// Decode failed, or nothing aliased the mapping (v2, misaligned
		// legacy header): release it now instead of waiting for the GC.
		ref.unmap()
	}
	return g, err, true
}

// ReadCSR reads a .csrg document from r (buffering it fully).
func ReadCSR(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeCSRData("stream", data, CSRLoadOptions{}, nil)
}

// decodeCSRData decodes a whole in-memory (or memory-mapped) .csrg file.
// When ref is non-nil, data is a read-only mapping the result may alias:
// sections that can be reinterpreted in place (little-endian host, aligned
// payload) become views into the mapping and g.mmap pins it.
func decodeCSRData(src string, data []byte, o CSRLoadOptions, ref *mmapRef) (*Graph, error) {
	h, off, err := decodeCSRHeader(src, data)
	if err != nil {
		return nil, err
	}
	if h.version == CSRVersion2 {
		return decodeCSRv2(src, data, off, h, o)
	}
	want := int64(off) + h.payloadLen() + 4
	if int64(len(data)) != want {
		return nil, fmt.Errorf("csrg %s: truncated or oversized file: %d bytes, header implies %d", src, len(data), want)
	}
	payload := data[off : len(data)-4]
	if got, stored := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", src, got, stored)
	}

	n := int(h.numVertices)
	m := int(h.numEdges)
	var edges []Edge
	var maxID VertexID
	aliased := false
	if ref != nil && m > 0 {
		if ev := edgesView(payload[:8*m]); ev != nil {
			// Zero-copy: the edge section already has the in-memory []Edge
			// layout. Ids still need the same bounds check the copying
			// decoder applies.
			if maxID, err = scanEdgeIDs(src, ev, h.numVertices); err != nil {
				return nil, err
			}
			edges, aliased = ev, true
		}
	}
	if edges == nil {
		edges, maxID, err = decodeEdgeSection(src, payload[:8*m], uint32(n))
		if err != nil {
			return nil, err
		}
	}
	if m > 0 && int(maxID)+1 != n {
		return nil, fmt.Errorf("csrg %s: header says %d vertices but max edge id is %d", src, n, maxID)
	}
	if m == 0 && n != 0 {
		return nil, fmt.Errorf("csrg %s: %d vertices with no edges (writers derive the vertex set from edges)", src, n)
	}
	g := &Graph{Name: h.name, Edges: edges, numVertices: n}

	if !h.hasCSR() {
		if aliased {
			g.mmap = ref
		}
		g.buildDegrees()
		return g, nil
	}
	rest := payload[8*m:]
	next := func(entries int) []byte {
		sec := rest[:4*entries]
		rest = rest[4*entries:]
		return sec
	}
	nextIndex := func(entries int) []int32 {
		sec := next(entries)
		if ref != nil {
			if v := i32View(sec); v != nil {
				aliased = true
				return v
			}
		}
		return decodeIndexSection(sec)
	}
	nextU32 := func(entries int) []uint32 {
		sec := next(entries)
		if ref != nil {
			if v := u32View(sec); v != nil {
				aliased = true
				return v
			}
		}
		return decodeU32Section(sec)
	}
	g.outIndex = nextIndex(n + 1)
	g.outAdj = nextU32(m)
	g.outEdge = nextIndex(m)
	g.inIndex = nextIndex(n + 1)
	g.inAdj = nextU32(m)
	g.inEdge = nextIndex(m)
	if err := g.validateCSRSections(src); err != nil {
		return nil, err
	}
	if aliased {
		g.mmap = ref
	}
	// Degrees fall out of the index sections without another edge scan.
	g.outDeg = make([]int32, n)
	g.inDeg = make([]int32, n)
	for v := 0; v < n; v++ {
		g.outDeg[v] = g.outIndex[v+1] - g.outIndex[v]
		g.inDeg[v] = g.inIndex[v+1] - g.inIndex[v]
	}
	return g, nil
}

// scanEdgeIDs bounds-checks an aliased edge section without copying it and
// returns the maximum vertex id seen.
func scanEdgeIDs(src string, edges []Edge, numVertices uint64) (VertexID, error) {
	var maxID VertexID
	for i, e := range edges {
		if uint64(e.Src) >= numVertices || uint64(e.Dst) >= numVertices {
			return 0, fmt.Errorf("csrg %s: edge %d (%d→%d) outside declared vertex range [0,%d)", src, i, e.Src, e.Dst, numVertices)
		}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	return maxID, nil
}

// decodeEdgeChunk decodes len(b)/8 interleaved (src,dst) records from b
// into out, bounds-checking every endpoint against the declared vertex
// count and folding ids into maxID. base is the global index of out[0],
// for error messages. Both the bulk loader and StreamCSR decode through
// this one loop so the paths cannot diverge.
func decodeEdgeChunk(src string, b []byte, numVertices uint64, base int64, out []Edge, maxID *VertexID) error {
	m := len(b) / 8
	for i := 0; i < m; i++ {
		s := binary.LittleEndian.Uint32(b[8*i:])
		d := binary.LittleEndian.Uint32(b[8*i+4:])
		if uint64(s) >= numVertices || uint64(d) >= numVertices {
			return fmt.Errorf("csrg %s: edge %d (%d→%d) outside declared vertex range [0,%d)", src, base+int64(i), s, d, numVertices)
		}
		if s > *maxID {
			*maxID = s
		}
		if d > *maxID {
			*maxID = d
		}
		out[i] = Edge{s, d}
	}
	return nil
}

// decodeEdgeSection bulk-decodes the whole interleaved edge array.
func decodeEdgeSection(src string, b []byte, numVertices uint32) ([]Edge, VertexID, error) {
	edges := make([]Edge, len(b)/8)
	var maxID VertexID
	if err := decodeEdgeChunk(src, b, uint64(numVertices), 0, edges, &maxID); err != nil {
		return nil, 0, err
	}
	return edges, maxID, nil
}

func decodeU32Section(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeIndexSection(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// validateCSRSections sanity-checks loaded adjacency sections so a corrupt
// (but checksum-colliding) or hand-built file cannot cause out-of-bounds
// panics later: indexes must be monotonic and end at numEdges, neighbor ids
// must be in-range, and edge ids must be valid.
func (g *Graph) validateCSRSections(src string) error {
	n, m := g.numVertices, len(g.Edges)
	for _, sec := range []struct {
		what string
		idx  []int32
		adj  []uint32
		eids []int32
	}{
		{"out", g.outIndex, g.outAdj, g.outEdge},
		{"in", g.inIndex, g.inAdj, g.inEdge},
	} {
		if len(sec.idx) != n+1 || sec.idx[0] != 0 || int(sec.idx[n]) != m {
			return fmt.Errorf("csrg %s: %s-index malformed", src, sec.what)
		}
		for v := 0; v < n; v++ {
			if sec.idx[v+1] < sec.idx[v] {
				return fmt.Errorf("csrg %s: %s-index not monotonic at vertex %d", src, sec.what, v)
			}
		}
		for i, a := range sec.adj {
			if int(a) >= n {
				return fmt.Errorf("csrg %s: %s-adjacency %d references vertex %d (numVertices=%d)", src, sec.what, i, a, n)
			}
			if e := sec.eids[i]; e < 0 || int(e) >= m {
				return fmt.Errorf("csrg %s: %s-adjacency %d references edge %d (numEdges=%d)", src, sec.what, i, e, m)
			}
		}
	}
	return nil
}

// --- streaming --------------------------------------------------------

// StreamCSR is StreamEdgeList for the binary format: it reads the edge
// section of a .csrg stream (either version) in batches of batchSize edges,
// calling fn with each batch's global offset. Memory stays O(batchSize) for
// v1 and O(block) for v2. Any v1 CSR adjacency sections are read through
// (and the payload checksum verified) after the edges are delivered.
//
// It returns the total edge count and the maximum vertex id seen.
func StreamCSR(name string, r io.Reader, batchSize int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	return StreamCSRParallel(name, r, batchSize, 1, fn)
}

// StreamCSRParallel is StreamCSR with the v2 block decode fanned out over up
// to `workers` goroutines (≤0 means GOMAXPROCS); batches are still delivered
// to fn in stream order, from one goroutine. v1 streams have no independent
// blocks, so they always decode sequentially.
func StreamCSRParallel(name string, r io.Reader, batchSize, workers int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	br := bufio.NewReaderSize(r, 1<<20)
	hdrFixed := make([]byte, csrHeaderFixed)
	if _, err := io.ReadFull(br, hdrFixed); err != nil {
		return 0, 0, fmt.Errorf("csrg %s: reading header: %w", name, err)
	}
	nameLen := binary.LittleEndian.Uint32(hdrFixed[24:28])
	if nameLen > csrMaxNameLen {
		return 0, 0, fmt.Errorf("csrg %s: implausible name length %d", name, nameLen)
	}
	full := make([]byte, csrHeaderFixed+int(nameLen))
	copy(full, hdrFixed)
	if _, err := io.ReadFull(br, full[csrHeaderFixed:]); err != nil {
		return 0, 0, fmt.Errorf("csrg %s: reading header name: %w", name, err)
	}
	h, _, err := decodeCSRHeader(name, full)
	if err != nil {
		return 0, 0, err
	}
	if h.version == CSRVersion2 {
		return streamCSRv2(name, br, h, batchSize, workers, fn)
	}

	crc := uint32(0)
	m := int64(h.numEdges)
	var total int64
	var maxID VertexID
	bufp := getByteBuf(8 * batchSize)
	defer putByteBuf(bufp)
	buf := (*bufp)[:8*batchSize]
	batchp := getEdgeBuf(batchSize)
	defer putEdgeBuf(batchp)
	batch := (*batchp)[:batchSize]
	for total < m {
		want := m - total
		if want > int64(batchSize) {
			want = int64(batchSize)
		}
		chunk := buf[:8*want]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return total, maxID, fmt.Errorf("csrg %s: truncated edge section at edge %d of %d: %w", name, total, m, err)
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		if err := decodeEdgeChunk(name, chunk, h.numVertices, total, batch[:want], &maxID); err != nil {
			return total, maxID, err
		}
		if err := fn(total, batch[:want]); err != nil {
			return total, maxID, err
		}
		total += want
	}

	// Consume any trailing CSR sections so the payload checksum can be
	// verified end to end, then check the footer.
	remaining := h.payloadLen() - 8*m
	for remaining > 0 {
		want := int64(len(buf))
		if want > remaining {
			want = remaining
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return total, maxID, fmt.Errorf("csrg %s: truncated CSR sections: %w", name, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:want])
		remaining -= want
	}
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return total, maxID, fmt.Errorf("csrg %s: missing checksum footer: %w", name, err)
	}
	if stored := binary.LittleEndian.Uint32(foot[:]); stored != crc {
		return total, maxID, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", name, crc, stored)
	}
	if total > 0 && int64(maxID)+1 != int64(h.numVertices) {
		return total, maxID, fmt.Errorf("csrg %s: header says %d vertices but max edge id is %d", name, h.numVertices, maxID)
	}
	return total, maxID, nil
}

// CSRWriter is the streaming side of the binary format: it converts an edge
// stream to a .csrg file in one pass and O(batch) memory. Counts are unknown
// until the stream ends, so the destination must be seekable (the header is
// patched on Close); the written file carries no CSR sections — readers
// rebuild adjacency lazily, exactly as with text edge lists.
type CSRWriter struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	name    string
	version int
	hdrLen  int // payload start; v2 patches numBlocks here on Close
	crc     uint32
	edges   int64
	maxID   VertexID
	closed  bool
	err     error

	// v2 state: edges accumulate into block until it holds csrV2BlockEdges,
	// then the block is compressed through enc and written.
	block     []Edge
	enc       []byte
	numBlocks uint32
}

// NewCSRWriter starts a v1 .csrg document on ws (typically an *os.File) and
// writes a placeholder header.
func NewCSRWriter(ws io.WriteSeeker, name string) (*CSRWriter, error) {
	return NewCSRWriterVersion(ws, name, CSRVersion1)
}

// NewCSRWriterVersion is NewCSRWriter with an explicit format version:
// version 2 streams delta+varint-compressed edge blocks instead of
// fixed-width records.
func NewCSRWriterVersion(ws io.WriteSeeker, name string, version int) (*CSRWriter, error) {
	if version != CSRVersion1 && version != CSRVersion2 {
		return nil, fmt.Errorf("csrg %s: unknown writer version %d (have %d and %d)", name, version, CSRVersion1, CSRVersion2)
	}
	w := &CSRWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<20), name: name, version: version}
	n, err := writeCSRHeader(w.bw, name, uint16(version), 0, 0, 0)
	if err != nil {
		return nil, err
	}
	w.hdrLen = n
	if version == CSRVersion2 {
		// Placeholder block count, patched on Close. Written outside the
		// CRC — the v2 checksum starts after this field (see format doc).
		var quad [4]byte
		if _, err := w.bw.Write(quad[:]); err != nil {
			return nil, err
		}
		w.block = make([]Edge, 0, csrV2BlockEdges)
	}
	return w, nil
}

func (w *CSRWriter) sink(chunk []byte) error {
	w.crc = crc32.Update(w.crc, castagnoli, chunk)
	_, err := w.bw.Write(chunk)
	return err
}

// Append writes one batch of edges. The slice is not retained.
func (w *CSRWriter) Append(edges []Edge) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("csrg %s: Append after Close", w.name)
	}
	if w.edges+int64(len(edges)) > csrMaxEdges {
		w.err = fmt.Errorf("csrg %s: edge count exceeds the int32 edge-id space", w.name)
		return w.err
	}
	for _, e := range edges {
		if e.Src > w.maxID {
			w.maxID = e.Src
		}
		if e.Dst > w.maxID {
			w.maxID = e.Dst
		}
	}
	if w.version == CSRVersion2 {
		for len(edges) > 0 {
			take := csrV2BlockEdges - len(w.block)
			if take > len(edges) {
				take = len(edges)
			}
			w.block = append(w.block, edges[:take]...)
			edges = edges[take:]
			w.edges += int64(take)
			if len(w.block) == csrV2BlockEdges {
				if w.err = w.flushBlock(); w.err != nil {
					return w.err
				}
			}
		}
		return nil
	}
	w.err = encodeEdges(edges, w.sink)
	w.edges += int64(len(edges))
	return w.err
}

// flushBlock compresses and writes the pending v2 block.
func (w *CSRWriter) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	w.enc = appendV2Block(w.enc[:0], w.block)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(w.block)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(w.enc)))
	if err := w.sink(hdr[:]); err != nil {
		return err
	}
	if err := w.sink(w.enc); err != nil {
		return err
	}
	w.numBlocks++
	w.block = w.block[:0]
	return nil
}

// Close writes the checksum footer, patches the edge/vertex counts (and the
// v2 block count) into the header, and leaves the file positioned at its
// end. The receiver is unusable afterwards; closing the underlying file
// remains the caller's job.
func (w *CSRWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.version == CSRVersion2 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], w.crc)
	if _, err := w.bw.Write(foot[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	end, err := w.ws.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	var counts [16]byte
	numVertices := uint64(0)
	if w.edges > 0 {
		numVertices = uint64(w.maxID) + 1
	}
	binary.LittleEndian.PutUint64(counts[0:8], numVertices)
	binary.LittleEndian.PutUint64(counts[8:16], uint64(w.edges))
	if _, err := w.ws.Seek(8, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.ws.Write(counts[:]); err != nil {
		return err
	}
	if w.version == CSRVersion2 {
		// The block count sits at the start of the payload, outside the
		// CRC, so patching it cannot invalidate the streamed checksum.
		var quad [4]byte
		binary.LittleEndian.PutUint32(quad[:], w.numBlocks)
		if _, err := w.ws.Seek(int64(w.hdrLen), io.SeekStart); err != nil {
			return err
		}
		if _, err := w.ws.Write(quad[:]); err != nil {
			return err
		}
	}
	_, err = w.ws.Seek(end, io.SeekStart)
	return err
}

// --- format sniffing --------------------------------------------------

// sniffCSR reads the magic and format version of the file at path. isCSR is
// true for any file that starts with the .csrg magic — including versions
// this reader does not support, so dispatchers route such files to the
// binary path where the unsupported version is named instead of feeding
// binary bytes to the text parser.
func sniffCSR(path string) (isCSR bool, version uint16, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()
	var hdr [6]byte
	n, err := io.ReadFull(f, hdr[:])
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return false, 0, nil // shorter than magic+version: not binary
	}
	if err != nil {
		return false, 0, err
	}
	if n != 6 || string(hdr[:4]) != CSRMagic {
		return false, 0, nil
	}
	return true, binary.LittleEndian.Uint16(hdr[4:6]), nil
}

// CSRFileVersion reports the .csrg format version of the file at path.
// ok is false when the file does not start with the binary magic (a text
// edge list, say). A true ok with an out-of-range version means the file is
// binary but from a future format revision — loaders reject it by name.
func CSRFileVersion(path string) (version int, ok bool, err error) {
	bin, v, err := sniffCSR(path)
	return int(v), bin, err
}

// errUnsupportedVersion names an unsupported binary version the same way
// decodeCSRHeader does, for dispatchers that reject before decoding.
func errUnsupportedVersion(path string, version uint16) error {
	return fmt.Errorf("csrg %s: unsupported format version %d (reader supports %d–%d)", path, version, CSRVersion1, CSRVersion2)
}

// LoadFile loads a graph from path in whichever format the file holds,
// sniffing the .csrg magic and version: v1/v2 binary files go through
// LoadCSR, unknown binary versions fail by name, everything else goes
// through the text edge-list parser.
func LoadFile(path string) (*Graph, error) {
	bin, ver, err := sniffCSR(path)
	if err != nil {
		return nil, err
	}
	if bin {
		if ver < CSRVersion1 || ver > CSRVersion2 {
			return nil, errUnsupportedVersion(path, ver)
		}
		return LoadCSR(path)
	}
	return LoadEdgeList(path)
}

// StreamFile streams a graph file batch-by-batch in whichever format the
// file holds — the binary fast path via StreamCSR, text via StreamEdgeList —
// with the same contract as both: fn sees every edge in stream order, memory
// stays O(batchSize), and the totals are returned.
func StreamFile(path string, batchSize int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	bin, ver, err := sniffCSR(path)
	if err != nil {
		return 0, 0, err
	}
	if bin && (ver < CSRVersion1 || ver > CSRVersion2) {
		return 0, 0, errUnsupportedVersion(path, ver)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if bin {
		return StreamCSR(path, f, batchSize, fn)
	}
	return StreamEdgeList(path, f, batchSize, fn)
}

// IsCSRPath reports whether path carries the conventional binary extension.
// Writers use it to pick an output format; readers sniff content instead.
func IsCSRPath(path string) bool {
	return strings.HasSuffix(strings.ToLower(path), CSRExt)
}
